//! netmap packet generator: the Figure 2 workload as a runnable example.
//!
//! Transmits 64-byte packets as fast as possible at several batch sizes in
//! every execution mode and prints the transmit-rate table — watch the
//! Paradice-with-interrupts column claw its way to line rate as the batch
//! amortizes the 35 µs forwarding cost, while polling mode gets there at a
//! batch of ~4 (paper §6.1.2).
//!
//! ```sh
//! cargo run --example netmap_pktgen
//! ```

use paradice::app::netmap::{line_rate_pps, NetmapClient};
use paradice::prelude::*;

const PACKETS: u64 = 100_000;
const PER_PKT_CPU_NS: u64 = 50;

fn transmit_rate(mode: ExecMode, batch: u32) -> f64 {
    let mut builder = Machine::builder().mode(mode).device(DeviceSpec::Netmap);
    if matches!(mode, ExecMode::Paradice { .. }) {
        builder = builder.guest(GuestSpec::linux());
    }
    let mut machine = builder.build().expect("machine builds");
    let guest = matches!(mode, ExecMode::Paradice { .. }).then_some(0);
    let task = machine.spawn_process(guest).expect("spawn");
    let mut nm = NetmapClient::open(&mut machine, task).expect("open netmap");

    let start = machine.now_ns();
    let mut sent = 0u64;
    while sent < PACKETS {
        let n = batch
            .min(nm.free_slots(&mut machine).expect("slots"))
            .min((PACKETS - sent) as u32);
        if n == 0 {
            nm.poll(&mut machine).expect("poll");
            continue;
        }
        nm.produce(&mut machine, n, 64, PER_PKT_CPU_NS).expect("produce");
        nm.poll(&mut machine).expect("poll"); // one poll per batch
        sent += u64::from(n);
    }
    let nic_done = match machine.driver("/dev/netmap").unwrap() {
        paradice::machine::DriverHandle::Netmap(d) => d.borrow().nic_busy_until_ns(),
        _ => unreachable!(),
    };
    let elapsed = nic_done.max(machine.now_ns()) - start;
    sent as f64 / (elapsed as f64 / 1e9)
}

fn main() {
    let configs: Vec<(&str, ExecMode)> = vec![
        ("Native", ExecMode::Native),
        ("Device-Assign.", ExecMode::DeviceAssignment),
        (
            "Paradice",
            ExecMode::Paradice {
                transport: TransportMode::Interrupts,
                data_isolation: false,
            },
        ),
        (
            "Paradice(P)",
            ExecMode::Paradice {
                transport: TransportMode::polling_default(),
                data_isolation: false,
            },
        ),
    ];
    let batches = [1u32, 4, 16, 64, 256];

    println!("netmap transmit rate, 64-byte packets (Mpps); line rate = {:.3}", line_rate_pps(64) / 1e6);
    print!("{:<16}", "batch:");
    for b in batches {
        print!("{b:>9}");
    }
    println!();
    for (name, mode) in configs {
        print!("{name:<16}");
        for batch in batches {
            let pps = transmit_rate(mode, batch);
            print!("{:>9.3}", pps / 1e6);
        }
        println!();
    }
}
