//! Isolation demo: a compromised driver VM attacks its guests and every
//! attempt is stopped by a different mechanism (paper §4).
//!
//! Builds a two-guest machine with device data isolation, renders a secret
//! into guest 0's protected framebuffer, then runs the full attack suite
//! and prints the audit log.
//!
//! ```sh
//! cargo run --example isolation_demo
//! ```

use paradice::app::drm::DrmClient;
use paradice::attack;
use paradice::gpu_ioctl::gem_domain;
use paradice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: true,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .device(DeviceSpec::Mouse)
        .build()?;

    // Guest 0 puts sensitive data on the GPU (a texture upload through the
    // staging path — the driver VM never sees the plaintext).
    let task = machine.spawn_process(Some(0))?;
    let drm = DrmClient::open(&mut machine, task)?;
    let fb = drm.gem_create(&mut machine, 4 * PAGE_SIZE, gem_domain::VRAM)?;
    let secret = machine.alloc_buffer(task, 64)?;
    machine.write_mem(task, secret, b"guest0-secret-texture")?;
    drm.gem_pwrite(&mut machine, fb, 0, secret, 21)?;
    println!("guest 0 uploaded a secret texture into its protected region\n");

    // The malicious guest compromises the driver VM (threat model, §4) and
    // attacks.
    machine
        .hv()
        .borrow_mut()
        .vm_mut(machine.driver_vm())?
        .mark_compromised();

    println!("running the attack suite against the compromised driver VM:");
    let outcomes = attack::run_all(&mut machine);
    for outcome in &outcomes {
        println!(
            "  {:<24} {}  {}",
            outcome.name,
            if outcome.blocked { "BLOCKED" } else { "!! SUCCEEDED !!" },
            match outcome.blocked_by {
                Some(by) => format!("by {by}"),
                None => outcome.detail.clone(),
            }
        );
    }

    println!("\naudit log ({} records):", machine.hv().borrow().audit().len());
    for record in machine.hv().borrow().audit().records().iter().take(12) {
        println!(
            "  t={:>10} ns  {:?}",
            record.at_ns,
            record.event
        );
    }

    let all_blocked = outcomes.iter().all(|o| o.blocked);
    println!(
        "\nresult: {}",
        if all_blocked {
            "every attack was stopped — fault and device data isolation hold"
        } else {
            "AT LEAST ONE ATTACK SUCCEEDED"
        }
    );
    Ok(())
}
