//! Concurrent GPGPU from multiple guests: the Figure 6 experiment.
//!
//! 1, 2 and 3 guest VMs run the OpenCL matrix-multiplication benchmark
//! simultaneously on one GPU shared through Paradice; per-guest experiment
//! time grows almost linearly because the GPU's processing time is shared
//! (paper §6.1.4).
//!
//! ```sh
//! cargo run --example multi_guest_gpgpu
//! ```

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::gem_domain;
use paradice::prelude::*;

/// The paper's Figure 6 parameters: order-500 matrices, 5 runs per guest.
const ORDER: u32 = 500;
const RUNS: usize = 5;

fn experiment(guests: usize) -> f64 {
    let mut builder = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .device(DeviceSpec::gpu());
    for _ in 0..guests {
        builder = builder.guest(GuestSpec::linux());
    }
    let mut machine = builder.build().expect("machine builds");

    let mut clients = Vec::new();
    for guest in 0..guests {
        let task = machine.spawn_process(Some(guest)).expect("spawn");
        let drm = DrmClient::open(&mut machine, task).expect("open");
        let bo = drm
            .gem_create(&mut machine, 4 * PAGE_SIZE, gem_domain::VRAM)
            .expect("buffers");
        clients.push((drm, bo));
    }

    // All guests launch their kernels round-robin — "execute the benchmark
    // 5 times in a row from each guest VM simultaneously" — and the GPU
    // serializes them.
    let start = machine.now_ns();
    for _run in 0..RUNS {
        for (drm, _) in &clients {
            drm.submit_compute(&mut machine, ORDER).expect("dispatch");
        }
    }
    for (drm, bo) in &clients {
        drm.wait_idle(&mut machine, *bo).expect("wait");
    }
    // Average per-guest experiment time: every guest finishes when the
    // shared queue drains.
    (machine.now_ns() - start) as f64 / 1e9
}

fn main() {
    println!("OpenCL matmul (order {ORDER}, {RUNS} runs/guest) on one GPU shared via Paradice");
    println!("{:<18}{:>22}", "guest VMs", "experiment time (s)");
    let t1 = experiment(1);
    for n in 1..=3 {
        let t = if n == 1 { t1 } else { experiment(n) };
        println!(
            "{:<18}{:>22.2}   ({:.2}x the single-guest time)",
            n,
            t,
            t / t1
        );
    }
    println!("\nshape: per-guest time grows ~linearly with the number of guests (Fig. 6)");
}
