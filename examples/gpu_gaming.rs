//! Two guests share one GPU for graphics: the paper's foreground/background
//! demo — "we ran two guest VMs, one executing a 3D HD game and the other
//! one running an OpenGL application, both sharing the GPU based on our
//! foreground-background model" (§6).
//!
//! Guest 0 plays a Tremulous-style game (heavy frames), guest 1 renders an
//! OpenGL teapot (light frames). Only the foreground guest renders; halfway
//! through, the user presses the terminal-switch key combination.
//!
//! ```sh
//! cargo run --example gpu_gaming
//! ```

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::gem_domain;
use paradice::prelude::*;

struct Player {
    name: &'static str,
    drm: DrmClient,
    fb: u32,
    frame_cost_us: u32,
    frames: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::polling_default(),
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .device(DeviceSpec::Keyboard)
        .build()?;

    let mut players = Vec::new();
    for (i, (name, cost)) in [("tremulous@guest0", 14_000u32), ("teapot@guest1", 5_500u32)]
        .into_iter()
        .enumerate()
    {
        let task = machine.spawn_process(Some(i))?;
        let drm = DrmClient::open(&mut machine, task)?;
        let fb = drm.gem_create(&mut machine, 32 * PAGE_SIZE, gem_domain::VRAM)?;
        players.push(Player {
            name,
            drm,
            fb,
            frame_cost_us: cost,
            frames: 0,
        });
    }

    // Two virtual seconds of play; the user hits the key combination at the
    // halfway mark (§5.1: "the user can easily navigate between them using
    // simple key combinations").
    let half = machine.now_ns() + 1_000_000_000;
    let end = machine.now_ns() + 2_000_000_000;
    let mut switched = false;
    while machine.now_ns() < end {
        if !switched && machine.now_ns() >= half {
            machine.key_press(59); // F1-style terminal switch
            machine.switch_foreground(1);
            switched = true;
            println!(
                "[{:.2}s] terminal switch: guest 1 takes the screen",
                machine.now_ns() as f64 / 1e9
            );
        }
        let mut rendered = false;
        for (i, player) in players.iter_mut().enumerate() {
            if machine.is_foreground(i) {
                player.drm.submit_render(&mut machine, player.frame_cost_us, player.fb)?;
                player.drm.wait_idle(&mut machine, player.fb)?;
                player.frames += 1;
                rendered = true;
            }
            // Background guests pause: their render loop blocks on the
            // virtual terminal, issuing no GPU work.
        }
        if !rendered {
            machine.clock().advance(1_000_000);
        }
    }

    println!("--- after 2.0 virtual seconds ---");
    for (i, player) in players.iter().enumerate() {
        let fps_while_fg = player.frames as f64 / 1.0; // each had ~1 s in the foreground
        println!(
            "{:<18} frames={:4}  (~{:.0} FPS while foreground, {})",
            player.name,
            player.frames,
            fps_while_fg,
            if machine.is_foreground(i) {
                "now foreground"
            } else {
                "now paused"
            }
        );
    }
    Ok(())
}
