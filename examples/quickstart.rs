//! Quickstart: boot a Paradice machine, open the virtualized GPU from a
//! guest VM, and render a few frames.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::{gem_domain, info};
use paradice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One guest VM, one GPU, CVD in interrupt mode — the paper's default
    // configuration (§6).
    let mut machine = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .device(DeviceSpec::Mouse)
        .build()?;

    // A process inside the guest opens the *virtual* device file. The CVD
    // frontend forwards every file operation to the Linux driver in the
    // driver VM.
    let task = machine.spawn_process(Some(0))?;
    let drm = DrmClient::open(&mut machine, task)?;

    // The guest sees the real device's identity through the device info
    // module (§5.1).
    println!("device id : {:#06x}", drm.info(&mut machine, info::DEVICE_ID)?);
    println!(
        "vram      : {} MiB (simulated, scaled)",
        drm.info(&mut machine, info::VRAM_SIZE)? / (1024 * 1024)
    );
    if let Some(bus) = machine.bus(0) {
        for line in bus.scan() {
            println!("lspci     : {line}");
        }
    }

    // Allocate a framebuffer in VRAM and render 60 frames of a 5 ms/frame
    // workload; command submission flows through the nested-copy CS ioctl,
    // whose grants the frontend derives by JIT-evaluating the analyzer's
    // extracted slice (§4.1).
    let fb = drm.gem_create(&mut machine, 16 * PAGE_SIZE, gem_domain::VRAM)?;
    let start = machine.now_ns();
    for _ in 0..60 {
        drm.submit_render(&mut machine, 5_000, fb)?;
        drm.wait_idle(&mut machine, fb)?;
    }
    let elapsed = machine.now_ns() - start;
    println!(
        "60 frames : {:.1} ms of virtual time ({:.1} FPS)",
        elapsed as f64 / 1e6,
        60.0 / (elapsed as f64 / 1e9)
    );

    // Nothing tripped the isolation machinery in a clean run.
    println!(
        "audit log : {} blocked events (expected 0)",
        machine.hv().borrow().audit().len()
    );
    Ok(())
}
