//! Cross-OS driver reuse: a FreeBSD guest and two Linux guests of different
//! major versions share one Linux driver VM (paper §3.2.2, §5.1).
//!
//! "Paradice is useful for driver reuse between these OSes too, for example,
//! to reuse Linux GPU drivers on FreeBSD, which typically does not support
//! the latest GPU drivers" — here all three guests render through the same
//! Linux Radeon driver, and FreeBSD's `mmap` flows through its 12-LoC
//! kernel hook.
//!
//! ```sh
//! cargo run --example cross_os
//! ```

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::{gem_domain, info};
use paradice::os;
use paradice::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux()) // Linux 3.2.0
        .guest(GuestSpec::linux_2_6_35()) // a different major version
        .guest(GuestSpec::freebsd()) // FreeBSD 9
        .device(DeviceSpec::gpu())
        .build()?;

    let names = ["Linux 3.2.0", "Linux 2.6.35", "FreeBSD 9"];
    for (index, name) in names.iter().enumerate() {
        let task = machine.spawn_process(Some(index))?;
        let drm = DrmClient::open(&mut machine, task)?;
        let device_id = drm.info(&mut machine, info::DEVICE_ID)?;
        // Render a frame and map a buffer (FreeBSD exercises the mmap hook
        // under the hood).
        let fb = drm.gem_create(&mut machine, 4 * PAGE_SIZE, gem_domain::VRAM)?;
        drm.submit_render(&mut machine, 2_000, fb)?;
        drm.wait_idle(&mut machine, fb)?;
        let data = machine.alloc_buffer(task, 64)?;
        machine.write_mem(task, data, name.as_bytes())?;
        drm.gem_pwrite(&mut machine, fb, 0, data, name.len() as u64)?;
        let map = drm.gem_map(&mut machine, fb, PAGE_SIZE)?;
        let mut seen = vec![0u8; name.len()];
        machine.read_mem(task, map, &mut seen)?;
        assert_eq!(seen, name.as_bytes());
        println!(
            "{name:<14} sees device {device_id:#06x}, rendered a frame, \
             mapped VRAM, read its own bytes back"
        );
    }

    // The compatibility analysis behind it (§3.2.2/§5.1).
    let (added, removed) =
        os::op_list_delta(OsPersonality::LINUX_2_6_35, OsPersonality::LINUX_3_2_0);
    println!(
        "\nop-table delta 2.6.35 → 3.2.0: +{} −{} (the paper's 14-LoC update)",
        added.len(),
        removed.len()
    );
    println!(
        "FreeBSD needs the explicit mmap-range hook: {}",
        OsPersonality::FreeBsd.needs_mmap_hook()
    );
    println!("\nthree OS personalities, one Linux driver VM, one CVD — driver reuse works");
    Ok(())
}
