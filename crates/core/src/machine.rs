//! The machine: VMs, devices, processes, and the three execution modes.
//!
//! A [`Machine`] is the whole physical box of the paper's evaluation (§6):
//! the hypervisor, a driver VM (or, natively, "the host OS"), guest VMs,
//! the attached devices with their drivers, and the processes that issue
//! file operations. The same application code runs in every
//! [`ExecMode`] — that is precisely the device-file boundary's promise.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use paradice_analyzer::extract::analyze_handler;
use paradice_cvd::backend::{Backend, SharedBackend, DEFAULT_QUEUE_CAP};
use paradice_cvd::frontend::{Frontend, IoctlKnowledge};
use paradice_cvd::info::{DeviceInfoModule, VirtualPciBus};
use paradice_cvd::proto::{CvdChannel, WireResponse};
use paradice_cvd::sharing::{SharingPolicy, VirtualTerminals};
pub use paradice_cvd::OsPersonality;
use paradice_devfs::fileops::{FileOps, MmapRange, OpenContext, PollEvents, TaskId, UserBuffer};
use paradice_devfs::ioc::IoctlCmd;
use paradice_devfs::registry::{DevFs, FileHandleId, OpenPolicy};
use paradice_devfs::sysinfo::{known, DeviceClass};
use paradice_devfs::{Errno, MemOps, OpenFlags};
use paradice_drivers::audio::PcmDriver;
use paradice_drivers::camera::UvcDriver;
use paradice_drivers::env::KernelEnv;
use paradice_drivers::evdev::{EvdevDriver, EventKind, InputEvent};
use paradice_drivers::gpu::driver::{DriverVersion, RadeonDriver};
use paradice_drivers::gpu::i915::{i915_handler_ir, I915Driver};
use paradice_drivers::gpu::ir::radeon_handler_3_2_0;
use paradice_drivers::gpu::isolation::IsolationState;
use paradice_drivers::gpu::model::RadeonGpu;
use paradice_drivers::netmap::NetmapDriver;
use paradice_faults::FaultPlan;
use paradice_hypervisor::hv::{DataIsolation, HvError, Hypervisor};
use paradice_hypervisor::vm::VmRole;
use paradice_hypervisor::{
    ChannelStats, ClockSource, CostModel, EngineKind, SharedHypervisor, TransportMode, VmId,
};
use paradice_mem::pagetable::GuestPageTables;
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr, PAGE_SIZE};
use paradice_trace::Tracer;

/// Virtual time a driver-VM reboot costs during recovery (§7.1). The paper
/// reports "about one minute" wall clock for a full reboot; a stripped-down
/// driver VM restoring from a snapshot is modelled at one second.
pub const DRIVER_VM_REBOOT_NS: u64 = 1_000_000_000;

/// How the machine virtualizes I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// No virtualization: applications and drivers share the host kernel.
    Native,
    /// Direct device assignment: applications run inside the VM that owns
    /// the device (§7.1 — high performance, no sharing).
    DeviceAssignment,
    /// Paradice (§3): guests forward file operations to the driver VM.
    Paradice {
        /// Channel signaling: interrupts or shared-page polling (§5.1).
        transport: TransportMode,
        /// Whether hypervisor-enforced device data isolation is on (§4.2).
        data_isolation: bool,
    },
}

/// A device to attach at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSpec {
    /// The Radeon HD 6450 (Table 1).
    Gpu {
        /// Simulated VRAM pages (scaled down from the card's 1 GiB; see
        /// DESIGN.md on scaling).
        vram_pages: u64,
        /// Driver generation.
        version: DriverVersion,
    },
    /// Dell USB mouse.
    Mouse,
    /// Dell USB keyboard.
    Keyboard,
    /// Logitech C920 camera.
    Camera,
    /// Intel HDA speaker.
    Audio,
    /// Intel Gigabit adapter in netmap mode.
    Netmap,
    /// The integrated Intel GM965 GPU (Table 1's second GPU make), behind
    /// the very same class-agnostic CVD as the Radeon.
    IntelGpu {
        /// Simulated aperture ("stolen memory") pages.
        vram_pages: u64,
    },
}

impl DeviceSpec {
    /// The default GPU: 1024 pages (4 MiB) of simulated VRAM, 3.2.0 driver.
    pub fn gpu() -> DeviceSpec {
        DeviceSpec::Gpu {
            vram_pages: 1024,
            version: DriverVersion::V3_2_0,
        }
    }

    /// The default Intel GPU: 512 pages of aperture.
    pub fn intel_gpu() -> DeviceSpec {
        DeviceSpec::IntelGpu { vram_pages: 512 }
    }

    /// The device-file path the device registers at.
    pub fn path(&self) -> &'static str {
        match self {
            DeviceSpec::Gpu { .. } => "/dev/dri/card0",
            DeviceSpec::IntelGpu { .. } => "/dev/dri/card1",
            DeviceSpec::Mouse => "/dev/input/event0",
            DeviceSpec::Keyboard => "/dev/input/event1",
            DeviceSpec::Camera => "/dev/video0",
            DeviceSpec::Audio => "/dev/snd/pcmC0D0p",
            DeviceSpec::Netmap => "/dev/netmap",
        }
    }

    fn class(&self) -> DeviceClass {
        match self {
            DeviceSpec::Gpu { .. } | DeviceSpec::IntelGpu { .. } => DeviceClass::Gpu,
            DeviceSpec::Mouse | DeviceSpec::Keyboard => DeviceClass::Input,
            DeviceSpec::Camera => DeviceClass::Camera,
            DeviceSpec::Audio => DeviceClass::Audio,
            DeviceSpec::Netmap => DeviceClass::Net,
        }
    }

    fn open_policy(&self) -> OpenPolicy {
        match self {
            // Camera and netmap drivers are single-open (§5.1).
            DeviceSpec::Camera | DeviceSpec::Netmap => OpenPolicy::Exclusive,
            _ => OpenPolicy::Shared,
        }
    }

    fn sharing(&self) -> SharingPolicy {
        match self {
            DeviceSpec::Gpu { .. } | DeviceSpec::IntelGpu { .. } => {
                SharingPolicy::ForegroundBackground
            }
            DeviceSpec::Mouse | DeviceSpec::Keyboard => SharingPolicy::ForegroundInput,
            DeviceSpec::Camera | DeviceSpec::Netmap => SharingPolicy::Exclusive,
            DeviceSpec::Audio => SharingPolicy::Concurrent,
        }
    }

    fn pci_info(&self) -> paradice_devfs::PciDeviceInfo {
        match self {
            DeviceSpec::Gpu { .. } => known::radeon_hd6450(),
            DeviceSpec::IntelGpu { .. } => known::intel_gm965(),
            DeviceSpec::Mouse => known::dell_usb_mouse(),
            DeviceSpec::Keyboard => known::dell_usb_keyboard(),
            DeviceSpec::Camera => known::logitech_c920(),
            DeviceSpec::Audio => known::intel_hda(),
            DeviceSpec::Netmap => known::intel_gigabit(),
        }
    }
}

/// A guest VM to create at build time (Paradice mode only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestSpec {
    /// The guest's OS.
    pub personality: OsPersonality,
    /// Guest RAM in bytes.
    pub ram_bytes: u64,
}

impl GuestSpec {
    /// A Linux 3.2.0 guest with 4 MiB of simulated RAM (scaled from the
    /// paper's 1 GiB VMs; only the working set matters to the simulation).
    pub fn linux() -> GuestSpec {
        GuestSpec {
            personality: OsPersonality::LINUX_3_2_0,
            ram_bytes: 1024 * PAGE_SIZE,
        }
    }

    /// A Linux 2.6.35 guest (the paper's cross-version deployment, §5.1).
    pub fn linux_2_6_35() -> GuestSpec {
        GuestSpec {
            personality: OsPersonality::LINUX_2_6_35,
            ram_bytes: 1024 * PAGE_SIZE,
        }
    }

    /// A FreeBSD guest (§5.1).
    pub fn freebsd() -> GuestSpec {
        GuestSpec {
            personality: OsPersonality::FreeBsd,
            ram_bytes: 1024 * PAGE_SIZE,
        }
    }
}

/// Errors from machine construction and operation.
#[derive(Debug)]
pub enum MachineError {
    /// A configuration contradiction (e.g. guests in native mode).
    Config(String),
    /// The hypervisor refused an operation.
    Hv(HvError),
    /// A file-operation-level error.
    Errno(Errno),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(msg) => write!(f, "machine configuration: {msg}"),
            MachineError::Hv(e) => write!(f, "hypervisor: {e}"),
            MachineError::Errno(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<HvError> for MachineError {
    fn from(e: HvError) -> Self {
        MachineError::Hv(e)
    }
}

impl From<Errno> for MachineError {
    fn from(e: Errno) -> Self {
        MachineError::Errno(e)
    }
}

/// Typed handles to attached drivers (device models need poking from
/// workloads: injecting events, reading NIC counters, …).
#[derive(Clone)]
pub enum DriverHandle {
    /// The Radeon GPU.
    Gpu(Rc<RefCell<RadeonDriver>>),
    /// The Intel GPU.
    IntelGpu(Rc<RefCell<I915Driver>>),
    /// An input device.
    Input(Rc<RefCell<EvdevDriver>>),
    /// The camera.
    Camera(Rc<RefCell<UvcDriver>>),
    /// The speaker.
    Audio(Rc<RefCell<PcmDriver>>),
    /// The NIC.
    Netmap(Rc<RefCell<NetmapDriver>>),
}

impl fmt::Debug for DriverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DriverHandle::Gpu(_) => "Gpu",
            DriverHandle::IntelGpu(_) => "IntelGpu",
            DriverHandle::Input(_) => "Input",
            DriverHandle::Camera(_) => "Camera",
            DriverHandle::Audio(_) => "Audio",
            DriverHandle::Netmap(_) => "Netmap",
        };
        write!(f, "DriverHandle::{name}")
    }
}

struct AttachedDevice {
    spec: DeviceSpec,
    handle: DriverHandle,
    env: Rc<KernelEnv>,
    /// devfs id when registered on the host (native/assignment).
    host_id: Option<paradice_devfs::DeviceId>,
    /// devfs id in the backend (Paradice).
    backend_id: Option<paradice_devfs::DeviceId>,
}

impl AttachedDevice {
    fn fileops(&self) -> Rc<RefCell<dyn FileOps>> {
        match &self.handle {
            DriverHandle::Gpu(d) => d.clone(),
            DriverHandle::IntelGpu(d) => d.clone(),
            DriverHandle::Input(d) => d.clone(),
            DriverHandle::Camera(d) => d.clone(),
            DriverHandle::Audio(d) => d.clone(),
            DriverHandle::Netmap(d) => d.clone(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FdInner {
    Host(FileHandleId),
    Guest(u64),
}

struct Process {
    vm: VmId,
    guest_index: Option<usize>,
    pt: GuestPageTables,
    next_va: u64,
    fds: BTreeMap<u64, (FdInner, String)>,
    next_fd: u64,
    pending_events: Vec<u64>, // fds with pending notifications (host path)
}

/// Builds a [`Machine`].
///
/// The builder owns the whole configuration surface — virtualization
/// mode, execution substrate, devices, guests, and the cross-cutting
/// switches (fast path, tracing, fault plans) that used to be ad-hoc
/// post-construction setters:
///
/// ```ignore
/// let mut machine = Machine::builder()
///     .guests([GuestSpec::linux(64 * 1024 * 1024)])
///     .exec(ExecMode::Paradice { transport, data_isolation: false })
///     .fastpath(true)
///     .tracing(true)
///     .faults(plan)
///     .build()?;
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    mode: ExecMode,
    engine: EngineKind,
    devices: Vec<DeviceSpec>,
    guests: Vec<GuestSpec>,
    driver_ram_pages: u64,
    cost: CostModel,
    queue_cap: usize,
    fastpath: bool,
    tracing: bool,
    faults: Option<Rc<RefCell<FaultPlan>>>,
}

impl Default for MachineBuilder {
    fn default() -> Self {
        MachineBuilder {
            mode: ExecMode::Native,
            engine: EngineKind::Virtual,
            devices: Vec::new(),
            guests: Vec::new(),
            driver_ram_pages: 8192, // 32 MiB of simulated driver-VM RAM
            cost: CostModel::default(),
            queue_cap: DEFAULT_QUEUE_CAP,
            fastpath: false,
            tracing: false,
            faults: None,
        }
    }
}

impl MachineBuilder {
    /// Selects the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the execution mode (preferred spelling of
    /// [`MachineBuilder::mode`]).
    pub fn exec(self, mode: ExecMode) -> Self {
        self.mode(mode)
    }

    /// Selects the execution substrate: [`EngineKind::Virtual`] (the
    /// default — deterministic virtual time, the correctness oracle) or
    /// [`EngineKind::Wall`] (real time: the machine's clock reads the
    /// hardware, costs charged by the model are ignored).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a device.
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.devices.push(spec);
        self
    }

    /// Adds a guest VM (Paradice mode).
    pub fn guest(mut self, spec: GuestSpec) -> Self {
        self.guests.push(spec);
        self
    }

    /// Adds several guest VMs at once (Paradice mode).
    pub fn guests(mut self, specs: impl IntoIterator<Item = GuestSpec>) -> Self {
        self.guests.extend(specs);
        self
    }

    /// Enables the cross-layer fast path (grant cache, pipelined ring,
    /// vectored hypercalls) from the first operation.
    pub fn fastpath(mut self, on: bool) -> Self {
        self.fastpath = on;
        self
    }

    /// Enables paradice-trace recording from the first operation; the
    /// accumulated [`Tracer`] is available via [`Machine::tracer`].
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Arms a fault plan on the backend from the first operation.
    pub fn faults(mut self, plan: Rc<RefCell<FaultPlan>>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the cost model (experiments with ablated constants).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the per-guest wait-queue cap.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Constructs the machine.
    ///
    /// # Errors
    ///
    /// Configuration contradictions and resource exhaustion.
    pub fn build(self) -> Result<Machine, MachineError> {
        let paradice = matches!(self.mode, ExecMode::Paradice { .. });
        if paradice && self.guests.is_empty() {
            return Err(MachineError::Config(
                "Paradice mode needs at least one guest VM".into(),
            ));
        }
        if !paradice && !self.guests.is_empty() {
            return Err(MachineError::Config(
                "guest VMs only exist in Paradice mode".into(),
            ));
        }
        let (transport, data_isolation) = match self.mode {
            ExecMode::Paradice {
                transport,
                data_isolation,
            } => (transport, data_isolation),
            _ => (TransportMode::Interrupts, false),
        };

        // Size physical memory: driver RAM + guests + VRAM + slack.
        let vram_pages: u64 = self
            .devices
            .iter()
            .map(|d| match d {
                DeviceSpec::Gpu { vram_pages, .. }
                | DeviceSpec::IntelGpu { vram_pages } => *vram_pages,
                _ => 0,
            })
            .sum();
        let guest_pages: u64 = self.guests.iter().map(|g| g.ram_bytes / PAGE_SIZE).sum();
        let total_frames =
            (self.driver_ram_pages + guest_pages + vram_pages + 4096) as usize;

        let clock = self.engine.clock();
        let mut hv = Hypervisor::new(total_frames, clock.clone(), self.cost.clone());

        // Guest VMs first (Paradice), then the driver VM / host.
        let mut guest_vms = Vec::new();
        for guest in &self.guests {
            guest_vms.push(hv.create_vm(VmRole::Guest, guest.ram_bytes)?);
        }
        let driver_vm = hv.create_vm(VmRole::Driver, self.driver_ram_pages * PAGE_SIZE)?;
        let hv: SharedHypervisor = Rc::new(RefCell::new(hv));

        let mut machine = Machine {
            hv: hv.clone(),
            clock,
            mode: self.mode,
            driver_vm,
            guest_vms: guest_vms.clone(),
            guest_specs: self.guests.clone(),
            devices: Vec::new(),
            host_devfs: DevFs::new(),
            backend: None,
            frontends: Vec::new(),
            terminals: None,
            buses: Vec::new(),
            processes: BTreeMap::new(),
            next_task: 1,
            next_user_page: BTreeMap::new(),
            queue_cap: self.queue_cap,
            tracer: None,
        };

        // CVD plumbing (Paradice).
        if paradice {
            let backend = Backend::new(hv.clone(), driver_vm);
            let terminals = Rc::new(RefCell::new(VirtualTerminals::new(guest_vms.clone())));
            backend.borrow_mut().set_terminals(terminals.clone());
            let mut frontends = Vec::new();
            for (i, &guest) in guest_vms.iter().enumerate() {
                let channel = Rc::new(RefCell::new(CvdChannel::new(
                    transport,
                    machine.clock.clone(),
                    self.cost.clone(),
                )));
                backend
                    .borrow_mut()
                    .attach_guest(guest, channel.clone(), self.queue_cap);
                frontends.push(Rc::new(RefCell::new(Frontend::new(
                    hv.clone(),
                    guest,
                    self.guests[i].personality,
                    channel,
                    backend.clone(),
                ))));
            }
            machine.backend = Some(backend);
            machine.frontends = frontends;
            machine.terminals = Some(terminals);
            machine.buses = (0..guest_vms.len()).map(|_| VirtualPciBus::new()).collect();
        }

        // Attach devices.
        for spec in &self.devices {
            machine.attach_device(*spec, data_isolation)?;
        }

        // Cross-cutting switches, applied before the first operation so a
        // built machine needs no post-construction mutation.
        if self.fastpath {
            machine.enable_fastpath();
        }
        if self.tracing {
            machine.enable_tracing();
        }
        if let Some(plan) = self.faults {
            machine.arm_faults(plan);
        }
        Ok(machine)
    }
}

/// The assembled machine.
pub struct Machine {
    hv: SharedHypervisor,
    clock: ClockSource,
    mode: ExecMode,
    driver_vm: VmId,
    guest_vms: Vec<VmId>,
    guest_specs: Vec<GuestSpec>,
    devices: Vec<AttachedDevice>,
    host_devfs: DevFs,
    backend: Option<SharedBackend>,
    frontends: Vec<Rc<RefCell<Frontend>>>,
    terminals: Option<Rc<RefCell<VirtualTerminals>>>,
    buses: Vec<VirtualPciBus>,
    processes: BTreeMap<u64, Process>,
    next_task: u64,
    /// Per-VM cursor for user-page allocation (bottom-up; kernel pages come
    /// top-down from [`paradice_hypervisor::Vm::alloc_kernel_page`]).
    next_user_page: BTreeMap<u32, u64>,
    queue_cap: usize,
    tracer: Option<Tracer>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("mode", &self.mode)
            .field("guests", &self.guest_vms.len())
            .field("devices", &self.devices.len())
            .field("processes", &self.processes.len())
            .finish()
    }
}

/// The native/assignment [`MemOps`]: direct kernel access to the local
/// process (the paper's unmodified `copy_to_user`/`vm_insert_pfn`).
///
/// Together with [`paradice_devfs::BufferMemOps`] (plain in-memory buffers)
/// and `paradice_cvd::memops::HypercallMemOps` (grant-checked hypercalls
/// from the driver VM), this completes the unified [`MemOps`] story: one
/// trait, three execution modes, the same driver code against all of them.
pub struct DirectMemOps {
    hv: SharedHypervisor,
    vm: VmId,
    pt_root: GuestPhysAddr,
}

impl DirectMemOps {
    /// Direct access to `vm`'s process rooted at `pt_root`.
    pub fn new(hv: SharedHypervisor, vm: VmId, pt_root: GuestPhysAddr) -> Self {
        DirectMemOps { hv, vm, pt_root }
    }
}

impl MemOps for DirectMemOps {
    fn copy_from_user(&mut self, src: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .process_read(self.vm, self.pt_root, src, buf)
            .map_err(|_| Errno::Efault)
    }

    fn copy_to_user(&mut self, dst: GuestVirtAddr, buf: &[u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .process_write(self.vm, self.pt_root, dst, buf)
            .map_err(|_| Errno::Efault)
    }

    fn insert_pfn(&mut self, va: GuestVirtAddr, pfn: u64, access: Access) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .kernel_map_into_process(self.vm, self.pt_root, va, pfn, access)
            .map_err(|_| Errno::Efault)
    }

    fn zap_pfn(&mut self, va: GuestVirtAddr) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .kernel_unmap_from_process(self.vm, self.pt_root, va)
            .map_err(|_| Errno::Efault)
    }
}

impl Machine {
    /// Starts building a machine.
    pub fn builder() -> MachineBuilder {
        MachineBuilder::default()
    }

    fn attach_device(
        &mut self,
        spec: DeviceSpec,
        data_isolation: bool,
    ) -> Result<(), MachineError> {
        // GPU is the only device with data-isolation support (§5.3); other
        // devices are assigned without it.
        let di = data_isolation && matches!(spec, DeviceSpec::Gpu { .. });
        let isolation_mode = if di {
            DataIsolation::Enabled
        } else {
            DataIsolation::Disabled
        };
        let domain = self
            .hv
            .borrow_mut()
            .assign_device(self.driver_vm, isolation_mode)?;
        let env = KernelEnv::new(self.hv.clone(), self.driver_vm, domain, di);

        let handle = match spec {
            DeviceSpec::Gpu { vram_pages, version } => {
                let bar = self.hv.borrow_mut().map_device_bar(domain, vram_pages)?;
                let mut gpu = RadeonGpu::new(env.clone(), bar, vram_pages * PAGE_SIZE);
                let driver = if di {
                    let isolation =
                        IsolationState::setup(&env, &gpu, &self.guest_vms, 64)
                            .map_err(MachineError::Errno)?;
                    RadeonDriver::new_isolated(env.clone(), gpu, version, isolation)
                } else {
                    // Without isolation the driver allocates and reads the
                    // interrupt status ring in system memory (the §5.3
                    // behaviour that data isolation forbids).
                    let irq_page = env.alloc_kernel_page()?;
                    gpu.set_irq_status_page(irq_page);
                    RadeonDriver::new(env.clone(), gpu, version)
                };
                DriverHandle::Gpu(Rc::new(RefCell::new(driver)))
            }
            DeviceSpec::IntelGpu { vram_pages } => {
                let bar = self.hv.borrow_mut().map_device_bar(domain, vram_pages)?;
                let gpu = RadeonGpu::new(env.clone(), bar, vram_pages * PAGE_SIZE);
                DriverHandle::IntelGpu(Rc::new(RefCell::new(I915Driver::new(
                    env.clone(),
                    gpu,
                ))))
            }
            DeviceSpec::Mouse => {
                DriverHandle::Input(Rc::new(RefCell::new(EvdevDriver::usb_mouse(env.clone()))))
            }
            DeviceSpec::Keyboard => DriverHandle::Input(Rc::new(RefCell::new(
                EvdevDriver::usb_keyboard(env.clone()),
            ))),
            DeviceSpec::Camera => {
                DriverHandle::Camera(Rc::new(RefCell::new(UvcDriver::new(env.clone()))))
            }
            DeviceSpec::Audio => {
                DriverHandle::Audio(Rc::new(RefCell::new(PcmDriver::new(env.clone()))))
            }
            DeviceSpec::Netmap => {
                DriverHandle::Netmap(Rc::new(RefCell::new(NetmapDriver::new(env.clone()))))
            }
        };

        let mut attached = AttachedDevice {
            spec,
            handle,
            env,
            host_id: None,
            backend_id: None,
        };

        if let Some(backend) = &self.backend {
            let id = backend.borrow_mut().register_device(
                spec.path(),
                spec.class(),
                spec.open_policy(),
                spec.sharing(),
                attached.fileops(),
                attached.env.clone(),
            )?;
            attached.backend_id = Some(id);
            // Install analyzer knowledge and plug the device info module
            // into every guest (§5.1).
            for (i, frontend) in self.frontends.iter().enumerate() {
                if matches!(spec, DeviceSpec::Gpu { .. }) {
                    let report = analyze_handler(&radeon_handler_3_2_0())
                        .map_err(|e| MachineError::Config(e.to_string()))?;
                    frontend
                        .borrow_mut()
                        .install_knowledge(spec.path(), IoctlKnowledge::from_report(report));
                }
                if matches!(spec, DeviceSpec::IntelGpu { .. }) {
                    let report = analyze_handler(&i915_handler_ir())
                        .map_err(|e| MachineError::Config(e.to_string()))?;
                    frontend
                        .borrow_mut()
                        .install_knowledge(spec.path(), IoctlKnowledge::from_report(report));
                }
                self.buses[i].plug(DeviceInfoModule::new(spec.pci_info(), spec.path()));
            }
        } else {
            let id =
                self.host_devfs
                    .register(spec.path(), spec.class(), spec.open_policy())?;
            attached.host_id = Some(id);
        }
        self.devices.push(attached);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The shared hypervisor (attack harness, experiments).
    pub fn hv(&self) -> &SharedHypervisor {
        &self.hv
    }

    /// Current virtual time, ns.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The machine's time source: virtual under [`EngineKind::Virtual`]
    /// (deterministic, cost-charged), real under [`EngineKind::Wall`].
    pub fn clock(&self) -> &ClockSource {
        &self.clock
    }

    /// The tracer recording this machine's operation spans, if tracing
    /// was enabled (via [`MachineBuilder::tracing`] or
    /// [`Machine::enable_tracing`]).
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The guest VMs (empty outside Paradice mode).
    pub fn guest_vms(&self) -> &[VmId] {
        &self.guest_vms
    }

    /// The driver VM (or host kernel's VM container).
    pub fn driver_vm(&self) -> VmId {
        self.driver_vm
    }

    /// The kernel environment of an attached device (its IOMMU domain,
    /// data-isolation flag, thread mark) — used by the attack harness and
    /// experiments.
    pub fn device_env(&self, path: &str) -> Option<Rc<KernelEnv>> {
        self.devices
            .iter()
            .find(|d| d.spec.path() == path)
            .map(|d| d.env.clone())
    }

    /// Typed access to an attached driver by path.
    pub fn driver(&self, path: &str) -> Option<DriverHandle> {
        self.devices
            .iter()
            .find(|d| d.spec.path() == path)
            .map(|d| d.handle.clone())
    }

    /// The virtual PCI bus exported into guest `index` (Paradice).
    pub fn bus(&self, index: usize) -> Option<&VirtualPciBus> {
        self.buses.get(index)
    }

    /// The frontend of guest `index` (tests and experiments).
    pub fn frontend(&self, index: usize) -> Option<Rc<RefCell<Frontend>>> {
        self.frontends.get(index).cloned()
    }

    /// The CVD backend (Paradice).
    pub fn backend(&self) -> Option<SharedBackend> {
        self.backend.clone()
    }

    fn charge_syscall(&self) {
        self.clock
            .advance(self.hv.borrow().cost().syscall_ns);
    }

    // ------------------------------------------------------------------
    // Processes and memory
    // ------------------------------------------------------------------

    /// Spawns a process: in guest `index` under Paradice, or on the host
    /// (`None`) in native/assignment modes.
    ///
    /// # Errors
    ///
    /// Configuration mismatches and memory exhaustion.
    pub fn spawn_process(&mut self, guest: Option<usize>) -> Result<TaskId, MachineError> {
        let (vm, guest_index) = match (self.mode, guest) {
            (ExecMode::Paradice { .. }, Some(i)) => {
                let vm = *self
                    .guest_vms
                    .get(i)
                    .ok_or_else(|| MachineError::Config(format!("no guest {i}")))?;
                (vm, Some(i))
            }
            (ExecMode::Paradice { .. }, None) => {
                return Err(MachineError::Config(
                    "Paradice processes live in guest VMs".into(),
                ))
            }
            (_, Some(_)) => {
                return Err(MachineError::Config(
                    "native/assignment processes live on the host".into(),
                ))
            }
            (_, None) => (self.driver_vm, None),
        };
        let pt = {
            let mut hv = self.hv.borrow_mut();
            let mut space = hv.gpa_space(vm);
            GuestPageTables::new(&mut space).map_err(|_| MachineError::Errno(Errno::Enomem))?
        };
        let task = TaskId(self.next_task);
        self.next_task += 1;
        self.processes.insert(
            task.0,
            Process {
                vm,
                guest_index,
                pt,
                next_va: 0x0001_0000,
                fds: BTreeMap::new(),
                next_fd: 3,
                pending_events: Vec::new(),
            },
        );
        if let (Some(backend), Some(_)) = (&self.backend, guest_index) {
            backend.borrow_mut().register_task(task, vm);
        }
        Ok(task)
    }

    fn process(&self, task: TaskId) -> Result<&Process, Errno> {
        self.processes.get(&task.0).ok_or(Errno::Einval)
    }

    fn process_mut(&mut self, task: TaskId) -> Result<&mut Process, Errno> {
        self.processes.get_mut(&task.0).ok_or(Errno::Einval)
    }

    /// Allocates and maps `len` bytes of anonymous process memory; returns
    /// the virtual address (page-aligned, with a guard page after).
    ///
    /// # Errors
    ///
    /// `ENOMEM` when the VM's RAM is exhausted.
    pub fn alloc_buffer(&mut self, task: TaskId, len: u64) -> Result<GuestVirtAddr, Errno> {
        let (vm, pt_root, va) = {
            let process = self.process_mut(task)?;
            let va = process.next_va;
            let pages = len.div_ceil(PAGE_SIZE).max(1);
            process.next_va += (pages + 1) * PAGE_SIZE;
            (process.vm, process.pt, GuestVirtAddr::new(va))
        };
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let cursor = self.next_user_page.entry(vm.0).or_insert(16);
        let ram_pages = self.hv.borrow().vm(vm).map_err(|_| Errno::Einval)?.ram_pages();
        let mut pt = pt_root;
        for i in 0..pages {
            if *cursor >= ram_pages {
                return Err(Errno::Enomem);
            }
            let gpa = GuestPhysAddr::new(*cursor * PAGE_SIZE);
            *cursor += 1;
            let mut hv = self.hv.borrow_mut();
            let mut space = hv.gpa_space(vm);
            pt.map(&mut space, va.add(i * PAGE_SIZE), gpa, Access::RW)
                .map_err(|_| Errno::Enomem)?;
        }
        // Persist the (possibly updated) root.
        self.process_mut(task)?.pt = pt;
        Ok(va)
    }

    /// Writes into process memory (simulating the application's own store).
    ///
    /// # Errors
    ///
    /// `EFAULT` for unmapped ranges.
    pub fn write_mem(&mut self, task: TaskId, va: GuestVirtAddr, bytes: &[u8]) -> Result<(), Errno> {
        let (vm, root) = {
            let p = self.process(task)?;
            (p.vm, p.pt.root())
        };
        self.hv
            .borrow_mut()
            .process_write(vm, root, va, bytes)
            .map_err(|_| Errno::Efault)
    }

    /// Reads process memory (the application's own load).
    ///
    /// # Errors
    ///
    /// `EFAULT` for unmapped ranges.
    pub fn read_mem(&mut self, task: TaskId, va: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        let (vm, root) = {
            let p = self.process(task)?;
            (p.vm, p.pt.root())
        };
        self.hv
            .borrow_mut()
            .process_read(vm, root, va, buf)
            .map_err(|_| Errno::Efault)
    }

    // ------------------------------------------------------------------
    // File operations (mode-dispatched)
    // ------------------------------------------------------------------

    fn host_device(&self, path: &str) -> Result<&AttachedDevice, Errno> {
        self.devices
            .iter()
            .find(|d| d.spec.path() == path)
            .ok_or(Errno::Enoent)
    }

    /// Opens a device file for `task` (read-write).
    ///
    /// # Errors
    ///
    /// `ENOENT`/`EBUSY`/driver errors.
    pub fn open(&mut self, task: TaskId, path: &str) -> Result<u64, Errno> {
        self.open_with(task, path, OpenFlags::RDWR)
    }

    /// Opens a device file with explicit flags.
    ///
    /// # Errors
    ///
    /// `ENOENT`/`EBUSY`/driver errors.
    pub fn open_with(
        &mut self,
        task: TaskId,
        path: &str,
        flags: OpenFlags,
    ) -> Result<u64, Errno> {
        self.charge_syscall();
        let guest_index = self.process(task)?.guest_index;
        let inner = match guest_index {
            None => {
                let (handle, _) = self.host_devfs.open(path, task, flags)?;
                let device = self.host_device(path)?;
                let ctx = OpenContext {
                    handle,
                    task,
                    flags,
                };
                let result = device.fileops().borrow_mut().open(ctx);
                if let Err(errno) = result {
                    let _ = self.host_devfs.close(handle);
                    return Err(errno);
                }
                FdInner::Host(handle)
            }
            Some(i) => {
                let frontend = self.frontends[i].clone();
                let fd = frontend.borrow_mut().open(task, path, flags)?;
                FdInner::Guest(fd)
            }
        };
        let process = self.process_mut(task)?;
        let fd = process.next_fd;
        process.next_fd += 1;
        process.fds.insert(fd, (inner, path.to_owned()));
        Ok(fd)
    }

    fn fd_of(&self, task: TaskId, fd: u64) -> Result<(FdInner, String), Errno> {
        self.process(task)?
            .fds
            .get(&fd)
            .cloned()
            .ok_or(Errno::Ebadf)
    }

    fn host_ctx(&self, task: TaskId, handle: FileHandleId) -> Result<OpenContext, Errno> {
        let open = self.host_devfs.resolve(handle)?;
        Ok(OpenContext {
            handle,
            task,
            flags: open.flags,
        })
    }

    fn direct_memops(&self, task: TaskId) -> Result<DirectMemOps, Errno> {
        let process = self.process(task)?;
        Ok(DirectMemOps {
            hv: self.hv.clone(),
            vm: process.vm,
            pt_root: process.pt.root(),
        })
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    pub fn close(&mut self, task: TaskId, fd: u64) -> Result<(), Errno> {
        self.charge_syscall();
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let ctx = self.host_ctx(task, handle)?;
                let device = self.host_device(&path)?;
                device.fileops().borrow_mut().release(ctx)?;
                self.host_devfs.close(handle)?;
            }
            FdInner::Guest(gfd) => {
                let i = self.process(task)?.guest_index.ok_or(Errno::Ebadf)?;
                self.frontends[i].borrow_mut().release(task, gfd)?;
            }
        }
        self.process_mut(task)?.fds.remove(&fd);
        Ok(())
    }

    /// `read(fd, buf, len)`.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn read(
        &mut self,
        task: TaskId,
        fd: u64,
        addr: GuestVirtAddr,
        len: u64,
    ) -> Result<u64, Errno> {
        self.charge_syscall();
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let ctx = self.host_ctx(task, handle)?;
                let mut mem = self.direct_memops(task)?;
                let device = self.host_device(&path)?;
                device
                    .fileops()
                    .borrow_mut()
                    .read(ctx, &mut mem, UserBuffer::new(addr, len))
            }
            FdInner::Guest(gfd) => {
                let p = self.process(task)?;
                let (i, pt) = (p.guest_index.ok_or(Errno::Ebadf)?, p.pt);
                self.frontends[i]
                    .borrow_mut()
                    .read(task, pt, gfd, addr, len)
            }
        }
    }

    /// `write(fd, buf, len)`.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn write(
        &mut self,
        task: TaskId,
        fd: u64,
        addr: GuestVirtAddr,
        len: u64,
    ) -> Result<u64, Errno> {
        self.charge_syscall();
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let ctx = self.host_ctx(task, handle)?;
                let mut mem = self.direct_memops(task)?;
                let device = self.host_device(&path)?;
                device
                    .fileops()
                    .borrow_mut()
                    .write(ctx, &mut mem, UserBuffer::new(addr, len))
            }
            FdInner::Guest(gfd) => {
                let p = self.process(task)?;
                let (i, pt) = (p.guest_index.ok_or(Errno::Ebadf)?, p.pt);
                self.frontends[i]
                    .borrow_mut()
                    .write(task, pt, gfd, addr, len)
            }
        }
    }

    /// `ioctl(fd, cmd, arg)`.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn ioctl(
        &mut self,
        task: TaskId,
        fd: u64,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        self.charge_syscall();
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let ctx = self.host_ctx(task, handle)?;
                let mut mem = self.direct_memops(task)?;
                let device = self.host_device(&path)?;
                device.fileops().borrow_mut().ioctl(ctx, &mut mem, cmd, arg)
            }
            FdInner::Guest(gfd) => {
                let p = self.process(task)?;
                let (i, pt) = (p.guest_index.ok_or(Errno::Ebadf)?, p.pt);
                self.frontends[i]
                    .borrow_mut()
                    .ioctl(task, pt, gfd, cmd, arg)
            }
        }
    }

    /// `mmap(fd, len, offset)`: the machine picks the process VA.
    ///
    /// # Errors
    ///
    /// Driver errors; `EINVAL` for zero-length maps.
    pub fn mmap(
        &mut self,
        task: TaskId,
        fd: u64,
        len: u64,
        offset: u64,
        access: Access,
    ) -> Result<GuestVirtAddr, Errno> {
        self.charge_syscall();
        if len == 0 {
            return Err(Errno::Einval);
        }
        let va = {
            let process = self.process_mut(task)?;
            let va = process.next_va;
            let pages = len.div_ceil(PAGE_SIZE);
            process.next_va += (pages + 1) * PAGE_SIZE;
            GuestVirtAddr::new(va)
        };
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let (vm, mut pt) = {
                    let p = self.process(task)?;
                    (p.vm, p.pt)
                };
                // The host kernel creates the intermediate levels, as the
                // guest kernel does under Paradice (§5.2).
                {
                    let mut hv = self.hv.borrow_mut();
                    let mut space = hv.gpa_space(vm);
                    for i in 0..len.div_ceil(PAGE_SIZE) {
                        pt.ensure_intermediate(&mut space, va.add(i * PAGE_SIZE))
                            .map_err(|_| Errno::Enomem)?;
                    }
                }
                self.process_mut(task)?.pt = pt;
                let ctx = self.host_ctx(task, handle)?;
                let mut mem = self.direct_memops(task)?;
                let device = self.host_device(&path)?;
                device.fileops().borrow_mut().mmap(
                    ctx,
                    &mut mem,
                    MmapRange {
                        va,
                        len,
                        offset,
                        access,
                    },
                )?;
            }
            FdInner::Guest(gfd) => {
                let p = self.process(task)?;
                let (i, pt, personality) = (
                    p.guest_index.ok_or(Errno::Ebadf)?,
                    p.pt,
                    self.guest_specs[p.guest_index.unwrap_or(0)].personality,
                );
                let frontend = self.frontends[i].clone();
                if personality.needs_mmap_hook() {
                    // The 12-LoC FreeBSD kernel hook (§5.1), invoked by the
                    // guest kernel on the process's behalf.
                    frontend.borrow_mut().freebsd_set_mmap_range(va, len);
                }
                frontend
                    .borrow_mut()
                    .mmap(task, pt, gfd, va, len, offset, access)?;
            }
        }
        Ok(va)
    }

    /// `munmap(va, len)` on a device mapping.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn munmap(
        &mut self,
        task: TaskId,
        fd: u64,
        va: GuestVirtAddr,
        len: u64,
    ) -> Result<(), Errno> {
        self.charge_syscall();
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let (vm, pt) = {
                    let p = self.process(task)?;
                    (p.vm, p.pt)
                };
                // Kernel clears the leaf entries first (§5.2)…
                {
                    let mut hv = self.hv.borrow_mut();
                    let mut space = hv.gpa_space(vm);
                    for i in 0..len.div_ceil(PAGE_SIZE) {
                        pt.unmap(&mut space, va.add(i * PAGE_SIZE))
                            .map_err(|_| Errno::Efault)?;
                    }
                }
                let ctx = self.host_ctx(task, handle)?;
                let mut mem = self.direct_memops(task)?;
                let device = self.host_device(&path)?;
                device.fileops().borrow_mut().munmap(ctx, &mut mem, va, len)
            }
            FdInner::Guest(gfd) => {
                let p = self.process(task)?;
                let (i, pt) = (p.guest_index.ok_or(Errno::Ebadf)?, p.pt);
                self.frontends[i]
                    .borrow_mut()
                    .munmap(task, pt, gfd, va, len)
            }
        }
    }

    /// A page fault in a lazily-populated device mapping: the kernel's
    /// fault handler routes it to the driver's `fault` file operation
    /// (§2.1), which installs exactly the faulting page.
    ///
    /// # Errors
    ///
    /// `EFAULT` outside any device mapping; driver errors otherwise.
    pub fn fault_page(&mut self, task: TaskId, fd: u64, va: GuestVirtAddr) -> Result<(), Errno> {
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                // The host kernel creates the intermediates for the faulting
                // page before asking the driver to fill the leaf.
                let (vm, mut pt) = {
                    let p = self.process(task)?;
                    (p.vm, p.pt)
                };
                {
                    let mut hv = self.hv.borrow_mut();
                    let mut space = hv.gpa_space(vm);
                    pt.ensure_intermediate(&mut space, va.page_base())
                        .map_err(|_| Errno::Enomem)?;
                }
                self.process_mut(task)?.pt = pt;
                let ctx = self.host_ctx(task, handle)?;
                let mut mem = self.direct_memops(task)?;
                let device = self.host_device(&path)?;
                device.fileops().borrow_mut().fault(ctx, &mut mem, va)
            }
            FdInner::Guest(gfd) => {
                let p = self.process(task)?;
                let (i, pt) = (p.guest_index.ok_or(Errno::Ebadf)?, p.pt);
                self.frontends[i].borrow_mut().fault(task, pt, gfd, va)
            }
        }
    }

    /// `poll(fd)`.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn poll(&mut self, task: TaskId, fd: u64) -> Result<PollEvents, Errno> {
        self.charge_syscall();
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let ctx = self.host_ctx(task, handle)?;
                let device = self.host_device(&path)?;
                let events = device.fileops().borrow_mut().poll(ctx)?;
                Ok(events)
            }
            FdInner::Guest(gfd) => {
                let i = self.process(task)?.guest_index.ok_or(Errno::Ebadf)?;
                self.frontends[i].borrow_mut().poll(task, gfd)
            }
        }
    }

    /// `fasync(fd, on)`.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn fasync(&mut self, task: TaskId, fd: u64, on: bool) -> Result<(), Errno> {
        self.charge_syscall();
        let (inner, path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(handle) => {
                let ctx = self.host_ctx(task, handle)?;
                let device = self.host_device(&path)?;
                device.fileops().borrow_mut().fasync(ctx, on)
            }
            FdInner::Guest(gfd) => {
                let i = self.process(task)?.guest_index.ok_or(Errno::Ebadf)?;
                self.frontends[i].borrow_mut().fasync(task, gfd, on)
            }
        }
    }

    // ------------------------------------------------------------------
    // Events, signals, sharing
    // ------------------------------------------------------------------

    /// Injects a mouse movement; routes `fasync` notifications per mode.
    pub fn mouse_move(&mut self, dx: i32, dy: i32) {
        self.inject_input("/dev/input/event0", EventKind::Relative, 0, dx);
        if dy != 0 {
            self.inject_input("/dev/input/event0", EventKind::Relative, 1, dy);
        }
    }

    /// Injects a key press on the keyboard.
    pub fn key_press(&mut self, code: u16) {
        self.inject_input("/dev/input/event1", EventKind::Key, code, 1);
    }

    fn inject_input(&mut self, path: &str, kind: EventKind, code: u16, value: i32) {
        let Some(device) = self.devices.iter().find(|d| d.spec.path() == path) else {
            return;
        };
        let DriverHandle::Input(driver) = &device.handle else {
            return;
        };
        let event = InputEvent {
            time_us: self.clock.now_ns() / 1_000,
            kind,
            code,
            value,
        };
        let signals = driver.borrow_mut().report_event(event);
        match (&self.backend, device.backend_id) {
            (Some(backend), Some(id)) => {
                backend.borrow_mut().deliver_signals(id, &signals);
            }
            _ => {
                // Host path: queue signals on the subscribing processes.
                for signal in signals {
                    if let Some(process) = self.processes.get_mut(&signal.task.0) {
                        // Host fds map 1:1 onto devfs handles; find the fd.
                        let fd = process
                            .fds
                            .iter()
                            .find(|(_, (inner, _))| {
                                matches!(inner, FdInner::Host(h) if *h == signal.handle)
                            })
                            .map(|(&fd, _)| fd);
                        if let Some(fd) = fd {
                            process.pending_events.push(fd);
                        }
                    }
                }
            }
        }
    }

    /// Blocks the process until an asynchronous notification arrives;
    /// returns the fd it was for. Charges the wakeup path (the §6.1.5
    /// scheduling latency: native wakeup plus, inside a VM, the
    /// virtualization scheduling penalty).
    pub fn wait_event(&mut self, task: TaskId) -> Option<u64> {
        let cost = {
            let hv = self.hv.borrow();
            let cost = hv.cost();
            cost.process_wakeup_ns
                + if self.mode == ExecMode::Native {
                    0
                } else {
                    cost.vm_sched_penalty_ns
                }
        };
        let guest_index = self.processes.get(&task.0)?.guest_index;
        match guest_index {
            None => {
                let process = self.processes.get_mut(&task.0)?;
                if process.pending_events.is_empty() {
                    return None;
                }
                let fd = process.pending_events.remove(0);
                self.clock.advance(cost);
                Some(fd)
            }
            Some(i) => {
                let notifications = self.frontends[i].borrow_mut().drain_notifications();
                let (sig_task, gfd) = notifications.into_iter().find(|(t, _)| *t == task)?;
                debug_assert_eq!(sig_task, task);
                // Translate the guest-frontend fd to the process fd.
                let process = self.processes.get(&task.0)?;
                let fd = process
                    .fds
                    .iter()
                    .find(|(_, (inner, _))| matches!(inner, FdInner::Guest(g) if *g == gfd))
                    .map(|(&fd, _)| fd)?;
                self.clock.advance(cost);
                Some(fd)
            }
        }
    }

    /// Switches the foreground virtual terminal to guest `index` (§5.1).
    pub fn switch_foreground(&mut self, index: usize) -> bool {
        match (&self.terminals, self.guest_vms.get(index)) {
            (Some(terminals), Some(&guest)) => terminals.borrow_mut().switch_to(guest),
            _ => false,
        }
    }

    /// Whether guest `index` holds the foreground (renders to the GPU).
    pub fn is_foreground(&self, index: usize) -> bool {
        match (&self.terminals, self.guest_vms.get(index)) {
            (Some(terminals), Some(&guest)) => terminals.borrow().is_foreground(guest),
            (None, _) => true, // no terminals: single tenant
            _ => false,
        }
    }

    /// Paces the caller to the next 60-Hz vertical blank — the paper's
    /// proposed *software VSync emulation* for data-isolated GPUs (§5.3).
    pub fn vblank_pace(&self) {
        let period = paradice_drivers::gpu::model::VSYNC_PERIOD_NS;
        let now = self.clock.now_ns();
        let next = now.div_ceil(period) * period;
        self.clock.advance_to(next.max(now + 1));
    }

    /// Restarts the driver VM after a crash (or preventively): the paper's
    /// §7.1 fault-isolation experiment — "we reboot the driver VM and
    /// resume", while guests keep running.
    ///
    /// The sequence models the reboot end to end:
    ///
    /// 1. **Contain** (idempotent if the frontend watchdog already did):
    ///    the VM is marked failed, every outstanding grant is revoked, and
    ///    page-fault fixups are zapped, so nothing the crashed VM left
    ///    behind can touch guest memory.
    /// 2. **Reset isolation state**: the VM's IOMMU domains are emptied and
    ///    their protected-region bookkeeping cleared, so data isolation can
    ///    be re-established from scratch (works with isolation *enabled*).
    /// 3. The virtual clock pays the reboot cost, then the failure mark is
    ///    lifted (recorded as a `driver_vm_recovered` trace event).
    /// 4. **Reboot**: every driver is re-instantiated exactly as at attach
    ///    time — the data-isolated GPU re-runs its protected-region setup,
    ///    the plain GPU re-allocates its interrupt status page.
    /// 5. Backend handle tables and wait queues reset; each frontend
    ///    invalidates its descriptors, clears stale channel slots, and
    ///    closes its circuit breaker. All open handles die (`EBADF`);
    ///    guests reopen and resume.
    ///
    /// # Errors
    ///
    /// `ENOTSUP` outside Paradice mode; hypervisor errors if the isolation
    /// state cannot be re-created.
    pub fn recover_driver_vm(&mut self) -> Result<(), MachineError> {
        let ExecMode::Paradice { data_isolation, .. } = self.mode else {
            return Err(MachineError::Errno(Errno::Enotsup));
        };
        // 1. Containment (a no-op when the watchdog got there first).
        let _ = self.hv.borrow_mut().mark_driver_vm_failed(self.driver_vm);
        // 2. Clean-slate isolation state for every domain the VM owns.
        self.hv.borrow_mut().reset_domains_of(self.driver_vm)?;
        // 3. The reboot takes (virtual) time; then the VM is trusted again.
        //    Re-instantiation below issues hypercalls that a failed VM is
        //    refused, so the mark must lift first.
        self.clock.advance(DRIVER_VM_REBOOT_NS);
        self.hv.borrow_mut().clear_driver_vm_failed(self.driver_vm);
        // 4. Re-instantiate the drivers in place: the backend's registered
        //    `Rc<RefCell<dyn FileOps>>` cells keep their identity, so the
        //    fresh driver objects serve the already-registered devfs paths.
        for device in &self.devices {
            match &device.handle {
                DriverHandle::Gpu(cell) => {
                    let (env, bar, vram, version) = {
                        let driver = cell.borrow();
                        let gpu = driver.gpu();
                        (
                            device.env.clone(),
                            gpu.bar_base(),
                            gpu.vram_bytes(),
                            driver.version(),
                        )
                    };
                    let mut gpu = RadeonGpu::new(env.clone(), bar, vram);
                    *cell.borrow_mut() = if data_isolation {
                        let isolation =
                            IsolationState::setup(&env, &gpu, &self.guest_vms, 64)
                                .map_err(MachineError::Errno)?;
                        RadeonDriver::new_isolated(env, gpu, version, isolation)
                    } else {
                        // Mirror attach: the rebooted driver allocates a
                        // fresh interrupt status ring in system memory.
                        let irq_page = env.alloc_kernel_page()?;
                        gpu.set_irq_status_page(irq_page);
                        RadeonDriver::new(env, gpu, version)
                    };
                }
                DriverHandle::IntelGpu(cell) => {
                    let (env, bar, vram) = {
                        let driver = cell.borrow();
                        let gpu = driver.gpu();
                        (device.env.clone(), gpu.bar_base(), gpu.vram_bytes())
                    };
                    let gpu = RadeonGpu::new(env.clone(), bar, vram);
                    *cell.borrow_mut() = I915Driver::new(env, gpu);
                }
                DriverHandle::Input(cell) => {
                    let name_is_mouse = device.spec == DeviceSpec::Mouse;
                    let env = device.env.clone();
                    *cell.borrow_mut() = if name_is_mouse {
                        EvdevDriver::usb_mouse(env)
                    } else {
                        EvdevDriver::usb_keyboard(env)
                    };
                }
                DriverHandle::Camera(cell) => {
                    *cell.borrow_mut() = UvcDriver::new(device.env.clone());
                }
                DriverHandle::Audio(cell) => {
                    *cell.borrow_mut() = PcmDriver::new(device.env.clone());
                }
                DriverHandle::Netmap(cell) => {
                    *cell.borrow_mut() = NetmapDriver::new(device.env.clone());
                }
            }
        }
        // 5. Flush CVD state on both sides of the wire.
        if let Some(backend) = &self.backend {
            backend.borrow_mut().reset_for_recovery();
        }
        for frontend in &self.frontends {
            frontend.borrow_mut().reset_after_recovery();
        }
        // All guest descriptors are now dangling; drop them so subsequent
        // use fails with EBADF, and reset frontends' handle maps by
        // clearing process fd tables pointing at guests.
        for process in self.processes.values_mut() {
            process
                .fds
                .retain(|_, (inner, _)| !matches!(inner, FdInner::Guest(_)));
        }
        Ok(())
    }

    /// Arms a fault plan on the backend: faults fire at dispatch and
    /// channel boundaries per the plan's triggers (§7.1 experiments).
    /// Returns `false` outside Paradice mode.
    ///
    /// Deprecated: prefer [`MachineBuilder::faults`]; this setter remains
    /// for harnesses that re-arm plans mid-run.
    pub fn arm_faults(&mut self, plan: Rc<RefCell<FaultPlan>>) -> bool {
        match &self.backend {
            Some(backend) => {
                backend.borrow_mut().arm_faults(plan);
                true
            }
            None => false,
        }
    }

    /// Whether the driver VM is currently marked failed (watchdog fired or
    /// containment was invoked); [`Machine::recover_driver_vm`] clears it.
    pub fn driver_vm_failed(&self) -> bool {
        self.hv.borrow().driver_vm_failed(self.driver_vm)
    }

    /// Overrides every frontend's per-operation watchdog deadline.
    pub fn set_op_deadline_ns(&mut self, deadline_ns: u64) {
        for frontend in &self.frontends {
            frontend.borrow_mut().set_op_deadline_ns(deadline_ns);
        }
    }

    /// Disables grant validation: the machine degenerates to the paper's
    /// *devirtualization* predecessor (Figure 1(b)), in which a compromised
    /// driver can reach arbitrary guest memory. Exists purely as the
    /// security ablation demonstrating why Paradice's strict runtime checks
    /// matter (§3.1: "this important flaw led us to the design of
    /// Paradice").
    pub fn enable_devirtualization_ablation(&mut self) {
        self.hv.borrow_mut().set_grant_validation(false);
    }

    /// Turns on paradice-trace: every forwarded file operation from now on
    /// records an `OpStart`/`Grants`/`MemOp`.../`OpEnd` span across the
    /// frontend, the wire, and the hypervisor's grant checks. Returns the
    /// shared [`Tracer`] whose event log accumulates the spans.
    ///
    /// Tracing is recording-only: it never advances the virtual clock, so
    /// traced runs keep the exact timing of untraced ones.
    ///
    /// Deprecated: prefer [`MachineBuilder::tracing`] and read the log via
    /// [`Machine::tracer`]; this setter remains for harnesses that switch
    /// tracing on mid-run.
    pub fn enable_tracing(&mut self) -> Tracer {
        let tracer = Tracer::enabled();
        self.hv.borrow_mut().set_tracer(tracer.clone());
        for frontend in &self.frontends {
            frontend.borrow_mut().set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer.clone());
        tracer
    }

    /// Enables the cross-layer fast path: the grant-declaration cache and
    /// pipelined ring on every frontend, plus vectored-hypercall dispatch
    /// in the backend. Semantics are unchanged — cached grant references
    /// are still validated per use, batches are all-or-nothing on a grant
    /// violation, and the watchdog/containment behaviour is identical.
    ///
    /// Deprecated: prefer [`MachineBuilder::fastpath`]; this setter remains
    /// for A/B harnesses that toggle the fast path mid-run.
    pub fn enable_fastpath(&mut self) {
        for frontend in &self.frontends {
            frontend.borrow_mut().set_fastpath(true);
        }
        if let Some(backend) = &self.backend {
            backend.borrow_mut().set_fastpath_batch(true);
        }
    }

    /// Total hypercalls the hypervisor has served (fast-path accounting).
    pub fn hypercall_count(&self) -> u64 {
        self.hv.borrow().hypercall_count()
    }

    /// Channel statistics of guest `index` (delivery/interrupt accounting).
    pub fn channel_stats(&self, guest_index: usize) -> Option<ChannelStats> {
        self.frontends
            .get(guest_index)
            .map(|f| f.borrow().channel_stats())
    }

    /// Posts an `ioctl` to the ring without waiting for its response
    /// (fast path). Results are collected by [`Machine::flush_pipeline`].
    ///
    /// # Errors
    ///
    /// Submission errors; per-op driver errors surface at flush. Host fds
    /// (native/assignment modes) have no forwarding channel to pipeline.
    pub fn ioctl_pipelined(
        &mut self,
        task: TaskId,
        fd: u64,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<(), Errno> {
        self.charge_syscall();
        let (inner, _path) = self.fd_of(task, fd)?;
        match inner {
            FdInner::Host(_) => Err(Errno::Einval),
            FdInner::Guest(gfd) => {
                let p = self.process(task)?;
                let (i, pt) = (p.guest_index.ok_or(Errno::Ebadf)?, p.pt);
                self.frontends[i]
                    .borrow_mut()
                    .ioctl_pipelined(task, pt, gfd, cmd, arg)
            }
        }
    }

    /// Completes `task`'s pipelined submissions, returning per-op results
    /// in submission order.
    ///
    /// # Errors
    ///
    /// Transport-level failure (containment has run).
    pub fn flush_pipeline(&mut self, task: TaskId) -> Result<Vec<Result<i64, Errno>>, Errno> {
        let p = self.process(task)?;
        let i = p.guest_index.ok_or(Errno::Ebadf)?;
        self.frontends[i].borrow_mut().flush_pipeline()
    }

    /// Drains a paused backend queue (test/diagnostic pass-through).
    pub fn resume_backend(&mut self, guest_index: usize) -> Vec<WireResponse> {
        match (&self.backend, self.guest_vms.get(guest_index)) {
            (Some(backend), Some(&guest)) => backend.borrow_mut().resume(guest),
            _ => Vec::new(),
        }
    }

    /// The configured queue cap (experiments).
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }
}
