//! The I/O virtualization solution space (paper Table 3).
//!
//! The paper positions Paradice against emulation, direct device
//! assignment, self-virtualization and class-specific paravirtualization on
//! four axes. This module encodes the matrix as data — with, for the rows
//! our repository actually implements (direct I/O, Paradice), the capability
//! bits *derived from the implementation* rather than asserted.

use std::fmt;

/// An I/O virtualization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Full device emulation (QEMU-style).
    Emulation,
    /// Direct device assignment.
    DirectIo,
    /// Hardware self-virtualization (SR-IOV, VGX).
    SelfVirtualization,
    /// Class-specific paravirtualization (virtio-net, Xen blkfront).
    ClassParavirtualization,
    /// Paradice: device-file-boundary paravirtualization.
    Paradice,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::Emulation => "Emulation",
            Strategy::DirectIo => "Direct I/O",
            Strategy::SelfVirtualization => "Self Virt.",
            Strategy::ClassParavirtualization => "Paravirt.",
            Strategy::Paradice => "Paradice",
        };
        f.write_str(name)
    }
}

/// Table 3's four capability axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Close-to-native performance.
    pub high_performance: bool,
    /// Low development effort per device class.
    pub low_dev_effort: bool,
    /// Multiple VMs can share one device ("limited" counts as true-ish; see
    /// [`Capabilities::sharing_note`]).
    pub device_sharing: bool,
    /// Works with legacy devices (no hardware virtualization support).
    pub legacy_devices: bool,
    /// Footnote for the sharing column.
    pub sharing_note: Option<&'static str>,
}

/// The Table 3 row for a strategy.
pub fn capabilities(strategy: Strategy) -> Capabilities {
    match strategy {
        Strategy::Emulation => Capabilities {
            high_performance: false,
            low_dev_effort: false,
            device_sharing: true,
            legacy_devices: true,
            sharing_note: None,
        },
        Strategy::DirectIo => Capabilities {
            high_performance: true,
            low_dev_effort: true,
            device_sharing: false, // one VM owns the device outright
            legacy_devices: true,
            sharing_note: None,
        },
        Strategy::SelfVirtualization => Capabilities {
            high_performance: true,
            low_dev_effort: true,
            device_sharing: true,
            legacy_devices: false, // needs virtualization hardware
            sharing_note: Some("limited by hardware VF count"),
        },
        Strategy::ClassParavirtualization => Capabilities {
            high_performance: true,
            low_dev_effort: false, // one driver pair per device class
            device_sharing: true,
            legacy_devices: true,
            sharing_note: None,
        },
        Strategy::Paradice => Capabilities {
            high_performance: true,
            low_dev_effort: true, // one CVD pair + tiny info modules
            device_sharing: true,
            legacy_devices: true,
            sharing_note: None,
        },
    }
}

/// All strategies in Table 3 row order.
pub const ALL_STRATEGIES: [Strategy; 5] = [
    Strategy::Emulation,
    Strategy::DirectIo,
    Strategy::SelfVirtualization,
    Strategy::ClassParavirtualization,
    Strategy::Paradice,
];

/// Renders Table 3 as aligned text.
pub fn render_table3() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<12} {:<14} {:<16} {:<14}\n",
        "", "High Perf.", "Low Effort", "Device Sharing", "Legacy Device"
    ));
    for strategy in ALL_STRATEGIES {
        let caps = capabilities(strategy);
        let yn = |b: bool| if b { "Yes" } else { "No" };
        let sharing = match (caps.device_sharing, caps.sharing_note) {
            (true, Some(_)) => "Yes (limited)".to_owned(),
            (share, _) => yn(share).to_owned(),
        };
        out.push_str(&format!(
            "{:<12} {:<12} {:<14} {:<16} {:<14}\n",
            strategy.to_string(),
            yn(caps.high_performance),
            yn(caps.low_dev_effort),
            sharing,
            yn(caps.legacy_devices),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paradice_is_the_only_all_yes_row() {
        // The paper's point: Paradice uniquely combines all four.
        for strategy in ALL_STRATEGIES {
            let caps = capabilities(strategy);
            let all_four = caps.high_performance
                && caps.low_dev_effort
                && caps.device_sharing
                && caps.legacy_devices
                && caps.sharing_note.is_none();
            assert_eq!(all_four, strategy == Strategy::Paradice, "{strategy}");
        }
    }

    #[test]
    fn direct_io_cannot_share() {
        assert!(!capabilities(Strategy::DirectIo).device_sharing);
    }

    #[test]
    fn table_renders_all_rows() {
        let table = render_table3();
        for strategy in ALL_STRATEGIES {
            assert!(table.contains(&strategy.to_string()));
        }
        assert!(table.contains("Yes (limited)"));
    }
}
