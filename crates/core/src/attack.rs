//! The attack harness: exercises every isolation mechanism with the attacks
//! the paper's design defends against (§4).
//!
//! The threat model: "a malicious guest VM can compromise the driver VM, but
//! not the hypervisor. Therefore … we assume that the driver VM is
//! controlled by a malicious guest VM and cannot be trusted" (§4.1). Each
//! attack here acts with the compromised driver VM's (or malicious guest's)
//! authority and reports what — if anything — stopped it. The isolation
//! integration tests assert that *every* attack is blocked and that the
//! audit log attributes the block to the right mechanism.

use paradice_devfs::Errno;
use paradice_hypervisor::audit::BlockedBy;
use paradice_hypervisor::hv::HvError;
use paradice_hypervisor::{GrantRef, MemOpGrant};
use paradice_mem::{DmaAddr, GuestPhysAddr, GuestVirtAddr, PAGE_SIZE};

use crate::machine::Machine;

/// The result of one attempted attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// A short name for reporting.
    pub name: &'static str,
    /// Whether the attack was stopped.
    pub blocked: bool,
    /// The mechanism the audit log credits, when blocked.
    pub blocked_by: Option<BlockedBy>,
    /// Human-readable detail.
    pub detail: String,
}

fn outcome(
    machine: &Machine,
    name: &'static str,
    result: Result<(), HvError>,
    expect: BlockedBy,
) -> AttackOutcome {
    match result {
        Ok(()) => AttackOutcome {
            name,
            blocked: false,
            blocked_by: None,
            detail: "attack SUCCEEDED — isolation hole".to_owned(),
        },
        Err(e) => {
            let attributed = machine.hv().borrow().audit().count_blocked_by(expect) > 0;
            AttackOutcome {
                name,
                blocked: true,
                blocked_by: attributed.then_some(expect),
                detail: format!("refused: {e}"),
            }
        }
    }
}

/// Attack 1 — the compromised driver VM asks the hypervisor to copy data
/// into a guest kernel address that was never granted ("asking the
/// hypervisor to copy data to some sensitive memory location inside a guest
/// VM kernel", §4.1).
pub fn ungranted_copy(machine: &mut Machine, victim_index: usize) -> AttackOutcome {
    let driver_vm = machine.driver_vm();
    let victim = machine.guest_vms()[victim_index];
    let bogus_grant = GrantRef(u32::MAX);
    let result = machine.hv().borrow_mut().hc_copy_to_guest(
        driver_vm,
        victim,
        GuestPhysAddr::new(0),
        GuestVirtAddr::new(0xc000_0000), // "kernel" address
        b"rootkit",
        bogus_grant,
    );
    outcome(machine, "ungranted-copy", result.map(|_| ()), BlockedBy::GrantCheck)
}

/// Attack 2 — a granted operation is replayed with inflated bounds: the
/// guest granted a 16-byte window, the driver VM asks for 4 KiB.
pub fn grant_overflow(machine: &mut Machine, victim_index: usize) -> AttackOutcome {
    let driver_vm = machine.driver_vm();
    let victim = machine.guest_vms()[victim_index];
    let grant = machine
        .hv()
        .borrow_mut()
        .declare_grants(
            victim,
            vec![MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(0x1_0000),
                len: 16,
            }],
        )
        .expect("declaring is the victim's own action");
    let result = machine.hv().borrow_mut().hc_copy_to_guest(
        driver_vm,
        victim,
        GuestPhysAddr::new(0),
        GuestVirtAddr::new(0x1_0000),
        &[0u8; 4096],
        grant,
    );
    let _ = machine.hv().borrow_mut().revoke_grant(victim, grant);
    outcome(machine, "grant-overflow", result.map(|_| ()), BlockedBy::GrantCheck)
}

/// Attack 3 — the compromised driver VM's CPU reads a protected-region page
/// directly (device data isolation, §4.2: the driver VM "does not have read
/// permission to the memory regions").
pub fn protected_region_read(machine: &mut Machine, gpu_path: &str) -> AttackOutcome {
    let Some(env) = machine.device_env(gpu_path) else {
        return AttackOutcome {
            name: "protected-region-read",
            blocked: false,
            blocked_by: None,
            detail: "no GPU attached".to_owned(),
        };
    };
    if !env.data_isolation() {
        return AttackOutcome {
            name: "protected-region-read",
            blocked: false,
            blocked_by: None,
            detail: "data isolation disabled: nothing to attack".to_owned(),
        };
    }
    // Find any page of guest 0's region: the region's GART page in VRAM is
    // always present; use a GTT pool page instead via the region manager.
    let driver_vm = machine.driver_vm();
    let guest = machine.guest_vms()[0];
    let domain = env.domain();
    let hv = machine.hv().clone();
    let region = hv
        .borrow()
        .region_of_guest(domain, guest)
        .expect("isolated GPU has regions");
    // Probe driver-VM pages until we hit one the EPT refuses: scan the top
    // of driver RAM where the pools were allocated.
    let ram_pages = hv.borrow().vm(driver_vm).expect("driver VM").ram_pages();
    let mut buf = [0u8; 8];
    for page in (ram_pages.saturating_sub(512)..ram_pages).rev() {
        let gpa = GuestPhysAddr::new(page * PAGE_SIZE);
        let result = hv.borrow_mut().vm_mem_read(driver_vm, gpa, &mut buf);
        if result.is_err() {
            return outcome(
                machine,
                "protected-region-read",
                result,
                BlockedBy::EptProtection,
            );
        }
    }
    let _ = region;
    AttackOutcome {
        name: "protected-region-read",
        blocked: false,
        blocked_by: None,
        detail: "no protected page rejected the read".to_owned(),
    }
}

/// Attack 4 — the compromised driver programs the *device* to DMA another
/// guest's region while a different region is active ("the malicious VM
/// cannot program the device to copy the buffer outside a memory region",
/// §4.2).
pub fn dma_cross_region(machine: &mut Machine, gpu_path: &str) -> AttackOutcome {
    let Some(env) = machine.device_env(gpu_path) else {
        return AttackOutcome {
            name: "dma-cross-region",
            blocked: false,
            blocked_by: None,
            detail: "no GPU attached".to_owned(),
        };
    };
    let hv = machine.hv().clone();
    let domain = env.domain();
    let guests = machine.guest_vms().to_vec();
    if guests.len() < 2 || !env.data_isolation() {
        return AttackOutcome {
            name: "dma-cross-region",
            blocked: false,
            blocked_by: None,
            detail: "needs two guests and data isolation".to_owned(),
        };
    }
    let driver_vm = machine.driver_vm();
    let r0 = hv.borrow().region_of_guest(domain, guests[0]).expect("region 0");
    let r1 = hv.borrow().region_of_guest(domain, guests[1]).expect("region 1");
    // Find a DMA address mapped for region 1: the iommu domain's pages.
    let victim_dma = {
        let hv_ref = hv.borrow();
        let vm = hv_ref.vm(driver_vm).expect("driver VM");
        let _ = vm;
        drop(hv_ref);
        // The region pools mirror driver-physical addresses; probe for one
        // accepted while r1 is active but not while r0 is.
        let mut found = None;
        hv.borrow_mut()
            .hc_switch_region(driver_vm, domain, Some(r1))
            .expect("switch to victim region");
        let ram_pages = hv.borrow().vm(driver_vm).expect("driver").ram_pages();
        let mut probe = [0u8; 1];
        for page in (ram_pages.saturating_sub(512)..ram_pages).rev() {
            let dma = DmaAddr::new(page * PAGE_SIZE);
            if hv.borrow_mut().device_dma_read(domain, dma, &mut probe).is_ok() {
                found = Some(dma);
                break;
            }
        }
        found
    };
    let Some(victim_dma) = victim_dma else {
        return AttackOutcome {
            name: "dma-cross-region",
            blocked: false,
            blocked_by: None,
            detail: "could not locate a victim page".to_owned(),
        };
    };
    // Switch to the attacker's region, then DMA the victim's page.
    hv.borrow_mut()
        .hc_switch_region(driver_vm, domain, Some(r0))
        .expect("switch to attacker region");
    let mut stolen = [0u8; 8];
    let result = hv.borrow_mut().device_dma_read(domain, victim_dma, &mut stolen);
    outcome(machine, "dma-cross-region", result, BlockedBy::IommuRegion)
}

/// Attack 5 — the compromised driver rewrites the GPU memory-controller
/// aperture registers to widen the device-memory window (§5.3(iii)).
pub fn mc_register_rewrite(machine: &mut Machine, gpu_path: &str) -> AttackOutcome {
    let Some(env) = machine.device_env(gpu_path) else {
        return AttackOutcome {
            name: "mc-register-rewrite",
            blocked: false,
            blocked_by: None,
            detail: "no GPU attached".to_owned(),
        };
    };
    let driver_vm = machine.driver_vm();
    let domain = env.domain();
    let result = machine.hv().borrow_mut().mc_write_direct(
        driver_vm,
        domain,
        paradice_hypervisor::hv::MC_APERTURE_HI,
        u64::MAX,
    );
    outcome(
        machine,
        "mc-register-rewrite",
        result,
        BlockedBy::ProtectedMmio,
    )
}

/// Attack 6 — a malicious guest floods its wait queue with file operations
/// (the DoS the 100-op cap prevents, §5.1). Returns the outcome plus how
/// many operations were accepted before the cap bit.
pub fn wait_queue_flood(
    machine: &mut Machine,
    guest_index: usize,
    attempts: usize,
) -> (AttackOutcome, usize) {
    let Some(backend) = machine.backend() else {
        return (
            AttackOutcome {
                name: "wait-queue-flood",
                blocked: false,
                blocked_by: None,
                detail: "not in Paradice mode".to_owned(),
            },
            0,
        );
    };
    let task = machine
        .spawn_process(Some(guest_index))
        .expect("spawn flooder");
    let fd = match machine.open(task, "/dev/input/event0") {
        Ok(fd) => fd,
        Err(e) => {
            return (
                AttackOutcome {
                    name: "wait-queue-flood",
                    blocked: false,
                    blocked_by: None,
                    detail: format!("no input device to flood: {e}"),
                },
                0,
            )
        }
    };
    // Stall the backend (a slow driver / scheduling gap), then flood.
    backend.borrow_mut().pause();
    let mut accepted = 0usize;
    let mut saw_edquot = false;
    for _ in 0..attempts {
        match machine.poll(task, fd) {
            // A paused backend queues the op without responding; the
            // flooder doesn't care about responses and keeps going.
            Ok(_) | Err(Errno::Eio) => accepted += 1,
            Err(Errno::Edquot) => {
                saw_edquot = true;
                break;
            }
            Err(_) => break,
        }
    }
    let blocked_by = (machine
        .hv()
        .borrow()
        .audit()
        .count_blocked_by(BlockedBy::WaitQueueCap)
        > 0)
    .then_some(BlockedBy::WaitQueueCap);
    let _ = machine.resume_backend(guest_index);
    (
        AttackOutcome {
            name: "wait-queue-flood",
            blocked: saw_edquot,
            blocked_by,
            detail: format!("{accepted} operations queued before the cap"),
        },
        accepted,
    )
}

/// Runs the full suite against a machine (two guests, isolated GPU, input
/// device expected) and returns every outcome.
pub fn run_all(machine: &mut Machine) -> Vec<AttackOutcome> {
    let mut outcomes = vec![
        ungranted_copy(machine, 0),
        grant_overflow(machine, 0),
        protected_region_read(machine, "/dev/dri/card0"),
        dma_cross_region(machine, "/dev/dri/card0"),
        mc_register_rewrite(machine, "/dev/dri/card0"),
    ];
    let (flood, _) = wait_queue_flood(machine, 0, 200);
    outcomes.push(flood);
    outcomes
}
