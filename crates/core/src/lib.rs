//! Paradice: I/O paravirtualization at the device file boundary — a
//! deterministic, full-stack reproduction of the ASPLOS 2014 system.
//!
//! The crate assembles the substrates ([`paradice_mem`],
//! [`paradice_devfs`], [`paradice_hypervisor`], [`paradice_analyzer`],
//! [`paradice_drivers`], [`paradice_cvd`]) into a *machine* you can run
//! workloads on in three execution modes:
//!
//! * **Native** — applications and drivers share one kernel (the paper's
//!   baseline);
//! * **Device assignment** — one VM owns the device outright (the paper's
//!   second baseline and Paradice's performance upper bound);
//! * **Paradice** — guest VMs drive the device through the CVD
//!   frontend/backend pair, with fault isolation always on and device data
//!   isolation optional.
//!
//! # Quickstart
//!
//! ```
//! use paradice::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::builder()
//!     .mode(ExecMode::Paradice {
//!         transport: TransportMode::Interrupts,
//!         data_isolation: false,
//!     })
//!     .guest(GuestSpec::linux())
//!     .device(DeviceSpec::gpu())
//!     .build()?;
//! let task = machine.spawn_process(Some(0))?;
//! let fd = machine.open(task, "/dev/dri/card0")?;
//! let arg = machine.alloc_buffer(task, 4096)?;
//! // RADEON_INFO request 1: VRAM size.
//! machine.write_mem(task, arg, &1u32.to_le_bytes())?;
//! machine.ioctl(task, fd, paradice::gpu_ioctl::RADEON_INFO, arg.raw())?;
//! # Ok(())
//! # }
//! ```

pub mod app;
pub mod attack;
pub mod compare;
pub mod machine;
pub mod os;
pub mod prelude;

pub use machine::{DeviceSpec, ExecMode, GuestSpec, Machine, MachineBuilder, MachineError};

/// Re-exported GPU ioctl numbers for application code.
pub mod gpu_ioctl {
    pub use paradice_drivers::gpu::driver::{
        gem_domain, info, opcode, GEM_CLOSE, RADEON_CS, RADEON_GEM_BUSY, RADEON_GEM_CREATE,
        RADEON_GEM_GET_TILING, RADEON_GEM_MMAP, RADEON_GEM_PREAD, RADEON_GEM_PWRITE,
        RADEON_GEM_SET_TILING, RADEON_GEM_VA, RADEON_GEM_WAIT_IDLE, RADEON_INFO,
        RADEON_SET_VSYNC,
    };
}

/// Re-exported camera ioctl numbers.
pub mod camera_ioctl {
    pub use paradice_drivers::camera::{
        VIDIOC_DQBUF, VIDIOC_QBUF, VIDIOC_QUERYBUF, VIDIOC_QUERYCAP, VIDIOC_REQBUFS,
        VIDIOC_S_FMT, VIDIOC_STREAMOFF, VIDIOC_STREAMON,
    };
}

/// Re-exported audio ioctl numbers.
pub mod audio_ioctl {
    pub use paradice_drivers::audio::{PCM_DROP, PCM_HW_PARAMS, PCM_PREPARE};
}

/// Re-exported netmap ioctl numbers.
pub mod netmap_ioctl {
    pub use paradice_drivers::netmap::{NIOCGINFO, NIOCREGIF, NIOCRXSYNC, NIOCTXSYNC};
}
