//! Userspace device libraries: the application side of the stack.
//!
//! Applications do not speak raw ioctls; they use libraries — "the Direct
//! Rendering Manager (DRM) libraries for graphics … usually available for
//! different Unix-like OSes" (paper §3.1). This module provides miniature
//! equivalents of libdrm ([`drm`]), libv4l ([`v4l`]), ALSA ([`pcm`]) and
//! the netmap API ([`netmap`]), all written against the [`Machine`] process
//! API — so the *same application code* runs natively, under device
//! assignment, and in a Paradice guest.

use paradice_devfs::ioc::IoctlCmd;
use paradice_devfs::{Errno, PollEvents};
use paradice_devfs::fileops::TaskId;
use paradice_mem::{Access, GuestVirtAddr, PAGE_SIZE};

use crate::machine::Machine;

/// Copies a fixed-size struct into process memory and returns the address
/// it was staged at.
fn stage(
    machine: &mut Machine,
    task: TaskId,
    va: GuestVirtAddr,
    bytes: &[u8],
) -> Result<(), Errno> {
    machine.write_mem(task, va, bytes)
}

/// A miniature libdrm.
pub mod drm {
    use super::*;
    use crate::gpu_ioctl::*;

    /// Chunk kind and opcode constants re-exported for IB construction.
    pub use paradice_drivers::gpu::driver::{chunk, IB_CMD_DWORDS};

    /// An open DRM device plus scratch memory for ioctl structs.
    #[derive(Debug, Clone, Copy)]
    pub struct DrmClient {
        /// The owning task.
        pub task: TaskId,
        /// The device descriptor.
        pub fd: u64,
        scratch: GuestVirtAddr,
        ib: GuestVirtAddr,
    }

    /// Scratch layout offsets.
    const ARGS_OFF: u64 = 0;
    const HEADER_OFF: u64 = 256;
    const DATA_OFF: u64 = 512;

    impl DrmClient {
        /// Opens `/dev/dri/card0` and allocates scratch buffers.
        ///
        /// # Errors
        ///
        /// Open or allocation failures.
        pub fn open(machine: &mut Machine, task: TaskId) -> Result<DrmClient, Errno> {
            let fd = machine.open(task, "/dev/dri/card0")?;
            let scratch = machine.alloc_buffer(task, 4096).map_err(|_| Errno::Enomem)?;
            let ib = machine.alloc_buffer(task, 16384).map_err(|_| Errno::Enomem)?;
            Ok(DrmClient {
                task,
                fd,
                scratch,
                ib,
            })
        }

        /// `RADEON_INFO`: queries a device attribute.
        ///
        /// # Errors
        ///
        /// `EINVAL` for unknown requests.
        pub fn info(&self, machine: &mut Machine, request: u32) -> Result<u64, Errno> {
            let mut req = [0u8; 16];
            req[0..4].copy_from_slice(&request.to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, RADEON_INFO, self.scratch.raw())?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            Ok(u64::from_le_bytes(out[8..16].try_into().expect("len 8")))
        }

        /// `GEM_CREATE`: allocates a buffer object.
        ///
        /// # Errors
        ///
        /// `ENOMEM` when VRAM/GTT is exhausted.
        pub fn gem_create(
            &self,
            machine: &mut Machine,
            size: u64,
            domain: u32,
        ) -> Result<u32, Errno> {
            self.gem_create_with_flags(machine, size, domain, 0)
        }

        /// `GEM_CREATE` with explicit flags (e.g.
        /// [`paradice_drivers::gpu::driver::GEM_CREATE_LAZY_MAP`]).
        ///
        /// # Errors
        ///
        /// `ENOMEM` when VRAM/GTT is exhausted.
        pub fn gem_create_with_flags(
            &self,
            machine: &mut Machine,
            size: u64,
            domain: u32,
            flags: u32,
        ) -> Result<u32, Errno> {
            let mut req = [0u8; 24];
            req[0..8].copy_from_slice(&size.to_le_bytes());
            req[8..12].copy_from_slice(&domain.to_le_bytes());
            req[12..16].copy_from_slice(&flags.to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, RADEON_GEM_CREATE, self.scratch.raw())?;
            let mut out = [0u8; 24];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            Ok(u32::from_le_bytes(out[16..20].try_into().expect("len 4")))
        }

        /// `GEM_MMAP` + `mmap`: maps a buffer object into the process.
        ///
        /// # Errors
        ///
        /// Driver/mapping failures.
        pub fn gem_map(
            &self,
            machine: &mut Machine,
            handle: u32,
            len: u64,
        ) -> Result<GuestVirtAddr, Errno> {
            let mut req = [0u8; 16];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, RADEON_GEM_MMAP, self.scratch.raw())?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            let offset = u64::from_le_bytes(out[8..16].try_into().expect("len 8"));
            machine.mmap(self.task, self.fd, len, offset, Access::RW)
        }

        /// `GEM_PWRITE`: uploads bytes already staged in process memory at
        /// `data_va` into a buffer object.
        ///
        /// # Errors
        ///
        /// Driver failures (`EPERM` for PREAD-style reads under isolation).
        pub fn gem_pwrite(
            &self,
            machine: &mut Machine,
            handle: u32,
            offset: u64,
            data_va: GuestVirtAddr,
            size: u64,
        ) -> Result<(), Errno> {
            let mut req = [0u8; 32];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            req[8..16].copy_from_slice(&offset.to_le_bytes());
            req[16..24].copy_from_slice(&size.to_le_bytes());
            req[24..32].copy_from_slice(&data_va.raw().to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, RADEON_GEM_PWRITE, self.scratch.raw())?;
            Ok(())
        }

        /// `GEM_PREAD`: reads a buffer object back into process memory.
        ///
        /// # Errors
        ///
        /// `EPERM` under data isolation (§4.2).
        pub fn gem_pread(
            &self,
            machine: &mut Machine,
            handle: u32,
            offset: u64,
            data_va: GuestVirtAddr,
            size: u64,
        ) -> Result<(), Errno> {
            let mut req = [0u8; 32];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            req[8..16].copy_from_slice(&offset.to_le_bytes());
            req[16..24].copy_from_slice(&size.to_le_bytes());
            req[24..32].copy_from_slice(&data_va.raw().to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, RADEON_GEM_PREAD, self.scratch.raw())?;
            Ok(())
        }

        /// Submits one IB of raw command dwords via `CS`; returns the fence.
        ///
        /// # Errors
        ///
        /// Malformed IBs (`EINVAL`) or isolation refusals.
        pub fn submit_ib(&self, machine: &mut Machine, dwords: &[u32]) -> Result<u32, Errno> {
            let mut payload = Vec::with_capacity(dwords.len() * 4);
            for d in dwords {
                payload.extend_from_slice(&d.to_le_bytes());
            }
            stage(machine, self.task, self.ib, &payload)?;
            let mut header = [0u8; 16];
            header[0..8].copy_from_slice(&self.ib.raw().to_le_bytes());
            header[8..12].copy_from_slice(&(dwords.len() as u32).to_le_bytes());
            header[12..16].copy_from_slice(&chunk::IB.to_le_bytes());
            stage(
                machine,
                self.task,
                self.scratch.add(HEADER_OFF),
                &header,
            )?;
            let mut args = [0u8; 16];
            args[0..8]
                .copy_from_slice(&self.scratch.add(HEADER_OFF).raw().to_le_bytes());
            args[8..12].copy_from_slice(&1u32.to_le_bytes());
            stage(machine, self.task, self.scratch.add(ARGS_OFF), &args)?;
            machine.ioctl(
                self.task,
                self.fd,
                RADEON_CS,
                self.scratch.add(ARGS_OFF).raw(),
            )?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch.add(ARGS_OFF), &mut out)?;
            Ok(u32::from_le_bytes(out[12..16].try_into().expect("len 4")))
        }

        /// Submits a render command (`cost_us` of GPU time onto `target`).
        ///
        /// # Errors
        ///
        /// As [`DrmClient::submit_ib`].
        pub fn submit_render(
            &self,
            machine: &mut Machine,
            cost_us: u32,
            target: u32,
        ) -> Result<u32, Errno> {
            self.submit_ib(machine, &[opcode::RENDER, cost_us, target, 0, 0, 0])
        }

        /// Submits a GEMM dispatch of the given order.
        ///
        /// # Errors
        ///
        /// As [`DrmClient::submit_ib`].
        pub fn submit_compute(&self, machine: &mut Machine, order: u32) -> Result<u32, Errno> {
            self.submit_ib(machine, &[opcode::COMPUTE, order, 0, 0, 0, 0])
        }

        /// `GEM_WAIT_IDLE`: blocks until the GPU drains.
        ///
        /// # Errors
        ///
        /// Unknown handles.
        pub fn wait_idle(&self, machine: &mut Machine, handle: u32) -> Result<(), Errno> {
            let mut req = [0u8; 8];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            stage(machine, self.task, self.scratch.add(DATA_OFF), &req)?;
            machine.ioctl(
                self.task,
                self.fd,
                RADEON_GEM_WAIT_IDLE,
                self.scratch.add(DATA_OFF).raw(),
            )?;
            Ok(())
        }

        /// `GEM_CLOSE`: frees a buffer object.
        ///
        /// # Errors
        ///
        /// Unknown handles.
        pub fn gem_close(&self, machine: &mut Machine, handle: u32) -> Result<(), Errno> {
            let mut req = [0u8; 8];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            stage(machine, self.task, self.scratch.add(DATA_OFF), &req)?;
            machine.ioctl(
                self.task,
                self.fd,
                GEM_CLOSE,
                self.scratch.add(DATA_OFF).raw(),
            )?;
            Ok(())
        }
    }
}

/// A miniature libdrm for the Intel GPU (different make, same CVD).
pub mod i915 {
    use super::*;
    pub use paradice_drivers::gpu::i915::{batch_op, param};
    use paradice_drivers::gpu::i915::{
        I915_GEM_CREATE, I915_GEM_EXECBUFFER2, I915_GEM_MMAP_GTT, I915_GEM_PWRITE,
        I915_GEM_WAIT, I915_GETPARAM,
    };

    /// An open i915 device plus scratch memory.
    #[derive(Debug, Clone, Copy)]
    pub struct IntelClient {
        /// The owning task.
        pub task: TaskId,
        /// The device descriptor.
        pub fd: u64,
        scratch: GuestVirtAddr,
        batch: GuestVirtAddr,
    }

    impl IntelClient {
        /// Opens `/dev/dri/card1`.
        ///
        /// # Errors
        ///
        /// Open or allocation failures.
        pub fn open(machine: &mut Machine, task: TaskId) -> Result<IntelClient, Errno> {
            let fd = machine.open(task, "/dev/dri/card1")?;
            let scratch = machine.alloc_buffer(task, 4096).map_err(|_| Errno::Enomem)?;
            let batch = machine.alloc_buffer(task, 8192).map_err(|_| Errno::Enomem)?;
            Ok(IntelClient {
                task,
                fd,
                scratch,
                batch,
            })
        }

        /// `GETPARAM`.
        ///
        /// # Errors
        ///
        /// `EINVAL` for unknown parameters.
        pub fn getparam(&self, machine: &mut Machine, code: u32) -> Result<u64, Errno> {
            let mut req = [0u8; 16];
            req[0..4].copy_from_slice(&code.to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, I915_GETPARAM, self.scratch.raw())?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            Ok(u64::from_le_bytes(out[8..16].try_into().expect("len 8")))
        }

        /// `GEM_CREATE`.
        ///
        /// # Errors
        ///
        /// `ENOMEM` when the aperture is exhausted.
        pub fn gem_create(&self, machine: &mut Machine, size: u64) -> Result<u32, Errno> {
            let mut req = [0u8; 16];
            req[0..8].copy_from_slice(&size.to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, I915_GEM_CREATE, self.scratch.raw())?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            Ok(u32::from_le_bytes(out[8..12].try_into().expect("len 4")))
        }

        /// `GEM_PWRITE` of bytes staged at `data_va`.
        ///
        /// # Errors
        ///
        /// Driver failures.
        pub fn gem_pwrite(
            &self,
            machine: &mut Machine,
            handle: u32,
            offset: u64,
            data_va: GuestVirtAddr,
            size: u64,
        ) -> Result<(), Errno> {
            let mut req = [0u8; 32];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            req[8..16].copy_from_slice(&offset.to_le_bytes());
            req[16..24].copy_from_slice(&size.to_le_bytes());
            req[24..32].copy_from_slice(&data_va.raw().to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, I915_GEM_PWRITE, self.scratch.raw())?;
            Ok(())
        }

        /// `GEM_MMAP_GTT` + `mmap`.
        ///
        /// # Errors
        ///
        /// Driver/mapping failures.
        pub fn gem_map(
            &self,
            machine: &mut Machine,
            handle: u32,
            len: u64,
        ) -> Result<GuestVirtAddr, Errno> {
            let mut req = [0u8; 16];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, I915_GEM_MMAP_GTT, self.scratch.raw())?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            let offset = u64::from_le_bytes(out[8..16].try_into().expect("len 8"));
            machine.mmap(self.task, self.fd, len, offset, Access::RW)
        }

        /// `EXECBUFFER2`: submits one render batch over `targets`.
        ///
        /// # Errors
        ///
        /// Malformed batches or unknown handles.
        pub fn exec_render(
            &self,
            machine: &mut Machine,
            cost_us: u32,
            target: u32,
        ) -> Result<i64, Errno> {
            // Exec-object list: one entry.
            let mut object = [0u8; 16];
            object[0..4].copy_from_slice(&target.to_le_bytes());
            stage(machine, self.task, self.batch, &object)?;
            // Batch: one RENDER command at batch+256.
            let dwords = [batch_op::RENDER, cost_us, target, 0, 0, 0];
            let mut payload = Vec::new();
            for d in dwords {
                payload.extend_from_slice(&d.to_le_bytes());
            }
            stage(machine, self.task, self.batch.add(256), &payload)?;
            let mut req = [0u8; 24];
            req[0..8].copy_from_slice(&self.batch.raw().to_le_bytes());
            req[8..12].copy_from_slice(&1u32.to_le_bytes());
            req[12..16].copy_from_slice(&(dwords.len() as u32).to_le_bytes());
            req[16..24].copy_from_slice(&self.batch.add(256).raw().to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, I915_GEM_EXECBUFFER2, self.scratch.raw())
        }

        /// `GEM_WAIT`: blocks until the engine drains.
        ///
        /// # Errors
        ///
        /// Unknown handles.
        pub fn wait(&self, machine: &mut Machine, handle: u32) -> Result<(), Errno> {
            let mut req = [0u8; 16];
            req[0..4].copy_from_slice(&handle.to_le_bytes());
            stage(machine, self.task, self.scratch, &req)?;
            machine.ioctl(self.task, self.fd, I915_GEM_WAIT, self.scratch.raw())?;
            Ok(())
        }
    }
}

/// A miniature libv4l.
pub mod v4l {
    use super::*;
    use crate::camera_ioctl::*;

    /// An open camera plus its streaming state.
    #[derive(Debug)]
    pub struct CameraClient {
        /// The owning task.
        pub task: TaskId,
        /// The device descriptor.
        pub fd: u64,
        scratch: GuestVirtAddr,
        /// Mapped frame buffers: `(va, length)` per buffer index.
        pub buffers: Vec<(GuestVirtAddr, u64)>,
    }

    impl CameraClient {
        /// Opens `/dev/video0`.
        ///
        /// # Errors
        ///
        /// `EBUSY` if another process holds the camera.
        pub fn open(machine: &mut Machine, task: TaskId) -> Result<CameraClient, Errno> {
            let fd = machine.open(task, "/dev/video0")?;
            let scratch = machine.alloc_buffer(task, 4096).map_err(|_| Errno::Enomem)?;
            Ok(CameraClient {
                task,
                fd,
                scratch,
                buffers: Vec::new(),
            })
        }

        /// Negotiates an MJPG format; returns the image size.
        ///
        /// # Errors
        ///
        /// `EINVAL` for unsupported resolutions.
        pub fn set_format(
            &mut self,
            machine: &mut Machine,
            width: u32,
            height: u32,
        ) -> Result<u32, Errno> {
            let mut fmt = [0u8; 16];
            fmt[0..4].copy_from_slice(&width.to_le_bytes());
            fmt[4..8].copy_from_slice(&height.to_le_bytes());
            stage(machine, self.task, self.scratch, &fmt)?;
            machine.ioctl(self.task, self.fd, VIDIOC_S_FMT, self.scratch.raw())?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            Ok(u32::from_le_bytes(out[12..16].try_into().expect("len 4")))
        }

        /// Requests and `mmap`s `count` frame buffers.
        ///
        /// # Errors
        ///
        /// Allocation or mapping failures.
        pub fn setup_buffers(&mut self, machine: &mut Machine, count: u32) -> Result<(), Errno> {
            machine.write_mem(self.task, self.scratch, &count.to_le_bytes())?;
            machine.ioctl(self.task, self.fd, VIDIOC_REQBUFS, self.scratch.raw())?;
            let mut raw = [0u8; 4];
            machine.read_mem(self.task, self.scratch, &mut raw)?;
            let granted = u32::from_le_bytes(raw);
            self.buffers.clear();
            for index in 0..granted {
                let mut req = [0u8; 16];
                req[0..4].copy_from_slice(&index.to_le_bytes());
                stage(machine, self.task, self.scratch, &req)?;
                machine.ioctl(self.task, self.fd, VIDIOC_QUERYBUF, self.scratch.raw())?;
                let mut out = [0u8; 16];
                machine.read_mem(self.task, self.scratch, &mut out)?;
                let length =
                    u64::from(u32::from_le_bytes(out[4..8].try_into().expect("len 4")));
                let offset = u64::from_le_bytes(out[8..16].try_into().expect("len 8"));
                let va = machine.mmap(self.task, self.fd, length, offset, Access::RW)?;
                self.buffers.push((va, length));
            }
            Ok(())
        }

        /// Queues buffer `index` for capture.
        ///
        /// # Errors
        ///
        /// `EINVAL` for bad indices.
        pub fn qbuf(&self, machine: &mut Machine, index: u32) -> Result<(), Errno> {
            machine.write_mem(self.task, self.scratch, &index.to_le_bytes())?;
            machine.ioctl(self.task, self.fd, VIDIOC_QBUF, self.scratch.raw())?;
            Ok(())
        }

        /// Dequeues the next filled buffer; returns `(index, bytesused)`.
        ///
        /// # Errors
        ///
        /// `EINVAL` if not streaming or nothing is queued.
        pub fn dqbuf(&self, machine: &mut Machine) -> Result<(u32, u32), Errno> {
            machine.ioctl(self.task, self.fd, VIDIOC_DQBUF, self.scratch.raw())?;
            let mut out = [0u8; 16];
            machine.read_mem(self.task, self.scratch, &mut out)?;
            Ok((
                u32::from_le_bytes(out[0..4].try_into().expect("len 4")),
                u32::from_le_bytes(out[4..8].try_into().expect("len 4")),
            ))
        }

        /// Starts streaming.
        ///
        /// # Errors
        ///
        /// `EINVAL` without buffers.
        pub fn stream_on(&self, machine: &mut Machine) -> Result<(), Errno> {
            machine.ioctl(self.task, self.fd, VIDIOC_STREAMON, 0)?;
            Ok(())
        }

        /// Stops streaming.
        ///
        /// # Errors
        ///
        /// Driver failures.
        pub fn stream_off(&self, machine: &mut Machine) -> Result<(), Errno> {
            machine.ioctl(self.task, self.fd, VIDIOC_STREAMOFF, 0)?;
            Ok(())
        }
    }
}

/// A miniature ALSA.
pub mod pcm {
    use super::*;
    use crate::audio_ioctl::*;

    /// An open PCM playback stream.
    #[derive(Debug, Clone, Copy)]
    pub struct AudioClient {
        /// The owning task.
        pub task: TaskId,
        /// The device descriptor.
        pub fd: u64,
        scratch: GuestVirtAddr,
        sample_buf: GuestVirtAddr,
    }

    impl AudioClient {
        /// Opens the speaker and stages a 4-KiB sample buffer.
        ///
        /// # Errors
        ///
        /// Open failures.
        pub fn open(machine: &mut Machine, task: TaskId) -> Result<AudioClient, Errno> {
            let fd = machine.open(task, "/dev/snd/pcmC0D0p")?;
            let scratch = machine.alloc_buffer(task, 64).map_err(|_| Errno::Enomem)?;
            let sample_buf = machine
                .alloc_buffer(task, 4096)
                .map_err(|_| Errno::Enomem)?;
            Ok(AudioClient {
                task,
                fd,
                scratch,
                sample_buf,
            })
        }

        /// Negotiates `rate`/`channels`/`bits` and prepares the stream.
        ///
        /// # Errors
        ///
        /// `EINVAL` for unsupported parameters.
        pub fn configure(
            &self,
            machine: &mut Machine,
            rate: u32,
            channels: u32,
            bits: u32,
        ) -> Result<(), Errno> {
            let mut params = [0u8; 12];
            params[0..4].copy_from_slice(&rate.to_le_bytes());
            params[4..8].copy_from_slice(&channels.to_le_bytes());
            params[8..12].copy_from_slice(&bits.to_le_bytes());
            stage(machine, self.task, self.scratch, &params)?;
            machine.ioctl(self.task, self.fd, PCM_HW_PARAMS, self.scratch.raw())?;
            machine.ioctl(self.task, self.fd, PCM_PREPARE, 0)?;
            Ok(())
        }

        /// Plays `total_bytes` of audio in 4-KiB writes; returns the virtual
        /// time consumed.
        ///
        /// # Errors
        ///
        /// `EIO` if the stream is unprepared.
        pub fn play(&self, machine: &mut Machine, total_bytes: u64) -> Result<u64, Errno> {
            let start = machine.now_ns();
            let mut sent = 0u64;
            while sent < total_bytes {
                let chunk = 4096.min(total_bytes - sent);
                let n = machine.write(self.task, self.fd, self.sample_buf, chunk)?;
                sent += n;
            }
            Ok(machine.now_ns() - start)
        }
    }
}

/// A miniature netmap API.
pub mod netmap {
    use super::*;
    use crate::netmap_ioctl::*;
    pub use paradice_drivers::netmap::{line_rate_pps, wire_ns, BUF_SIZE, NUM_SLOTS};

    const RING_HEAD_OFF: u64 = 0;
    const RING_TAIL_OFF: u64 = 4;
    const RING_SLOTS_OFF: u64 = 16;

    /// A netmap-mode interface handle: mapped TX ring + buffers.
    #[derive(Debug)]
    pub struct NetmapClient {
        /// The owning task.
        pub task: TaskId,
        /// The device descriptor.
        pub fd: u64,
        /// Mapped TX ring page.
        pub tx_ring: GuestVirtAddr,
        /// Mapped TX buffer pages (one per slot).
        pub tx_bufs: GuestVirtAddr,
        head: u32,
    }

    impl NetmapClient {
        /// Opens `/dev/netmap`, registers the interface, and maps the TX
        /// ring plus all TX buffers.
        ///
        /// # Errors
        ///
        /// `EBUSY` if another process holds the NIC.
        pub fn open(machine: &mut Machine, task: TaskId) -> Result<NetmapClient, Errno> {
            let fd = machine.open(task, "/dev/netmap")?;
            let scratch = machine.alloc_buffer(task, 64).map_err(|_| Errno::Enomem)?;
            machine.ioctl(task, fd, NIOCREGIF, scratch.raw())?;
            let _ = scratch;
            let tx_ring = machine.mmap(task, fd, PAGE_SIZE, 0, Access::RW)?;
            let tx_bufs = machine.mmap(
                task,
                fd,
                u64::from(NUM_SLOTS) * PAGE_SIZE,
                2 * PAGE_SIZE,
                Access::RW,
            )?;
            Ok(NetmapClient {
                task,
                fd,
                tx_ring,
                tx_bufs,
                head: 0,
            })
        }

        /// Reads the ring's consumer tail through the mapping.
        ///
        /// # Errors
        ///
        /// Mapping faults.
        pub fn tail(&self, machine: &mut Machine) -> Result<u32, Errno> {
            let mut raw = [0u8; 4];
            machine.read_mem(self.task, self.tx_ring.add(RING_TAIL_OFF), &mut raw)?;
            Ok(u32::from_le_bytes(raw))
        }

        /// Free TX slots from the application's view.
        ///
        /// # Errors
        ///
        /// Mapping faults.
        pub fn free_slots(&self, machine: &mut Machine) -> Result<u32, Errno> {
            let tail = self.tail(machine)?;
            let used = (self.head + NUM_SLOTS - tail) % NUM_SLOTS;
            Ok(NUM_SLOTS - 1 - used)
        }

        /// Writes `count` packets of `len` bytes into consecutive slots and
        /// advances the ring head — all through the shared mapping, exactly
        /// like netmap's pkt-gen. Charges `per_pkt_cpu_ns` of application
        /// CPU time per packet.
        ///
        /// # Errors
        ///
        /// Mapping faults.
        pub fn produce(
            &mut self,
            machine: &mut Machine,
            count: u32,
            len: u32,
            per_pkt_cpu_ns: u64,
        ) -> Result<(), Errno> {
            for i in 0..count {
                let slot = (self.head + i) % NUM_SLOTS;
                let slot_off = RING_SLOTS_OFF + u64::from(slot) * 8;
                machine.write_mem(
                    self.task,
                    self.tx_ring.add(slot_off),
                    &len.to_le_bytes(),
                )?;
                // First bytes of the frame: a sequence stamp.
                machine.write_mem(
                    self.task,
                    self.tx_bufs.add(u64::from(slot) * PAGE_SIZE),
                    &u64::from(self.head + i).to_le_bytes(),
                )?;
            }
            self.head = (self.head + count) % NUM_SLOTS;
            machine.write_mem(
                self.task,
                self.tx_ring.add(RING_HEAD_OFF),
                &self.head.to_le_bytes(),
            )?;
            machine.clock().advance(u64::from(count) * per_pkt_cpu_ns);
            Ok(())
        }

        /// `NIOCTXSYNC`: tells the kernel to pick up new packets.
        ///
        /// # Errors
        ///
        /// Ring validation failures.
        pub fn txsync(&self, machine: &mut Machine) -> Result<(), Errno> {
            machine.ioctl(self.task, self.fd, NIOCTXSYNC, 0)?;
            Ok(())
        }

        /// `poll`: blocks until the ring has space (and syncs).
        ///
        /// # Errors
        ///
        /// Driver failures.
        pub fn poll(&self, machine: &mut Machine) -> Result<PollEvents, Errno> {
            machine.poll(self.task, self.fd)
        }
    }
}

/// Issues a no-op-ish file operation (a `poll`) and returns its round-trip
/// virtual time — the §6.1.1 overhead microbenchmark.
pub fn op_round_trip_ns(machine: &mut Machine, task: TaskId, fd: u64) -> Result<u64, Errno> {
    let start = machine.now_ns();
    machine.poll(task, fd)?;
    Ok(machine.now_ns() - start)
}

/// Convenience: an ioctl round trip with a staged struct.
pub fn ioctl_round_trip_ns(
    machine: &mut Machine,
    task: TaskId,
    fd: u64,
    cmd: IoctlCmd,
    arg: u64,
) -> Result<u64, Errno> {
    let start = machine.now_ns();
    machine.ioctl(task, fd, cmd, arg)?;
    Ok(machine.now_ns() - start)
}
