//! OS personalities and cross-version compatibility.
//!
//! "The device file interface is compatible across various Unix-like OSes;
//! therefore Paradice can support guest VMs running different versions of
//! Unix-like OSes in one physical machine, all sharing the same driver VM"
//! (paper §3.2.2). The machinery lives in the CVD frontend
//! ([`OsPersonality`]); this module adds the compatibility *analysis* the
//! paper reports: which file operations each kernel knows, and how small the
//! delta is between versions (the famous "14 LoC").

pub use paradice_cvd::frontend::OsPersonality;
use paradice_devfs::fileops::FileOpKind;

/// The file operations device drivers actually use (paper §2.1): these must
/// exist with compatible semantics in every supported kernel.
pub const DRIVER_CRITICAL_OPS: [FileOpKind; 8] = [
    FileOpKind::Open,
    FileOpKind::Release,
    FileOpKind::Read,
    FileOpKind::Write,
    FileOpKind::Ioctl,
    FileOpKind::Mmap,
    FileOpKind::Poll,
    FileOpKind::Fasync,
];

/// The op-list delta between two kernels: what the CVD's per-kernel
/// operation table needs added or removed (§5.1's 14-LoC update).
pub fn op_list_delta(from: OsPersonality, to: OsPersonality) -> (Vec<FileOpKind>, Vec<FileOpKind>) {
    let old = from.supported_ops();
    let new = to.supported_ops();
    let added = new
        .iter()
        .copied()
        .filter(|op| !old.contains(op))
        .collect();
    let removed = old
        .iter()
        .copied()
        .filter(|op| !new.contains(op))
        .collect();
    (added, removed)
}

/// Checks that a personality supports everything drivers require — the
/// §3.2.2 compatibility claim, as an executable assertion.
pub fn supports_driver_critical_ops(personality: OsPersonality) -> bool {
    let ops = personality.supported_ops();
    DRIVER_CRITICAL_OPS.iter().all(|op| ops.contains(op))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_personality_supports_the_critical_ops() {
        for personality in [
            OsPersonality::LINUX_2_6_35,
            OsPersonality::LINUX_3_2_0,
            OsPersonality::FreeBsd,
        ] {
            assert!(
                supports_driver_critical_ops(personality),
                "{personality:?} must support the driver-critical ops"
            );
        }
    }

    #[test]
    fn linux_version_delta_is_small() {
        // §5.1: supporting a new Linux version is a tiny op-list update.
        let (added, removed) =
            op_list_delta(OsPersonality::LINUX_2_6_35, OsPersonality::LINUX_3_2_0);
        assert_eq!(added, vec![FileOpKind::Fallocate]);
        assert!(removed.is_empty());
    }

    #[test]
    fn freebsd_needs_the_mmap_hook() {
        assert!(OsPersonality::FreeBsd.needs_mmap_hook());
        assert!(!OsPersonality::LINUX_3_2_0.needs_mmap_hook());
    }
}
