//! One-stop imports for examples and application code.
//!
//! Also the home of the unified [`MemOps`] story: every way a driver can
//! touch process memory — [`BufferMemOps`] (flat buffer, unit tests),
//! [`DirectMemOps`] (native/assignment, straight through the hypervisor),
//! [`HypercallMemOps`] (Paradice, grant-checked hypercalls) — implements
//! the one trait, so driver code is oblivious to which world it runs in.
//!
//! Likewise the unified execution story: one [`Engine`] seam over the
//! deterministic virtual substrate ([`SimClock`], the correctness oracle)
//! and the wall-clock substrate ([`WallClock`], real threads on the
//! atomic ring). Pick one with [`MachineBuilder::engine`] or drive the
//! engines directly via [`VirtualEngine`] / [`WallEngine`].

pub use crate::machine::{
    DeviceSpec, DirectMemOps, ExecMode, GuestSpec, Machine, MachineBuilder, MachineError,
    OsPersonality,
};
pub use paradice_cvd::proto::CvdChannel;
pub use paradice_cvd::HypercallMemOps;
pub use paradice_devfs::fileops::{OpenFlags, PollEvents, TaskId};
pub use paradice_devfs::ioc::{io, ior, iow, iowr, IoctlCmd};
pub use paradice_devfs::memops::{BufferMemOps, MemOps};
pub use paradice_devfs::Errno;
pub use paradice_cvd::{
    run_workload, CvdEngine, DeviceService, ExecRun, VirtualEngine, WallEngine, WorkloadOp,
};
pub use paradice_drivers::gpu::driver::DriverVersion;
pub use paradice_hypervisor::{
    Clock, ClockSource, CostModel, Engine, EngineError, EngineKind, SimClock, TransportMode,
    WallClock,
};
pub use paradice_mem::{Access, GuestVirtAddr, PAGE_SIZE};
pub use paradice_trace::{parse_jsonl, TraceEvent, Tracer};
