//! One-stop imports for examples and application code.
//!
//! Also the home of the unified [`MemOps`] story: every way a driver can
//! touch process memory — [`BufferMemOps`] (flat buffer, unit tests),
//! [`DirectMemOps`] (native/assignment, straight through the hypervisor),
//! [`HypercallMemOps`] (Paradice, grant-checked hypercalls) — implements
//! the one trait, so driver code is oblivious to which world it runs in.

pub use crate::machine::{
    DeviceSpec, DirectMemOps, ExecMode, GuestSpec, Machine, MachineBuilder, MachineError,
    OsPersonality,
};
pub use paradice_cvd::proto::CvdChannel;
pub use paradice_cvd::HypercallMemOps;
pub use paradice_devfs::fileops::{OpenFlags, PollEvents, TaskId};
pub use paradice_devfs::ioc::{io, ior, iow, iowr, IoctlCmd};
pub use paradice_devfs::memops::{BufferMemOps, MemOps};
pub use paradice_devfs::Errno;
pub use paradice_drivers::gpu::driver::DriverVersion;
pub use paradice_hypervisor::{CostModel, TransportMode};
pub use paradice_mem::{Access, GuestVirtAddr, PAGE_SIZE};
pub use paradice_trace::{parse_jsonl, TraceEvent, Tracer};
