//! One-stop imports for examples and application code.

pub use crate::machine::{
    DeviceSpec, ExecMode, GuestSpec, Machine, MachineBuilder, MachineError, OsPersonality,
};
pub use paradice_devfs::fileops::{OpenFlags, PollEvents, TaskId};
pub use paradice_devfs::ioc::{io, ior, iow, iowr, IoctlCmd};
pub use paradice_devfs::Errno;
pub use paradice_drivers::gpu::driver::DriverVersion;
pub use paradice_hypervisor::{CostModel, TransportMode};
pub use paradice_mem::{Access, GuestVirtAddr, PAGE_SIZE};
