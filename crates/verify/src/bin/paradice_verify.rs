//! `paradice-verify` — prove the isolation core, or exit nonzero with a
//! replayable counterexample.
//!
//! ```text
//! paradice-verify --all                    # prove every property
//! paradice-verify --prop ring-depth8       # one property
//! paradice-verify --all --json             # machine-readable report
//! paradice-verify --all --mutant cache-evict-inflight
//!                                          # seeded-bug run: MUST exit 1
//! paradice-verify --all --emit-fixtures tests/fixtures/verify
//!                                          # write counterexample fixtures
//! paradice-verify --list                   # properties and mutants
//! ```
//!
//! Exit codes: `0` everything proved, `1` at least one property disproved,
//! `2` usage error.

use std::process::ExitCode;

use paradice_verify::report::{to_json, Mutant, PropertyReport};
use paradice_verify::{run_property, PROPERTIES};

struct Options {
    props: Vec<String>,
    json: bool,
    mutant: Option<Mutant>,
    emit_fixtures: Option<String>,
}

fn usage(error: &str) -> ExitCode {
    eprintln!("paradice-verify: {error}");
    eprintln!(
        "usage: paradice-verify (--all | --prop NAME)... [--json] [--mutant NAME] \
         [--emit-fixtures DIR] | --list"
    );
    ExitCode::from(2)
}

fn list() {
    println!("properties:");
    for name in PROPERTIES {
        println!("  {name}");
    }
    println!("mutants (each must be disproved):");
    for mutant in Mutant::ALL {
        println!("  {}", mutant.name());
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut props = Vec::new();
    let mut json = false;
    let mut mutant = None;
    let mut emit_fixtures = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => return Ok(None),
            "--all" => props.extend(PROPERTIES.iter().map(|p| (*p).to_owned())),
            "--prop" => {
                let name = iter.next().ok_or("--prop needs a property name")?;
                if !PROPERTIES.contains(&name.as_str()) {
                    return Err(format!("unknown property {name:?} (see --list)"));
                }
                props.push(name.clone());
            }
            "--json" => json = true,
            "--mutant" => {
                let name = iter.next().ok_or("--mutant needs a mutant name")?;
                mutant = Some(
                    Mutant::from_name(name)
                        .ok_or_else(|| format!("unknown mutant {name:?} (see --list)"))?,
                );
            }
            "--emit-fixtures" => {
                let dir = iter.next().ok_or("--emit-fixtures needs a directory")?;
                emit_fixtures = Some(dir.clone());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if props.is_empty() {
        return Err("nothing to do: pass --all or --prop NAME".to_owned());
    }
    Ok(Some(Options {
        props,
        json,
        mutant,
        emit_fixtures,
    }))
}

fn print_human(reports: &[PropertyReport], mutant: Option<Mutant>) {
    if let Some(mutant) = mutant {
        println!(
            "== seeded mutant {} active: every PROVED line below is a checker blind spot ==",
            mutant.name()
        );
    }
    let width = reports.iter().map(|r| r.name.len()).max().unwrap_or(0);
    for report in reports {
        let verdict = if report.proved { "PROVED   " } else { "DISPROVED" };
        println!(
            "{verdict} {:width$}  states={:<8} checks={:<8} {:>5} ms",
            report.name, report.states, report.transitions, report.duration_ms,
        );
        for finding in &report.findings {
            println!("          {}", finding.render());
        }
        if let Some(fixture) = &report.counterexample {
            for line in fixture.render().lines() {
                println!("          | {line}");
            }
        }
    }
    let proved = reports.iter().filter(|r| r.proved).count();
    println!(
        "{proved}/{} properties proved in {} ms total",
        reports.len(),
        reports.iter().map(|r| r.duration_ms).sum::<u128>(),
    );
}

fn emit_fixtures(dir: &str, reports: &[PropertyReport]) -> Result<usize, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    let mut written = 0;
    for fixture in reports.iter().filter_map(|r| r.counterexample.as_ref()) {
        let path = format!("{dir}/{}", fixture.file_name());
        std::fs::write(&path, fixture.render()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
        written += 1;
    }
    Ok(written)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            list();
            return ExitCode::SUCCESS;
        }
        Err(error) => return usage(&error),
    };
    let mut reports = Vec::new();
    for name in &options.props {
        reports.push(run_property(name, options.mutant).expect("validated property name"));
    }
    if options.json {
        println!("{}", to_json(&reports, options.mutant));
    } else {
        print_human(&reports, options.mutant);
    }
    if let Some(dir) = &options.emit_fixtures {
        match emit_fixtures(dir, &reports) {
            Ok(written) => eprintln!("{written} fixture(s) written to {dir}"),
            Err(error) => return usage(&error),
        }
    }
    if reports.iter().all(|r| r.proved) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
