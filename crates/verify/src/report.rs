//! Property reports, seeded mutants, and the `--json` rendering.

use paradice_analyzer::lint::Diagnostic;

use crate::fixture::Fixture;

/// A seeded bug the checker must be able to disprove — the checker's own
/// regression suite. `paradice-verify --mutant NAME` perturbs the named
/// model (or swaps in a known-bad implementation) and must exit nonzero;
/// a mutant run that proves everything means the checker went blind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// Ring admission window admits `depth + 1` outstanding slots.
    RingWindowOffByOne,
    /// Grant coverage model requires `end < grant_end` (strict) — the
    /// exact-fit request at the grant boundary flips verdict.
    GrantCoverOffByOne,
    /// Cache eviction revokes the displaced ref even while it is attached
    /// to an in-flight pipelined op (the pre-fix frontend behavior).
    CacheEvictInflight,
    /// Containment/recovery paths skip the cache purge, leaving stale refs
    /// observable after the driver VM's grant table died.
    CacheSkipPurge,
    /// `set_fastpath(false)` purges-with-revoke without draining the
    /// pipeline first (the pre-fix frontend behavior).
    FastpathOffNoDrain,
    /// The wire-request decoder re-reads the path length word after
    /// validating it (the classic TOCTOU the WP001 lint exists for).
    CodecDoubleRead,
    /// The decode IR's layout constants drift from the real decoder.
    CodecIrDrift,
    /// Grant enforcement accepts every memory operation — the backend
    /// that "forgets" the grant hypercall check. The adversarial
    /// containment sweep must catch the first moved buffer.
    GrantBypass,
    /// The atomic ring's slot-sequence publication store downgraded
    /// `Release → Relaxed`: the payload store may drain after it, and a
    /// consumer that passes the gate reads a torn slot.
    AringPublishRelaxed,
    /// The consumer's slot-sequence gate load downgraded
    /// `Acquire → Relaxed`: the payload read behind the gate may be
    /// hoisted before it and satisfied with stale data.
    AringConsumeNoAcquire,
    /// The doorbell consumer checks the bell *before* announcing itself
    /// parked instead of after: a ring landing between the check and the
    /// announcement is missed and the consumer sleeps on published work.
    DoorbellCheckBeforePublish,
    /// The sharded grant table's writer reclaims retired snapshots
    /// without waiting for `in_flight == 0`: a reader between its gate
    /// enter and its scan dereferences freed memory.
    ShardRetireUnfenced,
}

impl Mutant {
    /// Every seeded mutant, for `--list` and the check.sh gate.
    pub const ALL: [Mutant; 12] = [
        Mutant::RingWindowOffByOne,
        Mutant::GrantCoverOffByOne,
        Mutant::CacheEvictInflight,
        Mutant::CacheSkipPurge,
        Mutant::FastpathOffNoDrain,
        Mutant::CodecDoubleRead,
        Mutant::CodecIrDrift,
        Mutant::GrantBypass,
        Mutant::AringPublishRelaxed,
        Mutant::AringConsumeNoAcquire,
        Mutant::DoorbellCheckBeforePublish,
        Mutant::ShardRetireUnfenced,
    ];

    /// The CLI/fixture name.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::RingWindowOffByOne => "ring-window-off-by-one",
            Mutant::GrantCoverOffByOne => "grant-cover-off-by-one",
            Mutant::CacheEvictInflight => "cache-evict-inflight",
            Mutant::CacheSkipPurge => "cache-skip-purge",
            Mutant::FastpathOffNoDrain => "fastpath-off-no-drain",
            Mutant::CodecDoubleRead => "codec-double-read",
            Mutant::CodecIrDrift => "codec-ir-drift",
            Mutant::GrantBypass => "grant-bypass",
            Mutant::AringPublishRelaxed => "aring-publish-relaxed",
            Mutant::AringConsumeNoAcquire => "aring-consume-no-acquire",
            Mutant::DoorbellCheckBeforePublish => "doorbell-check-before-publish",
            Mutant::ShardRetireUnfenced => "shard-retire-unfenced",
        }
    }

    /// Parses a CLI/fixture name.
    pub fn from_name(name: &str) -> Option<Mutant> {
        Mutant::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// The outcome of checking one property.
#[derive(Debug)]
pub struct PropertyReport {
    /// Stable property name (`--prop` argument).
    pub name: &'static str,
    /// One-line statement of what was checked.
    pub description: &'static str,
    /// Distinct states (transition systems) or cases (enumerations)
    /// examined.
    pub states: usize,
    /// Transitions taken or sub-checks performed.
    pub transitions: usize,
    /// Whether the property held on the *entire* explored space within its
    /// documented bounds.
    pub proved: bool,
    /// `VP00x` findings when disproved (empty when proved).
    pub findings: Vec<Diagnostic>,
    /// The replayable counterexample when disproved.
    pub counterexample: Option<Fixture>,
    /// Wall-clock milliseconds, filled by the runner.
    pub duration_ms: u128,
}

impl PropertyReport {
    /// A proved report with the given exploration stats.
    pub fn proved(
        name: &'static str,
        description: &'static str,
        states: usize,
        transitions: usize,
    ) -> PropertyReport {
        PropertyReport {
            name,
            description,
            states,
            transitions,
            proved: true,
            findings: Vec::new(),
            counterexample: None,
            duration_ms: 0,
        }
    }

    /// A disproved report carrying findings and the counterexample.
    pub fn disproved(
        name: &'static str,
        description: &'static str,
        states: usize,
        transitions: usize,
        findings: Vec<Diagnostic>,
        counterexample: Option<Fixture>,
    ) -> PropertyReport {
        PropertyReport {
            name,
            description,
            states,
            transitions,
            proved: false,
            findings,
            counterexample,
            duration_ms: 0,
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the `--json` report: per-property stats plus the overall verdict.
pub fn to_json(reports: &[PropertyReport], mutant: Option<Mutant>) -> String {
    let mut out = String::from("{\"properties\":[");
    for (index, report) in reports.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let findings = report
            .findings
            .iter()
            .map(Diagnostic::to_json)
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"description\":\"{}\",\"proved\":{},\
             \"states\":{},\"transitions\":{},\"duration_ms\":{},\"findings\":[{}]}}",
            json_escape(report.name),
            json_escape(report.description),
            report.proved,
            report.states,
            report.transitions,
            report.duration_ms,
            findings,
        ));
    }
    let mutant = match mutant {
        Some(m) => format!("\"{}\"", m.name()),
        None => "null".to_owned(),
    };
    out.push_str(&format!(
        "],\"mutant\":{},\"proved_all\":{}}}",
        mutant,
        reports.iter().all(|r| r.proved),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutant_names_roundtrip() {
        for mutant in Mutant::ALL {
            assert_eq!(Mutant::from_name(mutant.name()), Some(mutant));
        }
        assert_eq!(Mutant::from_name("no-such-mutant"), None);
    }

    #[test]
    fn json_shape_is_wellformed_enough() {
        let reports = vec![
            PropertyReport::proved("ring-depth1", "ring window at depth 1", 10, 20),
            PropertyReport::disproved(
                "grant-soundness",
                "grant coverage",
                5,
                6,
                Vec::new(),
                None,
            ),
        ];
        let json = to_json(&reports, Some(Mutant::GrantCoverOffByOne));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"proved_all\":false"));
        assert!(json.contains("\"mutant\":\"grant-cover-off-by-one\""));
        assert!(json.contains("\"states\":10"));
        let clean = to_json(&reports[..1], None);
        assert!(clean.contains("\"proved_all\":true"));
        assert!(clean.contains("\"mutant\":null"));
    }
}
