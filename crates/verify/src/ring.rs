//! Ring-index properties: window discipline, FIFO slot identity, and
//! doorbell edges — checked by bounded exhaustive exploration of the *real*
//! [`RingIndex`] kernel against a shadow queue.
//!
//! The pipelined channel (PR 5) trusts `RingIndex` for one thing: a slot
//! handed out by `try_push` is never aliased with an outstanding slot, a
//! slot handed back by `try_pop` is exactly the oldest committed one, the
//! number of outstanding slots never exceeds the ring depth, and the
//! doorbell fires on every empty→non-empty edge (doorbell coalescing must
//! not lose wakeups). The model here is the obvious one — a FIFO queue of
//! handed-out slot numbers — and the checker runs every push/pop sequence
//! up to a bounded length against both, from a zero seed *and* from a seed
//! a few steps below `u32::MAX` so the head/tail counters wrap mid-trace.
//!
//! Because the counters are monotonic `u32`s, the state space is unbounded
//! and the proof is a *bounded unrolling* (every sequence of ≤ `2·depth+8`
//! steps); the wrap seed makes the bound meaningful across the only
//! discontinuity the arithmetic has. DESIGN.md §11 records the bound.

use paradice_analyzer::dataflow::reach::{explore, Bounds, TransitionSystem};
use paradice_analyzer::lint::{DiagCode, Diagnostic};
use paradice_hypervisor::{RingIndex, RING_CAPACITY};

use crate::fixture::Fixture;
use crate::report::{Mutant, PropertyReport};

/// One explored ring configuration: the real kernel plus the shadow queue.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RingState {
    idx: RingIndex,
    /// Slots handed out by `try_push`, FIFO; the model the kernel must
    /// agree with.
    outstanding: Vec<u32>,
    /// Set when a step did something unsound; violating states are sinks.
    error: Option<String>,
}

/// The ring model: declared depth plus the (possibly mutated) depth passed
/// to the kernel.
pub struct RingModel {
    depth: u32,
    /// Depth handed to `try_push`. [`Mutant::RingWindowOffByOne`] passes
    /// `depth + 1`, admitting one more outstanding slot than declared.
    push_depth: u32,
    seeds: Vec<u32>,
}

impl RingModel {
    /// A model for `depth`, optionally perturbed by `mutant`.
    pub fn new(depth: u32, mutant: Option<Mutant>) -> RingModel {
        let push_depth = if mutant == Some(Mutant::RingWindowOffByOne) {
            depth + 1
        } else {
            depth
        };
        RingModel {
            depth,
            push_depth,
            seeds: vec![0, u32::MAX - 5],
        }
    }

    /// Applies one labelled step. Returns `None` when the step is a no-op
    /// from this state (refused push/pop with nothing wrong).
    fn step(&self, state: &RingState, label: &str) -> Result<Option<RingState>, String> {
        let mut next = state.clone();
        match label {
            "push" => {
                let room = next.outstanding.len() < self.depth as usize;
                let expect_doorbell = next.idx.is_empty();
                match next.idx.try_push(self.push_depth) {
                    Some(grant) => {
                        if !room {
                            next.error = Some(format!(
                                "push admitted past the window: {} outstanding at depth {}",
                                state.outstanding.len(),
                                self.depth,
                            ));
                        } else if grant.doorbell != expect_doorbell {
                            next.error = Some(format!(
                                "doorbell {} on a {} ring (empty→non-empty edge lost or \
                                 spurious wakeup)",
                                grant.doorbell,
                                if expect_doorbell { "sleeping" } else { "busy" },
                            ));
                        } else if next.outstanding.contains(&grant.slot) {
                            next.error = Some(format!(
                                "push aliased outstanding slot {}",
                                grant.slot
                            ));
                        } else if grant.slot >= RING_CAPACITY {
                            next.error =
                                Some(format!("slot {} outside the shared page", grant.slot));
                        } else {
                            next.outstanding.push(grant.slot);
                        }
                    }
                    None => {
                        if room {
                            next.error = Some(format!(
                                "push refused with room: {} outstanding at depth {}",
                                state.outstanding.len(),
                                self.depth,
                            ));
                        } else {
                            return Ok(None); // correctly refused, no new state
                        }
                    }
                }
            }
            "pop" => match next.idx.try_pop() {
                Some(slot) => {
                    if next.outstanding.is_empty() {
                        next.error = Some(format!(
                            "pop handed out uncommitted slot {slot} from an empty ring"
                        ));
                    } else if next.outstanding[0] != slot {
                        next.error = Some(format!(
                            "pop broke FIFO: got slot {slot}, oldest committed is {}",
                            next.outstanding[0],
                        ));
                    } else {
                        next.outstanding.remove(0);
                    }
                }
                None => {
                    if next.outstanding.is_empty() {
                        return Ok(None); // correctly refused
                    }
                    next.error = Some(format!(
                        "pop refused with {} committed entries",
                        next.outstanding.len()
                    ));
                }
            },
            other => return Err(format!("unknown ring event {other:?}")),
        }
        // The kernel's own length must track the shadow queue (checked even
        // on error states so the counterexample carries the full picture).
        if next.error.is_none() && next.idx.len() as usize != next.outstanding.len() {
            next.error = Some(format!(
                "kernel len {} != shadow len {}",
                next.idx.len(),
                next.outstanding.len(),
            ));
        }
        Ok(Some(next))
    }
}

impl TransitionSystem for RingModel {
    type State = RingState;

    fn initial(&self) -> Vec<RingState> {
        self.seeds
            .iter()
            .map(|&seed| RingState {
                idx: RingIndex::new_at(seed),
                outstanding: Vec::new(),
                error: None,
            })
            .collect()
    }

    fn successors(&self, state: &RingState) -> Vec<(String, RingState)> {
        if state.error.is_some() {
            return Vec::new(); // violations are sinks
        }
        ["push", "pop"]
            .iter()
            .filter_map(|label| {
                self.step(state, label)
                    .expect("known label")
                    .map(|next| ((*label).to_owned(), next))
            })
            .collect()
    }

    fn invariant(&self, state: &RingState) -> Result<(), String> {
        match &state.error {
            Some(error) => Err(error.clone()),
            None => Ok(()),
        }
    }
}

fn check_depth(
    name: &'static str,
    description: &'static str,
    depth: u32,
    mutant: Option<Mutant>,
) -> PropertyReport {
    let model = RingModel::new(depth, mutant);
    let bounds = Bounds {
        max_states: 1_000_000,
        // Bounded unrolling: enough steps to fill, drain, and refill the
        // window twice, from both seeds (the wrap seed crosses u32::MAX
        // within this horizon).
        max_depth: (2 * depth + 8) as usize,
    };
    let run = explore(&model, bounds);
    match run.violation {
        None => PropertyReport::proved(name, description, run.states_visited, run.transitions),
        Some(violation) => {
            // Which seed the trace started from: replay from each and see
            // which one reaches the violating state.
            let seed = model
                .seeds
                .iter()
                .copied()
                .find(|&seed| {
                    replay_trace(&model, seed, &violation.trace).is_err()
                })
                .unwrap_or(0);
            let finding = Diagnostic::new(
                DiagCode::Vp002,
                "ring-index",
                None,
                format!(
                    "{} (depth {}, seed {}, after {:?})",
                    violation.reason, depth, seed, violation.trace
                ),
            );
            let mut fixture =
                Fixture::new(name, mutant.map(Mutant::name), &violation.reason);
            fixture.push_data("depth", depth.to_string());
            fixture.push_data("seed", seed.to_string());
            fixture.trace = violation.trace;
            PropertyReport::disproved(
                name,
                description,
                run.states_visited,
                run.transitions,
                vec![finding],
                Some(fixture),
            )
        }
    }
}

fn replay_trace(model: &RingModel, seed: u32, trace: &[String]) -> Result<(), String> {
    let mut state = RingState {
        idx: RingIndex::new_at(seed),
        outstanding: Vec::new(),
        error: None,
    };
    for label in trace {
        match model.step(&state, label)? {
            Some(next) => state = next,
            None => continue, // refused no-op step; trace tolerant
        }
        if let Some(error) = &state.error {
            return Err(error.clone());
        }
    }
    Ok(())
}

/// `ring-depth1`: the paper's single bounded slot — push/pop strictly
/// alternate, one slot, doorbell on every push.
pub fn check_depth1(mutant: Option<Mutant>) -> PropertyReport {
    check_depth(
        "ring-depth1",
        "depth-1 ring: single-slot alternation, exact doorbells, FIFO identity \
         (bounded unrolling, zero and wrap seeds)",
        1,
        mutant,
    )
}

/// `ring-depth8`: the fast-path pipeline depth — window of 8, wrap-around
/// slot reuse only after completion, doorbell only on the empty edge.
pub fn check_depth8(mutant: Option<Mutant>) -> PropertyReport {
    check_depth(
        "ring-depth8",
        "depth-8 ring: window discipline, no aliasing across wrap, doorbell only on \
         empty→non-empty (bounded unrolling, zero and wrap seeds)",
        8,
        mutant,
    )
}

/// Replays a ring fixture (`seed=`, `depth=`, `trace=` lines) against the
/// real kernel.
///
/// # Errors
///
/// `Err(reason)` when the trace violates the invariants under `mutant`.
pub fn replay(fixture: &Fixture, mutant: Option<Mutant>) -> Result<(), String> {
    let depth: u32 = fixture
        .value("depth")
        .ok_or("missing depth= line")?
        .parse()
        .map_err(|_| "bad depth")?;
    let seed: u32 = fixture
        .value("seed")
        .ok_or("missing seed= line")?
        .parse()
        .map_err(|_| "bad seed")?;
    let model = RingModel::new(depth, mutant);
    replay_trace(&model, seed, &fixture.trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_depths_prove_on_the_real_kernel() {
        let d1 = check_depth1(None);
        assert!(d1.proved, "{:?}", d1.findings);
        let d8 = check_depth8(None);
        assert!(d8.proved, "{:?}", d8.findings);
        // The exploration actually covered wrap territory: two seeds, many
        // states.
        assert!(d8.states > 100);
    }

    #[test]
    fn off_by_one_mutant_is_caught_at_both_depths() {
        for report in [
            check_depth1(Some(Mutant::RingWindowOffByOne)),
            check_depth8(Some(Mutant::RingWindowOffByOne)),
        ] {
            assert!(!report.proved);
            let fixture = report.counterexample.expect("fixture emitted");
            assert!(replay(&fixture, None).is_ok(), "must hold on real kernel");
            assert!(
                replay(&fixture, Some(Mutant::RingWindowOffByOne)).is_err(),
                "must still fail under the mutant"
            );
        }
    }

    #[test]
    fn counterexample_trace_is_minimal_for_depth1() {
        let report = check_depth1(Some(Mutant::RingWindowOffByOne));
        let fixture = report.counterexample.expect("fixture");
        // Depth 1 with an off-by-one window: push, push is the shortest
        // refutation and BFS must find exactly it.
        assert_eq!(fixture.trace, vec!["push", "push"]);
    }
}
