//! Counterexample fixtures: deterministic, replayable records of disproofs.
//!
//! When the checker disproves a property it does not just print the
//! violation — it emits a *fixture*: a small text file that pins the exact
//! counterexample (event trace, grant/request pair, or wire bytes) so the
//! scenario can be replayed against the real kernels forever after. The
//! committed fixtures under `tests/fixtures/verify/` were all produced by
//! seeded mutants (`paradice-verify --mutant …`): each must replay *clean*
//! on the real code and *violated* under its recorded mutant — a regression
//! test in both directions (the bug stays fixed, the checker stays able to
//! see it).
//!
//! The format is deliberately line-oriented and dependency-free:
//!
//! ```text
//! # paradice-verify counterexample
//! property=cache-revocation
//! mutant=cache-evict-inflight
//! reason=in-flight ref 0 is not live
//! seed=0
//! trace=op shape=0
//! trace=op shape=1
//! ```
//!
//! `property=`, `reason=` are required; `mutant=` names the seeded bug that
//! produced the trace; every other `key=value` line is property-specific
//! payload (`trace=` event labels for the transition-system models,
//! `decl=`/`request=` for grants, `bytes=` hex for the codec).

use std::fmt::Write as _;

/// One parsed (or to-be-rendered) counterexample fixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fixture {
    /// The property the counterexample disproves.
    pub property: String,
    /// The seeded mutant that produced it, if any (`None` = found live).
    pub mutant: Option<String>,
    /// What the invariant said.
    pub reason: String,
    /// Ordered event labels (transition-system properties).
    pub trace: Vec<String>,
    /// Property-specific `key=value` payload lines, in file order
    /// (`decl`, `request`, `bytes`, `seed`, `depth`, …).
    pub data: Vec<(String, String)>,
}

impl Fixture {
    /// Starts a fixture for `property`.
    pub fn new(property: &str, mutant: Option<&str>, reason: &str) -> Fixture {
        Fixture {
            property: property.to_owned(),
            mutant: mutant.map(str::to_owned),
            reason: reason.to_owned(),
            trace: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Appends a payload line.
    pub fn push_data(&mut self, key: &str, value: impl Into<String>) {
        self.data.push((key.to_owned(), value.into()));
    }

    /// All payload values for `key`, in file order.
    pub fn values(&self, key: &str) -> Vec<&str> {
        self.data
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// The first payload value for `key`, if present.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.values(key).first().copied()
    }

    /// Renders the canonical file form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# paradice-verify counterexample\n");
        let _ = writeln!(out, "property={}", self.property);
        if let Some(mutant) = &self.mutant {
            let _ = writeln!(out, "mutant={mutant}");
        }
        let _ = writeln!(out, "reason={}", self.reason);
        for (key, value) in &self.data {
            let _ = writeln!(out, "{key}={value}");
        }
        for label in &self.trace {
            let _ = writeln!(out, "trace={label}");
        }
        out
    }

    /// The canonical file name for this fixture.
    pub fn file_name(&self) -> String {
        match &self.mutant {
            Some(mutant) => format!("{mutant}.fixture"),
            None => format!("{}.fixture", self.property),
        }
    }

    /// Parses the canonical file form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line, or of a
    /// missing required key.
    pub fn parse(text: &str) -> Result<Fixture, String> {
        let mut property = None;
        let mut mutant = None;
        let mut reason = None;
        let mut trace = Vec::new();
        let mut data = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got {line:?}", number + 1))?;
            match key {
                "property" => property = Some(value.to_owned()),
                "mutant" => mutant = Some(value.to_owned()),
                "reason" => reason = Some(value.to_owned()),
                "trace" => trace.push(value.to_owned()),
                _ => data.push((key.to_owned(), value.to_owned())),
            }
        }
        Ok(Fixture {
            property: property.ok_or("missing property= line")?,
            mutant,
            reason: reason.ok_or("missing reason= line")?,
            trace,
            data,
        })
    }
}

/// Encodes bytes as lowercase hex (codec fixtures).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        let _ = write!(out, "{byte:02x}");
    }
    out
}

/// Decodes lowercase/uppercase hex (codec fixtures).
///
/// # Errors
///
/// Describes the offending character or an odd-length string.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string ({} chars)", text.len()));
    }
    let digit = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("non-hex character {:?}", c as char)),
        }
    };
    text.as_bytes()
        .chunks(2)
        .map(|pair| Ok(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut fixture = Fixture::new("ring-depth1", Some("ring-window-off-by-one"), "overfull");
        fixture.push_data("seed", "4294967290");
        fixture.push_data("depth", "1");
        fixture.trace.push("push".to_owned());
        fixture.trace.push("push".to_owned());
        let text = fixture.render();
        assert_eq!(Fixture::parse(&text).unwrap(), fixture);
        assert_eq!(fixture.file_name(), "ring-window-off-by-one.fixture");
        assert_eq!(fixture.value("seed"), Some("4294967290"));
        assert_eq!(fixture.value("absent"), None);
    }

    #[test]
    fn parse_rejects_garbage_and_missing_keys() {
        assert!(Fixture::parse("property=x\nreason=y\n").is_ok());
        assert!(Fixture::parse("reason=y\n").is_err());
        assert!(Fixture::parse("property=x\n").is_err());
        assert!(Fixture::parse("property=x\nreason=y\nnot a kv line\n").is_err());
    }

    #[test]
    fn hex_roundtrip_and_rejection() {
        let bytes = vec![0x00, 0x7f, 0xff, 0x0a];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
