//! `paradice-verify`: the exhaustive bounded-model checker for the
//! isolation core.
//!
//! The devices themselves are not trusted — that is the paper's whole
//! premise — but three mechanisms *are*: the hypervisor grant table that
//! confines the driver VM's memory access (§4.1), the ring indices that
//! sequence the shared-page channel (§5.1), and the wire codec both VMs
//! parse (the lone attack surface the backend exposes to a compromised
//! frontend and vice versa). This crate proves those three kernels correct
//! within documented bounds, by running the *real* implementations —
//! [`paradice_hypervisor::GrantTable`], [`paradice_hypervisor::RingIndex`],
//! [`paradice_cvd::cache::GrantCache`], the `decode_probed` codec paths —
//! against independent executable specifications:
//!
//! | property            | engine                                   |
//! |---------------------|------------------------------------------|
//! | `grant-soundness`   | boundary-value enumeration vs a `u128` coverage model |
//! | `grant-batch`       | exhaustive small-vector enumeration (all-or-nothing phase split) |
//! | `grant-revocation`  | scripted lifecycle + capacity exhaustion  |
//! | `ring-depth1/8`     | bounded-unrolling state exploration, zero and wrap seeds |
//! | `cache-revocation`  | full-state-space exploration with canonical ref renaming |
//! | `codec-roundtrip`   | corpus enumeration incl. all truncations  |
//! | `codec-single-read` | counting probe on the real decoders + the `WP001` wire lint |
//! | `codec-ir-crosscheck` | recording probe tiling vs const-evaluated decode IR |
//! | `adversary-containment` | bit-flip/truncation/forged-ref sweep vs real enforcement |
//! | `race-ring`         | exhaustive store-buffer interleaving: no torn slot read |
//! | `race-doorbell`     | exhaustive store-buffer interleaving: no lost wakeup |
//! | `race-shards`       | exhaustive store-buffer interleaving: no freed-snapshot read |
//!
//! The exploration engine is the analyzer's own dataflow machinery
//! ([`paradice_analyzer::dataflow::reach`]); disproofs surface as `VP00x`
//! [`Diagnostic`](paradice_analyzer::lint::Diagnostic)s and as replayable
//! [`Fixture`](fixture::Fixture)s. Seeded [`Mutant`](report::Mutant)s are
//! the checker's own regression suite: each deliberately-broken variant
//! must be disproved, or the checker has gone blind. The same properties
//! are mirrored as `cargo kani` proof harnesses next to the kernels they
//! prove (`#[cfg(kani)]` in the hypervisor and cvd crates); the model
//! checker is the always-on gate, kani the optional deeper one.

pub mod adversary;
pub mod cache;
pub mod codec;
pub mod fixture;
pub mod grants;
pub mod race;
pub mod report;
pub mod ring;

use fixture::Fixture;
use report::{Mutant, PropertyReport};

/// Every property, in the order `--all` runs them.
pub const PROPERTIES: [&str; 13] = [
    "grant-soundness",
    "grant-batch",
    "grant-revocation",
    "ring-depth1",
    "ring-depth8",
    "cache-revocation",
    "codec-roundtrip",
    "codec-single-read",
    "codec-ir-crosscheck",
    "adversary-containment",
    "race-ring",
    "race-doorbell",
    "race-shards",
];

/// Runs one property by name (optionally under a seeded mutant), timing it.
/// `None` for an unknown property name.
pub fn run_property(name: &str, mutant: Option<Mutant>) -> Option<PropertyReport> {
    let start = std::time::Instant::now();
    let mut report = match name {
        "grant-soundness" => grants::check_soundness(mutant),
        "grant-batch" => grants::check_batch(mutant),
        "grant-revocation" => grants::check_revocation(mutant),
        "ring-depth1" => ring::check_depth1(mutant),
        "ring-depth8" => ring::check_depth8(mutant),
        "cache-revocation" => cache::check_revocation_model(mutant),
        "codec-roundtrip" => codec::check_roundtrip(mutant),
        "codec-single-read" => codec::check_single_read(mutant),
        "codec-ir-crosscheck" => codec::check_ir_crosscheck(mutant),
        "adversary-containment" => adversary::check_containment(mutant),
        "race-ring" => race::check_ring(mutant),
        "race-doorbell" => race::check_doorbell(mutant),
        "race-shards" => race::check_shards(mutant),
        _ => return None,
    };
    report.duration_ms = start.elapsed().as_millis();
    Some(report)
}

/// Runs every property in [`PROPERTIES`] order.
pub fn run_all(mutant: Option<Mutant>) -> Vec<PropertyReport> {
    PROPERTIES
        .iter()
        .map(|name| run_property(name, mutant).expect("registered property"))
        .collect()
}

/// Replays a parsed fixture against the real kernels under `mutant`,
/// dispatching on the fixture's recorded property.
///
/// # Errors
///
/// `Err(reason)` when the recorded violation reproduces (expected when
/// `mutant` matches the fixture's `mutant=` line), or when the fixture
/// names an unknown property.
pub fn replay_fixture(fixture: &Fixture, mutant: Option<Mutant>) -> Result<(), String> {
    match fixture.property.as_str() {
        name if name.starts_with("grant-") => grants::replay(fixture, mutant),
        name if name.starts_with("race-") => race::replay(fixture, mutant),
        name if name.starts_with("ring-") => ring::replay(fixture, mutant),
        "cache-revocation" => cache::replay(fixture, mutant),
        name if name.starts_with("codec-") => codec::replay(fixture, mutant),
        "adversary-containment" => adversary::replay(fixture, mutant),
        other => Err(format!("fixture names unknown property {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_property_proves_on_the_real_kernels() {
        for report in run_all(None) {
            assert!(
                report.proved,
                "{} disproved on the real code: {:?}",
                report.name, report.findings,
            );
            assert!(report.states > 0, "{} explored nothing", report.name);
        }
    }

    #[test]
    fn every_seeded_mutant_is_disproved_by_some_property() {
        for mutant in Mutant::ALL {
            let reports = run_all(Some(mutant));
            let caught: Vec<&str> = reports
                .iter()
                .filter(|r| !r.proved)
                .map(|r| r.name)
                .collect();
            assert!(
                !caught.is_empty(),
                "mutant {} survived every property — the checker is blind to it",
                mutant.name(),
            );
            // Each disproof must carry a replayable counterexample or at
            // least one finding.
            for report in reports.iter().filter(|r| !r.proved) {
                assert!(
                    !report.findings.is_empty(),
                    "{} disproved {} without findings",
                    mutant.name(),
                    report.name,
                );
            }
        }
    }

    #[test]
    fn unknown_property_is_rejected() {
        assert!(run_property("no-such-property", None).is_none());
        let fixture = Fixture::new("no-such-property", None, "x");
        assert!(replay_fixture(&fixture, None).is_err());
    }
}
