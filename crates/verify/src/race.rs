//! Race properties: exhaustive interleaving exploration of the wall-clock
//! substrate's lock-free protocols under a store-buffer memory model.
//!
//! The wall-clock engine (PR 8) replaced the deterministic virtual channel
//! with real threads talking through [`paradice_hypervisor::AtomicRing`],
//! its park/unpark [`Doorbell`](paradice_hypervisor::Doorbell), and the
//! sharded grant table's COW snapshots. Those protocols are correct only
//! under specific memory orderings, and `cargo test` on one x86 box cannot
//! distinguish "correct" from "x86's strong model happened to save us".
//! This module explores *every* schedule of small 2-thread instances of the
//! three protocols under a weak-memory interpreter, loom-style but
//! dependency-free, reusing the analyzer's
//! [`TransitionSystem`] BFS — the same engine as the ring and cache models.
//!
//! # The memory interpreter
//!
//! TSO-style per-thread FIFO store buffers with an ordering-tagged
//! extension so the orderings the shipped code declares actually matter:
//!
//! * a `SeqCst` store flushes the thread's buffer and writes memory
//!   directly (total store order);
//! * a `Release`/`AcqRel` store enters the buffer and may only drain when
//!   it is the **oldest** entry (no store-store reordering past it);
//! * a `Relaxed` store enters the buffer and may drain **out of order**,
//!   bypassing older entries to other locations — the freedom a
//!   `Release → Relaxed` downgrade hands the compiler and non-TSO hardware;
//! * every RMW flushes the thread's buffer and acts on memory directly
//!   (all shipped RMWs are `AcqRel`-or-stronger locked operations);
//! * loads forward from the thread's own newest buffered store, else read
//!   memory; a **non-`Acquire`** gating load additionally permits the
//!   model's explicit payload-read *hoisting* step (load-load reordering,
//!   the freedom a dropped `Acquire` hands out).
//!
//! Buffer drains are explicit transitions, so the explorer covers every
//! schedule *and* every legal flush timing. Crucially the orderings are
//! read back from [`paradice_hypervisor::atomic::all_sites`] — the same
//! constants the code executes and the MO/RC lint checks — so a downgrade
//! in the shipped site table flips the model here with no second copy to
//! drift.
//!
//! | property        | instance                                              |
//! |-----------------|-------------------------------------------------------|
//! | `race-ring`     | 2-slot ring, 3 pushes racing 3 pops: no torn payload read, FIFO identity, plus a value-level crosscheck of the real [`AtomicRing`] |
//! | `race-doorbell` | one empty→non-empty publication racing a consumer park: no terminal state with the consumer asleep, work published, and no wakeup pending |
//! | `race-shards`   | writer retiring snapshots past the cap racing a reader's enter/scan/exit: the reader never scans a reclaimed snapshot |
//!
//! Disproofs surface as `VP005` diagnostics and replayable fixtures; the
//! seeded ordering mutants (`aring-publish-relaxed`,
//! `aring-consume-no-acquire`, `doorbell-check-before-publish`,
//! `shard-retire-unfenced`) are this checker's own regression suite.
//! Bounds are exhaustive for these instances (every run asserts
//! `!truncated`); DESIGN.md §14 records the model and its limits.

use paradice_analyzer::dataflow::reach::{explore, Bounds, TransitionSystem};
use paradice_analyzer::lint::{DiagCode, Diagnostic};
use paradice_analyzer::race::MemOrder;
use paradice_hypervisor::{AtomicRing, ARING_CAPACITY};

use crate::fixture::Fixture;
use crate::report::{Mutant, PropertyReport};

/// Looks up the ordering the shipped code declares (and executes) for one
/// access of one atomic site. Site names are unique across the aggregated
/// tables, so `(site, access)` identifies the constant.
fn shipped_ordering(site: &str, access: &str) -> MemOrder {
    for spec in paradice_hypervisor::atomic::all_sites() {
        if spec.name == site {
            if let Some(found) = spec.accesses.iter().find(|a| a.name == access) {
                return found.ordering;
            }
        }
    }
    panic!("no declared atomic access {site}#{access}");
}

// --- The store-buffer memory interpreter. ---

const THREADS: usize = 2;

/// One buffered (not yet globally visible) store.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    loc: usize,
    val: u32,
    /// `Relaxed` stores may drain out of order; `Release` ones may not.
    relaxed: bool,
}

/// Shared memory plus one FIFO store buffer per thread.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Mem {
    shared: Vec<u32>,
    buffers: [Vec<Entry>; THREADS],
}

impl Mem {
    fn new(shared: Vec<u32>) -> Mem {
        Mem {
            shared,
            buffers: [Vec::new(), Vec::new()],
        }
    }

    /// A store at `order`: `SeqCst` drains and writes through; anything
    /// weaker is buffered, tagged with whether it may later bypass.
    fn store(&mut self, t: usize, loc: usize, val: u32, order: MemOrder) {
        if order == MemOrder::SeqCst {
            self.flush(t);
            self.shared[loc] = val;
        } else {
            self.buffers[t].push(Entry {
                loc,
                val,
                relaxed: order == MemOrder::Relaxed,
            });
        }
    }

    /// A load: forwards from the thread's own newest buffered store to
    /// `loc`, else reads shared memory. (Remote buffers are invisible —
    /// that is the whole point of the model.)
    fn load(&self, t: usize, loc: usize) -> u32 {
        self.buffers[t]
            .iter()
            .rev()
            .find(|e| e.loc == loc)
            .map(|e| e.val)
            .unwrap_or(self.shared[loc])
    }

    /// An RMW: models a locked operation — drains the thread's buffer and
    /// acts on shared memory directly. Returns the previous value.
    fn rmw(&mut self, t: usize, loc: usize, f: impl FnOnce(u32) -> u32) -> u32 {
        self.flush(t);
        let old = self.shared[loc];
        self.shared[loc] = f(old);
        old
    }

    fn flush(&mut self, t: usize) {
        for entry in self.buffers[t].drain(..) {
            self.shared[entry.loc] = entry.val;
        }
    }

    /// Buffer indices eligible to drain next for thread `t`: the oldest
    /// entry always; a `Relaxed` entry also out of order, provided no
    /// older entry targets the same location (same-location coherence).
    fn drain_candidates(&self, t: usize) -> Vec<usize> {
        let buf = &self.buffers[t];
        (0..buf.len())
            .filter(|&i| {
                i == 0 || (buf[i].relaxed && buf[..i].iter().all(|e| e.loc != buf[i].loc))
            })
            .collect()
    }

    fn drain_one(&mut self, t: usize, i: usize) {
        let entry = self.buffers[t].remove(i);
        self.shared[entry.loc] = entry.val;
    }

    fn drained(&self) -> bool {
        self.buffers.iter().all(Vec::is_empty)
    }
}

/// The drain transitions every model shares: one successor per eligible
/// buffer entry per thread.
fn drain_successors<S>(mem: &Mem, rebuild: impl Fn(Mem) -> S) -> Vec<(String, S)> {
    const NAMES: [&str; THREADS] = ["P", "C"];
    let mut out = Vec::new();
    for (t, name) in NAMES.iter().enumerate() {
        for i in mem.drain_candidates(t) {
            let mut next = mem.clone();
            next.drain_one(t, i);
            out.push((format!("drain:{name}:{i}"), rebuild(next)));
        }
    }
    out
}

/// Generic fixture-replay over any of the race models: applies the trace
/// labels, skipping ones not enabled under this configuration (a mutant
/// trace replayed on the clean model loses its bad steps and completes).
fn replay_system<M: TransitionSystem>(model: &M, trace: &[String]) -> Result<(), String> {
    let mut state = model
        .initial()
        .into_iter()
        .next()
        .expect("race models have one initial state");
    for label in trace {
        match model
            .successors(&state)
            .into_iter()
            .find(|(l, _)| l == label)
        {
            Some((_, next)) => state = next,
            None => continue, // disabled under this configuration; tolerant
        }
        model.invariant(&state)?;
    }
    Ok(())
}

/// Shared disproof/proof plumbing: explores `model`, renders the verdict.
fn check_system<M: TransitionSystem>(
    name: &'static str,
    description: &'static str,
    module: &'static str,
    model: &M,
    mutant: Option<Mutant>,
) -> PropertyReport {
    let bounds = Bounds {
        max_states: 2_000_000,
        max_depth: 96,
    };
    let run = explore(model, bounds);
    if run.truncated {
        // Never expected (the instances are tiny); refuse to call it proved.
        let finding = Diagnostic::new(
            DiagCode::Vp005,
            module,
            None,
            format!("{name}: exploration truncated — bounds too small for the instance"),
        );
        return PropertyReport::disproved(
            name,
            description,
            run.states_visited,
            run.transitions,
            vec![finding],
            None,
        );
    }
    match run.violation {
        None => PropertyReport::proved(name, description, run.states_visited, run.transitions),
        Some(violation) => {
            let finding = Diagnostic::new(
                DiagCode::Vp005,
                module,
                None,
                format!("{} (after {:?})", violation.reason, violation.trace),
            );
            let mut fixture = Fixture::new(name, mutant.map(Mutant::name), &violation.reason);
            fixture.push_data("interp", "tso-store-buffer");
            fixture.push_data("threads", THREADS.to_string());
            fixture.trace = violation.trace;
            PropertyReport::disproved(
                name,
                description,
                run.states_visited,
                run.transitions,
                vec![finding],
                Some(fixture),
            )
        }
    }
}

// --- race-ring: torn reads and FIFO identity on the atomic ring. ---

/// The orderings the ring model runs under, read from the shipped site
/// table ([`shipped_ordering`]) and perturbed by the ordering mutants.
#[derive(Debug, Clone, Copy)]
struct RingOrders {
    publish: MemOrder,
    consume: MemOrder,
    recycle: MemOrder,
    payload_write: MemOrder,
    payload_read: MemOrder,
}

impl RingOrders {
    fn shipped(mutant: Option<Mutant>) -> RingOrders {
        let mut orders = RingOrders {
            publish: shipped_ordering("slot_seq", "publish"),
            consume: shipped_ordering("slot_seq", "consume"),
            recycle: shipped_ordering("slot_seq", "recycle"),
            payload_write: shipped_ordering("slot_len", "write"),
            payload_read: shipped_ordering("slot_len", "read"),
        };
        match mutant {
            Some(Mutant::AringPublishRelaxed) => orders.publish = MemOrder::Relaxed,
            Some(Mutant::AringConsumeNoAcquire) => orders.consume = MemOrder::Relaxed,
            _ => {}
        }
        orders
    }
}

/// Model ring capacity (2 slots) and pushes explored (3, so one slot is
/// recycled and re-published mid-trace — the full Vyukov turn cycle).
const RING_SLOTS: u32 = 2;
const RING_PUSHES: u32 = 3;

/// Memory layout: `SEQ[slot]` at `slot`, payload `DATA[slot]` at
/// `2 + slot`. Initial `SEQ[i] = i` exactly like [`AtomicRing::new`].
fn seq_loc(k: u32) -> usize {
    (k % RING_SLOTS) as usize
}
fn data_loc(k: u32) -> usize {
    (RING_SLOTS + k % RING_SLOTS) as usize
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RaceRingState {
    mem: Mem,
    /// Producer: 0 = claim, 1 = write payload, 2 = publish.
    p_pc: u8,
    p_k: u32,
    /// Consumer: 0 = gate, 1 = read payload, 2 = recycle.
    c_pc: u8,
    c_k: u32,
    /// A payload value read *before* the gate (load-load hoisting, only
    /// offered when the gate load is weaker than `Acquire`).
    hoisted: Option<u32>,
    error: Option<String>,
}

struct RaceRingModel {
    orders: RingOrders,
}

impl RaceRingModel {
    fn new(orders: RingOrders) -> RaceRingModel {
        RaceRingModel { orders }
    }

    fn program_successors(&self, s: &RaceRingState) -> Vec<(String, RaceRingState)> {
        let mut out = Vec::new();
        // Producer (thread 0), mirroring AtomicRing::try_push for push p_k:
        // claim when SEQ[slot] == k, write payload, publish SEQ[slot] = k+1.
        if s.p_k < RING_PUSHES {
            match s.p_pc {
                0 => {
                    if s.mem.load(0, seq_loc(s.p_k)) == s.p_k {
                        let mut n = s.clone();
                        n.p_pc = 1;
                        out.push(("P:claim".into(), n));
                    } // else: slot not recycled yet — the producer spins
                }
                1 => {
                    let mut n = s.clone();
                    n.mem
                        .store(0, data_loc(s.p_k), s.p_k + 1, self.orders.payload_write);
                    n.p_pc = 2;
                    out.push(("P:write-data".into(), n));
                }
                _ => {
                    let mut n = s.clone();
                    n.mem.store(0, seq_loc(s.p_k), s.p_k + 1, self.orders.publish);
                    n.p_pc = 0;
                    n.p_k += 1;
                    out.push(("P:publish".into(), n));
                }
            }
        }
        // Consumer (thread 1), mirroring AtomicRing::try_pop for pop c_k:
        // gate on SEQ[slot] == k+1, read payload, recycle SEQ[slot] = k+2.
        if s.c_k < RING_PUSHES {
            match s.c_pc {
                0 => {
                    // Hoisting: a gate weaker than Acquire lets the payload
                    // read behind it be satisfied early.
                    if !self.orders.consume.at_least_acquire() && s.hoisted.is_none() {
                        let mut n = s.clone();
                        n.hoisted = Some(n.mem.load(1, data_loc(s.c_k)));
                        out.push(("C:hoist".into(), n));
                    }
                    if s.mem.load(1, seq_loc(s.c_k)) == s.c_k + 1 {
                        let mut n = s.clone();
                        n.c_pc = 1;
                        out.push(("C:gate".into(), n));
                    } // else: nothing published yet — the consumer spins
                }
                1 => {
                    let mut n = s.clone();
                    // Loads are in-order in TSO; the payload read's own
                    // ordering adds nothing beyond the hoisting choice the
                    // gate's (lack of) Acquire already decided.
                    let _ = self.orders.payload_read;
                    let val = match n.hoisted.take() {
                        Some(stale) => stale,
                        None => n.mem.load(1, data_loc(s.c_k)),
                    };
                    if val == s.c_k + 1 {
                        n.c_pc = 2;
                    } else {
                        n.error = Some(format!(
                            "torn slot read: pop {} observed payload {val}, expected {} \
                             (the gate passed without the data it protects)",
                            s.c_k,
                            s.c_k + 1,
                        ));
                    }
                    out.push(("C:read-data".into(), n));
                }
                _ => {
                    let mut n = s.clone();
                    n.mem
                        .store(1, seq_loc(s.c_k), s.c_k + RING_SLOTS, self.orders.recycle);
                    n.c_pc = 0;
                    n.c_k += 1;
                    out.push(("C:recycle".into(), n));
                }
            }
        }
        out
    }
}

impl TransitionSystem for RaceRingModel {
    type State = RaceRingState;

    fn initial(&self) -> Vec<RaceRingState> {
        // SEQ[i] = i (slots free in turn order), payload zeroed.
        vec![RaceRingState {
            mem: Mem::new(vec![0, 1, 0, 0]),
            p_pc: 0,
            p_k: 0,
            c_pc: 0,
            c_k: 0,
            hoisted: None,
            error: None,
        }]
    }

    fn successors(&self, state: &RaceRingState) -> Vec<(String, RaceRingState)> {
        if state.error.is_some() {
            return Vec::new(); // violations are sinks
        }
        let mut out = self.program_successors(state);
        out.extend(drain_successors(&state.mem, |mem| {
            let mut next = state.clone();
            next.mem = mem;
            next
        }));
        let done = state.p_k == RING_PUSHES && state.c_k == RING_PUSHES;
        if out.is_empty() && !(done && state.mem.drained()) {
            let mut next = state.clone();
            next.error = Some(format!(
                "deadlock: producer at push {} pc {}, consumer at pop {} pc {}, \
                 nothing enabled",
                state.p_k, state.p_pc, state.c_k, state.c_pc,
            ));
            out.push(("stuck".into(), next));
        }
        out
    }

    fn invariant(&self, state: &RaceRingState) -> Result<(), String> {
        match &state.error {
            Some(error) => Err(error.clone()),
            None => Ok(()),
        }
    }
}

/// Single-threaded value-level crosscheck: drives the real [`AtomicRing`]
/// through every push/pop sequence of length 8 against a shadow FIFO, so
/// the interleaving model cannot silently drift from the code it vouches
/// for. Returns the number of operations checked.
fn crosscheck_real_ring() -> Result<usize, String> {
    let steps = 8u32;
    let mut ops = 0usize;
    for sequence in 0u32..(1 << steps) {
        let ring = AtomicRing::new();
        let mut shadow: std::collections::VecDeque<Vec<u8>> = std::collections::VecDeque::new();
        let mut stamp = 0u8;
        for bit in 0..steps {
            ops += 1;
            if sequence >> bit & 1 == 0 {
                stamp = stamp.wrapping_add(1);
                let frame = vec![stamp, bit as u8, 0x5a];
                let expect_room = shadow.len() < ARING_CAPACITY;
                let expect_edge = shadow.is_empty();
                match ring.try_push(&frame) {
                    Ok(edge) => {
                        if !expect_room {
                            return Err("real ring admitted a push past capacity".into());
                        }
                        if edge != expect_edge {
                            return Err(format!(
                                "real ring doorbell edge {edge} on a {} ring",
                                if expect_edge { "sleeping" } else { "busy" },
                            ));
                        }
                        shadow.push_back(frame);
                    }
                    Err(err) => {
                        if expect_room {
                            return Err(format!("real ring refused a push with room: {err}"));
                        }
                    }
                }
            } else {
                match (ring.try_pop(), shadow.pop_front()) {
                    (Some(frame), Some(expect)) => {
                        if frame != expect {
                            return Err(format!(
                                "real ring broke FIFO payload identity: got {frame:?}, \
                                 expected {expect:?}"
                            ));
                        }
                    }
                    (Some(frame), None) => {
                        return Err(format!("real ring popped {frame:?} from an empty ring"));
                    }
                    (None, Some(expect)) => {
                        return Err(format!("real ring refused to pop committed {expect:?}"));
                    }
                    (None, None) => {}
                }
            }
            if ring.len() != shadow.len() {
                return Err(format!(
                    "real ring len {} != shadow len {}",
                    ring.len(),
                    shadow.len(),
                ));
            }
        }
    }
    Ok(ops)
}

/// `race-ring`: every schedule (including buffer-drain timings) of 3
/// pushes racing 3 pops through the 2-slot model instance, with the
/// orderings the shipped `aring` site table declares; plus the value-level
/// crosscheck of the real [`AtomicRing`].
pub fn check_ring(mutant: Option<Mutant>) -> PropertyReport {
    const DESC: &str = "atomic ring under every 2-thread schedule and store-buffer drain \
         timing: no torn payload read, FIFO identity, full slot-recycle turn \
         (orderings read from the shipped aring site table; real-ring crosscheck)";
    let model = RaceRingModel::new(RingOrders::shipped(mutant));
    let mut report = check_system("race-ring", DESC, "hypervisor::aring", &model, mutant);
    if report.proved {
        match crosscheck_real_ring() {
            Ok(ops) => report.transitions += ops,
            Err(reason) => {
                let finding = Diagnostic::new(
                    DiagCode::Vp004,
                    "hypervisor::aring",
                    None,
                    format!("race-ring model/code drift: {reason}"),
                );
                report = PropertyReport::disproved(
                    report.name,
                    report.description,
                    report.states,
                    report.transitions,
                    vec![finding],
                    None,
                );
            }
        }
    }
    report
}

// --- race-doorbell: lost wakeups on the park/unpark protocol. ---

/// Doorbell-model orderings, read from the shipped site table. The
/// consumer's drain and the park-token exchange are RMWs (always flushing)
/// so only the flag stores/loads carry orderings here.
#[derive(Debug, Clone, Copy)]
struct DoorbellOrders {
    /// The producer's non-empty publication (the ring's `slot_seq` publish).
    publish: MemOrder,
    /// The consumer's readiness check (the ring's occupancy load).
    occupancy: MemOrder,
    /// `rung` store on the ring side.
    ring: MemOrder,
    /// `parked` load on the ring side.
    check: MemOrder,
    /// `parked` store before sleeping.
    park: MemOrder,
    /// `parked` store after waking.
    clear: MemOrder,
}

impl DoorbellOrders {
    fn shipped() -> DoorbellOrders {
        DoorbellOrders {
            publish: shipped_ordering("slot_seq", "publish"),
            occupancy: shipped_ordering("tail", "occupancy"),
            ring: shipped_ordering("rung", "ring"),
            check: shipped_ordering("parked", "unpark-check"),
            park: shipped_ordering("parked", "park"),
            clear: shipped_ordering("parked", "clear"),
        }
    }
}

/// Locations: 0 = ring-non-empty flag (publication proxy), 1 = `rung`,
/// 2 = `parked`, 3 = the park token (`std::thread` unpark permit).
const RINGNE: usize = 0;
const RUNG: usize = 1;
const PARKED: usize = 2;
const TOKEN: usize = 3;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RaceDoorbellState {
    mem: Mem,
    /// Producer: 0 publish, 1 ring, 2 check, 3 unpark, 4 done.
    p_pc: u8,
    /// Consumer: 0 drain, 1 ready, 2 announce-park, 3 recheck,
    /// 4 ready-recheck, 5 park, 6 parked (asleep), 7 clear, 8 done.
    c_pc: u8,
    error: Option<String>,
}

struct RaceDoorbellModel {
    orders: DoorbellOrders,
    /// Whether the consumer rechecks the doorbell *after* announcing
    /// `parked` (the shipped protocol). [`Mutant::DoorbellCheckBeforePublish`]
    /// clears this: all checking happens before the announcement, so a ring
    /// landing in between is missed.
    recheck_after_announce: bool,
}

impl RaceDoorbellModel {
    fn new(orders: DoorbellOrders, mutant: Option<Mutant>) -> RaceDoorbellModel {
        RaceDoorbellModel {
            orders,
            recheck_after_announce: mutant != Some(Mutant::DoorbellCheckBeforePublish),
        }
    }

    fn program_successors(&self, s: &RaceDoorbellState) -> Vec<(String, RaceDoorbellState)> {
        let mut out = Vec::new();
        // Producer: publish work, ring the bell, unpark if the consumer
        // announced itself parked (Doorbell::ring).
        match s.p_pc {
            0 => {
                let mut n = s.clone();
                n.mem.store(0, RINGNE, 1, self.orders.publish);
                n.p_pc = 1;
                out.push(("P:publish".into(), n));
            }
            1 => {
                let mut n = s.clone();
                n.mem.store(0, RUNG, 1, self.orders.ring);
                n.p_pc = 2;
                out.push(("P:ring".into(), n));
            }
            2 => {
                let mut n = s.clone();
                n.p_pc = if n.mem.load(0, PARKED) == 1 { 3 } else { 4 };
                let _ = self.orders.check; // load ordering: no hoisting here
                out.push(("P:check-parked".into(), n));
            }
            3 => {
                let mut n = s.clone();
                // The unpark syscall: deposits the token, always visible.
                n.mem.store(0, TOKEN, 1, MemOrder::SeqCst);
                n.p_pc = 4;
                out.push(("P:unpark".into(), n));
            }
            _ => {}
        }
        // Consumer: Doorbell::wait — drain the bell, check readiness,
        // announce parked, recheck, sleep on the token.
        match s.c_pc {
            0 => {
                let mut n = s.clone();
                let old = n.mem.rmw(1, RUNG, |_| 0);
                n.c_pc = if old == 1 { 8 } else { 1 };
                out.push(("C:drain".into(), n));
            }
            1 => {
                let mut n = s.clone();
                let _ = self.orders.occupancy;
                n.c_pc = if n.mem.load(1, RINGNE) == 1 { 8 } else { 2 };
                out.push(("C:ready".into(), n));
            }
            2 => {
                let mut n = s.clone();
                n.mem.store(1, PARKED, 1, self.orders.park);
                n.c_pc = if self.recheck_after_announce { 3 } else { 5 };
                out.push(("C:announce-park".into(), n));
            }
            3 => {
                let mut n = s.clone();
                let old = n.mem.rmw(1, RUNG, |_| 0);
                n.c_pc = if old == 1 { 7 } else { 4 };
                out.push(("C:recheck".into(), n));
            }
            4 => {
                let mut n = s.clone();
                n.c_pc = if n.mem.load(1, RINGNE) == 1 { 7 } else { 5 };
                out.push(("C:ready-recheck".into(), n));
            }
            5 => {
                let mut n = s.clone();
                // park(): consumes a pending token and returns, else sleeps.
                let got = n.mem.rmw(1, TOKEN, |_| 0);
                n.c_pc = if got == 1 {
                    if self.recheck_after_announce {
                        3
                    } else {
                        8
                    }
                } else {
                    6
                };
                out.push(("C:park".into(), n));
            }
            // Asleep: only an unpark token wakes us (no spurious wakeups
            // — the shipped park_timeout is defense in depth, and
            // modeling it would mask exactly the bug we hunt).
            6 if s.mem.shared[TOKEN] == 1 => {
                let mut n = s.clone();
                n.mem.rmw(1, TOKEN, |_| 0);
                n.c_pc = if self.recheck_after_announce { 3 } else { 8 };
                out.push(("C:wake".into(), n));
            }
            7 => {
                let mut n = s.clone();
                n.mem.store(1, PARKED, 0, self.orders.clear);
                n.c_pc = 8;
                out.push(("C:clear-park".into(), n));
            }
            _ => {}
        }
        out
    }
}

impl TransitionSystem for RaceDoorbellModel {
    type State = RaceDoorbellState;

    fn initial(&self) -> Vec<RaceDoorbellState> {
        vec![RaceDoorbellState {
            mem: Mem::new(vec![0; 4]),
            p_pc: 0,
            c_pc: 0,
            error: None,
        }]
    }

    fn successors(&self, state: &RaceDoorbellState) -> Vec<(String, RaceDoorbellState)> {
        if state.error.is_some() {
            return Vec::new();
        }
        let mut out = self.program_successors(state);
        out.extend(drain_successors(&state.mem, |mem| {
            let mut next = state.clone();
            next.mem = mem;
            next
        }));
        let done = state.p_pc == 4 && state.c_pc == 8;
        if out.is_empty() && !(done && state.mem.drained()) {
            let mut next = state.clone();
            next.error = Some(
                "lost wakeup: consumer parked forever with the ring published \
                 non-empty and no unpark token pending"
                    .to_owned(),
            );
            out.push(("lost-wakeup".into(), next));
        }
        out
    }

    fn invariant(&self, state: &RaceDoorbellState) -> Result<(), String> {
        match &state.error {
            Some(error) => Err(error.clone()),
            None => Ok(()),
        }
    }
}

/// `race-doorbell`: one empty→non-empty publication racing one consumer
/// descent into park, under every schedule and drain timing. Proved iff no
/// terminal state leaves the consumer asleep with work published and no
/// token pending.
pub fn check_doorbell(mutant: Option<Mutant>) -> PropertyReport {
    const DESC: &str = "park/unpark doorbell under every 2-thread schedule: no lost wakeup on \
         the empty→non-empty edge (orderings read from the shipped site \
         table; the pure protocol, park_timeout masking disabled)";
    let model = RaceDoorbellModel::new(DoorbellOrders::shipped(), mutant);
    check_system("race-doorbell", DESC, "hypervisor::aring", &model, mutant)
}

// --- race-shards: use-after-free on retired snapshot reclamation. ---

/// Shards-model knobs: the gate ordering comes from the shipped table;
/// [`Mutant::ShardRetireUnfenced`] removes the gate entirely (free without
/// waiting for `in_flight == 0`).
#[derive(Debug, Clone, Copy)]
struct ShardConfig {
    gated: bool,
}

impl ShardConfig {
    fn shipped(mutant: Option<Mutant>) -> ShardConfig {
        // Touch the orderings so a site-table rename breaks loudly here
        // rather than silently decoupling model from code.
        let _ = (
            shipped_ordering("current", "publish-swap"),
            shipped_ordering("current", "reader-load"),
            shipped_ordering("in_flight", "enter"),
            shipped_ordering("in_flight", "exit"),
            shipped_ordering("in_flight", "writer-check"),
        );
        ShardConfig {
            gated: mutant != Some(Mutant::ShardRetireUnfenced),
        }
    }
}

/// Locations: 0 = `current` snapshot pointer (ids 0, 1, 2), 1 = `in_flight`.
const PTR: usize = 0;
const INFLIGHT: usize = 1;

/// Snapshots retired by the writer's two mutations (model `RETIRED_CAP`
/// is 1, so the second retirement overflows and reclaims both).
const RETIRED_IDS: u32 = 2;
const READER_ITERS: u8 = 2;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RaceShardState {
    mem: Mem,
    /// Writer: 0 publish-1, 1 publish-2, 2 gate, 3 free, 4 done.
    w_pc: u8,
    /// Reader: 0 enter, 1 load, 2 scan, 3 exit, 4 done.
    r_pc: u8,
    r_iter: u8,
    /// Snapshot id the reader holds between load and scan.
    held: u32,
    /// Set once the writer reclaimed the retired snapshots {0, 1}.
    freed: bool,
    error: Option<String>,
}

struct RaceShardModel {
    config: ShardConfig,
}

impl RaceShardModel {
    fn new(config: ShardConfig) -> RaceShardModel {
        RaceShardModel { config }
    }

    fn program_successors(&self, s: &RaceShardState) -> Vec<(String, RaceShardState)> {
        let mut out = Vec::new();
        // Writer (thread 0): two COW mutations; the second overflows the
        // (model) retired cap, so the writer reclaims — after observing
        // in_flight == 0 in the shipped protocol, immediately under the
        // mutant.
        match s.w_pc {
            0 => {
                let mut n = s.clone();
                n.mem.rmw(0, PTR, |_| 1); // publish-swap: locked, writes through
                n.w_pc = 1;
                out.push(("W:publish-1".into(), n));
            }
            1 => {
                let mut n = s.clone();
                n.mem.rmw(0, PTR, |_| 2);
                n.w_pc = if self.config.gated { 2 } else { 3 };
                out.push(("W:publish-2".into(), n));
            }
            // writer-check: spins until no reader is inside the gate.
            2 if s.mem.load(0, INFLIGHT) == 0 => {
                let mut n = s.clone();
                n.w_pc = 3;
                out.push(("W:gate-clear".into(), n));
            }
            3 => {
                let mut n = s.clone();
                n.freed = true;
                n.w_pc = 4;
                out.push(("W:free-retired".into(), n));
            }
            _ => {}
        }
        // Reader (thread 1): ShardedGrantTable::with_snapshot — enter the
        // gate, load the pointer, scan, exit. Twice, so a post-reclaim
        // iteration is also covered.
        if s.r_iter < READER_ITERS {
            match s.r_pc {
                0 => {
                    let mut n = s.clone();
                    n.mem.rmw(1, INFLIGHT, |v| v + 1);
                    n.r_pc = 1;
                    out.push(("R:enter".into(), n));
                }
                1 => {
                    let mut n = s.clone();
                    n.held = n.mem.load(1, PTR);
                    n.r_pc = 2;
                    out.push(("R:load-snapshot".into(), n));
                }
                2 => {
                    let mut n = s.clone();
                    if s.freed && s.held < RETIRED_IDS {
                        n.error = Some(format!(
                            "use-after-free: reader scanned snapshot {} after the writer \
                             reclaimed the retired list",
                            s.held,
                        ));
                    } else {
                        n.r_pc = 3;
                    }
                    out.push(("R:scan".into(), n));
                }
                _ => {
                    let mut n = s.clone();
                    n.mem.rmw(1, INFLIGHT, |v| v - 1);
                    n.r_pc = 0;
                    n.r_iter += 1;
                    out.push(("R:exit".into(), n));
                }
            }
        }
        out
    }
}

impl TransitionSystem for RaceShardModel {
    type State = RaceShardState;

    fn initial(&self) -> Vec<RaceShardState> {
        vec![RaceShardState {
            mem: Mem::new(vec![0, 0]),
            w_pc: 0,
            r_pc: 0,
            r_iter: 0,
            held: 0,
            freed: false,
            error: None,
        }]
    }

    fn successors(&self, state: &RaceShardState) -> Vec<(String, RaceShardState)> {
        if state.error.is_some() {
            return Vec::new();
        }
        let mut out = self.program_successors(state);
        out.extend(drain_successors(&state.mem, |mem| {
            let mut next = state.clone();
            next.mem = mem;
            next
        }));
        let done = state.w_pc == 4 && state.r_iter == READER_ITERS;
        if out.is_empty() && !(done && state.mem.drained()) {
            let mut next = state.clone();
            next.error = Some(format!(
                "deadlock: writer pc {} blocked with reader at iter {} pc {}",
                state.w_pc, state.r_iter, state.r_pc,
            ));
            out.push(("stuck".into(), next));
        }
        out
    }

    fn invariant(&self, state: &RaceShardState) -> Result<(), String> {
        match &state.error {
            Some(error) => Err(error.clone()),
            None => Ok(()),
        }
    }
}

/// `race-shards`: a writer retiring snapshots past the cap racing a
/// reader's enter/load/scan/exit, under every schedule. Proved iff no
/// reader ever scans a reclaimed snapshot.
pub fn check_shards(mutant: Option<Mutant>) -> PropertyReport {
    const DESC: &str = "sharded grant-table snapshot reclamation under every 2-thread \
         schedule: a reader inside the in_flight gate never scans a \
         reclaimed snapshot (writer frees only after observing in_flight == 0)";
    let model = RaceShardModel::new(ShardConfig::shipped(mutant));
    check_system("race-shards", DESC, "hypervisor::shards", &model, mutant)
}

/// Replays a race fixture: re-runs the recorded trace through the model
/// configured by `mutant`.
///
/// # Errors
///
/// `Err(reason)` when the recorded violation reproduces (expected when
/// `mutant` matches the fixture's `mutant=` line).
pub fn replay(fixture: &Fixture, mutant: Option<Mutant>) -> Result<(), String> {
    match fixture.property.as_str() {
        "race-ring" => replay_system(&RaceRingModel::new(RingOrders::shipped(mutant)), &fixture.trace),
        "race-doorbell" => replay_system(
            &RaceDoorbellModel::new(DoorbellOrders::shipped(), mutant),
            &fixture.trace,
        ),
        "race-shards" => replay_system(
            &RaceShardModel::new(ShardConfig::shipped(mutant)),
            &fixture.trace,
        ),
        other => Err(format!("unknown race property {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_race_properties_prove_on_the_shipped_orderings() {
        for report in [check_ring(None), check_doorbell(None), check_shards(None)] {
            assert!(
                report.proved,
                "{} disproved on shipped orderings: {:?}",
                report.name, report.findings,
            );
            assert!(report.states > 50, "{} explored too little", report.name);
        }
    }

    #[test]
    fn each_ordering_mutant_is_disproved_with_a_replayable_fixture() {
        type Check = fn(Option<Mutant>) -> PropertyReport;
        let cases: [(Mutant, Check); 4] = [
            (Mutant::AringPublishRelaxed, check_ring),
            (Mutant::AringConsumeNoAcquire, check_ring),
            (Mutant::DoorbellCheckBeforePublish, check_doorbell),
            (Mutant::ShardRetireUnfenced, check_shards),
        ];
        for (mutant, check) in cases {
            let report = check(Some(mutant));
            assert!(!report.proved, "{} survived {:?}", mutant.name(), report.name);
            let fixture = report.counterexample.expect("fixture emitted");
            assert!(
                replay(&fixture, None).is_ok(),
                "{}: trace must be harmless on the shipped orderings",
                mutant.name(),
            );
            assert!(
                replay(&fixture, Some(mutant)).is_err(),
                "{}: trace must reproduce under the mutant",
                mutant.name(),
            );
        }
    }

    #[test]
    fn relaxed_publish_counterexample_is_the_canonical_reorder() {
        // BFS yields a shortest trace: the seq store drains past the
        // payload store and the consumer reads the torn slot.
        let report = check_ring(Some(Mutant::AringPublishRelaxed));
        let fixture = report.counterexample.expect("fixture");
        assert!(fixture.trace.len() <= 6, "{:?}", fixture.trace);
        assert!(fixture.trace.iter().any(|l| l == "C:read-data"));
    }

    /// The latent bug this PR fixed: under the pre-upgrade Release/Acquire
    /// doorbell the store-buffer model finds the classic Dekker lost
    /// wakeup — the producer's rung store sits buffered past its parked
    /// check while the consumer's parked announcement does the symmetric
    /// thing. The shipped table is SeqCst exactly because of this trace.
    #[test]
    fn release_acquire_doorbell_loses_a_wakeup() {
        let mut orders = DoorbellOrders::shipped();
        orders.ring = MemOrder::Release;
        orders.check = MemOrder::Acquire;
        orders.park = MemOrder::Release;
        orders.clear = MemOrder::Release;
        let model = RaceDoorbellModel::new(orders, None);
        let run = explore(
            &model,
            Bounds {
                max_states: 2_000_000,
                max_depth: 96,
            },
        );
        let violation = run.violation.expect("R/A doorbell must lose a wakeup");
        assert!(violation.reason.contains("lost wakeup"), "{}", violation.reason);
    }

    #[test]
    fn interpreter_models_store_buffer_reordering() {
        // A relaxed store may bypass an older buffered store to another
        // location; a release store may not.
        let mut mem = Mem::new(vec![0, 0]);
        mem.store(0, 0, 7, MemOrder::Release);
        mem.store(0, 1, 9, MemOrder::Relaxed);
        assert_eq!(mem.drain_candidates(0), vec![0, 1]);
        let mut mem = Mem::new(vec![0, 0]);
        mem.store(0, 0, 7, MemOrder::Relaxed);
        mem.store(0, 1, 9, MemOrder::Release);
        assert_eq!(mem.drain_candidates(0), vec![0]);
        // Same-location entries never reorder (coherence).
        let mut mem = Mem::new(vec![0]);
        mem.store(0, 0, 1, MemOrder::Relaxed);
        mem.store(0, 0, 2, MemOrder::Relaxed);
        assert_eq!(mem.drain_candidates(0), vec![0]);
        // Forwarding: the thread sees its own newest store; others do not.
        assert_eq!(mem.load(0, 0), 2);
        assert_eq!(mem.load(1, 0), 0);
        // SeqCst writes through and flushes.
        mem.store(0, 0, 3, MemOrder::SeqCst);
        assert!(mem.drained());
        assert_eq!(mem.shared[0], 3);
    }

    #[test]
    fn crosscheck_covers_the_real_ring() {
        let ops = crosscheck_real_ring().expect("real ring agrees with the model");
        assert_eq!(ops, 256 * 8);
    }
}
