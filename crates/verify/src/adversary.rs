//! Adversarial containment: every mutated wire frame and forged/replayed
//! grant reference is *contained* by the real enforcement stack.
//!
//! The fuzzing adversary (`crates/adversary`) plays a malicious guest
//! against the live machine; this module is its deterministic verify-side
//! anchor. It enumerates the same attack shapes — single-bit flips,
//! truncations, and trailing bytes over encoded [`WireRequest`]s, plus
//! replayed and forged [`GrantRef`]s — and checks one invariant on the
//! real kernels:
//!
//! > an adversarial request is either rejected at decode, or its implied
//! > memory operation is validated against the declared grant windows;
//! > enforcement never accepts an operation the exact-arithmetic coverage
//! > model rejects.
//!
//! [`Mutant::GrantBypass`] swaps the enforcement step for one that accepts
//! everything — the backend that "forgets" the grant hypercall check. The
//! enumeration must disprove it, and the emitted fixture replays through
//! [`replay`] so every fuzz find (minimized by the adversary crate into
//! the same `adversary-containment` property) becomes a permanent
//! regression test.

use paradice_cvd::proto::{WireOp, WireRequest};
use paradice_hypervisor::{GrantRef, GrantTable, MemOpGrant, MemOpRequest};
use paradice_analyzer::lint::{DiagCode, Diagnostic};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

use crate::fixture::{from_hex, to_hex, Fixture};
use crate::grants::{parse_decl, parse_request};
use crate::report::{Mutant, PropertyReport};

/// The memory operation a decoded adversarial request implies, mirroring
/// what the backend's driver would issue for it (read fills the user
/// buffer, write drains it). Ops without a user buffer imply none.
fn implied_mem_op(op: &WireOp) -> Option<MemOpRequest> {
    match *op {
        WireOp::Read { addr, len } => Some(MemOpRequest::CopyToGuest { addr, len }),
        WireOp::Write { addr, len } => Some(MemOpRequest::CopyFromGuest { addr, len }),
        _ => None,
    }
}

/// Exact-arithmetic coverage of one window over one request (`u128`, no
/// saturation surprises) — the independent oracle, deliberately *not* the
/// production `covers` code.
fn model_covers(grant: &MemOpGrant, request: &MemOpRequest) -> bool {
    let window = |r_addr: u64, r_len: u64, g_addr: u64, g_len: u64| {
        let r_end = u128::from(r_addr) + u128::from(r_len);
        let g_end = (u128::from(g_addr) + u128::from(g_len)).min(u128::from(u64::MAX));
        r_end <= u128::from(u64::MAX) && r_addr >= g_addr && r_end <= g_end
    };
    match (grant, request) {
        (
            MemOpGrant::CopyToGuest { addr, len },
            MemOpRequest::CopyToGuest { addr: ra, len: rl },
        )
        | (
            MemOpGrant::CopyFromGuest { addr, len },
            MemOpRequest::CopyFromGuest { addr: ra, len: rl },
        ) => window(ra.raw(), *rl, addr.raw(), *len),
        _ => false,
    }
}

/// The containment verdict for one adversarial frame against one declared
/// table. `Ok(detected)` when contained (`detected` = rejected outright),
/// `Err(reason)` when enforcement accepted an operation the model rejects.
fn contain_frame(
    bytes: &[u8],
    table: &GrantTable,
    legit: GrantRef,
    decls: &[MemOpGrant],
    bypass: bool,
) -> Result<bool, String> {
    let Ok(request) = WireRequest::decode(bytes) else {
        // Rejected at decode — the backend answers EINVAL. Contained.
        return Ok(true);
    };
    let Some(mem_op) = implied_mem_op(&request.op) else {
        // No user-buffer window to attack: serving it cannot move guest
        // memory, so either answer is correct service.
        return Ok(false);
    };
    // The enforcement step under test: the real grant table, or the
    // seeded bypass that skips the hypercall check entirely.
    let enforced = if bypass {
        true
    } else {
        match request.grant {
            Some(grant) => table.validate(grant, &mem_op).is_ok(),
            None => false,
        }
    };
    // The oracle: the op is legitimate iff it travels under the declared
    // reference and some declared window covers it exactly.
    let legitimate =
        request.grant == Some(legit) && decls.iter().any(|d| model_covers(d, &mem_op));
    if enforced && !legitimate {
        return Err(format!(
            "enforcement accepted {mem_op:?} under grant {:?} although the declared \
             windows do not cover it; grant bypass",
            request.grant,
        ));
    }
    Ok(!enforced)
}

/// The legitimate request corpus the mutations start from: user-buffer ops
/// whose windows are declared exactly, so any mutation that moves the
/// buffer must be caught.
fn attack_corpus() -> Vec<(WireRequest, Vec<MemOpGrant>)> {
    let base = |op: WireOp, grant: Option<GrantRef>| WireRequest {
        task: 7,
        pt_root: GuestPhysAddr::new(0x4000),
        handle: 3,
        span: 11,
        grant,
        op,
    };
    vec![
        (
            base(
                WireOp::Read {
                    addr: GuestVirtAddr::new(0x10_0000),
                    len: 64,
                },
                Some(GrantRef(0)),
            ),
            vec![MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(0x10_0000),
                len: 64,
            }],
        ),
        (
            base(
                WireOp::Write {
                    addr: GuestVirtAddr::new(0x20_0000),
                    len: 512,
                },
                Some(GrantRef(0)),
            ),
            vec![MemOpGrant::CopyFromGuest {
                addr: GuestVirtAddr::new(0x20_0000),
                len: 512,
            }],
        ),
        (
            base(
                WireOp::Read {
                    addr: GuestVirtAddr::new(0xfff),
                    len: 1,
                },
                Some(GrantRef(0)),
            ),
            vec![MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(0xfff),
                len: 1,
            }],
        ),
    ]
}

struct Violation {
    decls: Vec<MemOpGrant>,
    bytes: Vec<u8>,
    attack: &'static str,
    reason: String,
}

/// `adversary-containment`: the enumeration described in the module docs.
/// [`Mutant::GrantBypass`] replaces enforcement with unconditional accept;
/// the bit-flip sweep must then catch a frame whose moved buffer escapes
/// its declared window.
pub fn check_containment(mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "adversary-containment";
    const DESC: &str =
        "every mutated wire frame and forged/replayed grant ref is rejected at decode or \
         by grant validation; enforcement never accepts outside the declared windows";
    let bypass = mutant == Some(Mutant::GrantBypass);
    let mut violations: Vec<Violation> = Vec::new();
    let mut frames = 0usize;
    let mut checks = 0usize;
    let mut detected = 0usize;

    for (request, decls) in attack_corpus() {
        let mut table = GrantTable::new();
        let legit = table.declare(decls.clone()).expect("declare fits");
        assert_eq!(legit, GrantRef(0), "fresh tables number refs from zero");
        let pristine = request.encode();
        frames += 1;

        let mut try_frame = |bytes: &[u8], attack: &'static str| {
            checks += 1;
            match contain_frame(bytes, &table, legit, &decls, bypass) {
                Ok(true) => detected += 1,
                Ok(false) => {}
                Err(reason) => violations.push(Violation {
                    decls: decls.clone(),
                    bytes: bytes.to_vec(),
                    attack,
                    reason,
                }),
            }
        };

        // The pristine frame itself must be *served*, not flagged: the
        // oracle and enforcement agree it is covered.
        try_frame(&pristine, "pristine");
        // Every single-bit flip (wire mutation).
        for index in 0..pristine.len() {
            for bit in 0..8 {
                let mut mutated = pristine.clone();
                mutated[index] ^= 1 << bit;
                try_frame(&mutated, "bit-flip");
            }
        }
        // Every truncation.
        for len in 0..pristine.len() {
            try_frame(&pristine[..len], "truncation");
        }
        // Trailing bytes after a valid frame.
        let mut trailing = pristine.clone();
        trailing.extend_from_slice(&[0xa5, 0x5a]);
        try_frame(&trailing, "trailing-bytes");

        // Grant replay: the same legit frame after revocation must not
        // validate (the ref is dead), and a forged ref must never have
        // worked. `revoke` models both driver-VM containment and
        // `recover_driver_vm`'s table rebuild.
        let mut forged = request.clone();
        forged.grant = Some(GrantRef(7));
        checks += 1;
        match contain_frame(&forged.encode(), &table, legit, &decls, bypass) {
            Ok(true) => detected += 1,
            Ok(false) => {}
            Err(reason) => violations.push(Violation {
                decls: decls.clone(),
                bytes: forged.encode(),
                attack: "forged-ref",
                reason,
            }),
        }
        assert!(table.revoke(legit), "legit ref is live until here");
        checks += 1;
        // After revocation nothing covers the pristine frame either: the
        // oracle still calls it legitimate *by shape*, but enforcement
        // must reject the dead ref — so only a bypass can accept, and the
        // oracle no longer matters. Model that by requiring rejection.
        match contain_frame(&pristine, &table, GrantRef(u32::MAX), &decls, bypass) {
            Ok(true) => detected += 1,
            Ok(false) => violations.push(Violation {
                decls: decls.clone(),
                bytes: pristine.clone(),
                attack: "replayed-ref",
                reason: "a revoked grant ref still validated; replay after revocation".into(),
            }),
            Err(reason) => violations.push(Violation {
                decls: decls.clone(),
                bytes: pristine.clone(),
                attack: "replayed-ref",
                reason,
            }),
        }
    }

    if violations.is_empty() {
        assert!(detected > 0, "the sweep must detect some attacks");
        return PropertyReport::proved(NAME, DESC, frames, checks);
    }
    let findings = violations
        .iter()
        .take(5)
        .map(|v| {
            Diagnostic::new(
                DiagCode::Vp001,
                "adversary",
                None,
                format!("[{}] {}; decls {:?}", v.attack, v.reason, v.decls),
            )
        })
        .collect();
    let first = &violations[0];
    let mut fixture = Fixture::new(NAME, mutant.map(Mutant::name), &first.reason);
    for decl in &first.decls {
        fixture.push_data("decl", decl_line(decl));
    }
    fixture.push_data("attack", first.attack);
    fixture.push_data("bytes", to_hex(&first.bytes));
    PropertyReport::disproved(NAME, DESC, frames, checks, findings, Some(fixture))
}

fn decl_line(grant: &MemOpGrant) -> String {
    match *grant {
        MemOpGrant::CopyFromGuest { addr, len } => format!("copy_from:{}:{len}", addr.raw()),
        MemOpGrant::CopyToGuest { addr, len } => format!("copy_to:{}:{len}", addr.raw()),
        MemOpGrant::MapPages { va, pages, access } => {
            format!("map:{}:{pages}:{}", va.raw(), access.bits())
        }
        MemOpGrant::UnmapPages { va, pages } => format!("unmap:{}:{pages}", va.raw()),
    }
}

/// Replays an `adversary-containment` fixture: re-declares the `decl=`
/// windows on a fresh table and re-runs containment on the `bytes=` frame.
/// Fixtures emitted by the live adversary may instead carry a `request=`
/// memop line (the minimized attack in memop form); both shapes replay.
///
/// # Errors
///
/// `Err(reason)` when enforcement (under `mutant`) accepts an operation
/// the coverage model rejects — i.e. the recorded bypass reproduces.
pub fn replay(fixture: &Fixture, mutant: Option<Mutant>) -> Result<(), String> {
    let bypass = mutant == Some(Mutant::GrantBypass);
    let decls: Vec<MemOpGrant> = fixture
        .values("decl")
        .into_iter()
        .map(parse_decl)
        .collect::<Result<_, _>>()?;
    let mut table = GrantTable::new();
    let legit = table
        .declare(decls.clone())
        .map_err(|e| format!("declare failed: {e}"))?;
    if let Some(hex) = fixture.value("bytes") {
        let bytes = from_hex(hex)?;
        if fixture.value("attack") == Some("replayed-ref") {
            table.revoke(legit);
            return match contain_frame(&bytes, &table, GrantRef(u32::MAX), &decls, bypass) {
                Ok(true) => Ok(()),
                Ok(false) => Err("a revoked grant ref still validated".into()),
                Err(reason) => Err(reason),
            };
        }
        return contain_frame(&bytes, &table, legit, &decls, bypass).map(|_| ());
    }
    // Memop-form fixtures from the live adversary: the request line is the
    // already-decoded attack; containment is the enforcement-vs-model
    // comparison alone.
    let request = parse_request(fixture.value("request").ok_or("missing bytes= or request=")?)?;
    let enforced = bypass || table.validate(legit, &request).is_ok();
    let legitimate = decls.iter().any(|d| model_covers(d, &request));
    if enforced && !legitimate {
        return Err(format!(
            "enforcement accepted {request:?} although the declared windows do not cover it"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_proves_on_the_real_kernels() {
        let report = check_containment(None);
        assert!(report.proved, "findings: {:?}", report.findings);
        assert!(report.transitions > 1_000, "sweep too small: {}", report.transitions);
    }

    #[test]
    fn the_grant_bypass_mutant_is_disproved_with_a_replayable_fixture() {
        let report = check_containment(Some(Mutant::GrantBypass));
        assert!(!report.proved);
        assert!(!report.findings.is_empty());
        let fixture = report.counterexample.expect("counterexample emitted");
        assert_eq!(fixture.file_name(), "grant-bypass.fixture");
        // Both directions of the regression: clean on the real kernels,
        // violated under the recorded mutant.
        assert!(replay(&fixture, None).is_ok());
        assert!(replay(&fixture, Some(Mutant::GrantBypass)).is_err());
    }

    #[test]
    fn memop_form_fixtures_replay_both_ways() {
        let mut fixture = Fixture::new(
            "adversary-containment",
            Some("grant-bypass"),
            "enforcement accepted an uncovered copy",
        );
        fixture.push_data("decl", "copy_to:1048576:64");
        fixture.push_data("request", "copy_to:1048576:65");
        assert!(replay(&fixture, None).is_ok());
        assert!(replay(&fixture, Some(Mutant::GrantBypass)).is_err());
    }
}
