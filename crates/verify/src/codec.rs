//! Wire-codec properties: round-trip fidelity, the WP001 single-read
//! discipline on the *real* decoders, and the IR/decoder cross-check that
//! keeps the analyzer's model of the shared page honest.
//!
//! Three properties:
//!
//! * `codec-roundtrip` — for a boundary-value corpus of every wire type
//!   ([`WireRequest`] across all ten opcodes × grant present/absent,
//!   [`WireResponse`] across all three tags, [`WireSignal`]):
//!   `decode(encode(x)) == x`, a trailing byte is rejected, and *every*
//!   strict prefix of the encoding is rejected (no truncated message parses).
//! * `codec-single-read` — the shared page is peer-writable, so each byte
//!   must be read at most once per decode (a re-read is a TOCTOU window).
//!   Checked dynamically by running the production `decode_probed` paths
//!   under a counting probe over the corpus *and* every truncation of it,
//!   and statically by running the `WP001` wire lint over the decode IRs.
//!   [`Mutant::CodecDoubleRead`] swaps in the doctored re-reading IR, which
//!   the lint must flag.
//! * `codec-ir-crosscheck` — the IR the analyzer lints
//!   ([`wire_request_decode_ir`]) and the decoder the backend runs are two
//!   descriptions of one layout. A recording probe tiles the real decoder's
//!   reads and compares them against the IR's const-evaluated
//!   `CopyFromUser` offsets; if either side drifts the property fails with
//!   `VP004`. [`Mutant::CodecIrDrift`] swaps in an IR whose length word
//!   moved by one byte.

use std::collections::BTreeMap;

use paradice_analyzer::ir::{Cond, Expr, Function, Handler, Stmt, VarId};
use paradice_analyzer::lint::wire::check_wire;
use paradice_analyzer::lint::{DiagCode, Diagnostic};
use paradice_cvd::proto::{
    doctored_wire_request_decode_ir, wire_request_decode_ir, wire_response_decode_ir, ReadProbe,
    WireOp, WireRequest, WireResponse, WireSignal, MAX_PATH,
};
use paradice_devfs::{Errno, IoctlCmd, OpenFlags, PollEvents};
use paradice_hypervisor::GrantRef;
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr};

use crate::fixture::{to_hex, Fixture};
use crate::report::{Mutant, PropertyReport};

/// Counts how many times each byte offset is read during one decode.
#[derive(Default)]
struct CountProbe {
    counts: BTreeMap<usize, u32>,
}

impl CountProbe {
    /// The first offset read more than once, if any.
    fn double_read(&self) -> Option<usize> {
        self.counts.iter().find(|(_, &n)| n > 1).map(|(&at, _)| at)
    }

    /// Whether every offset in `0..len` was read exactly once.
    fn covers_exactly(&self, len: usize) -> bool {
        self.counts.len() == len && self.counts.values().all(|&n| n == 1)
    }
}

impl ReadProbe for CountProbe {
    fn on_read(&mut self, at: usize, len: usize) {
        for offset in at..at + len {
            *self.counts.entry(offset).or_insert(0) += 1;
        }
    }
}

/// Records the ordered `(offset, len)` reads of one decode.
#[derive(Default)]
struct RecordProbe {
    reads: Vec<(usize, usize)>,
}

impl RecordProbe {
    /// Whether the reads tile `0..total` contiguously, in order, with no
    /// gap, overlap, or re-read anywhere.
    fn tiles(&self, total: usize) -> bool {
        let mut at = 0;
        for &(start, len) in &self.reads {
            if start != at {
                return false;
            }
            at += len;
        }
        at == total
    }

    /// The length of the read starting exactly at `offset`, if one exists.
    fn read_at(&self, offset: usize) -> Option<usize> {
        self.reads
            .iter()
            .find(|&&(start, _)| start == offset)
            .map(|&(_, len)| len)
    }
}

impl ReadProbe for RecordProbe {
    fn on_read(&mut self, at: usize, len: usize) {
        self.reads.push((at, len));
    }
}

fn request_corpus() -> Vec<WireRequest> {
    let ops = vec![
        WireOp::Open {
            path: String::new(),
            flags: OpenFlags::RDONLY,
        },
        WireOp::Open {
            path: "net/ixgbe0".to_owned(),
            flags: OpenFlags::RDWR.nonblocking(),
        },
        WireOp::Open {
            path: "p".repeat(MAX_PATH),
            flags: OpenFlags::WRONLY,
        },
        WireOp::Release,
        WireOp::Read {
            addr: GuestVirtAddr::new(0),
            len: 0,
        },
        WireOp::Read {
            addr: GuestVirtAddr::new(u64::MAX),
            len: u64::MAX,
        },
        WireOp::Write {
            addr: GuestVirtAddr::new(0x1000),
            len: 0x1000,
        },
        WireOp::Ioctl {
            cmd: IoctlCmd(0),
            arg: 0,
        },
        WireOp::Ioctl {
            cmd: IoctlCmd(u32::MAX),
            arg: u64::MAX,
        },
        WireOp::Mmap {
            va: GuestVirtAddr::new(0x7000_0000),
            len: 0x10_000,
            offset: 0x40,
            access: Access::READ,
        },
        WireOp::Munmap {
            va: GuestVirtAddr::new(0x7000_0000),
            len: 0x10_000,
        },
        WireOp::Fault {
            va: GuestVirtAddr::new(0x7000_1000),
        },
        WireOp::Poll,
        WireOp::Fasync { on: true },
        WireOp::Fasync { on: false },
    ];
    let mut out = Vec::new();
    for (index, op) in ops.into_iter().enumerate() {
        for grant in [None, Some(GrantRef(index as u32))] {
            out.push(WireRequest {
                task: index as u64 + 1,
                pt_root: GuestPhysAddr::new((index as u64 + 1) * 0x1000),
                handle: index as u64,
                span: u64::MAX - index as u64,
                grant,
                op: op.clone(),
            });
        }
    }
    out
}

fn response_corpus() -> Vec<WireResponse> {
    vec![
        WireResponse::Value(0),
        WireResponse::Value(1),
        WireResponse::Value(-1),
        WireResponse::Value(i64::MAX),
        WireResponse::Value(i64::MIN),
        WireResponse::Err(Errno::Eperm),
        WireResponse::Err(Errno::Efault),
        WireResponse::Err(Errno::Edquot),
        WireResponse::Poll(PollEvents::NONE),
        WireResponse::Poll(PollEvents::IN | PollEvents::OUT | PollEvents::ERR | PollEvents::HUP),
        WireResponse::Poll(PollEvents::from_bits(u16::MAX)),
    ]
}

fn signal_corpus() -> Vec<WireSignal> {
    vec![
        WireSignal { task: 0, handle: 0 },
        WireSignal {
            task: 1,
            handle: u64::MAX,
        },
        WireSignal {
            task: u64::MAX,
            handle: 7,
        },
    ]
}

/// One decode attempt per wire kind, unified for the generic sweeps below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Request,
    Response,
    Signal,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Request => "request",
            Kind::Response => "response",
            Kind::Signal => "signal",
        }
    }

    /// Decodes under `probe`; `Ok(())` when the bytes parse.
    fn decode_probed<P: ReadProbe>(self, bytes: &[u8], probe: &mut P) -> Result<(), ()> {
        match self {
            Kind::Request => WireRequest::decode_probed(bytes, probe).map(|_| ()).map_err(|_| ()),
            Kind::Response => {
                WireResponse::decode_probed(bytes, probe).map(|_| ()).map_err(|_| ())
            }
            Kind::Signal => WireSignal::decode_probed(bytes, probe).map(|_| ()).map_err(|_| ()),
        }
    }
}

/// Every `(kind, encoding)` in the corpus.
fn encoded_corpus() -> Vec<(Kind, Vec<u8>)> {
    let mut out: Vec<(Kind, Vec<u8>)> = Vec::new();
    out.extend(request_corpus().iter().map(|r| (Kind::Request, r.encode())));
    out.extend(response_corpus().iter().map(|r| (Kind::Response, r.encode())));
    out.extend(signal_corpus().iter().map(|s| (Kind::Signal, s.encode())));
    out
}

fn codec_fixture(property: &str, mutant: Option<Mutant>, reason: &str) -> Fixture {
    Fixture::new(property, mutant.map(Mutant::name), reason)
}

/// `codec-roundtrip`: encode/decode identity, trailing-byte rejection, and
/// all-prefix truncation rejection over the boundary corpus.
pub fn check_roundtrip(mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "codec-roundtrip";
    const DESC: &str =
        "wire codec: decode∘encode is the identity for all three wire types, and no \
         extended or truncated encoding parses (boundary-value corpus)";
    fn fail(
        mutant: Option<Mutant>,
        cases: usize,
        checks: usize,
        reason: String,
        bytes: &[u8],
    ) -> PropertyReport {
        let finding = Diagnostic::new(DiagCode::Vp003, "wire-codec", None, reason.clone());
        let mut fixture = codec_fixture(NAME, mutant, &reason);
        fixture.push_data("bytes", to_hex(bytes));
        PropertyReport::disproved(NAME, DESC, cases, checks, vec![finding], Some(fixture))
    }
    let mut cases = 0usize;
    let mut checks = 0usize;

    for request in request_corpus() {
        cases += 1;
        let bytes = request.encode();
        checks += 1;
        if WireRequest::decode(&bytes).as_ref() != Ok(&request) {
            let reason = format!("request did not roundtrip: {request:?}");
            return fail(mutant, cases, checks, reason, &bytes);
        }
        if let Some((reason, bad)) = reject_mangled(Kind::Request, &bytes, &mut checks) {
            return fail(mutant, cases, checks, reason, &bad);
        }
    }
    for response in response_corpus() {
        cases += 1;
        let bytes = response.encode();
        checks += 1;
        if WireResponse::decode(&bytes) != Ok(response) {
            let reason = format!("response did not roundtrip: {response:?}");
            return fail(mutant, cases, checks, reason, &bytes);
        }
        if let Some((reason, bad)) = reject_mangled(Kind::Response, &bytes, &mut checks) {
            return fail(mutant, cases, checks, reason, &bad);
        }
    }
    for signal in signal_corpus() {
        cases += 1;
        let bytes = signal.encode();
        checks += 1;
        if WireSignal::decode(&bytes) != Ok(signal) {
            let reason = format!("signal did not roundtrip: {signal:?}");
            return fail(mutant, cases, checks, reason, &bytes);
        }
        if let Some((reason, bad)) = reject_mangled(Kind::Signal, &bytes, &mut checks) {
            return fail(mutant, cases, checks, reason, &bad);
        }
    }
    PropertyReport::proved(NAME, DESC, cases, checks)
}

/// Rejection sweep shared by the three types: a trailing byte and every
/// strict prefix must fail to decode. Returns the reason and offending
/// bytes of the first acceptance.
fn reject_mangled(kind: Kind, bytes: &[u8], checks: &mut usize) -> Option<(String, Vec<u8>)> {
    let mut extended = bytes.to_vec();
    extended.push(0xaa);
    *checks += 1;
    if kind
        .decode_probed(&extended, &mut paradice_cvd::proto::NoProbe)
        .is_ok()
    {
        return Some((format!("{} accepted a trailing byte", kind.name()), extended));
    }
    for cut in 0..bytes.len() {
        *checks += 1;
        if kind
            .decode_probed(&bytes[..cut], &mut paradice_cvd::proto::NoProbe)
            .is_ok()
        {
            return Some((
                format!("{} accepted a {cut}-byte truncation", kind.name()),
                bytes[..cut].to_vec(),
            ));
        }
    }
    None
}

/// `codec-single-read`: each shared-page byte is read at most once per
/// decode — dynamically over the corpus and its truncations, statically via
/// the `WP001` wire lint on the decode IRs.
pub fn check_single_read(mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "codec-single-read";
    const DESC: &str =
        "wire codec: every decoder reads each shared-page byte at most once (WP001) — \
         counting probe over the corpus and all truncations, plus the wire lint on the \
         decode IRs";
    let mut cases = 0usize;
    let mut checks = 0usize;

    // Dynamic half: the real decode paths under a counting probe.
    for (kind, bytes) in encoded_corpus() {
        // The full message and every truncation: error paths must not
        // double-read either.
        for cut in (0..=bytes.len()).rev() {
            cases += 1;
            let slice = &bytes[..cut];
            let mut probe = CountProbe::default();
            let decoded = kind.decode_probed(slice, &mut probe);
            checks += 1;
            if let Some(at) = probe.double_read() {
                let reason = format!(
                    "{} decoder read byte {at} more than once (TOCTOU window on the \
                     shared page)",
                    kind.name(),
                );
                let finding = Diagnostic::new(DiagCode::Vp003, "wire-codec", None, reason.clone());
                let mut fixture = codec_fixture(NAME, mutant, &reason);
                fixture.push_data("kind", kind.name());
                fixture.push_data("bytes", to_hex(slice));
                return PropertyReport::disproved(
                    NAME, DESC, cases, checks, vec![finding], Some(fixture),
                );
            }
            // A successful decode must also have consumed every byte exactly
            // once — `done()` plus the single-read counts pin the message
            // length to the read tiling.
            checks += 1;
            if decoded.is_ok() && !probe.covers_exactly(slice.len()) {
                let reason = format!(
                    "{} decoder accepted {} bytes but read a different tiling",
                    kind.name(),
                    slice.len(),
                );
                let finding = Diagnostic::new(DiagCode::Vp003, "wire-codec", None, reason.clone());
                let mut fixture = codec_fixture(NAME, mutant, &reason);
                fixture.push_data("kind", kind.name());
                fixture.push_data("bytes", to_hex(slice));
                return PropertyReport::disproved(
                    NAME, DESC, cases, checks, vec![finding], Some(fixture),
                );
            }
        }
    }

    // Static half: the wire lint over the decode IRs. The mutant swaps the
    // request IR for the doctored re-reading decoder, which WP001 must flag.
    let request_ir = if mutant == Some(Mutant::CodecDoubleRead) {
        doctored_wire_request_decode_ir()
    } else {
        wire_request_decode_ir()
    };
    for (label, handler) in [
        ("decode_request", &request_ir),
        ("decode_response", &wire_response_decode_ir()),
    ] {
        cases += 1;
        let mut diags = Vec::new();
        let (checked, findings) = check_wire(label, handler, &mut diags);
        checks += checked + findings;
        if !diags.is_empty() {
            let reason = format!(
                "wire lint disproved single-read on the {label} IR: {}",
                diags[0].message,
            );
            let mut all = vec![Diagnostic::new(
                DiagCode::Vp003,
                "wire-codec",
                None,
                reason.clone(),
            )];
            all.extend(diags);
            let mut fixture = codec_fixture(NAME, mutant, &reason);
            fixture.push_data("ir", label);
            return PropertyReport::disproved(NAME, DESC, cases, checks, all, Some(fixture));
        }
    }
    PropertyReport::proved(NAME, DESC, cases, checks)
}

/// Const-evaluates an IR address/length expression. `Arg` is offset 0;
/// `None` means the value is runtime-dependent (a copied field).
fn const_eval(expr: &Expr) -> Option<u64> {
    match expr {
        Expr::Const(value) => Some(*value),
        Expr::Arg => Some(0),
        Expr::Add(a, b) => Some(const_eval(a)?.checked_add(const_eval(b)?)?),
        Expr::Mul(a, b) => Some(const_eval(a)?.checked_mul(const_eval(b)?)?),
        Expr::Cmd | Expr::Var(_) | Expr::Field { .. } => None,
    }
}

/// All `CopyFromUser` `(offset, len)` pairs in statement order, descending
/// into both branches of conditionals.
fn ir_reads(stmts: &[Stmt], out: &mut Vec<(Option<u64>, Option<u64>)>) {
    for stmt in stmts {
        match stmt {
            Stmt::CopyFromUser { src, len, .. } => out.push((const_eval(src), const_eval(len))),
            Stmt::If { then, els, .. } => {
                ir_reads(then, out);
                ir_reads(els, out);
            }
            Stmt::SwitchCmd { arms, default } => {
                for (_, body) in arms {
                    ir_reads(body, out);
                }
                ir_reads(default, out);
            }
            Stmt::ForRange { body, .. } => ir_reads(body, out),
            _ => {}
        }
    }
}

fn handler_reads(handler: &Handler) -> Vec<(Option<u64>, Option<u64>)> {
    let mut out = Vec::new();
    let entry = handler
        .function(handler.entry())
        .expect("entry function exists");
    ir_reads(&entry.body, &mut out);
    out
}

/// A request IR whose length word drifted one byte: the known-bad artifact
/// [`Mutant::CodecIrDrift`] swaps in. Everything else matches the real IR.
fn drifted_request_ir() -> Handler {
    let v = VarId;
    let body = vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(39),
        },
        Stmt::CopyFromUser {
            dst: v(1),
            // The drift: the IR thinks the length word sits one byte later.
            src: Expr::add(Expr::Arg, Expr::Const(40)),
            len: Expr::Const(4),
        },
        Stmt::If {
            cond: Cond::Gt(Expr::field(v(1), 0, 4), Expr::Const(MAX_PATH as u64)),
            then: vec![Stmt::Return],
            els: vec![],
        },
        Stmt::CopyFromUser {
            dst: v(2),
            src: Expr::add(Expr::Arg, Expr::Const(44)),
            len: Expr::field(v(1), 0, 4),
        },
        Stmt::Return,
    ];
    let mut functions = BTreeMap::new();
    functions.insert("decode_request".to_owned(), Function { body });
    Handler::new("decode_request", functions)
}

/// `codec-ir-crosscheck`: the decode IR and the production decoder describe
/// the same byte layout.
pub fn check_ir_crosscheck(mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "codec-ir-crosscheck";
    const DESC: &str =
        "decode IR vs production decoder: the analyzer's model of the shared page \
         (WP001 fixture) matches the real Reader's byte tiling, so neither can drift";
    fn drift(
        mutant: Option<Mutant>,
        cases: usize,
        checks: usize,
        reason: String,
        expected: String,
        actual: String,
    ) -> PropertyReport {
        let finding = Diagnostic::new(DiagCode::Vp004, "wire-codec", None, reason.clone());
        let mut fixture = codec_fixture(NAME, mutant, &reason);
        fixture.push_data("expected", expected);
        fixture.push_data("actual", actual);
        PropertyReport::disproved(NAME, DESC, cases, checks, vec![finding], Some(fixture))
    }
    let mut cases = 0usize;
    let mut checks = 0usize;

    // --- Request side: the grant-present Open layout the IR models. ---
    let request_ir = if mutant == Some(Mutant::CodecIrDrift) {
        drifted_request_ir()
    } else {
        wire_request_decode_ir()
    };
    let ir = handler_reads(&request_ir);
    let path = "abc";
    let request = WireRequest {
        task: 7,
        pt_root: GuestPhysAddr::new(0x3000),
        handle: 9,
        span: 11,
        grant: Some(GrantRef(4)),
        op: WireOp::Open {
            path: path.to_owned(),
            flags: OpenFlags::RDWR,
        },
    };
    let bytes = request.encode();
    let mut probe = RecordProbe::default();
    WireRequest::decode_probed(&bytes, &mut probe).expect("corpus request decodes");
    cases += 1;
    checks += ir.len() + probe.reads.len();
    // The decoder must read the whole message as one in-order contiguous
    // tiling, with the IR's two interesting boundaries where the IR says
    // they are: the 4-byte length word at 39 (so the fixed prefix is
    // exactly [0, 39)) and the dynamically-sized path at 43.
    let tiling_ok = probe.tiles(bytes.len())
        && probe.read_at(39) == Some(4)
        && probe.read_at(43) == Some(path.len());
    if !tiling_ok {
        return drift(
            mutant,
            cases,
            checks,
            "the production request decoder's read tiling moved".to_owned(),
            format!(
                "contiguous tiling of {} bytes with reads (39,4) and (43,{})",
                bytes.len(),
                path.len(),
            ),
            format!("{:?}", probe.reads),
        );
    }
    let expected_ir = vec![
        (Some(0u64), Some(39u64)), // fixed prefix
        (Some(39), Some(4)),       // path length word
        (Some(43), None),          // path bytes, field-sized
    ];
    if ir != expected_ir {
        return drift(
            mutant,
            cases,
            checks,
            "the request decode IR's CopyFromUser layout moved".to_owned(),
            format!("{expected_ir:?}"),
            format!("{ir:?}"),
        );
    }

    // --- Response side: tag byte then a branch-dependent width. ---
    let ir = handler_reads(&wire_response_decode_ir());
    cases += 1;
    checks += ir.len();
    let expected_ir = vec![
        (Some(0u64), Some(1u64)), // tag
        (Some(1), Some(8)),       // Value branch
        (Some(1), Some(4)),       // Err/Poll branch
    ];
    if ir != expected_ir {
        return drift(
            mutant,
            cases,
            checks,
            "the response decode IR's CopyFromUser layout moved".to_owned(),
            format!("{expected_ir:?}"),
            format!("{ir:?}"),
        );
    }
    for (response, expect) in [
        (WireResponse::Value(5), vec![(0usize, 1usize), (1, 8)]),
        (WireResponse::Err(Errno::Eio), vec![(0, 1), (1, 4)]),
        (WireResponse::Poll(PollEvents::IN), vec![(0, 1), (1, 4)]),
    ] {
        cases += 1;
        checks += expect.len();
        let mut probe = RecordProbe::default();
        WireResponse::decode_probed(&response.encode(), &mut probe).expect("decodes");
        if probe.reads != expect {
            return drift(
                mutant,
                cases,
                checks,
                format!("the production response decoder's tiling moved for {response:?}"),
                format!("{expect:?}"),
                format!("{:?}", probe.reads),
            );
        }
    }
    PropertyReport::proved(NAME, DESC, cases, checks)
}

/// Replays a codec fixture under `mutant`.
///
/// Byte-carrying fixtures re-decode their `bytes=` payload under the
/// counting probe; IR fixtures re-run the static half of their property.
///
/// # Errors
///
/// `Err(reason)` when the recorded violation reproduces.
pub fn replay(fixture: &Fixture, mutant: Option<Mutant>) -> Result<(), String> {
    let report = match fixture.property.as_str() {
        "codec-roundtrip" => check_roundtrip(mutant),
        "codec-single-read" => check_single_read(mutant),
        "codec-ir-crosscheck" => check_ir_crosscheck(mutant),
        other => return Err(format!("unknown codec property {other:?}")),
    };
    if report.proved {
        Ok(())
    } else {
        Err(report
            .findings
            .first()
            .map(|d| d.message.clone())
            .unwrap_or_else(|| "disproved".to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_properties_prove_on_the_real_codec() {
        for report in [
            check_roundtrip(None),
            check_single_read(None),
            check_ir_crosscheck(None),
        ] {
            assert!(report.proved, "{}: {:?}", report.name, report.findings);
            assert!(report.states > 0 && report.transitions > 0);
        }
        // The corpus is genuinely boundary-heavy: dozens of cases, hundreds
        // of truncation checks.
        assert!(check_single_read(None).transitions > 1000);
    }

    #[test]
    fn double_read_mutant_is_caught_by_the_wire_lint() {
        let report = check_single_read(Some(Mutant::CodecDoubleRead));
        assert!(!report.proved);
        assert!(report
            .findings
            .iter()
            .any(|d| d.message.contains("decode_request")));
        let fixture = report.counterexample.expect("fixture emitted");
        assert!(replay(&fixture, None).is_ok());
        assert!(replay(&fixture, Some(Mutant::CodecDoubleRead)).is_err());
    }

    #[test]
    fn ir_drift_mutant_is_caught_by_the_crosscheck() {
        let report = check_ir_crosscheck(Some(Mutant::CodecIrDrift));
        assert!(!report.proved);
        let fixture = report.counterexample.expect("fixture emitted");
        assert!(fixture.value("expected").is_some());
        assert!(replay(&fixture, None).is_ok());
        assert!(replay(&fixture, Some(Mutant::CodecIrDrift)).is_err());
    }
}
