//! Grant-table properties: soundness, completeness, batch semantics, and
//! revocation — checked by exhaustive boundary-value enumeration against an
//! exact-arithmetic oracle.
//!
//! The grant table is the isolation core's reference monitor (paper §4.1):
//! the driver VM touches guest memory *only* through hypercalls the table
//! validates. Its real implementation stacks three layers — `range_within`
//! saturating/checked u64 arithmetic, per-kind sorted range indexes
//! (`RangeIndex`, PR 5), and the linear `MemOpGrant::covers` fallback — and
//! this module proves all three agree with a fourth, independent
//! formulation: coverage computed in exact `u128` arithmetic.
//!
//! The spec the oracle encodes (also the trust boundary documented in
//! DESIGN.md §11): a request `[addr, addr+len)` is accepted iff
//!
//! * `addr + len ≤ 2⁶⁴ − 1` (the byte at `2⁶⁴ − 1` is unaddressable by
//!   convention — request ends must be representable in `u64`),
//! * `addr ≥ start`, and
//! * `addr + len ≤ min(start + glen, 2⁶⁴ − 1)` for some declared window
//!   `[start, start+glen)` of the matching kind (page windows additionally
//!   require the requested access to be a subset of the granted one).
//!
//! Enumeration is *exhaustive over boundary values*: every combination of
//! addresses/lengths drawn from the overflow-critical frontier (0, 1, page
//! edges, `u64::MAX` neighborhoods) for single declarations, plus reduced
//! cross products for two- and three-window tables so the sorted index's
//! `partition_point`/`prefix_max_end` logic is exercised across windows.

use paradice_hypervisor::{
    GrantError, GrantRef, GrantTable, MemOpGrant, MemOpRequest, GRANT_TABLE_CAPACITY,
};
use paradice_analyzer::lint::{DiagCode, Diagnostic};
use paradice_mem::{Access, GuestVirtAddr, PAGE_SIZE};

use crate::fixture::Fixture;
use crate::report::{Mutant, PropertyReport};

/// Boundary addresses: zero, off-by-one, page edges, and the `u64::MAX`
/// overflow frontier.
const ADDRS: [u64; 7] = [
    0,
    1,
    0xfff,
    0x1000,
    0x10_0000,
    u64::MAX - 0x1000,
    u64::MAX,
];

/// Boundary lengths, including the saturating-end extremes.
const LENS: [u64; 6] = [0, 1, 0xfff, 0x1000, u64::MAX - 1, u64::MAX];

/// Reduced sets for multi-window tables (cross products stay tractable).
const PAIR_ADDRS: [u64; 4] = [0, 0xfff, 0x1000, u64::MAX - 0x1000];
const PAIR_LENS: [u64; 3] = [0, 1, 0x1000];
const TRIPLE_ADDRS: [u64; 3] = [0, 0x1000, 0x2000];
const TRIPLE_LENS: [u64; 2] = [1, 0x1000];

/// The exact-arithmetic coverage model. `strict_end` is the
/// [`Mutant::GrantCoverOffByOne`] perturbation: requiring `end < grant_end`
/// instead of `≤` flips the verdict on every exact-fit request, which the
/// enumeration must detect.
fn model_within(r_addr: u64, r_len: u64, g_start: u64, g_len: u64, strict_end: bool) -> bool {
    let r_end = u128::from(r_addr) + u128::from(r_len);
    if r_end > u128::from(u64::MAX) {
        return false;
    }
    let g_end = (u128::from(g_start) + u128::from(g_len)).min(u128::from(u64::MAX));
    let end_ok = if strict_end {
        r_end < g_end
    } else {
        r_end <= g_end
    };
    u128::from(r_addr) >= u128::from(g_start) && end_ok
}

/// One declared window covers one request, per the model.
fn model_covers(grant: &MemOpGrant, request: &MemOpRequest, strict_end: bool) -> bool {
    match (grant, request) {
        (
            MemOpGrant::CopyFromGuest { addr, len },
            MemOpRequest::CopyFromGuest {
                addr: r_addr,
                len: r_len,
            },
        )
        | (
            MemOpGrant::CopyToGuest { addr, len },
            MemOpRequest::CopyToGuest {
                addr: r_addr,
                len: r_len,
            },
        ) => model_within(r_addr.raw(), *r_len, addr.raw(), *len, strict_end),
        (
            MemOpGrant::MapPages { va, pages, access },
            MemOpRequest::MapPage {
                va: r_va,
                access: r_access,
            },
        ) => {
            // Page windows in the model stay below the u64 byte-length
            // horizon (`pages ≤ 2⁴⁰`); see DESIGN.md §11's trust boundary.
            model_within(
                r_va.raw(),
                PAGE_SIZE,
                va.raw(),
                pages * PAGE_SIZE,
                strict_end,
            ) && access.contains(*r_access)
        }
        (MemOpGrant::UnmapPages { va, pages }, MemOpRequest::UnmapPage { va: r_va }) => {
            model_within(r_va.raw(), PAGE_SIZE, va.raw(), pages * PAGE_SIZE, strict_end)
        }
        _ => false,
    }
}

/// The model verdict for a whole declaration set (completeness: accepted
/// iff *some* window covers).
fn model_accepts(decls: &[MemOpGrant], request: &MemOpRequest, strict_end: bool) -> bool {
    decls.iter().any(|d| model_covers(d, request, strict_end))
}

fn decl_line(grant: &MemOpGrant) -> String {
    match *grant {
        MemOpGrant::CopyFromGuest { addr, len } => format!("copy_from:{}:{len}", addr.raw()),
        MemOpGrant::CopyToGuest { addr, len } => format!("copy_to:{}:{len}", addr.raw()),
        MemOpGrant::MapPages { va, pages, access } => {
            format!("map:{}:{pages}:{}", va.raw(), access.bits())
        }
        MemOpGrant::UnmapPages { va, pages } => format!("unmap:{}:{pages}", va.raw()),
    }
}

fn request_line(request: &MemOpRequest) -> String {
    match *request {
        MemOpRequest::CopyFromGuest { addr, len } => format!("copy_from:{}:{len}", addr.raw()),
        MemOpRequest::CopyToGuest { addr, len } => format!("copy_to:{}:{len}", addr.raw()),
        MemOpRequest::MapPage { va, access } => format!("map:{}:{}", va.raw(), access.bits()),
        MemOpRequest::UnmapPage { va } => format!("unmap:{}", va.raw()),
    }
}

/// Parses a `decl=` payload line.
pub(crate) fn parse_decl(line: &str) -> Result<MemOpGrant, String> {
    let parts: Vec<&str> = line.split(':').collect();
    let num = |s: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad number {s:?}"))
    };
    match parts.as_slice() {
        ["copy_from", addr, len] => Ok(MemOpGrant::CopyFromGuest {
            addr: GuestVirtAddr::new(num(addr)?),
            len: num(len)?,
        }),
        ["copy_to", addr, len] => Ok(MemOpGrant::CopyToGuest {
            addr: GuestVirtAddr::new(num(addr)?),
            len: num(len)?,
        }),
        ["map", va, pages, access] => Ok(MemOpGrant::MapPages {
            va: GuestVirtAddr::new(num(va)?),
            pages: num(pages)?,
            access: Access::from_bits(u8::try_from(num(access)?).map_err(|e| e.to_string())?),
        }),
        ["unmap", va, pages] => Ok(MemOpGrant::UnmapPages {
            va: GuestVirtAddr::new(num(va)?),
            pages: num(pages)?,
        }),
        _ => Err(format!("unparseable decl {line:?}")),
    }
}

/// Parses a `request=` payload line.
pub(crate) fn parse_request(line: &str) -> Result<MemOpRequest, String> {
    let parts: Vec<&str> = line.split(':').collect();
    let num = |s: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad number {s:?}"))
    };
    match parts.as_slice() {
        ["copy_from", addr, len] => Ok(MemOpRequest::CopyFromGuest {
            addr: GuestVirtAddr::new(num(addr)?),
            len: num(len)?,
        }),
        ["copy_to", addr, len] => Ok(MemOpRequest::CopyToGuest {
            addr: GuestVirtAddr::new(num(addr)?),
            len: num(len)?,
        }),
        ["map", va, access] => Ok(MemOpRequest::MapPage {
            va: GuestVirtAddr::new(num(va)?),
            access: Access::from_bits(u8::try_from(num(access)?).map_err(|e| e.to_string())?),
        }),
        ["unmap", va] => Ok(MemOpRequest::UnmapPage {
            va: GuestVirtAddr::new(num(va)?),
        }),
        _ => Err(format!("unparseable request {line:?}")),
    }
}

/// The three-way verdict comparison for one `(table, request)` pair:
/// indexed validation (the production path), the linear `covers` scan, and
/// the exact-arithmetic model must all agree.
fn check_one(
    table: &GrantTable,
    grant: GrantRef,
    decls: &[MemOpGrant],
    request: &MemOpRequest,
    strict_end: bool,
) -> Result<(), String> {
    let indexed = table.validate(grant, request).is_ok();
    let linear = decls.iter().any(|d| d.covers(request));
    let model = model_accepts(decls, request, strict_end);
    if indexed != model {
        return Err(format!(
            "indexed validation {} but exact model {} (soundness/completeness split)",
            verdict(indexed),
            verdict(model),
        ));
    }
    if indexed != linear {
        return Err(format!(
            "indexed validation {} but linear covers scan {} (range-index drift)",
            verdict(indexed),
            verdict(linear),
        ));
    }
    Ok(())
}

fn verdict(accepted: bool) -> &'static str {
    if accepted {
        "accepts"
    } else {
        "rejects"
    }
}

struct Mismatch {
    decls: Vec<MemOpGrant>,
    request: MemOpRequest,
    reason: String,
}

/// Runs the three-way check over every table/request in the iterator,
/// collecting mismatches.
fn sweep(
    tables: Vec<Vec<MemOpGrant>>,
    requests: &[MemOpRequest],
    strict_end: bool,
    mismatches: &mut Vec<Mismatch>,
    checks: &mut usize,
) -> usize {
    let mut table_count = 0;
    for decls in tables {
        let mut table = GrantTable::new();
        let Ok(grant) = table.declare(decls.clone()) else {
            continue;
        };
        table_count += 1;
        for request in requests {
            *checks += 1;
            if let Err(reason) = check_one(&table, grant, &decls, request, strict_end) {
                mismatches.push(Mismatch {
                    decls: decls.clone(),
                    request: *request,
                    reason,
                });
            }
        }
    }
    table_count
}

fn copy_requests() -> Vec<MemOpRequest> {
    let mut requests = Vec::new();
    for addr in ADDRS {
        for len in LENS {
            requests.push(MemOpRequest::CopyFromGuest {
                addr: GuestVirtAddr::new(addr),
                len,
            });
            requests.push(MemOpRequest::CopyToGuest {
                addr: GuestVirtAddr::new(addr),
                len,
            });
        }
    }
    requests
}

/// `grant-soundness`: the boundary-value sweep described in the module
/// docs. [`Mutant::GrantCoverOffByOne`] perturbs the model's end
/// comparison; the exact-fit boundary cases must then disagree.
pub fn check_soundness(mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "grant-soundness";
    const DESC: &str =
        "grant validation accepts a mem op iff a declared window covers it (u128 model, \
         indexed == linear == model over boundary-value enumeration)";
    let strict_end = mutant == Some(Mutant::GrantCoverOffByOne);
    let mut mismatches = Vec::new();
    let mut checks = 0usize;
    let mut tables = 0usize;

    // Single copy windows, both kinds, full boundary cross product.
    let mut singles = Vec::new();
    for addr in ADDRS {
        for len in LENS {
            singles.push(vec![MemOpGrant::CopyFromGuest {
                addr: GuestVirtAddr::new(addr),
                len,
            }]);
            singles.push(vec![MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(addr),
                len,
            }]);
        }
    }
    tables += sweep(singles, &copy_requests(), strict_end, &mut mismatches, &mut checks);

    // Two-window tables (mixed kinds included): the sorted index must pick
    // the right window and kind.
    let mut pairs = Vec::new();
    for a1 in PAIR_ADDRS {
        for l1 in PAIR_LENS {
            for a2 in PAIR_ADDRS {
                for l2 in PAIR_LENS {
                    pairs.push(vec![
                        MemOpGrant::CopyFromGuest {
                            addr: GuestVirtAddr::new(a1),
                            len: l1,
                        },
                        MemOpGrant::CopyFromGuest {
                            addr: GuestVirtAddr::new(a2),
                            len: l2,
                        },
                    ]);
                    pairs.push(vec![
                        MemOpGrant::CopyFromGuest {
                            addr: GuestVirtAddr::new(a1),
                            len: l1,
                        },
                        MemOpGrant::CopyToGuest {
                            addr: GuestVirtAddr::new(a2),
                            len: l2,
                        },
                    ]);
                }
            }
        }
    }
    tables += sweep(pairs, &copy_requests(), strict_end, &mut mismatches, &mut checks);

    // Three-window tables: overlapping and adjacent windows stress
    // `prefix_max_end`.
    let mut triples = Vec::new();
    for a1 in TRIPLE_ADDRS {
        for l1 in TRIPLE_LENS {
            for a2 in TRIPLE_ADDRS {
                for l2 in TRIPLE_LENS {
                    for a3 in TRIPLE_ADDRS {
                        for l3 in TRIPLE_LENS {
                            triples.push(vec![
                                MemOpGrant::CopyFromGuest {
                                    addr: GuestVirtAddr::new(a1),
                                    len: l1,
                                },
                                MemOpGrant::CopyFromGuest {
                                    addr: GuestVirtAddr::new(a2),
                                    len: l2,
                                },
                                MemOpGrant::CopyFromGuest {
                                    addr: GuestVirtAddr::new(a3),
                                    len: l3,
                                },
                            ]);
                        }
                    }
                }
            }
        }
    }
    let triple_requests: Vec<MemOpRequest> = {
        let mut requests = Vec::new();
        for addr in [0u64, 0xfff, 0x1000, 0x1fff, 0x2000, 0x2fff, 0x3000] {
            for len in [0u64, 1, 0xfff, 0x1000, 0x2000] {
                requests.push(MemOpRequest::CopyFromGuest {
                    addr: GuestVirtAddr::new(addr),
                    len,
                });
            }
        }
        requests
    };
    tables += sweep(triples, &triple_requests, strict_end, &mut mismatches, &mut checks);

    // Page windows: alignment, multi-page spans, and access-subset checks.
    let page_vas: [u64; 4] = [0, 0x1000, 0x10_0000, u64::MAX - 0xfff];
    let mut page_tables = Vec::new();
    for va in page_vas {
        for pages in [0u64, 1, 2, 16] {
            for access in 0u8..8 {
                page_tables.push(vec![MemOpGrant::MapPages {
                    va: GuestVirtAddr::new(va),
                    pages,
                    access: Access::from_bits(access),
                }]);
            }
            page_tables.push(vec![MemOpGrant::UnmapPages {
                va: GuestVirtAddr::new(va),
                pages,
            }]);
        }
    }
    let mut page_requests = Vec::new();
    for va in [0u64, 0x1000, 0x2000, 0x10_000, u64::MAX - 0xfff] {
        for access in [0u8, 1, 3, 5, 7] {
            page_requests.push(MemOpRequest::MapPage {
                va: GuestVirtAddr::new(va),
                access: Access::from_bits(access),
            });
        }
        page_requests.push(MemOpRequest::UnmapPage {
            va: GuestVirtAddr::new(va),
        });
    }
    tables += sweep(page_tables, &page_requests, strict_end, &mut mismatches, &mut checks);

    if mismatches.is_empty() {
        return PropertyReport::proved(NAME, DESC, tables, checks);
    }
    let findings = mismatches
        .iter()
        .take(5)
        .map(|m| {
            Diagnostic::new(
                DiagCode::Vp001,
                "grant-table",
                None,
                format!(
                    "{}; decls {:?}, request {:?}",
                    m.reason, m.decls, m.request
                ),
            )
        })
        .collect();
    let first = &mismatches[0];
    let mut fixture = Fixture::new(NAME, mutant.map(Mutant::name), &first.reason);
    for decl in &first.decls {
        fixture.push_data("decl", decl_line(decl));
    }
    fixture.push_data("request", request_line(&first.request));
    PropertyReport::disproved(NAME, DESC, tables, checks, findings, Some(fixture))
}

/// `grant-batch`: `validate_batch` is all-or-nothing with a correct
/// first-violation index, consistent with single validation, for every
/// request vector of length ≤ 3 over a mixed pool — plus the stale-ref and
/// empty-batch edges.
pub fn check_batch(_mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "grant-batch";
    const DESC: &str =
        "validate_batch == first failing single validation (all-or-nothing phase split)";
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut checks = 0usize;

    let decls = vec![
        MemOpGrant::CopyFromGuest {
            addr: GuestVirtAddr::new(0x1000),
            len: 0x1000,
        },
        MemOpGrant::CopyToGuest {
            addr: GuestVirtAddr::new(0x3000),
            len: 0x100,
        },
    ];
    let mut table = GrantTable::new();
    let grant = table.declare(decls).expect("declare fits an empty table");
    let pool = [
        MemOpRequest::CopyFromGuest {
            addr: GuestVirtAddr::new(0x1000),
            len: 0x10,
        },
        MemOpRequest::CopyToGuest {
            addr: GuestVirtAddr::new(0x3000),
            len: 0x10,
        },
        MemOpRequest::CopyFromGuest {
            addr: GuestVirtAddr::new(0x5000),
            len: 1,
        },
        MemOpRequest::CopyToGuest {
            addr: GuestVirtAddr::new(0x1000),
            len: 1,
        },
        MemOpRequest::CopyFromGuest {
            addr: GuestVirtAddr::new(0x2000),
            len: 0,
        },
    ];

    // Every vector of length 0..=3 over the pool.
    let mut vectors: Vec<Vec<MemOpRequest>> = vec![Vec::new()];
    for len in 1..=3usize {
        let mut indices = vec![0usize; len];
        loop {
            vectors.push(indices.iter().map(|&i| pool[i]).collect());
            let mut pos = len;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < pool.len() {
                    break;
                }
                indices[pos] = 0;
            }
            if indices.iter().all(|&i| i == 0) {
                break;
            }
        }
    }

    for requests in &vectors {
        checks += 1;
        let expected = requests
            .iter()
            .enumerate()
            .find_map(|(index, request)| {
                table.validate(grant, request).err().map(|e| (index, e))
            });
        let got = table.validate_batch(grant, requests).err();
        if got != expected {
            findings.push(Diagnostic::new(
                DiagCode::Vp001,
                "grant-table",
                None,
                format!(
                    "validate_batch returned {got:?} but singles imply {expected:?} for {requests:?}"
                ),
            ));
        }
    }

    // Stale ref: every non-empty batch fails at index 0 with UnknownRef.
    let mut stale_table = GrantTable::new();
    let stale = stale_table
        .declare(vec![MemOpGrant::CopyFromGuest {
            addr: GuestVirtAddr::new(0),
            len: 0x1000,
        }])
        .expect("declare fits");
    assert!(stale_table.revoke(stale));
    for requests in &vectors {
        checks += 1;
        let got = stale_table.validate_batch(stale, requests).err();
        let expected = if requests.is_empty() {
            None
        } else {
            Some((0, GrantError::UnknownRef { grant: stale }))
        };
        if got != expected {
            findings.push(Diagnostic::new(
                DiagCode::Vp001,
                "grant-table",
                None,
                format!("stale-ref batch returned {got:?}, expected {expected:?}"),
            ));
        }
    }

    if findings.is_empty() {
        PropertyReport::proved(NAME, DESC, vectors.len(), checks)
    } else {
        let reason = findings[0].message.clone();
        let fixture = Fixture::new(NAME, None, &reason);
        PropertyReport::disproved(NAME, DESC, vectors.len(), checks, findings, Some(fixture))
    }
}

/// `grant-revocation`: revoked refs validate as `UnknownRef` and are never
/// resurrected; `revoke_all` empties the table; capacity is exact.
pub fn check_revocation(_mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "grant-revocation";
    const DESC: &str =
        "revoked refs reject as UnknownRef, numbering never reuses a revoked ref, capacity exact";
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut checks = 0usize;
    let fail = |findings: &mut Vec<Diagnostic>, message: String| {
        findings.push(Diagnostic::new(DiagCode::Vp001, "grant-table", None, message));
    };

    let window = |addr: u64| MemOpGrant::CopyFromGuest {
        addr: GuestVirtAddr::new(addr),
        len: 0x1000,
    };
    let probe = |addr: u64| MemOpRequest::CopyFromGuest {
        addr: GuestVirtAddr::new(addr),
        len: 1,
    };

    let mut table = GrantTable::new();
    let d1 = table.declare(vec![window(0x1000)]).expect("declare d1");
    let d2 = table.declare(vec![window(0x2000)]).expect("declare d2");
    checks += 1;
    if table.validate(d1, &probe(0x1000)).is_err() || table.validate(d2, &probe(0x2000)).is_err() {
        fail(&mut findings, "fresh declarations must validate".into());
    }
    checks += 1;
    if !table.revoke(d1) {
        fail(&mut findings, "revoking a live ref must succeed".into());
    }
    checks += 1;
    match table.validate(d1, &probe(0x1000)) {
        Err(GrantError::UnknownRef { .. }) => {}
        other => fail(
            &mut findings,
            format!("revoked ref must be UnknownRef, got {other:?}"),
        ),
    }
    checks += 1;
    if table.validate(d2, &probe(0x2000)).is_err() {
        fail(&mut findings, "revoking d1 must not affect d2".into());
    }
    checks += 1;
    if table.declarations(d1).is_some() {
        fail(&mut findings, "revoked ref must have no declarations".into());
    }
    let d3 = table.declare(vec![window(0x3000)]).expect("declare d3");
    checks += 1;
    if d3 == d1 {
        fail(&mut findings, "a revoked ref must never be reused".into());
    }
    checks += 1;
    let revoked = table.revoke_all();
    if revoked != 2 || table.outstanding() != 0 {
        fail(
            &mut findings,
            format!("revoke_all revoked {revoked}, outstanding {}", table.outstanding()),
        );
    }
    checks += 1;
    if table.validate(d2, &probe(0x2000)).is_ok() || table.validate(d3, &probe(0x3000)).is_ok() {
        fail(&mut findings, "refs must die with revoke_all".into());
    }

    // Capacity is exactly GRANT_TABLE_CAPACITY, and revocation frees a slot.
    let mut full = GrantTable::new();
    let mut refs = Vec::new();
    let mut declared = 0usize;
    loop {
        match full.declare(vec![window((declared as u64 + 1) * 0x1000)]) {
            Ok(r) => {
                refs.push(r);
                declared += 1;
                if declared > GRANT_TABLE_CAPACITY {
                    break;
                }
            }
            Err(GrantError::TableFull) => break,
            Err(other) => {
                fail(&mut findings, format!("unexpected declare error {other:?}"));
                break;
            }
        }
    }
    checks += 1;
    if declared != GRANT_TABLE_CAPACITY {
        fail(
            &mut findings,
            format!("capacity should be exactly {GRANT_TABLE_CAPACITY}, admitted {declared}"),
        );
    }
    checks += 1;
    if let Some(&first) = refs.first() {
        full.revoke(first);
        if full.declare(vec![window(0xdead_0000)]).is_err() {
            fail(&mut findings, "revocation must free a capacity slot".into());
        }
    }

    if findings.is_empty() {
        PropertyReport::proved(NAME, DESC, checks, checks)
    } else {
        let reason = findings[0].message.clone();
        let fixture = Fixture::new(NAME, None, &reason);
        PropertyReport::disproved(NAME, DESC, checks, checks, findings, Some(fixture))
    }
}

/// Replays a `grant-soundness` fixture: rebuilds the table from `decl=`
/// lines and re-runs the three-way comparison on the `request=` line.
///
/// # Errors
///
/// `Err(reason)` when the comparison disagrees (the property is violated
/// under the given mutant), or a parse error for malformed fixtures.
pub fn replay(fixture: &Fixture, mutant: Option<Mutant>) -> Result<(), String> {
    let strict_end = mutant == Some(Mutant::GrantCoverOffByOne);
    let decls: Vec<MemOpGrant> = fixture
        .values("decl")
        .into_iter()
        .map(parse_decl)
        .collect::<Result<_, _>>()?;
    let request = parse_request(fixture.value("request").ok_or("missing request= line")?)?;
    let mut table = GrantTable::new();
    let grant = table
        .declare(decls.clone())
        .map_err(|e| format!("declare failed: {e}"))?;
    check_one(&table, grant, &decls, &request, strict_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundness_proves_on_the_real_kernel() {
        let report = check_soundness(None);
        assert!(report.proved, "findings: {:?}", report.findings);
        assert!(report.transitions > 10_000, "sweep too small: {}", report.transitions);
    }

    #[test]
    fn soundness_catches_the_off_by_one_mutant() {
        let report = check_soundness(Some(Mutant::GrantCoverOffByOne));
        assert!(!report.proved);
        let fixture = report.counterexample.expect("counterexample emitted");
        // The fixture replays clean on the real kernel and violated under
        // the mutant — both directions of the regression.
        assert!(replay(&fixture, None).is_ok());
        assert!(replay(&fixture, Some(Mutant::GrantCoverOffByOne)).is_err());
    }

    #[test]
    fn batch_and_revocation_prove() {
        assert!(check_batch(None).proved);
        assert!(check_revocation(None).proved);
    }

    #[test]
    fn model_respects_the_unaddressable_top_byte() {
        // A request ending past 2^64-1 is never covered, even by a
        // saturating grant.
        assert!(!model_within(u64::MAX, 1, 0, u64::MAX, false));
        // The exact-fit end at u64::MAX is covered by a saturating grant.
        assert!(model_within(u64::MAX - 1, 1, 0, u64::MAX, false));
        // Empty request at the window end is covered.
        assert!(model_within(0x2000, 0, 0x1000, 0x1000, false));
        // …but not under the strict (mutant) comparison.
        assert!(!model_within(0x2000, 0, 0x1000, 0x1000, true));
    }

    #[test]
    fn fixture_lines_parse_back() {
        let decls = [
            MemOpGrant::CopyFromGuest {
                addr: GuestVirtAddr::new(7),
                len: 9,
            },
            MemOpGrant::MapPages {
                va: GuestVirtAddr::new(0x1000),
                pages: 2,
                access: Access::from_bits(5),
            },
        ];
        for decl in &decls {
            assert_eq!(&parse_decl(&decl_line(decl)).unwrap(), decl);
        }
        let requests = [
            MemOpRequest::CopyToGuest {
                addr: GuestVirtAddr::new(1),
                len: u64::MAX,
            },
            MemOpRequest::UnmapPage {
                va: GuestVirtAddr::new(0x2000),
            },
        ];
        for request in &requests {
            assert_eq!(&parse_request(&request_line(request)).unwrap(), request);
        }
        assert!(parse_decl("bogus:1").is_err());
        assert!(parse_request("copy_from:one:2").is_err());
    }
}
