//! Grant-cache revocation model: the frontend fast path can never leave a
//! cached [`GrantRef`] observable after its grant-set is revoked, and never
//! revokes a ref out from under an in-flight pipelined op.
//!
//! The model is a small abstraction of the frontend's fast-path state —
//! which refs are live in the driver VM's grant table, which op shapes the
//! cache memoizes, which refs ride in the pipeline and who owns their
//! revocation — driven through every interleaving of the events that
//! mutate it: cacheable ops (hit, cold declare, FIFO eviction), pipelined
//! completion, driver-VM containment (`fail`), recovery, and
//! `set_fastpath(false)`. Ref names are canonicalized after every step, so
//! the state space is finite and the exploration is a *full* proof, not a
//! bounded unrolling: `proved` requires the reachable space to be
//! exhausted.
//!
//! The model does not merely mirror the policy: on every cold insert it
//! rebuilds a real [`GrantCache`] from the abstract state and replays the
//! insert through the production kernel, failing with a drift error
//! (`VP004`) if the kernel's hit/eviction/transfer decision ever disagrees
//! with the model's. The fixed eviction semantics — transfer ownership of
//! an in-flight evicted ref to the last pending op using it — is exactly
//! what `Frontend::resolve_grant` implements; the seeded mutants replay
//! the three historical/buggy variants and each must be caught:
//!
//! * [`Mutant::CacheEvictInflight`] — evict always revokes (pre-fix).
//! * [`Mutant::CacheSkipPurge`] — containment/recovery keep stale refs.
//! * [`Mutant::FastpathOffNoDrain`] — `set_fastpath(false)` revokes the
//!   cache while the pipeline still flies (pre-fix).

use std::collections::BTreeSet;

use paradice_analyzer::dataflow::reach::{explore, Bounds, TransitionSystem};
use paradice_analyzer::lint::{DiagCode, Diagnostic};
use paradice_cvd::cache::{Eviction, GrantCache, GrantCacheKey};
use paradice_cvd::proto::WireOp;
use paradice_hypervisor::{GrantRef, MemOpGrant};
use paradice_mem::GuestVirtAddr;

use crate::fixture::Fixture;
use crate::report::{Mutant, PropertyReport};

/// Model cache capacity: two shapes force FIFO eviction with three.
const CACHE_CAP: usize = 2;
/// Model pipeline depth: two in-flight ops cover the transfer-to-last case.
const PIPE_CAP: usize = 2;
/// Distinct op shapes: capacity + 1, so eviction is reachable.
const SHAPES: u8 = 3;

/// One abstract frontend/hypervisor state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheState {
    /// Refs live in the driver VM's grant table.
    live: BTreeSet<u32>,
    /// The cache: `(shape, ref)` in FIFO insertion order.
    cached: Vec<(u8, u32)>,
    /// The pipeline: `(ref, cache_owned)` in FIFO post order.
    inflight: Vec<(u32, bool)>,
    /// Circuit breaker open (ops fail fast).
    breaker: bool,
    /// Driver VM dead (containment ran; the table died server-side).
    failed: bool,
    /// Set when a step did something unsound; violating states are sinks.
    error: Option<String>,
}

impl CacheState {
    fn initial() -> CacheState {
        CacheState {
            live: BTreeSet::new(),
            cached: Vec::new(),
            inflight: Vec::new(),
            breaker: false,
            failed: false,
            error: None,
        }
    }

    /// Renames refs to first-use order (cache order, then pipeline order,
    /// then leftovers), collapsing traces that differ only in ref numbers.
    fn canonicalize(&mut self) {
        let mut order: Vec<u32> = Vec::new();
        let note = |r: u32, order: &mut Vec<u32>| {
            if !order.contains(&r) {
                order.push(r);
            }
        };
        for &(_, r) in &self.cached {
            note(r, &mut order);
        }
        for &(r, _) in &self.inflight {
            note(r, &mut order);
        }
        for &r in &self.live {
            note(r, &mut order);
        }
        let rename = |r: u32| -> u32 {
            order.iter().position(|&o| o == r).expect("ref noted") as u32
        };
        self.live = self.live.iter().map(|&r| rename(r)).collect();
        for entry in &mut self.cached {
            entry.1 = rename(entry.1);
        }
        for entry in &mut self.inflight {
            entry.0 = rename(entry.0);
        }
    }

    fn next_ref(&self) -> u32 {
        let mut n = 0;
        for &(_, r) in &self.cached {
            n = n.max(r + 1);
        }
        for &(r, _) in &self.inflight {
            n = n.max(r + 1);
        }
        for &r in &self.live {
            n = n.max(r + 1);
        }
        n
    }
}

/// The deterministic cache key for one model shape.
fn shape_key(shape: u8) -> GrantCacheKey {
    let addr = GuestVirtAddr::new(u64::from(shape) * 0x1000);
    GrantCacheKey::for_op(
        1,
        1,
        &WireOp::Read { addr, len: 16 },
        &[MemOpGrant::CopyToGuest { addr, len: 16 }],
    )
    .expect("read is cacheable")
}

/// The transition system, parameterized by the active mutant.
pub struct CacheModel {
    mutant: Option<Mutant>,
}

impl CacheModel {
    /// A model under `mutant` (or the fixed semantics with `None`).
    pub fn new(mutant: Option<Mutant>) -> CacheModel {
        CacheModel { mutant }
    }

    fn is(&self, mutant: Mutant) -> bool {
        self.mutant == Some(mutant)
    }

    /// Rebuilds the production [`GrantCache`] from the abstract state and
    /// replays a cold insert through it, returning the kernel's decision.
    fn kernel_insert(&self, state: &CacheState, shape: u8, fresh: u32) -> Eviction {
        let mut kernel = GrantCache::new(CACHE_CAP);
        for &(s, r) in &state.cached {
            kernel.insert(shape_key(s), GrantRef(r), |_| false);
        }
        let inflight: Vec<u32> = state.inflight.iter().map(|&(r, _)| r).collect();
        kernel.insert(shape_key(shape), GrantRef(fresh), |r| {
            inflight.contains(&r.0)
        })
    }

    /// Applies one labelled event. `None` = the event is disabled here.
    fn step(&self, state: &CacheState, label: &str) -> Result<Option<CacheState>, String> {
        let mut next = state.clone();
        if let Some(shape_str) = label.strip_prefix("op shape=") {
            let shape: u8 = shape_str.parse().map_err(|_| format!("bad shape {shape_str:?}"))?;
            if next.breaker || next.inflight.len() >= PIPE_CAP {
                return Ok(None); // fails fast / backpressure: no state change
            }
            if let Some(&(_, r)) = next.cached.iter().find(|&&(s, _)| s == shape) {
                // Cache hit: the fast path attaches the memoized ref.
                if !next.live.contains(&r) {
                    next.error = Some(format!(
                        "cache hit handed out dead ref {r} for shape {shape} \
                         (revoked ref observable after revocation)"
                    ));
                } else {
                    next.inflight.push((r, true));
                }
            } else {
                // Cold declare + insert, mirrored through the real kernel.
                let fresh = next.next_ref();
                next.live.insert(fresh);
                let kernel_says = self.kernel_insert(&next, shape, fresh);
                // Model decision (fixed semantics).
                let evicted = if next.cached.len() >= CACHE_CAP {
                    Some(next.cached.remove(0))
                } else {
                    None
                };
                let model_says = match evicted {
                    None => Eviction::None,
                    Some((_, r)) if next.inflight.iter().any(|&(ir, _)| ir == r) => {
                        Eviction::Transfer(GrantRef(r))
                    }
                    Some((_, r)) => Eviction::Revoke(GrantRef(r)),
                };
                if kernel_says != model_says {
                    next.error = Some(format!(
                        "model/code drift: GrantCache::insert said {kernel_says:?}, \
                         model expects {model_says:?}"
                    ));
                    next.canonicalize();
                    return Ok(Some(next));
                }
                match model_says {
                    Eviction::None => {}
                    Eviction::Revoke(GrantRef(r)) => {
                        // Idle evicted ref: revoke now (all variants agree).
                        next.live.remove(&r);
                    }
                    Eviction::Transfer(GrantRef(r)) => {
                        if self.is(Mutant::CacheEvictInflight) {
                            // Pre-fix behavior: revoke regardless.
                            next.live.remove(&r);
                        } else if let Some(entry) = next
                            .inflight
                            .iter_mut()
                            .rev()
                            .find(|(ir, _)| *ir == r)
                        {
                            // Fixed behavior: the last pending user revokes
                            // on completion.
                            entry.1 = false;
                        }
                    }
                }
                next.cached.push((shape, fresh));
                next.inflight.push((fresh, true));
            }
        } else {
            match label {
                "complete" => {
                    if next.inflight.is_empty() {
                        return Ok(None);
                    }
                    let (r, owned) = next.inflight.remove(0);
                    if !next.failed && !next.live.contains(&r) {
                        next.error = Some(format!(
                            "op completed on ref {r} that was revoked mid-flight"
                        ));
                    } else if !owned && !next.failed {
                        // Per-op (or transferred) ownership: revoke after
                        // completion.
                        next.live.remove(&r);
                    }
                }
                "fail" => {
                    if next.failed {
                        return Ok(None);
                    }
                    next.failed = true;
                    next.breaker = true;
                    next.live.clear(); // the table died with the VM
                    if !self.is(Mutant::CacheSkipPurge) {
                        next.cached.clear(); // purge without revoke
                    }
                }
                "recover" => {
                    if !next.failed {
                        return Ok(None);
                    }
                    next.failed = false;
                    next.breaker = false;
                    next.inflight.clear();
                    if !self.is(Mutant::CacheSkipPurge) {
                        next.cached.clear(); // stale refs must not survive
                    }
                }
                "fastoff" => {
                    if next.breaker {
                        return Ok(None);
                    }
                    if !self.is(Mutant::FastpathOffNoDrain) {
                        // Fixed: drain the pipeline first.
                        while !next.inflight.is_empty() {
                            let (r, owned) = next.inflight.remove(0);
                            if !next.live.contains(&r) {
                                next.error = Some(format!(
                                    "drain completed ref {r} already revoked"
                                ));
                                break;
                            }
                            if !owned {
                                next.live.remove(&r);
                            }
                        }
                    }
                    if next.error.is_none() {
                        // Purge with revoke.
                        for (_, r) in std::mem::take(&mut next.cached) {
                            if !next.live.remove(&r) {
                                next.error = Some(format!(
                                    "fastpath-off revoked ref {r} that was not live"
                                ));
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unknown cache event {other:?}")),
            }
        }
        next.canonicalize();
        Ok(Some(next))
    }

    fn labels() -> Vec<String> {
        let mut labels: Vec<String> = (0..SHAPES).map(|s| format!("op shape={s}")).collect();
        labels.extend(
            ["complete", "fail", "recover", "fastoff"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        labels
    }
}

impl TransitionSystem for CacheModel {
    type State = CacheState;

    fn initial(&self) -> Vec<CacheState> {
        vec![CacheState::initial()]
    }

    fn successors(&self, state: &CacheState) -> Vec<(String, CacheState)> {
        if state.error.is_some() {
            return Vec::new(); // violations are sinks
        }
        CacheModel::labels()
            .into_iter()
            .filter_map(|label| {
                self.step(state, &label)
                    .expect("known label")
                    .map(|next| (label, next))
            })
            .collect()
    }

    fn invariant(&self, state: &CacheState) -> Result<(), String> {
        if let Some(error) = &state.error {
            return Err(error.clone());
        }
        if !state.failed {
            for &(shape, r) in &state.cached {
                if !state.live.contains(&r) {
                    return Err(format!(
                        "cached ref {r} (shape {shape}) is not live: revoked ref still \
                         observable in the cache"
                    ));
                }
            }
            for &(r, _) in &state.inflight {
                if !state.live.contains(&r) {
                    return Err(format!(
                        "in-flight ref {r} is not live: grant revoked under a pending op"
                    ));
                }
            }
        }
        let mut shapes = BTreeSet::new();
        let mut refs = BTreeSet::new();
        for &(shape, r) in &state.cached {
            if !shapes.insert(shape) {
                return Err(format!("shape {shape} cached twice"));
            }
            if !refs.insert(r) {
                return Err(format!("ref {r} cached twice (aliased declarations)"));
            }
        }
        if state.cached.len() > CACHE_CAP {
            return Err(format!("cache over capacity: {}", state.cached.len()));
        }
        if state.inflight.len() > PIPE_CAP {
            return Err(format!("pipeline over depth: {}", state.inflight.len()));
        }
        Ok(())
    }
}

/// `cache-revocation`: the full-state-space proof described in the module
/// docs.
pub fn check_revocation_model(mutant: Option<Mutant>) -> PropertyReport {
    const NAME: &str = "cache-revocation";
    const DESC: &str =
        "fast-path grant cache: no ref observable after revocation, no revoke under an \
         in-flight op, kernel eviction decisions match the model (full state space)";
    let model = CacheModel::new(mutant);
    let run = explore(
        &model,
        Bounds {
            max_states: 2_000_000,
            max_depth: 64,
        },
    );
    match run.violation {
        None => {
            // This property claims a *full* proof: the canonicalized space
            // must actually have been exhausted.
            if run.truncated {
                let finding = Diagnostic::new(
                    DiagCode::Vp001,
                    "grant-cache",
                    None,
                    format!(
                        "exploration truncated at {} states — the model grew past its \
                         expected finite space; the proof claim is void",
                        run.states_visited,
                    ),
                );
                return PropertyReport::disproved(
                    NAME,
                    DESC,
                    run.states_visited,
                    run.transitions,
                    vec![finding],
                    None,
                );
            }
            PropertyReport::proved(NAME, DESC, run.states_visited, run.transitions)
        }
        Some(violation) => {
            let code = if violation.reason.contains("drift") {
                DiagCode::Vp004
            } else {
                DiagCode::Vp001
            };
            let finding = Diagnostic::new(
                code,
                "grant-cache",
                None,
                format!("{} (after {:?})", violation.reason, violation.trace),
            );
            let mut fixture = Fixture::new(NAME, mutant.map(Mutant::name), &violation.reason);
            fixture.trace = violation.trace;
            PropertyReport::disproved(
                NAME,
                DESC,
                run.states_visited,
                run.transitions,
                vec![finding],
                Some(fixture),
            )
        }
    }
}

/// Replays a cache fixture's event trace under `mutant`.
///
/// # Errors
///
/// `Err(reason)` at the first step or state that violates the invariants.
pub fn replay(fixture: &Fixture, mutant: Option<Mutant>) -> Result<(), String> {
    let model = CacheModel::new(mutant);
    let mut state = CacheState::initial();
    model.invariant(&state)?;
    for label in &fixture.trace {
        match model.step(&state, label)? {
            Some(next) => state = next,
            None => continue, // disabled event: tolerated in replay
        }
        model.invariant(&state)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_semantics_prove_over_the_full_space() {
        let report = check_revocation_model(None);
        assert!(report.proved, "{:?}", report.findings);
        // Canonical ref renaming collapses the space hard — a few dozen
        // states cover every interleaving of ops, completions, containment,
        // recovery, and fast-path teardown.
        assert!(report.states > 50, "suspiciously few states: {}", report.states);
    }

    #[test]
    fn all_three_cache_mutants_are_caught() {
        for mutant in [
            Mutant::CacheEvictInflight,
            Mutant::CacheSkipPurge,
            Mutant::FastpathOffNoDrain,
        ] {
            let report = check_revocation_model(Some(mutant));
            assert!(!report.proved, "{} went undetected", mutant.name());
            let fixture = report.counterexample.expect("fixture emitted");
            assert!(
                replay(&fixture, None).is_ok(),
                "{} fixture must hold on the fixed semantics",
                mutant.name(),
            );
            assert!(
                replay(&fixture, Some(mutant)).is_err(),
                "{} fixture must still fail under the mutant",
                mutant.name(),
            );
        }
    }

    #[test]
    fn evict_inflight_counterexample_is_the_documented_bug() {
        let report = check_revocation_model(Some(Mutant::CacheEvictInflight));
        let fixture = report.counterexample.expect("fixture");
        // The shortest refutation: fill the cache with in-flight ops, then
        // one more cold shape evicts-and-revokes under a pending op.
        assert!(fixture.trace.iter().filter(|l| l.starts_with("op")).count() >= 3);
        assert!(fixture.reason.contains("not live") || fixture.reason.contains("revoked"));
    }
}
