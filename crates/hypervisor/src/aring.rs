//! The shared ring page driven with real atomics.
//!
//! [`RingIndex`](crate::ring::RingIndex) is the *virtual-time* ring: a pure
//! index kernel stepped by one thread under the cost model, proved safe by
//! `paradice-verify`. This module is its wall-clock twin: the same 4-KiB
//! shared page, but the head/tail cursors and per-slot ownership are
//! published with acquire/release atomics so a frontend thread and a
//! backend thread can drive it concurrently, and the doorbell is a real
//! park/unpark handoff instead of a virtual-time spin budget.
//!
//! # Memory-ordering argument (DESIGN.md §12/§14 carry the prose version)
//!
//! The ring is single-producer single-consumer. Each slot carries a
//! free-running sequence number in the style of Vyukov's bounded queue:
//!
//! * slot `i` starts at `seq = i` — "free, awaiting push number `i`";
//! * the producer, at free-running cursor `t`, claims slot `t % N` iff
//!   `seq == t`, writes the payload, then publishes with
//!   `seq.store(t + 1, Release)` — the payload write *happens-before* any
//!   consumer that observes `t + 1` with an `Acquire` load;
//! * the consumer, at cursor `h`, pops slot `h % N` iff
//!   `seq == h + 1` (`Acquire` — synchronizes with the producer's
//!   release), reads the payload, then recycles with
//!   `seq.store(h + N, Release)` — the payload *read* happens-before the
//!   producer's next claim of the same slot (push number `h + N`).
//!
//! Cursors themselves are only ever written by their owning side, so the
//! slot sequence is the sole synchronization edge for payload bytes; the
//! `tail`/`head` stores exist so the *other* side can compute occupancy
//! (doorbell coalescing, backpressure) and are published with `Release`
//! and read with `Acquire` for a conservative view. `N` divides `2^32`,
//! so wrapping `u32` arithmetic never aliases two in-flight pushes.
//!
//! Every ordering above is *declared*, not sprinkled: the atomics are
//! [`crate::atomic`] shim types and each operation names an access in
//! [`ATOMIC_SITES`], the table `paradice-lint`'s MO/RC passes check and
//! `paradice-verify`'s interleaving checker interprets. The doorbell's
//! `rung`/`parked` pair is a Dekker-style store-load protocol — release/
//! acquire is NOT sufficient there (both sides' flag stores can be
//! delayed past the other side's load, losing the wakeup), so those
//! accesses are declared `SeqCst` (`Edge::Gate`, rule `MO005`) and the
//! checker proves the pure park/unpark protocol lossless.
//!
//! The whole structure — both cursors (cache-line padded) plus 16 slots of
//! 240 payload bytes — is laid out `repr(C)` in exactly one 4-KiB page,
//! mirroring the paper's shared-page channel (§5.1).

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::Mutex;
use std::thread::Thread;
use std::time::Duration;

use crate::atomic::{Access, AccessKind, AtomicBool, AtomicU32, Edge, MemOrder, Role, SiteSpec};

/// Slots in the atomic ring. Matches the virtual ring's
/// [`RING_CAPACITY`](crate::ring::RING_CAPACITY); must divide `2^32`.
pub const ARING_CAPACITY: usize = 16;

/// Payload bytes per slot: `(4096 - 2*64) / 16` minus the 8 bytes of
/// per-slot sequence + length. A no-op wire request is ~40 bytes and the
/// largest benchmarked ioctl frame is well under 200, so one slot holds
/// any coalesced fast-path frame; oversize frames are rejected, exactly
/// like the virtual channel's [`ChannelError::TooLarge`]
/// (crate::channel::ChannelError::TooLarge).
pub const ARING_SLOT_BYTES: usize = 240;

const MASK: u32 = ARING_CAPACITY as u32 - 1;

// --- Declared atomic sites (the model the lint and checker consume). ---

static TAIL_OWNER: Access =
    Access::new("owner-load", AccessKind::Load, MemOrder::Relaxed, Edge::OwnerLocal);
static TAIL_ADVANCE: Access =
    Access::pre_doorbell("advance", AccessKind::Store, MemOrder::Release, Edge::Publish);
static TAIL_OCCUPANCY: Access =
    Access::new("occupancy", AccessKind::Load, MemOrder::Acquire, Edge::Consume);
static TAIL_ACCESSES: [&Access; 3] = [&TAIL_OWNER, &TAIL_ADVANCE, &TAIL_OCCUPANCY];
static TAIL_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::aring",
    name: "tail",
    group: "aring.cursor",
    role: Role::Cursor,
    accesses: &TAIL_ACCESSES,
};

static HEAD_OWNER: Access =
    Access::new("owner-load", AccessKind::Load, MemOrder::Relaxed, Edge::OwnerLocal);
static HEAD_ADVANCE: Access =
    Access::new("advance", AccessKind::Store, MemOrder::Release, Edge::Publish);
static HEAD_OCCUPANCY: Access =
    Access::new("occupancy", AccessKind::Load, MemOrder::Acquire, Edge::Consume);
static HEAD_ACCESSES: [&Access; 3] = [&HEAD_OWNER, &HEAD_ADVANCE, &HEAD_OCCUPANCY];
static HEAD_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::aring",
    name: "head",
    group: "aring.cursor",
    role: Role::Cursor,
    accesses: &HEAD_ACCESSES,
};

static SEQ_CLAIM_CHECK: Access =
    Access::new("claim-check", AccessKind::Load, MemOrder::Acquire, Edge::Consume);
static SEQ_PUBLISH: Access =
    Access::pre_doorbell("publish", AccessKind::Store, MemOrder::Release, Edge::Publish);
static SEQ_CONSUME: Access =
    Access::new("consume", AccessKind::Load, MemOrder::Acquire, Edge::Consume);
static SEQ_RECYCLE: Access =
    Access::new("recycle", AccessKind::Store, MemOrder::Release, Edge::Recycle);
static SEQ_CORRUPT_LOAD: Access =
    Access::new("corrupt-load", AccessKind::Load, MemOrder::Acquire, Edge::Observe);
static SEQ_CORRUPT_STORE: Access =
    Access::new("corrupt-store", AccessKind::Store, MemOrder::Release, Edge::Observe);
static SEQ_ACCESSES: [&Access; 6] = [
    &SEQ_CLAIM_CHECK,
    &SEQ_PUBLISH,
    &SEQ_CONSUME,
    &SEQ_RECYCLE,
    &SEQ_CORRUPT_LOAD,
    &SEQ_CORRUPT_STORE,
];
static SEQ_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::aring",
    name: "slot_seq",
    group: "aring.slot",
    role: Role::SlotSeq,
    accesses: &SEQ_ACCESSES,
};

static LEN_WRITE: Access =
    Access::new("write", AccessKind::Store, MemOrder::Relaxed, Edge::Payload);
static LEN_READ: Access =
    Access::new("read", AccessKind::Load, MemOrder::Relaxed, Edge::Payload);
static LEN_CORRUPT_STORE: Access =
    Access::new("corrupt-store", AccessKind::Store, MemOrder::Release, Edge::Observe);
static LEN_ACCESSES: [&Access; 3] = [&LEN_WRITE, &LEN_READ, &LEN_CORRUPT_STORE];
static LEN_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::aring",
    name: "slot_len",
    group: "aring.slot",
    role: Role::SlotLen,
    accesses: &LEN_ACCESSES,
};

static RUNG_RING: Access =
    Access::new("ring", AccessKind::Store, MemOrder::SeqCst, Edge::Gate);
static RUNG_DRAIN: Access =
    Access::new("drain", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate);
static RUNG_ACCESSES: [&Access; 2] = [&RUNG_RING, &RUNG_DRAIN];
static RUNG_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::aring",
    name: "rung",
    group: "aring.doorbell",
    role: Role::Flag,
    accesses: &RUNG_ACCESSES,
};

static PARKED_PARK: Access =
    Access::new("park", AccessKind::Store, MemOrder::SeqCst, Edge::Gate);
static PARKED_CHECK: Access =
    Access::new("unpark-check", AccessKind::Load, MemOrder::SeqCst, Edge::Gate);
static PARKED_CLEAR: Access =
    Access::new("clear", AccessKind::Store, MemOrder::SeqCst, Edge::Gate);
static PARKED_ACCESSES: [&Access; 3] = [&PARKED_PARK, &PARKED_CHECK, &PARKED_CLEAR];
static PARKED_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::aring",
    name: "parked",
    group: "aring.doorbell",
    role: Role::Flag,
    accesses: &PARKED_ACCESSES,
};

/// This module's declared atomic-site table, aggregated by
/// [`crate::atomic::all_sites`] for the MO/RC lint passes and the
/// `paradice-verify` interleaving checker.
pub static ATOMIC_SITES: [&SiteSpec; 6] = [
    &TAIL_SITE,
    &HEAD_SITE,
    &SEQ_SITE,
    &LEN_SITE,
    &RUNG_SITE,
    &PARKED_SITE,
];

/// Why a push or pop did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ARingError {
    /// All slots are occupied: the consumer has fallen behind.
    Full,
    /// The frame exceeds [`ARING_SLOT_BYTES`].
    Oversize {
        /// Offending length.
        len: usize,
    },
}

impl fmt::Display for ARingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ARingError::Full => f.write_str("atomic ring full"),
            ARingError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds an atomic ring slot")
            }
        }
    }
}

impl std::error::Error for ARingError {}

#[repr(C)]
struct Slot {
    /// Free-running push number this slot is ready for (see module docs).
    seq: AtomicU32,
    /// Valid payload bytes, written before `seq` publishes them.
    len: AtomicU32,
    data: UnsafeCell<[u8; ARING_SLOT_BYTES]>,
}

/// One direction of the shared ring page, concurrency-safe.
///
/// Single-producer single-consumer: exactly one thread may call
/// [`try_push`](AtomicRing::try_push) and exactly one may call
/// [`try_pop`](AtomicRing::try_pop). The type is `Sync` so both sides can
/// share it behind an `Arc`; the SPSC discipline is the caller's contract
/// (the engine owns one thread per side by construction).
#[repr(C, align(64))]
pub struct AtomicRing {
    /// Producer cursor (free-running). Written only by the producer.
    tail: AtomicU32,
    _pad0: [u8; 60],
    /// Consumer cursor (free-running). Written only by the consumer.
    head: AtomicU32,
    _pad1: [u8; 60],
    slots: [Slot; ARING_CAPACITY],
}

// One page, like the virtual channel's shared page (paper §5.1). The
// instrumented shim types are `repr(transparent)` — this assert is also
// the proof they add zero bytes to the wire layout.
const _: () = assert!(std::mem::size_of::<AtomicRing>() <= 4096);
const _: () = assert!(ARING_CAPACITY.is_power_of_two());
const _: () = assert!((u32::MAX as u64 + 1).is_multiple_of(ARING_CAPACITY as u64));

// SAFETY: the payload `UnsafeCell`s are only touched under the slot-seq
// protocol documented on the module: a slot's bytes are written by the
// single producer strictly before the `Release` store that hands the slot
// to the consumer, and read by the single consumer strictly before the
// `Release` store that hands it back. No two threads ever access a slot's
// payload concurrently.
unsafe impl Sync for AtomicRing {}
unsafe impl Send for AtomicRing {}

impl Default for AtomicRing {
    fn default() -> Self {
        AtomicRing::new()
    }
}

impl AtomicRing {
    /// An empty ring: slot `i` awaits push number `i`.
    pub fn new() -> Self {
        AtomicRing {
            tail: AtomicU32::new(0),
            _pad0: [0; 60],
            head: AtomicU32::new(0),
            _pad1: [0; 60],
            slots: std::array::from_fn(|i| Slot {
                seq: AtomicU32::new(i as u32),
                len: AtomicU32::new(0),
                data: UnsafeCell::new([0; ARING_SLOT_BYTES]),
            }),
        }
    }

    /// Producer side: publishes one frame. Returns `true` when the ring
    /// was empty before the push — the empty→non-empty transition on which
    /// (and only on which) the producer must ring the doorbell, the same
    /// coalescing rule the virtual ring's
    /// [`PushGrant::doorbell`](crate::ring::PushGrant) encodes.
    pub fn try_push(&self, frame: &[u8]) -> Result<bool, ARingError> {
        if frame.len() > ARING_SLOT_BYTES {
            return Err(ARingError::Oversize { len: frame.len() });
        }
        let tail = self.tail.load(&TAIL_OWNER); // sole writer: us
        let slot = &self.slots[(tail & MASK) as usize];
        // Acquire: synchronizes with the consumer's recycling store, so
        // our payload write cannot be reordered before the consumer is
        // done reading the previous occupant.
        if slot.seq.load(&SEQ_CLAIM_CHECK) != tail {
            return Err(ARingError::Full);
        }
        // SAFETY: seq == tail means the slot is ours (module protocol).
        unsafe {
            (&mut *slot.data.get())[..frame.len()].copy_from_slice(frame);
        }
        slot.len.store(frame.len() as u32, &LEN_WRITE);
        // Occupancy *before* publication decides the doorbell.
        let was_empty = self.head.load(&HEAD_OCCUPANCY) == tail;
        // Release: payload + len happen-before any consumer that sees
        // seq == tail + 1.
        slot.seq.store(tail.wrapping_add(1), &SEQ_PUBLISH);
        self.tail.store(tail.wrapping_add(1), &TAIL_ADVANCE);
        Ok(was_empty)
    }

    /// Consumer side: takes the oldest frame, if any.
    pub fn try_pop(&self) -> Option<Vec<u8>> {
        let head = self.head.load(&HEAD_OWNER); // sole writer: us
        let slot = &self.slots[(head & MASK) as usize];
        // Acquire: pairs with the producer's publishing Release.
        if slot.seq.load(&SEQ_CONSUME) != head.wrapping_add(1) {
            return None;
        }
        // Clamp: `len` lives in shared memory, so a hostile or corrupted
        // producer can store any value. Truncated garbage fails to decode
        // (EINVAL) downstream; an unclamped length would walk off the slot.
        let len = (slot.len.load(&LEN_READ) as usize).min(ARING_SLOT_BYTES);
        // SAFETY: seq == head + 1 means the slot holds a published frame
        // and the producer will not touch it until we recycle it.
        let frame = unsafe { (&*slot.data.get())[..len].to_vec() };
        // Release: our payload read happens-before the producer's next
        // claim of this slot (push number head + N).
        slot.seq
            .store(head.wrapping_add(ARING_CAPACITY as u32), &SEQ_RECYCLE);
        self.head.store(head.wrapping_add(1), &HEAD_ADVANCE);
        Some(frame)
    }

    /// Adversarial injection: bumps the newest published slot's sequence
    /// word by `delta`, simulating a malicious VM scribbling on the shared
    /// page's control words. Returns `false` (no-op) when nothing is
    /// published. Sound under concurrency: `seq` is an atomic, so this is
    /// a data race with nobody — the consumer simply observes a sequence
    /// that never matches and treats the slot as not-yet-published.
    pub fn corrupt_newest_seq(&self, delta: u32) -> bool {
        let tail = self.tail.load(&TAIL_OCCUPANCY);
        let head = self.head.load(&HEAD_OCCUPANCY);
        if tail == head {
            return false;
        }
        let newest = tail.wrapping_sub(1);
        let slot = &self.slots[(newest & MASK) as usize];
        let seq = slot.seq.load(&SEQ_CORRUPT_LOAD);
        slot.seq.store(seq.wrapping_add(delta), &SEQ_CORRUPT_STORE);
        true
    }

    /// Adversarial injection: overwrites the newest published slot's
    /// length word (e.g. with a value far beyond [`ARING_SLOT_BYTES`]).
    /// The consumer must clamp — see [`AtomicRing::try_pop`] — so the
    /// worst a hostile length can do is truncate the frame into a decode
    /// error. Returns `false` when nothing is published.
    pub fn corrupt_newest_len(&self, len: u32) -> bool {
        let tail = self.tail.load(&TAIL_OCCUPANCY);
        let head = self.head.load(&HEAD_OCCUPANCY);
        if tail == head {
            return false;
        }
        let newest = tail.wrapping_sub(1);
        let slot = &self.slots[(newest & MASK) as usize];
        slot.len.store(len, &LEN_CORRUPT_STORE);
        true
    }

    /// Occupied slots, as a conservative cross-thread observation.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(&TAIL_OCCUPANCY);
        let head = self.head.load(&HEAD_OCCUPANCY);
        tail.wrapping_sub(head) as usize
    }

    /// Whether the ring appears empty (conservative, racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for AtomicRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicRing")
            .field("capacity", &ARING_CAPACITY)
            .field("len", &self.len())
            .finish()
    }
}

/// The inter-VM interrupt line of the wall-clock engine.
///
/// Virtual-time polling burns a spin budget on the virtual clock; on real
/// threads the idle side parks itself and the producer un-parks it on the
/// empty→non-empty transition.
///
/// `rung`/`parked` form a Dekker-style store-load protocol: the producer
/// stores `rung` then loads `parked`; the consumer stores `parked` then
/// loads (swaps) `rung`. Under release/acquire *both* flag stores may be
/// delayed past the other side's load — producer sees `parked == false`,
/// consumer sees `rung == false`, and the wakeup is lost (the shape
/// `paradice-verify`'s `race-doorbell` property exhibits under the
/// `doorbell-check-before-publish` mutant). All four accesses are
/// therefore declared `SeqCst` ([`Edge::Gate`], lint rule `MO005`): in
/// the single total order of SeqCst operations one side's store precedes
/// the other side's load, so at least one side observes the handoff. The
/// bounded `park_timeout` is kept as defense in depth (e.g. against a
/// producer dying mid-ring), not as a correctness crutch.
#[derive(Debug, Default)]
pub struct Doorbell {
    rung: AtomicBool,
    parked: AtomicBool,
    sleeper: Mutex<Option<Thread>>,
}

impl Doorbell {
    /// A doorbell nobody is waiting on.
    pub fn new() -> Self {
        Doorbell::default()
    }

    /// Registers the calling thread as the (single) waiter. Called once,
    /// from the consumer thread, before its first [`wait`](Doorbell::wait).
    pub fn register(&self) {
        *self.sleeper.lock().expect("doorbell sleeper poisoned") = Some(std::thread::current());
    }

    /// Rings: wakes the registered waiter if it is parked. The producer
    /// calls this only on empty→non-empty (doorbell coalescing).
    pub fn ring(&self) {
        self.rung.store(true, &RUNG_RING);
        if self.parked.load(&PARKED_CHECK) {
            if let Some(thread) = &*self.sleeper.lock().expect("doorbell sleeper poisoned") {
                thread.unpark();
            }
        }
    }

    /// Blocks the registered waiter until the bell has rung since the last
    /// wait (consuming the ring), or `ready()` reports work.
    pub fn wait(&self, mut ready: impl FnMut() -> bool) {
        if self.rung.swap(false, &RUNG_DRAIN) || ready() {
            return;
        }
        self.parked.store(true, &PARKED_PARK);
        while !self.rung.swap(false, &RUNG_DRAIN) && !ready() {
            std::thread::park_timeout(Duration::from_millis(1));
        }
        self.parked.store(false, &PARKED_CLEAR);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn push_pop_roundtrip_preserves_bytes() {
        let ring = AtomicRing::new();
        assert!(ring.is_empty());
        assert!(ring.try_push(b"hello").expect("push"));
        assert_eq!(ring.len(), 1);
        assert!(!ring.try_push(b"world").expect("push"), "not empty now");
        assert_eq!(ring.try_pop().as_deref(), Some(&b"hello"[..]));
        assert_eq!(ring.try_pop().as_deref(), Some(&b"world"[..]));
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn fills_at_capacity_and_recovers() {
        let ring = AtomicRing::new();
        for i in 0..ARING_CAPACITY {
            ring.try_push(&[i as u8]).expect("push below capacity");
        }
        assert_eq!(ring.try_push(b"x"), Err(ARingError::Full));
        assert_eq!(ring.try_pop().as_deref(), Some(&[0u8][..]));
        ring.try_push(b"y").expect("freed slot re-usable");
        for i in 1..ARING_CAPACITY {
            assert_eq!(ring.try_pop().as_deref(), Some(&[i as u8][..]));
        }
        assert_eq!(ring.try_pop().as_deref(), Some(&b"y"[..]));
    }

    #[test]
    fn oversize_frames_are_rejected_like_the_virtual_channel() {
        let ring = AtomicRing::new();
        let frame = [0u8; ARING_SLOT_BYTES + 1];
        assert_eq!(
            ring.try_push(&frame),
            Err(ARingError::Oversize {
                len: ARING_SLOT_BYTES + 1
            })
        );
        ring.try_push(&[0u8; ARING_SLOT_BYTES]).expect("exact fit");
    }

    #[test]
    fn wraparound_many_times_stays_fifo() {
        let ring = AtomicRing::new();
        let mut next_pop = 0u32;
        for round in 0..64u32 {
            for lap in 0..ARING_CAPACITY as u32 {
                let value = round * ARING_CAPACITY as u32 + lap;
                ring.try_push(&value.to_le_bytes()).expect("push");
            }
            for _ in 0..ARING_CAPACITY {
                let frame = ring.try_pop().expect("pop");
                let got = u32::from_le_bytes(frame.try_into().expect("4 bytes"));
                assert_eq!(got, next_pop);
                next_pop += 1;
            }
        }
    }

    #[test]
    fn doorbell_fires_only_on_empty_to_nonempty() {
        let ring = AtomicRing::new();
        let mut doorbells = 0;
        for _ in 0..4 {
            if ring.try_push(b"a").expect("push") {
                doorbells += 1;
            }
        }
        assert_eq!(doorbells, 1, "coalesced: one bell for four queued frames");
        while ring.try_pop().is_some() {}
        assert!(ring.try_push(b"b").expect("push"), "empty again: new bell");
    }

    #[test]
    fn two_threads_transfer_everything_in_order() {
        let ring = Arc::new(AtomicRing::new());
        let total: u32 = 40_000;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..total {
                    loop {
                        match ring.try_push(&i.to_le_bytes()) {
                            Ok(_) => break,
                            Err(ARingError::Full) => std::hint::spin_loop(),
                            Err(e) => panic!("unexpected push error: {e}"),
                        }
                    }
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut expected = 0u32;
                while expected < total {
                    if let Some(frame) = ring.try_pop() {
                        let got = u32::from_le_bytes(frame.try_into().expect("4 bytes"));
                        assert_eq!(got, expected, "FIFO order violated");
                        expected += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        producer.join().expect("producer");
        consumer.join().expect("consumer");
        assert!(ring.is_empty());
    }

    #[test]
    fn a_hostile_length_word_is_clamped_not_overread() {
        let ring = AtomicRing::new();
        ring.try_push(b"short frame").expect("push");
        assert!(ring.corrupt_newest_len(u32::MAX), "slot is published");
        // The consumer must clamp to the slot size instead of slicing past
        // the payload: a truncated-garbage frame, never a panic.
        let frame = ring.try_pop().expect("still poppable");
        assert_eq!(frame.len(), ARING_SLOT_BYTES);
        assert_eq!(&frame[..11], b"short frame");
    }

    #[test]
    fn a_corrupted_seq_word_hides_the_slot_but_cannot_corrupt_fifo() {
        let ring = AtomicRing::new();
        ring.try_push(b"first").expect("push");
        ring.try_push(b"second").expect("push");
        assert!(ring.corrupt_newest_seq(7));
        // The older slot is untouched; the corrupted one reads as
        // not-yet-published, so the consumer stalls instead of handing out
        // a torn frame.
        assert_eq!(ring.try_pop().as_deref(), Some(&b"first"[..]));
        assert_eq!(ring.try_pop(), None, "corrupted slot must not pop");
        // The producer eventually observes the stuck slot as Full — loss
        // is detected as backpressure, never silent reuse.
        for _ in 0..ARING_CAPACITY {
            let _ = ring.try_push(b"fill");
        }
        assert_eq!(ring.try_push(b"x"), Err(ARingError::Full));
    }

    #[test]
    fn corruption_on_an_empty_ring_is_a_noop() {
        let ring = AtomicRing::new();
        assert!(!ring.corrupt_newest_seq(1));
        assert!(!ring.corrupt_newest_len(9999));
        ring.try_push(b"ok").expect("push");
        assert_eq!(ring.try_pop().as_deref(), Some(&b"ok"[..]));
    }

    #[test]
    fn doorbell_wakes_a_parked_waiter() {
        let bell = Arc::new(Doorbell::new());
        let ring = Arc::new(AtomicRing::new());
        let waiter = {
            let (bell, ring) = (Arc::clone(&bell), Arc::clone(&ring));
            std::thread::spawn(move || {
                bell.register();
                bell.wait(|| !ring.is_empty());
                ring.try_pop().expect("frame present after wakeup")
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        if ring.try_push(b"ding").expect("push") {
            bell.ring();
        }
        let frame = waiter.join().expect("waiter");
        assert_eq!(frame, b"ding");
    }

    /// Lost-wakeup regression (ISSUE 9 satellite): every round forces an
    /// empty→non-empty publication to race the consumer's park decision —
    /// the exact Dekker interleaving `race-doorbell` proves safe under
    /// SeqCst. Each genuinely lost wakeup costs a full 1 ms `park_timeout`
    /// recovery, so 4000 systematically-lost rounds would take ≥ 4 s; a
    /// correct doorbell finishes the loop in tens of milliseconds. The
    /// 2 s ceiling separates the two regimes with wide margins both ways.
    #[test]
    fn doorbell_never_loses_the_empty_to_nonempty_wakeup() {
        const ROUNDS: u32 = 4_000;
        let bell = Arc::new(Doorbell::new());
        let ring = Arc::new(AtomicRing::new());
        let started = Instant::now();
        let consumer = {
            let (bell, ring) = (Arc::clone(&bell), Arc::clone(&ring));
            std::thread::spawn(move || {
                bell.register();
                let mut got = 0u32;
                while got < ROUNDS {
                    if ring.try_pop().is_some() {
                        got += 1;
                    } else {
                        bell.wait(|| !ring.is_empty());
                    }
                }
            })
        };
        let producer = {
            let (bell, ring) = (Arc::clone(&bell), Arc::clone(&ring));
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    // Wait for the consumer to drain so *every* push is an
                    // empty→non-empty transition racing a potential park.
                    while !ring.is_empty() {
                        std::hint::spin_loop();
                    }
                    let was_empty = ring.try_push(&i.to_le_bytes()).expect("push");
                    assert!(was_empty, "drained ring: push must report empty");
                    bell.ring();
                }
            })
        };
        producer.join().expect("producer");
        consumer.join().expect("consumer");
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "doorbell handoff too slow ({elapsed:?}) — systematic lost \
             wakeups fall back on the 1ms park_timeout"
        );
        assert!(ring.is_empty());
    }

    /// In debug builds the shim records which declared accesses actually
    /// executed; the ring's hot-path accesses must all be live (a declared
    /// access nothing executes is model rot).
    #[test]
    fn hot_path_accesses_are_observed() {
        if !cfg!(debug_assertions) {
            return;
        }
        let ring = AtomicRing::new();
        ring.try_push(b"x").expect("push");
        ring.try_pop().expect("pop");
        let bell = Doorbell::new();
        bell.register();
        bell.ring();
        bell.wait(|| true);
        for access in [
            &TAIL_OWNER,
            &TAIL_ADVANCE,
            &HEAD_OWNER,
            &HEAD_ADVANCE,
            &HEAD_OCCUPANCY,
            &SEQ_CLAIM_CHECK,
            &SEQ_PUBLISH,
            &SEQ_CONSUME,
            &SEQ_RECYCLE,
            &LEN_WRITE,
            &LEN_READ,
            &RUNG_RING,
            &RUNG_DRAIN,
            &PARKED_CHECK,
        ] {
            assert!(
                crate::atomic::was_observed(access),
                "declared access {:?} never executed",
                access.name
            );
        }
    }
}
