//! The shared ring page driven with real atomics.
//!
//! [`RingIndex`](crate::ring::RingIndex) is the *virtual-time* ring: a pure
//! index kernel stepped by one thread under the cost model, proved safe by
//! `paradice-verify`. This module is its wall-clock twin: the same 4-KiB
//! shared page, but the head/tail cursors and per-slot ownership are
//! published with acquire/release atomics so a frontend thread and a
//! backend thread can drive it concurrently, and the doorbell is a real
//! park/unpark handoff instead of a virtual-time spin budget.
//!
//! # Memory-ordering argument (DESIGN.md §12 carries the prose version)
//!
//! The ring is single-producer single-consumer. Each slot carries a
//! free-running sequence number in the style of Vyukov's bounded queue:
//!
//! * slot `i` starts at `seq = i` — "free, awaiting push number `i`";
//! * the producer, at free-running cursor `t`, claims slot `t % N` iff
//!   `seq == t`, writes the payload, then publishes with
//!   `seq.store(t + 1, Release)` — the payload write *happens-before* any
//!   consumer that observes `t + 1` with an `Acquire` load;
//! * the consumer, at cursor `h`, pops slot `h % N` iff
//!   `seq == h + 1` (`Acquire` — synchronizes with the producer's
//!   release), reads the payload, then recycles with
//!   `seq.store(h + N, Release)` — the payload *read* happens-before the
//!   producer's next claim of the same slot (push number `h + N`).
//!
//! Cursors themselves are only ever written by their owning side, so the
//! slot sequence is the sole synchronization edge for payload bytes; the
//! `tail`/`head` stores exist so the *other* side can compute occupancy
//! (doorbell coalescing, backpressure) and are published with `Release`
//! and read with `Acquire` for a conservative view. `N` divides `2^32`,
//! so wrapping `u32` arithmetic never aliases two in-flight pushes.
//!
//! The whole structure — both cursors (cache-line padded) plus 16 slots of
//! 240 payload bytes — is laid out `repr(C)` in exactly one 4-KiB page,
//! mirroring the paper's shared-page channel (§5.1).

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;
use std::thread::Thread;
use std::time::Duration;

/// Slots in the atomic ring. Matches the virtual ring's
/// [`RING_CAPACITY`](crate::ring::RING_CAPACITY); must divide `2^32`.
pub const ARING_CAPACITY: usize = 16;

/// Payload bytes per slot: `(4096 - 2*64) / 16` minus the 8 bytes of
/// per-slot sequence + length. A no-op wire request is ~40 bytes and the
/// largest benchmarked ioctl frame is well under 200, so one slot holds
/// any coalesced fast-path frame; oversize frames are rejected, exactly
/// like the virtual channel's [`ChannelError::TooLarge`]
/// (crate::channel::ChannelError::TooLarge).
pub const ARING_SLOT_BYTES: usize = 240;

const MASK: u32 = ARING_CAPACITY as u32 - 1;

/// Why a push or pop did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ARingError {
    /// All slots are occupied: the consumer has fallen behind.
    Full,
    /// The frame exceeds [`ARING_SLOT_BYTES`].
    Oversize {
        /// Offending length.
        len: usize,
    },
}

impl fmt::Display for ARingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ARingError::Full => f.write_str("atomic ring full"),
            ARingError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds an atomic ring slot")
            }
        }
    }
}

impl std::error::Error for ARingError {}

#[repr(C)]
struct Slot {
    /// Free-running push number this slot is ready for (see module docs).
    seq: AtomicU32,
    /// Valid payload bytes, written before `seq` publishes them.
    len: AtomicU32,
    data: UnsafeCell<[u8; ARING_SLOT_BYTES]>,
}

/// One direction of the shared ring page, concurrency-safe.
///
/// Single-producer single-consumer: exactly one thread may call
/// [`try_push`](AtomicRing::try_push) and exactly one may call
/// [`try_pop`](AtomicRing::try_pop). The type is `Sync` so both sides can
/// share it behind an `Arc`; the SPSC discipline is the caller's contract
/// (the engine owns one thread per side by construction).
#[repr(C, align(64))]
pub struct AtomicRing {
    /// Producer cursor (free-running). Written only by the producer.
    tail: AtomicU32,
    _pad0: [u8; 60],
    /// Consumer cursor (free-running). Written only by the consumer.
    head: AtomicU32,
    _pad1: [u8; 60],
    slots: [Slot; ARING_CAPACITY],
}

// One page, like the virtual channel's shared page (paper §5.1).
const _: () = assert!(std::mem::size_of::<AtomicRing>() <= 4096);
const _: () = assert!(ARING_CAPACITY.is_power_of_two());
const _: () = assert!((u32::MAX as u64 + 1).is_multiple_of(ARING_CAPACITY as u64));

// SAFETY: the payload `UnsafeCell`s are only touched under the slot-seq
// protocol documented on the module: a slot's bytes are written by the
// single producer strictly before the `Release` store that hands the slot
// to the consumer, and read by the single consumer strictly before the
// `Release` store that hands it back. No two threads ever access a slot's
// payload concurrently.
unsafe impl Sync for AtomicRing {}
unsafe impl Send for AtomicRing {}

impl Default for AtomicRing {
    fn default() -> Self {
        AtomicRing::new()
    }
}

impl AtomicRing {
    /// An empty ring: slot `i` awaits push number `i`.
    pub fn new() -> Self {
        AtomicRing {
            tail: AtomicU32::new(0),
            _pad0: [0; 60],
            head: AtomicU32::new(0),
            _pad1: [0; 60],
            slots: std::array::from_fn(|i| Slot {
                seq: AtomicU32::new(i as u32),
                len: AtomicU32::new(0),
                data: UnsafeCell::new([0; ARING_SLOT_BYTES]),
            }),
        }
    }

    /// Producer side: publishes one frame. Returns `true` when the ring
    /// was empty before the push — the empty→non-empty transition on which
    /// (and only on which) the producer must ring the doorbell, the same
    /// coalescing rule the virtual ring's
    /// [`PushGrant::doorbell`](crate::ring::PushGrant) encodes.
    pub fn try_push(&self, frame: &[u8]) -> Result<bool, ARingError> {
        if frame.len() > ARING_SLOT_BYTES {
            return Err(ARingError::Oversize { len: frame.len() });
        }
        let tail = self.tail.load(Ordering::Relaxed); // sole writer: us
        let slot = &self.slots[(tail & MASK) as usize];
        // Acquire: synchronizes with the consumer's recycling store, so
        // our payload write cannot be reordered before the consumer is
        // done reading the previous occupant.
        if slot.seq.load(Ordering::Acquire) != tail {
            return Err(ARingError::Full);
        }
        // SAFETY: seq == tail means the slot is ours (module protocol).
        unsafe {
            (&mut *slot.data.get())[..frame.len()].copy_from_slice(frame);
        }
        slot.len.store(frame.len() as u32, Ordering::Relaxed);
        // Occupancy *before* publication decides the doorbell.
        let was_empty = self.head.load(Ordering::Acquire) == tail;
        // Release: payload + len happen-before any consumer that sees
        // seq == tail + 1.
        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(was_empty)
    }

    /// Consumer side: takes the oldest frame, if any.
    pub fn try_pop(&self) -> Option<Vec<u8>> {
        let head = self.head.load(Ordering::Relaxed); // sole writer: us
        let slot = &self.slots[(head & MASK) as usize];
        // Acquire: pairs with the producer's publishing Release.
        if slot.seq.load(Ordering::Acquire) != head.wrapping_add(1) {
            return None;
        }
        // Clamp: `len` lives in shared memory, so a hostile or corrupted
        // producer can store any value. Truncated garbage fails to decode
        // (EINVAL) downstream; an unclamped length would walk off the slot.
        let len = (slot.len.load(Ordering::Relaxed) as usize).min(ARING_SLOT_BYTES);
        // SAFETY: seq == head + 1 means the slot holds a published frame
        // and the producer will not touch it until we recycle it.
        let frame = unsafe { (&*slot.data.get())[..len].to_vec() };
        // Release: our payload read happens-before the producer's next
        // claim of this slot (push number head + N).
        slot.seq
            .store(head.wrapping_add(ARING_CAPACITY as u32), Ordering::Release);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(frame)
    }

    /// Adversarial injection: bumps the newest published slot's sequence
    /// word by `delta`, simulating a malicious VM scribbling on the shared
    /// page's control words. Returns `false` (no-op) when nothing is
    /// published. Sound under concurrency: `seq` is an atomic, so this is
    /// a data race with nobody — the consumer simply observes a sequence
    /// that never matches and treats the slot as not-yet-published.
    pub fn corrupt_newest_seq(&self, delta: u32) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return false;
        }
        let newest = tail.wrapping_sub(1);
        let slot = &self.slots[(newest & MASK) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        slot.seq.store(seq.wrapping_add(delta), Ordering::Release);
        true
    }

    /// Adversarial injection: overwrites the newest published slot's
    /// length word (e.g. with a value far beyond [`ARING_SLOT_BYTES`]).
    /// The consumer must clamp — see [`AtomicRing::try_pop`] — so the
    /// worst a hostile length can do is truncate the frame into a decode
    /// error. Returns `false` when nothing is published.
    pub fn corrupt_newest_len(&self, len: u32) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return false;
        }
        let newest = tail.wrapping_sub(1);
        let slot = &self.slots[(newest & MASK) as usize];
        slot.len.store(len, Ordering::Release);
        true
    }

    /// Occupied slots, as a conservative cross-thread observation.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) as usize
    }

    /// Whether the ring appears empty (conservative, racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for AtomicRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicRing")
            .field("capacity", &ARING_CAPACITY)
            .field("len", &self.len())
            .finish()
    }
}

/// The inter-VM interrupt line of the wall-clock engine.
///
/// Virtual-time polling burns a spin budget on the virtual clock; on real
/// threads the idle side parks itself and the producer un-parks it on the
/// empty→non-empty transition. The `rung` flag makes the handoff lossless
/// (a ring that arrives between the check and the park is observed on the
/// next iteration), and the bounded `park_timeout` makes any residual
/// lost-wakeup race a latency blip instead of a hang.
#[derive(Debug, Default)]
pub struct Doorbell {
    rung: AtomicBool,
    parked: AtomicBool,
    sleeper: Mutex<Option<Thread>>,
}

impl Doorbell {
    /// A doorbell nobody is waiting on.
    pub fn new() -> Self {
        Doorbell::default()
    }

    /// Registers the calling thread as the (single) waiter. Called once,
    /// from the consumer thread, before its first [`wait`](Doorbell::wait).
    pub fn register(&self) {
        *self.sleeper.lock().expect("doorbell sleeper poisoned") = Some(std::thread::current());
    }

    /// Rings: wakes the registered waiter if it is parked. The producer
    /// calls this only on empty→non-empty (doorbell coalescing).
    pub fn ring(&self) {
        self.rung.store(true, Ordering::Release);
        if self.parked.load(Ordering::Acquire) {
            if let Some(thread) = &*self.sleeper.lock().expect("doorbell sleeper poisoned") {
                thread.unpark();
            }
        }
    }

    /// Blocks the registered waiter until the bell has rung since the last
    /// wait (consuming the ring), or `ready()` reports work.
    pub fn wait(&self, mut ready: impl FnMut() -> bool) {
        if self.rung.swap(false, Ordering::AcqRel) || ready() {
            return;
        }
        self.parked.store(true, Ordering::Release);
        while !self.rung.swap(false, Ordering::AcqRel) && !ready() {
            std::thread::park_timeout(Duration::from_millis(1));
        }
        self.parked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip_preserves_bytes() {
        let ring = AtomicRing::new();
        assert!(ring.is_empty());
        assert!(ring.try_push(b"hello").expect("push"));
        assert_eq!(ring.len(), 1);
        assert!(!ring.try_push(b"world").expect("push"), "not empty now");
        assert_eq!(ring.try_pop().as_deref(), Some(&b"hello"[..]));
        assert_eq!(ring.try_pop().as_deref(), Some(&b"world"[..]));
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn fills_at_capacity_and_recovers() {
        let ring = AtomicRing::new();
        for i in 0..ARING_CAPACITY {
            ring.try_push(&[i as u8]).expect("push below capacity");
        }
        assert_eq!(ring.try_push(b"x"), Err(ARingError::Full));
        assert_eq!(ring.try_pop().as_deref(), Some(&[0u8][..]));
        ring.try_push(b"y").expect("freed slot re-usable");
        for i in 1..ARING_CAPACITY {
            assert_eq!(ring.try_pop().as_deref(), Some(&[i as u8][..]));
        }
        assert_eq!(ring.try_pop().as_deref(), Some(&b"y"[..]));
    }

    #[test]
    fn oversize_frames_are_rejected_like_the_virtual_channel() {
        let ring = AtomicRing::new();
        let frame = [0u8; ARING_SLOT_BYTES + 1];
        assert_eq!(
            ring.try_push(&frame),
            Err(ARingError::Oversize {
                len: ARING_SLOT_BYTES + 1
            })
        );
        ring.try_push(&[0u8; ARING_SLOT_BYTES]).expect("exact fit");
    }

    #[test]
    fn wraparound_many_times_stays_fifo() {
        let ring = AtomicRing::new();
        let mut next_pop = 0u32;
        for round in 0..64u32 {
            for lap in 0..ARING_CAPACITY as u32 {
                let value = round * ARING_CAPACITY as u32 + lap;
                ring.try_push(&value.to_le_bytes()).expect("push");
            }
            for _ in 0..ARING_CAPACITY {
                let frame = ring.try_pop().expect("pop");
                let got = u32::from_le_bytes(frame.try_into().expect("4 bytes"));
                assert_eq!(got, next_pop);
                next_pop += 1;
            }
        }
    }

    #[test]
    fn doorbell_fires_only_on_empty_to_nonempty() {
        let ring = AtomicRing::new();
        let mut doorbells = 0;
        for _ in 0..4 {
            if ring.try_push(b"a").expect("push") {
                doorbells += 1;
            }
        }
        assert_eq!(doorbells, 1, "coalesced: one bell for four queued frames");
        while ring.try_pop().is_some() {}
        assert!(ring.try_push(b"b").expect("push"), "empty again: new bell");
    }

    #[test]
    fn two_threads_transfer_everything_in_order() {
        let ring = Arc::new(AtomicRing::new());
        let total: u32 = 40_000;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..total {
                    loop {
                        match ring.try_push(&i.to_le_bytes()) {
                            Ok(_) => break,
                            Err(ARingError::Full) => std::hint::spin_loop(),
                            Err(e) => panic!("unexpected push error: {e}"),
                        }
                    }
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut expected = 0u32;
                while expected < total {
                    if let Some(frame) = ring.try_pop() {
                        let got = u32::from_le_bytes(frame.try_into().expect("4 bytes"));
                        assert_eq!(got, expected, "FIFO order violated");
                        expected += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        producer.join().expect("producer");
        consumer.join().expect("consumer");
        assert!(ring.is_empty());
    }

    #[test]
    fn a_hostile_length_word_is_clamped_not_overread() {
        let ring = AtomicRing::new();
        ring.try_push(b"short frame").expect("push");
        assert!(ring.corrupt_newest_len(u32::MAX), "slot is published");
        // The consumer must clamp to the slot size instead of slicing past
        // the payload: a truncated-garbage frame, never a panic.
        let frame = ring.try_pop().expect("still poppable");
        assert_eq!(frame.len(), ARING_SLOT_BYTES);
        assert_eq!(&frame[..11], b"short frame");
    }

    #[test]
    fn a_corrupted_seq_word_hides_the_slot_but_cannot_corrupt_fifo() {
        let ring = AtomicRing::new();
        ring.try_push(b"first").expect("push");
        ring.try_push(b"second").expect("push");
        assert!(ring.corrupt_newest_seq(7));
        // The older slot is untouched; the corrupted one reads as
        // not-yet-published, so the consumer stalls instead of handing out
        // a torn frame.
        assert_eq!(ring.try_pop().as_deref(), Some(&b"first"[..]));
        assert_eq!(ring.try_pop(), None, "corrupted slot must not pop");
        // The producer eventually observes the stuck slot as Full — loss
        // is detected as backpressure, never silent reuse.
        for _ in 0..ARING_CAPACITY {
            let _ = ring.try_push(b"fill");
        }
        assert_eq!(ring.try_push(b"x"), Err(ARingError::Full));
    }

    #[test]
    fn corruption_on_an_empty_ring_is_a_noop() {
        let ring = AtomicRing::new();
        assert!(!ring.corrupt_newest_seq(1));
        assert!(!ring.corrupt_newest_len(9999));
        ring.try_push(b"ok").expect("push");
        assert_eq!(ring.try_pop().as_deref(), Some(&b"ok"[..]));
    }

    #[test]
    fn doorbell_wakes_a_parked_waiter() {
        let bell = Arc::new(Doorbell::new());
        let ring = Arc::new(AtomicRing::new());
        let waiter = {
            let (bell, ring) = (Arc::clone(&bell), Arc::clone(&ring));
            std::thread::spawn(move || {
                bell.register();
                bell.wait(|| !ring.is_empty());
                ring.try_pop().expect("frame present after wakeup")
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        if ring.try_push(b"ding").expect("push") {
            bell.ring();
        }
        let frame = waiter.join().expect("waiter");
        assert_eq!(frame, b"ding");
    }
}
