//! The [`Hypervisor`]: VM lifecycle, device assignment, and the hypercall API.
//!
//! This is Paradice's trusted computing base. It implements:
//!
//! * **VM creation** with identity-mapped RAM behind per-VM EPTs;
//! * **device assignment** (§3.1): device BARs mapped into the driver VM,
//!   DMA confined to driver-VM memory by the IOMMU;
//! * the **hypercall API for driver memory operations** (§5.2): cross-VM
//!   copies via two-stage software page-table walks, and `mmap` fix-ups that
//!   pick an unused guest-physical page, edit the guest's EPT, and fix the
//!   last level of the guest's page tables;
//! * **strict runtime checks**: every memory operation requested by the
//!   (untrusted) driver VM is validated against the grant table of the
//!   target guest (§4.1) — violations are refused and audited;
//! * **device data isolation** (§4.2, §5.3): protected regions, EPT
//!   permission stripping, region-tagged IOMMU mappings with one active
//!   region, device-memory aperture bounds behind protected MMIO.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use paradice_mem::ept::EptMapError;
use paradice_mem::iommu::DomainId;
use paradice_mem::layout::GpaExhausted;
use paradice_mem::pagetable::{GpaSpace, GuestPageTables, PtWalkError};
use paradice_mem::{
    Access, DmaAddr, EptViolation, GuestPhysAddr, GuestVirtAddr, Iommu, IommuFault, MemError,
    PhysAddr, RegionId, SystemMemory, PAGE_SIZE,
};
use paradice_trace::{SpanId, TraceEvent, TraceMemOpKind, Tracer};

use crate::audit::{AuditEvent, AuditLog};
use crate::clock::{ClockSource, CostModel};
use crate::grants::{GrantError, GrantRef, GrantTable, MemOpGrant, MemOpRequest};
use crate::regions::{DevMemRange, RegionError, RegionManager};
use crate::vm::{Vm, VmId, VmRole};

/// Errors surfaced by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HvError {
    /// The caller is not the driver VM but invoked a driver-only hypercall.
    NotDriverVm {
        /// The offending caller.
        caller: VmId,
    },
    /// Unknown VM id.
    UnknownVm {
        /// The offending id.
        vm: VmId,
    },
    /// Grant validation failed — the request was refused and audited.
    Grant(GrantError),
    /// A guest page-table walk failed.
    Pt(PtWalkError),
    /// An EPT permission check failed.
    Ept(EptViolation),
    /// An EPT edit was malformed (e.g. write-only permissions).
    EptMap(EptMapError),
    /// Physical memory access failed.
    Mem(MemError),
    /// The IOMMU blocked a DMA or mapping operation.
    Iommu(IommuFault),
    /// Region bookkeeping failed.
    Region(RegionError),
    /// The guest's unused-GPA window is exhausted.
    GpaWindowExhausted,
    /// Data isolation is enabled but the driver omitted a region tag.
    RegionRequired,
    /// The page belongs to another guest's protected region.
    ForeignRegionPage {
        /// The region that owns the page.
        owner: RegionId,
    },
    /// A device access fell outside the active device-memory aperture.
    ApertureViolation {
        /// The device-memory offset of the access.
        offset: u64,
    },
    /// The driver VM touched a hypervisor-protected MMIO register.
    ProtectedMmio {
        /// The register offset.
        offset: u64,
    },
    /// The guest's page permissions forbid the access (its own mapping).
    GuestPagePerms {
        /// The faulting virtual address.
        va: GuestVirtAddr,
    },
    /// No such IOMMU mapping to unmap.
    NoSuchMapping {
        /// The bus address.
        dma: DmaAddr,
    },
    /// The driver VM was declared failed (crash/watchdog); its hypercalls
    /// are refused until it is recovered (§7.1 fault containment).
    DriverVmFailed {
        /// The failed driver VM.
        vm: VmId,
    },
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::NotDriverVm { caller } => {
                write!(f, "{caller} is not the driver VM")
            }
            HvError::UnknownVm { vm } => write!(f, "unknown {vm}"),
            HvError::Grant(e) => write!(f, "grant check failed: {e}"),
            HvError::Pt(e) => write!(f, "guest page-table walk failed: {e}"),
            HvError::Ept(e) => write!(f, "{e}"),
            HvError::EptMap(e) => write!(f, "{e}"),
            HvError::Mem(e) => write!(f, "{e}"),
            HvError::Iommu(e) => write!(f, "{e}"),
            HvError::Region(e) => write!(f, "{e}"),
            HvError::GpaWindowExhausted => f.write_str("guest unused-GPA window exhausted"),
            HvError::RegionRequired => {
                f.write_str("data isolation enabled: IOMMU mappings require a region tag")
            }
            HvError::ForeignRegionPage { owner } => {
                write!(f, "page belongs to foreign protected {owner}")
            }
            HvError::ApertureViolation { offset } => {
                write!(f, "device access at offset {offset:#x} outside aperture")
            }
            HvError::ProtectedMmio { offset } => {
                write!(f, "protected MMIO register {offset:#x}")
            }
            HvError::GuestPagePerms { va } => {
                write!(f, "guest page permissions forbid access at {va}")
            }
            HvError::NoSuchMapping { dma } => write!(f, "no IOMMU mapping at {dma}"),
            HvError::DriverVmFailed { vm } => {
                write!(f, "driver {vm} is marked failed; awaiting recovery")
            }
        }
    }
}

impl std::error::Error for HvError {}

impl From<GrantError> for HvError {
    fn from(e: GrantError) -> Self {
        HvError::Grant(e)
    }
}

impl From<PtWalkError> for HvError {
    fn from(e: PtWalkError) -> Self {
        HvError::Pt(e)
    }
}

impl From<EptViolation> for HvError {
    fn from(e: EptViolation) -> Self {
        HvError::Ept(e)
    }
}

impl From<EptMapError> for HvError {
    fn from(e: EptMapError) -> Self {
        HvError::EptMap(e)
    }
}

impl From<MemError> for HvError {
    fn from(e: MemError) -> Self {
        HvError::Mem(e)
    }
}

impl From<IommuFault> for HvError {
    fn from(e: IommuFault) -> Self {
        HvError::Iommu(e)
    }
}

impl From<RegionError> for HvError {
    fn from(e: RegionError) -> Self {
        HvError::Region(e)
    }
}

impl From<GpaExhausted> for HvError {
    fn from(_: GpaExhausted) -> Self {
        HvError::GpaWindowExhausted
    }
}

/// Data-isolation configuration of an assigned device (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataIsolation {
    /// Plain device assignment: DMA may reach all driver-VM memory.
    Disabled,
    /// Hypervisor-enforced protected regions; IOMMU starts empty.
    Enabled,
}

/// Per-assigned-device hypervisor state.
#[derive(Debug)]
struct DomainState {
    driver_vm: VmId,
    isolation: DataIsolation,
    regions: RegionManager,
    /// Active device-memory aperture (hypervisor-owned MC bound registers).
    aperture: Option<DevMemRange>,
    /// Whether the MC register page has been unmapped from the driver VM
    /// (§5.3(iii)); set during trusted driver initialization.
    mmio_protected: bool,
    /// Non-protected MMIO registers reachable via hypercall, by offset.
    misc_regs: BTreeMap<u64, u64>,
    /// Device BAR: VRAM frames exposed in driver-VM guest-physical space at
    /// `bar_base`.
    bar_base: Option<GuestPhysAddr>,
    bar_pages: u64,
}

/// Register offsets of the GPU memory-controller aperture bounds within the
/// protected MMIO page (modeled after Evergreen's `MC_VM_*` pair, §4.2).
pub const MC_APERTURE_LO: u64 = 0x00;
/// Upper-bound register offset.
pub const MC_APERTURE_HI: u64 = 0x08;

/// Key identifying one hypervisor-installed `mmap` fix-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FixupKey {
    guest: VmId,
    pt_root: u64,
    va_page: u64,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    claimed_gpa: GuestPhysAddr,
}

/// One entry of a vectored [`Hypervisor::hv_memops_batch`] hypercall — the
/// same four driver memory operations as the per-op hypercalls, described
/// as data so a whole dispatch crosses the boundary once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchMemOp {
    /// Copy `len` bytes from guest process memory at `src`.
    CopyFromGuest {
        /// Source address in the guest process.
        src: GuestVirtAddr,
        /// Bytes to copy.
        len: u64,
    },
    /// Copy `data` into guest process memory at `dst`.
    CopyToGuest {
        /// Destination address in the guest process.
        dst: GuestVirtAddr,
        /// The driver's bytes.
        data: Vec<u8>,
    },
    /// Map driver-physical page `driver_pfn` at guest `va`
    /// (the `vm_insert_pfn` wrapper-stub path).
    InsertPfn {
        /// Guest virtual address of the mapping.
        va: GuestVirtAddr,
        /// Driver-VM page frame number backing it.
        driver_pfn: u64,
        /// Mapping permissions.
        access: Access,
    },
    /// Tear down a mapping previously installed by `InsertPfn`.
    ZapPage {
        /// Guest virtual address of the mapping.
        va: GuestVirtAddr,
    },
}

impl BatchMemOp {
    /// The grant-table request this entry must satisfy.
    fn as_request(&self) -> MemOpRequest {
        match *self {
            BatchMemOp::CopyFromGuest { src, len } => {
                MemOpRequest::CopyFromGuest { addr: src, len }
            }
            BatchMemOp::CopyToGuest { dst, ref data } => MemOpRequest::CopyToGuest {
                addr: dst,
                len: data.len() as u64,
            },
            BatchMemOp::InsertPfn { va, access, .. } => MemOpRequest::MapPage { va, access },
            BatchMemOp::ZapPage { va } => MemOpRequest::UnmapPage { va },
        }
    }

    /// `(kind, addr, len)` for the per-op trace event.
    fn trace_shape(&self) -> (TraceMemOpKind, u64, u64) {
        match *self {
            BatchMemOp::CopyFromGuest { src, len } => {
                (TraceMemOpKind::CopyFromGuest, src.raw(), len)
            }
            BatchMemOp::CopyToGuest { dst, ref data } => {
                (TraceMemOpKind::CopyToGuest, dst.raw(), data.len() as u64)
            }
            BatchMemOp::InsertPfn { va, .. } => (TraceMemOpKind::MapPage, va.raw(), PAGE_SIZE),
            BatchMemOp::ZapPage { va } => (TraceMemOpKind::UnmapPage, va.raw(), PAGE_SIZE),
        }
    }
}

/// The per-entry result of a [`Hypervisor::hv_memops_batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchMemOpResult {
    /// A `CopyFromGuest` entry's bytes.
    Bytes(Vec<u8>),
    /// A side-effect-only entry completed.
    Done,
}

/// The simulated hypervisor.
pub struct Hypervisor {
    clock: ClockSource,
    cost: CostModel,
    mem: SystemMemory,
    vms: Vec<Vm>,
    iommu: Iommu,
    grants: BTreeMap<u32, GrantTable>,
    domains: BTreeMap<usize, DomainState>,
    fixups: BTreeMap<FixupKey, Fixup>,
    audit: AuditLog,
    /// When false, driver memory operations skip grant validation — the
    /// *devirtualization* predecessor design (paper Figure 1(b)), kept as a
    /// security ablation. Never disable outside experiments.
    grant_validation: bool,
    /// The paradice-trace sink. Disabled by default: the hypercall paths
    /// check [`Tracer::is_enabled`] before building any event payload, so
    /// the untraced hot path costs one branch.
    tracer: Tracer,
    /// The span of the file operation the backend is currently dispatching
    /// (set around dispatch, like the driver-env current-guest marking).
    /// Memory operations recorded while it is [`SpanId::NONE`] are dropped.
    current_span: SpanId,
    /// Driver VMs declared failed (crash or watchdog timeout, §7.1). A
    /// failed driver VM's hypercalls are refused — a compromised-after-crash
    /// driver can touch nothing — until `clear_driver_vm_failed` at reboot.
    failed_driver_vms: BTreeSet<u32>,
    /// Count of hypercalls issued (grant declares/revokes plus the driver
    /// memory-operation calls). Boundary crossings, not copied bytes, are
    /// what separates paravirtual from native — the fast-path evaluation
    /// reports this counter per workload.
    hypercalls: u64,
}

impl fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypervisor")
            .field("vms", &self.vms.len())
            .field("domains", &self.domains.len())
            .field("clock", &self.clock)
            .finish()
    }
}

/// A [`GpaSpace`] view of one VM: reads and writes go through the VM's EPT
/// into system memory; table pages come from the VM's kernel allocator.
pub struct VmGpaSpace<'a> {
    vm: &'a mut Vm,
    mem: &'a mut SystemMemory,
}

impl GpaSpace for VmGpaSpace<'_> {
    fn read_u64(&self, gpa: GuestPhysAddr) -> Result<u64, PtWalkError> {
        let pa = self
            .vm
            .ept()
            .translate_unchecked(gpa)
            .ok_or(PtWalkError::Backing { gpa })?;
        self.mem
            .read_u64(pa)
            .map_err(|_| PtWalkError::Backing { gpa })
    }

    fn write_u64(&mut self, gpa: GuestPhysAddr, value: u64) -> Result<(), PtWalkError> {
        let pa = self
            .vm
            .ept()
            .translate_unchecked(gpa)
            .ok_or(PtWalkError::Backing { gpa })?;
        self.mem
            .write_u64(pa, value)
            .map_err(|_| PtWalkError::Backing { gpa })
    }

    fn alloc_table_page(&mut self) -> Result<GuestPhysAddr, PtWalkError> {
        self.vm.alloc_kernel_page().ok_or(PtWalkError::NoTablePages)
    }
}

impl Hypervisor {
    /// Boots a hypervisor managing `total_frames` frames of physical memory.
    /// The clock decides the execution substrate: a [`crate::SimClock`]
    /// charges the cost model on deterministic virtual time, a
    /// [`crate::WallClock`] makes charges no-ops and reports real time.
    pub fn new(total_frames: usize, clock: impl Into<ClockSource>, cost: CostModel) -> Self {
        Hypervisor {
            clock: clock.into(),
            cost,
            mem: SystemMemory::new(total_frames),
            vms: Vec::new(),
            iommu: Iommu::new(),
            grants: BTreeMap::new(),
            domains: BTreeMap::new(),
            fixups: BTreeMap::new(),
            audit: AuditLog::new(),
            grant_validation: true,
            tracer: Tracer::disabled(),
            current_span: SpanId::NONE,
            failed_driver_vms: BTreeSet::new(),
            hypercalls: 0,
        }
    }

    /// Installs the trace sink shared with the CVD frontends (see
    /// `Machine::enable_tracing`).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The active trace sink (disabled unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Marks the span whose file operation the backend is dispatching; the
    /// hypercall paths attribute memory-operation events to it. Pass
    /// [`SpanId::NONE`] when dispatch completes.
    pub fn set_current_span(&mut self, span: SpanId) {
        self.current_span = span;
    }

    /// The span currently being dispatched (tests).
    pub fn current_span(&self) -> SpanId {
        self.current_span
    }

    /// Records one driver memory operation against the current span.
    /// `granted` is the grant-check outcome; execution failures past the
    /// check (e.g. an unmapped guest page) do not rewrite the event.
    fn trace_mem_op(&self, kind: TraceMemOpKind, addr: u64, len: u64, granted: bool) {
        if self.tracer.is_enabled() && self.current_span.is_some() {
            self.tracer
                .mem_op(self.current_span, self.clock.now_ns(), kind, addr, len, granted);
        }
    }

    /// The shared clock (virtual or wall, fixed at construction).
    pub fn clock(&self) -> &ClockSource {
        &self.clock
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The isolation audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Total hypercalls issued so far (declares, revokes, and driver memory
    /// operations). The fast-path experiments report deltas of this counter.
    pub fn hypercall_count(&self) -> u64 {
        self.hypercalls
    }

    /// Clears the audit log (between experiment repetitions).
    pub fn clear_audit(&mut self) {
        self.audit.clear();
    }

    /// Direct access to system memory (device models and tests).
    pub fn mem(&self) -> &SystemMemory {
        &self.mem
    }

    /// Mutable access to system memory (device models and tests).
    pub fn mem_mut(&mut self) -> &mut SystemMemory {
        &mut self.mem
    }

    // ------------------------------------------------------------------
    // VM lifecycle
    // ------------------------------------------------------------------

    /// Creates a VM with `ram_bytes` of identity-mapped RAM.
    ///
    /// # Errors
    ///
    /// Fails if physical memory is exhausted.
    pub fn create_vm(&mut self, role: VmRole, ram_bytes: u64) -> Result<VmId, HvError> {
        let id = VmId(self.vms.len() as u32);
        let mut vm = Vm::new(id, role, ram_bytes);
        for page in 0..vm.ram_pages() {
            let frame = self.mem.alloc_frame()?;
            vm.ept_mut().map(
                GuestPhysAddr::new(page * PAGE_SIZE),
                frame.base(),
                Vm::ram_access(),
            )?;
        }
        self.grants.insert(id.0, GrantTable::new());
        self.vms.push(vm);
        Ok(id)
    }

    /// Shared access to a VM.
    ///
    /// # Errors
    ///
    /// [`HvError::UnknownVm`].
    pub fn vm(&self, id: VmId) -> Result<&Vm, HvError> {
        self.vms
            .get(id.0 as usize)
            .ok_or(HvError::UnknownVm { vm: id })
    }

    /// Mutable access to a VM.
    ///
    /// # Errors
    ///
    /// [`HvError::UnknownVm`].
    pub fn vm_mut(&mut self, id: VmId) -> Result<&mut Vm, HvError> {
        self.vms
            .get_mut(id.0 as usize)
            .ok_or(HvError::UnknownVm { vm: id })
    }

    /// A [`GpaSpace`] view of `vm` for page-table construction and walks.
    ///
    /// # Panics
    ///
    /// Panics on an unknown VM id — a simulation bug.
    pub fn gpa_space(&mut self, vm: VmId) -> VmGpaSpace<'_> {
        let Hypervisor { vms, mem, .. } = self;
        VmGpaSpace {
            vm: vms.get_mut(vm.0 as usize).expect("unknown VM"),
            mem,
        }
    }

    fn is_driver_vm(&self, vm: VmId) -> bool {
        matches!(self.vm(vm), Ok(v) if v.role() == VmRole::Driver)
    }

    fn require_driver(&self, caller: VmId) -> Result<(), HvError> {
        if !self.is_driver_vm(caller) {
            return Err(HvError::NotDriverVm { caller });
        }
        // A failed driver VM loses its hypercall privileges wholesale: even
        // a grant-covered request is refused until recovery re-admits it.
        if self.failed_driver_vms.contains(&caller.0) {
            return Err(HvError::DriverVmFailed { vm: caller });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Driver-VM failure containment and recovery (paper §7.1)
    // ------------------------------------------------------------------

    /// Declares a driver VM failed (panic, watchdog timeout, or a wild
    /// memory operation): revokes **every** outstanding grant declaration in
    /// every guest's table and tears down all live `mmap` fix-ups, so a
    /// compromised-after-crash driver retains no authority over guest
    /// memory. Idempotent — marking an already-failed VM returns `Ok(0)`.
    ///
    /// Returns the number of grant declarations revoked.
    ///
    /// # Errors
    ///
    /// [`HvError::NotDriverVm`] when `vm` is not a driver VM.
    pub fn mark_driver_vm_failed(&mut self, vm: VmId) -> Result<usize, HvError> {
        if !self.is_driver_vm(vm) {
            return Err(HvError::NotDriverVm { caller: vm });
        }
        if !self.failed_driver_vms.insert(vm.0) {
            return Ok(0);
        }
        let mut revoked = 0usize;
        for table in self.grants.values_mut() {
            revoked += table.revoke_all();
        }
        // Tear down hypervisor-installed mmap fix-ups: the frames behind
        // them are driver-VM pages that the rebooted driver will reuse.
        let fixups = std::mem::take(&mut self.fixups);
        for (key, fixup) in fixups {
            if let Ok(guest_vm) = self.vm_mut(key.guest) {
                guest_vm.ept_mut().unmap(fixup.claimed_gpa);
                guest_vm.gpa_window_mut().release(fixup.claimed_gpa);
            }
        }
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent::DriverVmFailed {
                span: self.current_span,
                t_ns: self.clock.now_ns(),
                vm: vm.0 as u64,
                revoked_grants: revoked as u64,
            });
        }
        Ok(revoked)
    }

    /// Whether `vm` is currently marked failed.
    pub fn driver_vm_failed(&self, vm: VmId) -> bool {
        self.failed_driver_vms.contains(&vm.0)
    }

    /// Clears the failed mark after the driver VM reboots (recovery). The
    /// caller must have rebuilt the VM's protected state first. No-op when
    /// the VM was not failed.
    pub fn clear_driver_vm_failed(&mut self, vm: VmId) {
        if self.failed_driver_vms.remove(&vm.0) && self.tracer.is_enabled() {
            self.tracer.record(TraceEvent::DriverVmRecovered {
                span: SpanId::NONE,
                t_ns: self.clock.now_ns(),
                vm: vm.0 as u64,
            });
        }
    }

    /// Records a fault-injection trace event against the current span (the
    /// CVD backend calls this at the dispatch boundary when a `FaultPlan`
    /// fires).
    pub fn trace_fault_injected(&self, kind: &str, op: &str) {
        if self.tracer.is_enabled() {
            self.tracer.record(TraceEvent::FaultInjected {
                span: self.current_span,
                t_ns: self.clock.now_ns(),
                kind: kind.to_owned(),
                op: op.to_owned(),
            });
        }
    }

    /// Resets every device domain assigned to `driver_vm` for recovery:
    /// restores the driver VM's EPT access to formerly protected pages,
    /// clears all IOMMU mappings, discards region/aperture/protected-MMIO
    /// state, and (without data isolation) rebuilds the identity DMA map.
    /// The rebooted driver then re-runs its trusted initialization phase
    /// from a clean slate, exactly as on first assignment.
    ///
    /// # Errors
    ///
    /// Propagates EPT bookkeeping failures (simulation bugs).
    pub fn reset_domains_of(&mut self, driver_vm: VmId) -> Result<(), HvError> {
        let domains: Vec<usize> = self
            .domains
            .iter()
            .filter(|(_, state)| state.driver_vm == driver_vm)
            .map(|(idx, _)| *idx)
            .collect();
        for idx in domains {
            let domain = DomainId::from_index(idx);
            // Restore driver access to every protected system page (BAR
            // pages included: hc_protect_bar_range stripped them too).
            let mut protected: Vec<GuestPhysAddr> = Vec::new();
            {
                let state = self.domains.get(&idx).expect("domain listed above");
                for region in state.regions.iter_ids() {
                    if let Ok(pages) = state.regions.sys_pages_of(region) {
                        protected.extend_from_slice(pages);
                    }
                }
            }
            for gpa in protected {
                // Pages may have been BAR frames or RAM; both were RW
                // before protection.
                self.vm_mut(driver_vm)?.ept_mut().set_access(gpa, Access::RW)?;
            }
            // Drop every IOMMU mapping (stale DMA authority dies with the
            // crashed driver).
            let mapped: Vec<DmaAddr> = self
                .iommu
                .domain(domain)
                .iter()
                .map(|(dma, _, _, _)| dma)
                .collect();
            for dma in mapped {
                self.iommu.domain_mut(domain).unmap(dma);
            }
            self.iommu.domain_mut(domain).switch_region(None);
            // Reset per-domain bookkeeping; keep the BAR placement — the
            // frames are still mapped in the driver VM's EPT.
            let state = self.domains.get_mut(&idx).expect("domain listed above");
            state.regions = RegionManager::new();
            state.aperture = None;
            state.mmio_protected = false;
            state.misc_regs.clear();
            let isolation = state.isolation;
            // Without data isolation the identity DMA map must come back.
            if isolation == DataIsolation::Disabled {
                let ram_pages = self.vm(driver_vm)?.ram_pages();
                for page in 0..ram_pages {
                    let gpa = GuestPhysAddr::new(page * PAGE_SIZE);
                    let pa = self
                        .vm(driver_vm)?
                        .ept()
                        .frame_of(gpa)
                        .expect("RAM is identity-mapped");
                    self.iommu.domain_mut(domain).map(
                        DmaAddr::new(gpa.raw()),
                        pa,
                        Access::RW,
                        RegionId::GLOBAL,
                    );
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Grant management (called by the guest-side CVD frontend)
    // ------------------------------------------------------------------

    /// Declares the legitimate memory operations of a file operation for
    /// `guest` (the frontend writes them into its grant table, §4.1/§5.1).
    ///
    /// # Errors
    ///
    /// Unknown VM or full grant table.
    pub fn declare_grants(
        &mut self,
        guest: VmId,
        ops: Vec<MemOpGrant>,
    ) -> Result<GrantRef, HvError> {
        self.vm(guest)?;
        self.hypercalls += 1;
        let table = self.grants.get_mut(&guest.0).expect("grants track VMs");
        Ok(table.declare(ops)?)
    }

    /// Revokes a grant after the file operation completes.
    ///
    /// # Errors
    ///
    /// Unknown VM.
    pub fn revoke_grant(&mut self, guest: VmId, grant: GrantRef) -> Result<bool, HvError> {
        self.vm(guest)?;
        self.hypercalls += 1;
        Ok(self
            .grants
            .get_mut(&guest.0)
            .expect("grants track VMs")
            .revoke(grant))
    }

    /// Outstanding declarations for a guest (tests and overhead accounting).
    pub fn outstanding_grants(&self, guest: VmId) -> usize {
        self.grants.get(&guest.0).map_or(0, |t| t.outstanding())
    }

    /// The declarations behind a live grant reference, or `None` when the
    /// reference is stale. The backend reads this (shared grant-table page)
    /// to learn an op's declared envelope, e.g. when sizing the deferred
    /// write set it will flush through one vectored hypercall.
    pub fn grant_declarations(&self, guest: VmId, grant: GrantRef) -> Option<&[MemOpGrant]> {
        self.grants.get(&guest.0)?.declarations(grant)
    }

    /// Disables or re-enables grant validation: the devirtualization
    /// ablation (Figure 1(b)), in which driver memory operations execute
    /// unchecked. Exists so experiments can demonstrate *why* the checks
    /// matter; isolation guarantees are void while disabled.
    pub fn set_grant_validation(&mut self, enabled: bool) {
        self.grant_validation = enabled;
    }

    /// Whether grant validation is active (it is, except in the ablation).
    pub fn grant_validation(&self) -> bool {
        self.grant_validation
    }

    fn validate_grant(
        &mut self,
        caller: VmId,
        guest: VmId,
        grant: GrantRef,
        request: &MemOpRequest,
    ) -> Result<(), HvError> {
        if !self.grant_validation {
            return Ok(());
        }
        let table = self
            .grants
            .get(&guest.0)
            .ok_or(HvError::UnknownVm { vm: guest })?;
        match table.validate(grant, request) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.audit.record(
                    self.clock.now_ns(),
                    AuditEvent::UngrantedMemOp {
                        caller,
                        target: guest,
                        grant: Some(grant),
                        description: format!("{request:?}"),
                    },
                );
                Err(e.into())
            }
        }
    }

    /// Batch counterpart of [`Hypervisor::validate_grant`]: delegates the
    /// whole batch to the grant table's pure [`GrantTable::validate_batch`]
    /// kernel (the phase-1 half of the all-or-nothing split that
    /// `crates/verify` proves). Exactly one audit entry is recorded, for
    /// the first violating request; an unknown guest VM fails on index 0
    /// without an audit entry, mirroring the per-request path.
    fn validate_grant_batch(
        &mut self,
        caller: VmId,
        guest: VmId,
        grant: GrantRef,
        requests: &[MemOpRequest],
    ) -> Result<(), (usize, HvError)> {
        if !self.grant_validation || requests.is_empty() {
            return Ok(());
        }
        let Some(table) = self.grants.get(&guest.0) else {
            return Err((0, HvError::UnknownVm { vm: guest }));
        };
        match table.validate_batch(grant, requests) {
            Ok(()) => Ok(()),
            Err((index, e)) => {
                self.audit.record(
                    self.clock.now_ns(),
                    AuditEvent::UngrantedMemOp {
                        caller,
                        target: guest,
                        grant: Some(grant),
                        description: format!("{:?}", requests[index]),
                    },
                );
                Err((index, e.into()))
            }
        }
    }

    // ------------------------------------------------------------------
    // Two-stage translation and process memory access
    // ------------------------------------------------------------------

    /// Translates a guest-virtual address to system-physical by walking the
    /// process page tables in software and then the VM's EPT (paper §5.2).
    ///
    /// `need` is checked against the *leaf* guest page permissions: the
    /// hypervisor must not write through read-only guest mappings.
    ///
    /// # Errors
    ///
    /// Walk failures and permission mismatches.
    pub fn translate_gva(
        &mut self,
        vm: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
        need: Access,
    ) -> Result<PhysAddr, HvError> {
        // No clock charge here: ordinary process accesses ride the hardware
        // MMU. The hypervisor's *software* walks during cross-VM copies are
        // charged by the hypercalls via `CostModel::copy_cost_ns`.
        let tables = GuestPageTables::from_root(pt_root);
        let space = self.gpa_space(vm);
        let mapping = tables.walk(&space, va.page_base())?;
        if !mapping.access.contains(need) {
            return Err(HvError::GuestPagePerms { va });
        }
        let gpa = mapping.gpa.add(va.page_offset());
        let pa = self
            .vm(vm)?
            .ept()
            .translate_unchecked(gpa)
            .ok_or(EptViolation {
                gpa,
                attempted: need,
                allowed: Access::NONE,
                mapped: false,
            })?;
        Ok(pa)
    }

    /// Reads `buf.len()` bytes of process memory (the process's own access
    /// path; not grant-checked — the MMU enforces the process's own page
    /// permissions).
    ///
    /// # Errors
    ///
    /// Walk or permission failures.
    pub fn process_read(
        &mut self,
        vm: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk_va, len) in paradice_mem::addr::page_chunks(va, buf.len() as u64) {
            let pa = self.translate_gva(vm, pt_root, chunk_va, Access::READ)?;
            self.mem.read(pa, &mut buf[done..done + len as usize])?;
            done += len as usize;
        }
        Ok(())
    }

    /// Writes `buf` into process memory (the process's own access path).
    ///
    /// # Errors
    ///
    /// Walk or permission failures.
    pub fn process_write(
        &mut self,
        vm: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
        buf: &[u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk_va, len) in paradice_mem::addr::page_chunks(va, buf.len() as u64) {
            let pa = self.translate_gva(vm, pt_root, chunk_va, Access::WRITE)?;
            self.mem.write(pa, &buf[done..done + len as usize])?;
            done += len as usize;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Hypercall API: driver memory operations (paper §5.2)
    // ------------------------------------------------------------------

    /// A no-op hypercall (overhead microbenchmarks).
    pub fn hc_noop(&mut self, _caller: VmId) {
        self.hypercalls += 1;
        self.clock.advance(self.cost.hypercall_ns);
    }

    /// Hypercall: copy `buf.len()` bytes *from* guest process memory into the
    /// driver's kernel buffer. Grant-checked (§4.1).
    ///
    /// # Errors
    ///
    /// Grant violations (audited), walk failures, role violations.
    pub fn hc_copy_from_guest(
        &mut self,
        caller: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        src: GuestVirtAddr,
        buf: &mut [u8],
        grant: GrantRef,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.hypercalls += 1;
        let checked = self.validate_grant(
            caller,
            guest,
            grant,
            &MemOpRequest::CopyFromGuest {
                addr: src,
                len: buf.len() as u64,
            },
        );
        self.trace_mem_op(
            TraceMemOpKind::CopyFromGuest,
            src.raw(),
            buf.len() as u64,
            checked.is_ok(),
        );
        checked?;
        let pages = paradice_mem::addr::page_span(src, buf.len() as u64);
        self.clock
            .advance(self.cost.copy_cost_ns(buf.len() as u64, pages));
        self.process_read(guest, pt_root, src, buf)
    }

    /// Hypercall: copy the driver's kernel buffer *to* guest process memory.
    /// Grant-checked (§4.1).
    ///
    /// # Errors
    ///
    /// Grant violations (audited), walk failures, role violations.
    pub fn hc_copy_to_guest(
        &mut self,
        caller: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        dst: GuestVirtAddr,
        buf: &[u8],
        grant: GrantRef,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.hypercalls += 1;
        let checked = self.validate_grant(
            caller,
            guest,
            grant,
            &MemOpRequest::CopyToGuest {
                addr: dst,
                len: buf.len() as u64,
            },
        );
        self.trace_mem_op(
            TraceMemOpKind::CopyToGuest,
            dst.raw(),
            buf.len() as u64,
            checked.is_ok(),
        );
        checked?;
        let pages = paradice_mem::addr::page_span(dst, buf.len() as u64);
        self.clock
            .advance(self.cost.copy_cost_ns(buf.len() as u64, pages));
        self.process_write(guest, pt_root, dst, buf)
    }

    /// Hypercall: map driver-physical page `driver_pfn` into the guest
    /// process at `va` — the `vm_insert_pfn` wrapper-stub path (§5.2).
    ///
    /// The hypervisor claims an unused guest-physical page, edits the guest's
    /// EPT to point it at the backing frame, and fixes the *last level* of
    /// the guest page tables (intermediate levels must already exist, created
    /// by the frontend). With data isolation, `domain` gates protected pages
    /// to the owning guest's region.
    ///
    /// # Errors
    ///
    /// Grant violations (audited), missing intermediates, foreign-region
    /// pages (audited), exhausted GPA window.
    #[allow(clippy::too_many_arguments)]
    pub fn hc_insert_pfn(
        &mut self,
        caller: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
        driver_pfn: u64,
        access: Access,
        grant: GrantRef,
        domain: Option<DomainId>,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.hypercalls += 1;
        let checked =
            self.validate_grant(caller, guest, grant, &MemOpRequest::MapPage { va, access });
        self.trace_mem_op(TraceMemOpKind::MapPage, va.raw(), PAGE_SIZE, checked.is_ok());
        checked?;
        self.clock.advance(self.cost.map_page_ns);
        self.do_insert_pfn(caller, guest, pt_root, va, driver_pfn, access, grant, domain)
    }

    /// The mapping work of [`Hypervisor::hc_insert_pfn`], shared with the
    /// vectored batch path (which validates and charges separately).
    #[allow(clippy::too_many_arguments)]
    fn do_insert_pfn(
        &mut self,
        caller: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
        driver_pfn: u64,
        access: Access,
        grant: GrantRef,
        domain: Option<DomainId>,
    ) -> Result<(), HvError> {
        // Resolve the backing frame through the driver VM's EPT.
        let driver_gpa = GuestPhysAddr::new(driver_pfn * PAGE_SIZE);
        let pa = self
            .vm(caller)?
            .ept()
            .frame_of(driver_gpa)
            .ok_or(EptViolation {
                gpa: driver_gpa,
                attempted: Access::READ,
                allowed: Access::NONE,
                mapped: false,
            })?;

        // Data isolation: a protected page may only be mapped into the guest
        // whose region owns it (§4.2 — "each guest VM has access to its own
        // memory region only").
        if let Some(domain) = domain {
            if let Some(state) = self.domains.get(&domain.index()) {
                if let Some(owner) = state.regions.owner_of_page(driver_gpa) {
                    let owner_guest = state.regions.guest_of(owner)?;
                    if owner_guest != guest {
                        self.audit.record(
                            self.clock.now_ns(),
                            AuditEvent::UngrantedMemOp {
                                caller,
                                target: guest,
                                grant: Some(grant),
                                description: format!(
                                    "map foreign region page {driver_gpa} into {guest}"
                                ),
                            },
                        );
                        return Err(HvError::ForeignRegionPage { owner });
                    }
                }
            }
        }

        // Claim an unused guest-physical page and wire up both translations.
        let claimed = self.vm_mut(guest)?.gpa_window_mut().claim()?;
        self.vm_mut(guest)?.ept_mut().map(claimed, pa, access)?;
        let tables = GuestPageTables::from_root(pt_root);
        let mut space = self.gpa_space(guest);
        if let Err(e) = tables.set_leaf(&mut space, va, claimed, access) {
            // Roll back the claim so a frontend bug cannot leak window pages.
            self.vm_mut(guest)?.ept_mut().unmap(claimed);
            self.vm_mut(guest)?.gpa_window_mut().release(claimed);
            return Err(e.into());
        }
        self.fixups.insert(
            FixupKey {
                guest,
                pt_root: pt_root.raw(),
                va_page: va.page_number(),
            },
            Fixup {
                claimed_gpa: claimed,
            },
        );
        Ok(())
    }

    /// Hypercall: tear down a mapping previously installed by
    /// [`Hypervisor::hc_insert_pfn`]. The guest kernel has already destroyed
    /// its own leaf entry, so "the hypervisor only needs to destroy the
    /// mappings in the EPTs" (§5.2).
    ///
    /// # Errors
    ///
    /// Grant violations (audited) and unknown mappings.
    pub fn hc_zap_page(
        &mut self,
        caller: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
        grant: GrantRef,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.hypercalls += 1;
        let checked = self.validate_grant(caller, guest, grant, &MemOpRequest::UnmapPage { va });
        self.trace_mem_op(TraceMemOpKind::UnmapPage, va.raw(), PAGE_SIZE, checked.is_ok());
        checked?;
        self.clock.advance(self.cost.map_page_ns);
        self.do_zap_page(guest, pt_root, va)
    }

    /// The unmapping work of [`Hypervisor::hc_zap_page`], shared with the
    /// vectored batch path.
    fn do_zap_page(
        &mut self,
        guest: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
    ) -> Result<(), HvError> {
        let key = FixupKey {
            guest,
            pt_root: pt_root.raw(),
            va_page: va.page_number(),
        };
        let fixup = self
            .fixups
            .remove(&key)
            .ok_or(HvError::NoSuchMapping {
                dma: DmaAddr::new(va.raw()),
            })?;
        self.vm_mut(guest)?.ept_mut().unmap(fixup.claimed_gpa);
        self.vm_mut(guest)?
            .gpa_window_mut()
            .release(fixup.claimed_gpa);
        Ok(())
    }

    /// Vectored hypercall: executes a whole dispatch's memory operations in
    /// one guest↔hypervisor boundary crossing (the fast path's answer to
    /// §6.1.1's per-op validation hypercalls).
    ///
    /// Semantics are **all-or-nothing with respect to the grant table**:
    /// every operation is validated against `grant` *before* any is applied,
    /// so a compromised driver posting a wild batch cannot leak its first k
    /// operations into guest memory — the batch is rejected whole, the
    /// violation audited, and nothing is applied. (Non-grant faults during
    /// the apply phase — e.g. an unmapped guest page mid-copy — abort the
    /// remainder; such faults are the guest's own mapping state, not an
    /// isolation boundary.)
    ///
    /// Cost: one `hypercall_ns` boundary crossing, plus each operation's
    /// work with its own per-call crossing discounted — one hypercall
    /// instead of N.
    ///
    /// # Errors
    ///
    /// Grant violations (audited; nothing applied), role violations, walk
    /// or mapping failures during apply.
    pub fn hv_memops_batch(
        &mut self,
        caller: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        grant: GrantRef,
        domain: Option<DomainId>,
        ops: Vec<BatchMemOp>,
    ) -> Result<Vec<BatchMemOpResult>, HvError> {
        self.require_driver(caller)?;
        self.hypercalls += 1;
        self.clock.advance(self.cost.hypercall_ns);
        // Phase 1: validate the whole batch through the grant table's pure
        // batch kernel. The first violation rejects it wholesale — no
        // partial application can leak. Ops up to and including the first
        // violator are traced (the violator with `granted: false`).
        let requests: Vec<MemOpRequest> = ops.iter().map(|op| op.as_request()).collect();
        let verdict = self.validate_grant_batch(caller, guest, grant, &requests);
        let traced = match &verdict {
            Ok(()) => ops.len(),
            Err((first_bad, _)) => first_bad + 1,
        };
        for (i, op) in ops.iter().take(traced).enumerate() {
            let granted = match &verdict {
                Ok(()) => true,
                Err((first_bad, _)) => i < *first_bad,
            };
            let (kind, addr, len) = op.trace_shape();
            self.trace_mem_op(kind, addr, len, granted);
        }
        verdict.map_err(|(_, e)| e)?;
        // Phase 2: apply in order, charging each op's work with the per-call
        // boundary crossing discounted (the batch already paid one).
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                BatchMemOp::CopyFromGuest { src, len } => {
                    let mut buf = vec![0u8; len as usize];
                    let pages = paradice_mem::addr::page_span(src, len);
                    self.clock.advance(
                        self.cost
                            .copy_cost_ns(len, pages)
                            .saturating_sub(self.cost.hypercall_ns),
                    );
                    self.process_read(guest, pt_root, src, &mut buf)?;
                    results.push(BatchMemOpResult::Bytes(buf));
                }
                BatchMemOp::CopyToGuest { dst, ref data } => {
                    let pages = paradice_mem::addr::page_span(dst, data.len() as u64);
                    self.clock.advance(
                        self.cost
                            .copy_cost_ns(data.len() as u64, pages)
                            .saturating_sub(self.cost.hypercall_ns),
                    );
                    self.process_write(guest, pt_root, dst, data)?;
                    results.push(BatchMemOpResult::Done);
                }
                BatchMemOp::InsertPfn {
                    va,
                    driver_pfn,
                    access,
                } => {
                    self.clock.advance(
                        self.cost
                            .map_page_ns
                            .saturating_sub(self.cost.hypercall_ns),
                    );
                    self.do_insert_pfn(
                        caller, guest, pt_root, va, driver_pfn, access, grant, domain,
                    )?;
                    results.push(BatchMemOpResult::Done);
                }
                BatchMemOp::ZapPage { va } => {
                    self.clock.advance(
                        self.cost
                            .map_page_ns
                            .saturating_sub(self.cost.hypercall_ns),
                    );
                    self.do_zap_page(guest, pt_root, va)?;
                    results.push(BatchMemOpResult::Done);
                }
            }
        }
        Ok(results)
    }

    /// Number of live `mmap` fix-ups (tests).
    pub fn live_fixups(&self) -> usize {
        self.fixups.len()
    }

    // ------------------------------------------------------------------
    // Device assignment and data isolation
    // ------------------------------------------------------------------

    /// Assigns a device to `driver_vm` (§3.1): creates its IOMMU domain and,
    /// without data isolation, lets DMA reach all of the driver VM's RAM.
    /// With [`DataIsolation::Enabled`] the IOMMU starts empty (§4.2).
    ///
    /// # Errors
    ///
    /// Unknown VM.
    pub fn assign_device(
        &mut self,
        driver_vm: VmId,
        isolation: DataIsolation,
    ) -> Result<DomainId, HvError> {
        let ram_pages = self.vm(driver_vm)?.ram_pages();
        let domain = self.iommu.create_domain();
        if isolation == DataIsolation::Disabled {
            // DMA address space mirrors driver-VM guest-physical space.
            for page in 0..ram_pages {
                let gpa = GuestPhysAddr::new(page * PAGE_SIZE);
                let pa = self
                    .vm(driver_vm)?
                    .ept()
                    .frame_of(gpa)
                    .expect("RAM is identity-mapped");
                self.iommu.domain_mut(domain).map(
                    DmaAddr::new(gpa.raw()),
                    pa,
                    Access::RW,
                    RegionId::GLOBAL,
                );
            }
        }
        self.domains.insert(
            domain.index(),
            DomainState {
                driver_vm,
                isolation,
                regions: RegionManager::new(),
                aperture: None,
                mmio_protected: false,
                misc_regs: BTreeMap::new(),
                bar_base: None,
                bar_pages: 0,
            },
        );
        Ok(domain)
    }

    fn domain_state(&self, domain: DomainId) -> &DomainState {
        self.domains.get(&domain.index()).expect("unknown domain")
    }

    fn domain_state_mut(&mut self, domain: DomainId) -> &mut DomainState {
        self.domains
            .get_mut(&domain.index())
            .expect("unknown domain")
    }

    /// Whether data isolation is enabled for this device.
    pub fn data_isolation(&self, domain: DomainId) -> bool {
        self.domain_state(domain).isolation == DataIsolation::Enabled
    }

    /// The driver VM a device is assigned to.
    pub fn driver_vm_of(&self, domain: DomainId) -> VmId {
        self.domain_state(domain).driver_vm
    }

    /// Allocates `pages` frames of *device memory* (VRAM) and maps them as a
    /// BAR into the driver VM's guest-physical space above its RAM + `mmap`
    /// window. Returns the BAR base. Device memory lives in system physical
    /// address space, exactly like a real BAR-mapped aperture.
    ///
    /// # Errors
    ///
    /// Out of frames.
    pub fn map_device_bar(
        &mut self,
        domain: DomainId,
        pages: u64,
    ) -> Result<GuestPhysAddr, HvError> {
        let driver_vm = self.domain_state(domain).driver_vm;
        let ram_pages = self.vm(driver_vm)?.ram_pages();
        // Place the BAR well above RAM and the unused-GPA window.
        let base_page = ram_pages + 2 * (crate::vm::GPA_WINDOW_BYTES / PAGE_SIZE);
        let bar_base = GuestPhysAddr::new(base_page * PAGE_SIZE);
        for i in 0..pages {
            let frame = self.mem.alloc_frame()?;
            self.vm_mut(driver_vm)?.ept_mut().map(
                bar_base.add(i * PAGE_SIZE),
                frame.base(),
                Access::RW,
            )?;
        }
        let state = self.domain_state_mut(domain);
        state.bar_base = Some(bar_base);
        state.bar_pages = pages;
        Ok(bar_base)
    }

    /// The BAR placement of a device, if one was mapped.
    pub fn device_bar(&self, domain: DomainId) -> Option<(GuestPhysAddr, u64)> {
        let state = self.domain_state(domain);
        state.bar_base.map(|base| (base, state.bar_pages))
    }

    /// Creates a protected region for `guest` (driver initialization phase,
    /// which the paper trusts: "we assume that the driver is not malicious in
    /// this phase", §5.3).
    ///
    /// # Errors
    ///
    /// Role and overlap violations.
    pub fn hc_create_region(
        &mut self,
        caller: VmId,
        domain: DomainId,
        guest: VmId,
        dev_mem: Option<DevMemRange>,
    ) -> Result<RegionId, HvError> {
        self.require_driver(caller)?;
        self.vm(guest)?;
        self.clock.advance(self.cost.hypercall_ns);
        Ok(self
            .domain_state_mut(domain)
            .regions
            .create_region(guest, dev_mem)?)
    }

    /// Hypercall: add `driver_gpa` to `region`'s protected pool and map it in
    /// the IOMMU at `dma` (§5.3(i)). The hypervisor strips the driver VM's
    /// EPT permissions for the page — the driver can no longer read it.
    ///
    /// Without data isolation, `region` is ignored and the page is mapped
    /// globally.
    ///
    /// # Errors
    ///
    /// Role violations, missing region tag under isolation, bookkeeping
    /// failures.
    #[allow(clippy::too_many_arguments)]
    pub fn hc_iommu_map(
        &mut self,
        caller: VmId,
        domain: DomainId,
        dma: DmaAddr,
        driver_gpa: GuestPhysAddr,
        access: Access,
        region: Option<RegionId>,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.clock
            .advance(self.cost.hypercall_ns + self.cost.iommu_map_ns);
        let driver_vm = self.domain_state(domain).driver_vm;
        let pa = self
            .vm(driver_vm)?
            .ept()
            .frame_of(driver_gpa)
            .ok_or(EptViolation {
                gpa: driver_gpa,
                attempted: Access::READ,
                allowed: Access::NONE,
                mapped: false,
            })?;
        if self.data_isolation(domain) {
            let region = region.ok_or(HvError::RegionRequired)?;
            self.domain_state_mut(domain)
                .regions
                .add_sys_page(region, driver_gpa)?;
            // x86 cannot express write-only: protected pages lose both read
            // and write from the driver VM (§5.3(iv)).
            self.vm_mut(driver_vm)?
                .ept_mut()
                .set_access(driver_gpa, Access::NONE)?;
            self.iommu.domain_mut(domain).map(dma, pa, access, region);
        } else {
            self.iommu
                .domain_mut(domain)
                .map(dma, pa, access, RegionId::GLOBAL);
        }
        Ok(())
    }

    /// Hypercall: unmap `dma` from the IOMMU. "The hypervisor zeros out the
    /// pages before unmapping" (§5.3(i)) and restores the driver VM's EPT
    /// permissions.
    ///
    /// # Errors
    ///
    /// Role violations or unknown mappings.
    pub fn hc_iommu_unmap(
        &mut self,
        caller: VmId,
        domain: DomainId,
        dma: DmaAddr,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.clock
            .advance(self.cost.hypercall_ns + self.cost.iommu_map_ns);
        let pa = self
            .iommu
            .domain_mut(domain)
            .unmap(dma)
            .ok_or(HvError::NoSuchMapping { dma })?;
        self.mem.fill(pa, PAGE_SIZE, 0)?;
        // If the page was protected, restore driver-VM access. The DMA
        // address mirrors driver-VM guest-physical space in our topology.
        let driver_vm = self.domain_state(domain).driver_vm;
        let driver_gpa = GuestPhysAddr::new(dma.raw());
        if self
            .domain_state_mut(domain)
            .regions
            .remove_sys_page(driver_gpa)
            .is_some()
        {
            self.vm_mut(driver_vm)?
                .ept_mut()
                .set_access(driver_gpa, Access::RW)?;
        }
        Ok(())
    }

    /// Hypercall: make the device work with `region`'s data — switch the
    /// IOMMU's active region and reprogram the device-memory aperture
    /// (§4.2). Charges per-page remap cost.
    ///
    /// # Errors
    ///
    /// Role violations or unknown regions.
    pub fn hc_switch_region(
        &mut self,
        caller: VmId,
        domain: DomainId,
        region: Option<RegionId>,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        let aperture = match region {
            Some(r) => self.domain_state(domain).regions.dev_mem_of(r)?,
            None => None,
        };
        let pages = self.iommu.domain_mut(domain).switch_region(region);
        self.clock.advance(
            self.cost.hypercall_ns + pages as u64 * self.cost.region_switch_page_ns,
        );
        self.domain_state_mut(domain).aperture = aperture;
        Ok(())
    }

    /// The active region of a device's IOMMU domain.
    pub fn active_region(&self, domain: DomainId) -> Option<RegionId> {
        self.iommu.domain(domain).active_region()
    }

    /// The region belonging to `guest` on this device, if any.
    pub fn region_of_guest(&self, domain: DomainId, guest: VmId) -> Option<RegionId> {
        self.domain_state(domain).regions.region_of_guest(guest)
    }

    /// Emulates write-only access for a driver-writable buffer (§5.3(iv)):
    /// the page stays readable+writable to the driver VM but becomes
    /// read-only to the *device* through the IOMMU.
    ///
    /// # Errors
    ///
    /// Role violations or unknown mappings.
    pub fn hc_emulate_write_only(
        &mut self,
        caller: VmId,
        domain: DomainId,
        dma: DmaAddr,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.clock.advance(self.cost.hypercall_ns);
        let driver_vm = self.domain_state(domain).driver_vm;
        if !self.iommu.domain_mut(domain).set_access(dma, Access::READ) {
            return Err(HvError::NoSuchMapping { dma });
        }
        let driver_gpa = GuestPhysAddr::new(dma.raw());
        self.vm_mut(driver_vm)?
            .ept_mut()
            .set_access(driver_gpa, Access::RW)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Protected MMIO (the GPU memory controller, §4.2/§5.3(iii))
    // ------------------------------------------------------------------

    /// Unmaps the MC register page from the driver VM (trusted driver
    /// initialization). After this, direct driver writes to the page are
    /// blocked and audited; other registers in the page go through
    /// [`Hypervisor::hc_mmio_write`].
    ///
    /// # Errors
    ///
    /// Role violations.
    pub fn hc_protect_mmio(&mut self, caller: VmId, domain: DomainId) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.clock.advance(self.cost.hypercall_ns);
        self.domain_state_mut(domain).mmio_protected = true;
        Ok(())
    }

    /// Whether the MC register page is hypervisor-protected.
    pub fn mmio_protected(&self, domain: DomainId) -> bool {
        self.domain_state(domain).mmio_protected
    }

    /// A *direct* driver-VM write to the MC register page — the attack path.
    /// Succeeds only while the page is still mapped (no protection); once
    /// protected it is blocked and audited.
    ///
    /// # Errors
    ///
    /// [`HvError::ProtectedMmio`] after protection.
    pub fn mc_write_direct(
        &mut self,
        caller: VmId,
        domain: DomainId,
        offset: u64,
        value: u64,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        if self.domain_state(domain).mmio_protected {
            self.audit.record(
                self.clock.now_ns(),
                AuditEvent::ProtectedMmioWrite { offset },
            );
            return Err(HvError::ProtectedMmio { offset });
        }
        match offset {
            MC_APERTURE_LO => {
                let hi = self
                    .domain_state(domain)
                    .aperture
                    .map_or(u64::MAX, |a| a.hi);
                self.domain_state_mut(domain).aperture = Some(DevMemRange::new(value, hi));
            }
            MC_APERTURE_HI => {
                let lo = self.domain_state(domain).aperture.map_or(0, |a| a.lo);
                self.domain_state_mut(domain).aperture = Some(DevMemRange::new(lo, value));
            }
            _ => {
                self.domain_state_mut(domain).misc_regs.insert(offset, value);
            }
        }
        Ok(())
    }

    /// Hypercall: write a *non-protected* register that shares the MC MMIO
    /// page (§5.3(iii): "if the driver needs to read/write to other registers
    /// in the same MMIO page, it issues a hypercall"). Writes to the aperture
    /// bound registers themselves are refused and audited.
    ///
    /// # Errors
    ///
    /// [`HvError::ProtectedMmio`] for the bound registers.
    pub fn hc_mmio_write(
        &mut self,
        caller: VmId,
        domain: DomainId,
        offset: u64,
        value: u64,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.clock.advance(self.cost.hypercall_ns);
        if offset == MC_APERTURE_LO || offset == MC_APERTURE_HI {
            self.audit.record(
                self.clock.now_ns(),
                AuditEvent::ProtectedMmioWrite { offset },
            );
            return Err(HvError::ProtectedMmio { offset });
        }
        self.domain_state_mut(domain).misc_regs.insert(offset, value);
        Ok(())
    }

    /// Hypercall: read a register in the MC MMIO page.
    ///
    /// # Errors
    ///
    /// Role violations.
    pub fn hc_mmio_read(
        &mut self,
        caller: VmId,
        domain: DomainId,
        offset: u64,
    ) -> Result<u64, HvError> {
        self.require_driver(caller)?;
        self.clock.advance(self.cost.hypercall_ns);
        let state = self.domain_state(domain);
        Ok(match offset {
            MC_APERTURE_LO => state.aperture.map_or(0, |a| a.lo),
            MC_APERTURE_HI => state.aperture.map_or(u64::MAX, |a| a.hi),
            other => state.misc_regs.get(&other).copied().unwrap_or(0),
        })
    }

    /// Checks a device-memory access against the active aperture, recording
    /// violations (§4.2: "if the GPU tries to access memory outside these
    /// bounds, it will not succeed").
    ///
    /// # Errors
    ///
    /// [`HvError::ApertureViolation`].
    pub fn check_aperture(&mut self, domain: DomainId, offset: u64, len: u64) -> Result<(), HvError> {
        let Some(aperture) = self.domain_state(domain).aperture else {
            return Ok(());
        };
        let end = offset.saturating_add(len.saturating_sub(1));
        if aperture.contains(offset) && aperture.contains(end) {
            Ok(())
        } else {
            self.audit
                .record(self.clock.now_ns(), AuditEvent::ApertureViolation { offset });
            Err(HvError::ApertureViolation { offset })
        }
    }

    /// The currently programmed device-memory aperture, if any.
    pub fn aperture(&self, domain: DomainId) -> Option<DevMemRange> {
        self.domain_state(domain).aperture
    }

    // ------------------------------------------------------------------
    // CPU accesses from inside a VM (EPT-checked) and device DMA
    // ------------------------------------------------------------------

    /// A CPU read from inside `vm` at guest-physical `gpa`, subject to the
    /// VM's EPT permissions. This is how the (possibly compromised) driver VM
    /// touches its own memory; reads of protected regions are blocked and
    /// audited (§4.2).
    ///
    /// # Errors
    ///
    /// EPT violations.
    pub fn vm_mem_read(
        &mut self,
        vm: VmId,
        gpa: GuestPhysAddr,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk, len) in paradice_mem::addr::page_chunks(gpa, buf.len() as u64) {
            match self.vm(vm)?.ept().translate(chunk, Access::READ) {
                Ok(pa) => {
                    self.mem.read(pa, &mut buf[done..done + len as usize])?;
                }
                Err(violation) => {
                    self.audit.record(
                        self.clock.now_ns(),
                        AuditEvent::ProtectedRegionAccess {
                            caller: vm,
                            gpa: chunk.page_base(),
                        },
                    );
                    return Err(violation.into());
                }
            }
            done += len as usize;
        }
        Ok(())
    }

    /// A CPU write from inside `vm`, subject to EPT permissions.
    ///
    /// # Errors
    ///
    /// EPT violations (audited).
    pub fn vm_mem_write(
        &mut self,
        vm: VmId,
        gpa: GuestPhysAddr,
        buf: &[u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk, len) in paradice_mem::addr::page_chunks(gpa, buf.len() as u64) {
            match self.vm(vm)?.ept().translate(chunk, Access::WRITE) {
                Ok(pa) => {
                    self.mem.write(pa, &buf[done..done + len as usize])?;
                }
                Err(violation) => {
                    self.audit.record(
                        self.clock.now_ns(),
                        AuditEvent::ProtectedRegionAccess {
                            caller: vm,
                            gpa: chunk.page_base(),
                        },
                    );
                    return Err(violation.into());
                }
            }
            done += len as usize;
        }
        Ok(())
    }

    /// Device DMA read through the IOMMU (region-gated under isolation).
    ///
    /// # Errors
    ///
    /// IOMMU faults (audited).
    pub fn device_dma_read(
        &mut self,
        domain: DomainId,
        dma: DmaAddr,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk, len) in paradice_mem::addr::page_chunks(dma, buf.len() as u64) {
            match self.iommu.domain(domain).translate(chunk, Access::READ) {
                Ok(pa) => {
                    self.mem.read(pa, &mut buf[done..done + len as usize])?;
                }
                Err(fault) => {
                    let region = match fault {
                        IommuFault::RegionInactive { region, .. } => Some(region),
                        _ => None,
                    };
                    self.audit.record(
                        self.clock.now_ns(),
                        AuditEvent::DmaBlocked { dma: chunk, region },
                    );
                    return Err(fault.into());
                }
            }
            done += len as usize;
        }
        Ok(())
    }

    /// Device DMA write through the IOMMU.
    ///
    /// # Errors
    ///
    /// IOMMU faults (audited).
    pub fn device_dma_write(
        &mut self,
        domain: DomainId,
        dma: DmaAddr,
        buf: &[u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk, len) in paradice_mem::addr::page_chunks(dma, buf.len() as u64) {
            match self.iommu.domain(domain).translate(chunk, Access::WRITE) {
                Ok(pa) => {
                    self.mem.write(pa, &buf[done..done + len as usize])?;
                }
                Err(fault) => {
                    let region = match fault {
                        IommuFault::RegionInactive { region, .. } => Some(region),
                        _ => None,
                    };
                    self.audit.record(
                        self.clock.now_ns(),
                        AuditEvent::DmaBlocked { dma: chunk, region },
                    );
                    return Err(fault.into());
                }
            }
            done += len as usize;
        }
        Ok(())
    }

    /// A device-facing port bundling the hypervisor with one IOMMU domain;
    /// device models use it for DMA and aperture checks.
    pub fn dma_port(&mut self, domain: DomainId) -> DmaPort<'_> {
        DmaPort { hv: self, domain }
    }

    /// Records an externally detected audit event (wait-queue overflows from
    /// the CVD backend, etc.).
    pub fn record_audit(&mut self, event: AuditEvent) {
        self.audit.record(self.clock.now_ns(), event);
    }

    /// Privileged read of a VM's guest-physical memory, bypassing EPT
    /// permissions. This is the *device-side* path to its own BAR-backed
    /// memory (a device is not subject to the CPU's EPT) and the attack
    /// harness's ground-truth probe. Regular VM code must use
    /// [`Hypervisor::vm_mem_read`].
    ///
    /// # Errors
    ///
    /// Fails only for unmapped guest-physical pages.
    pub fn gpa_read_privileged(
        &mut self,
        vm: VmId,
        gpa: GuestPhysAddr,
        buf: &mut [u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk, len) in paradice_mem::addr::page_chunks(gpa, buf.len() as u64) {
            let pa = self
                .vm(vm)?
                .ept()
                .translate_unchecked(chunk)
                .ok_or(EptViolation {
                    gpa: chunk,
                    attempted: Access::READ,
                    allowed: Access::NONE,
                    mapped: false,
                })?;
            self.mem.read(pa, &mut buf[done..done + len as usize])?;
            done += len as usize;
        }
        Ok(())
    }

    /// Privileged write counterpart of [`Hypervisor::gpa_read_privileged`].
    ///
    /// # Errors
    ///
    /// Fails only for unmapped guest-physical pages.
    pub fn gpa_write_privileged(
        &mut self,
        vm: VmId,
        gpa: GuestPhysAddr,
        buf: &[u8],
    ) -> Result<(), HvError> {
        let mut done = 0usize;
        for (chunk, len) in paradice_mem::addr::page_chunks(gpa, buf.len() as u64) {
            let pa = self
                .vm(vm)?
                .ept()
                .translate_unchecked(chunk)
                .ok_or(EptViolation {
                    gpa: chunk,
                    attempted: Access::WRITE,
                    allowed: Access::NONE,
                    mapped: false,
                })?;
            self.mem.write(pa, &buf[done..done + len as usize])?;
            done += len as usize;
        }
        Ok(())
    }

    /// The *native/assignment* mapping path: the kernel maps a local frame
    /// into one of its own processes — same mechanics as
    /// [`Hypervisor::hc_insert_pfn`] but trusted (no grant check), since
    /// driver and process share a kernel. Used by the machine's native and
    /// device-assignment modes.
    ///
    /// # Errors
    ///
    /// Missing intermediates, unmapped frames, exhausted GPA window.
    pub fn kernel_map_into_process(
        &mut self,
        vm: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
        pfn: u64,
        access: Access,
    ) -> Result<(), HvError> {
        self.clock.advance(self.cost.map_page_ns);
        let gpa_src = GuestPhysAddr::new(pfn * PAGE_SIZE);
        let pa = self
            .vm(vm)?
            .ept()
            .frame_of(gpa_src)
            .ok_or(EptViolation {
                gpa: gpa_src,
                attempted: Access::READ,
                allowed: Access::NONE,
                mapped: false,
            })?;
        let claimed = self.vm_mut(vm)?.gpa_window_mut().claim()?;
        self.vm_mut(vm)?.ept_mut().map(claimed, pa, access)?;
        let tables = GuestPageTables::from_root(pt_root);
        let mut space = self.gpa_space(vm);
        if let Err(e) = tables.set_leaf(&mut space, va, claimed, access) {
            self.vm_mut(vm)?.ept_mut().unmap(claimed);
            self.vm_mut(vm)?.gpa_window_mut().release(claimed);
            return Err(e.into());
        }
        self.fixups.insert(
            FixupKey {
                guest: vm,
                pt_root: pt_root.raw(),
                va_page: va.page_number(),
            },
            Fixup {
                claimed_gpa: claimed,
            },
        );
        Ok(())
    }

    /// Trusted unmap counterpart of
    /// [`Hypervisor::kernel_map_into_process`].
    ///
    /// # Errors
    ///
    /// Unknown mappings.
    pub fn kernel_unmap_from_process(
        &mut self,
        vm: VmId,
        pt_root: GuestPhysAddr,
        va: GuestVirtAddr,
    ) -> Result<(), HvError> {
        self.clock.advance(self.cost.map_page_ns);
        let key = FixupKey {
            guest: vm,
            pt_root: pt_root.raw(),
            va_page: va.page_number(),
        };
        let fixup = self.fixups.remove(&key).ok_or(HvError::NoSuchMapping {
            dma: DmaAddr::new(va.raw()),
        })?;
        self.vm_mut(vm)?.ept_mut().unmap(fixup.claimed_gpa);
        self.vm_mut(vm)?.gpa_window_mut().release(fixup.claimed_gpa);
        Ok(())
    }

    /// Hypercall (trusted driver initialization): place a range of the
    /// device BAR under `region`'s protection — the driver VM loses EPT
    /// access to those VRAM pages, and mapping them into any other guest is
    /// refused (§4.2: protected regions span driver-VM system memory *and*
    /// device memory).
    ///
    /// # Errors
    ///
    /// Role violations, missing BAR, or pages already owned by a region.
    pub fn hc_protect_bar_range(
        &mut self,
        caller: VmId,
        domain: DomainId,
        region: RegionId,
        bar_offset: u64,
        len: u64,
    ) -> Result<(), HvError> {
        self.require_driver(caller)?;
        self.clock.advance(self.cost.hypercall_ns);
        let (bar_base, bar_pages) = self
            .device_bar(domain)
            .ok_or(HvError::NoSuchMapping {
                dma: DmaAddr::new(bar_offset),
            })?;
        let first = bar_offset / PAGE_SIZE;
        let pages = len.div_ceil(PAGE_SIZE);
        if first + pages > bar_pages {
            return Err(HvError::NoSuchMapping {
                dma: DmaAddr::new(bar_offset + len),
            });
        }
        let driver_vm = self.domain_state(domain).driver_vm;
        for page in first..first + pages {
            let gpa = bar_base.add(page * PAGE_SIZE);
            self.domain_state_mut(domain)
                .regions
                .add_sys_page(region, gpa)?;
            self.vm_mut(driver_vm)?
                .ept_mut()
                .set_access(gpa, Access::NONE)?;
        }
        Ok(())
    }
}

/// A device model's window onto the hypervisor: DMA plus aperture checks for
/// one assigned device.
pub struct DmaPort<'a> {
    hv: &'a mut Hypervisor,
    domain: DomainId,
}

impl DmaPort<'_> {
    /// The device's IOMMU domain.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// DMA read (IOMMU-translated).
    ///
    /// # Errors
    ///
    /// IOMMU faults (audited).
    pub fn read(&mut self, dma: DmaAddr, buf: &mut [u8]) -> Result<(), HvError> {
        self.hv.device_dma_read(self.domain, dma, buf)
    }

    /// DMA write (IOMMU-translated).
    ///
    /// # Errors
    ///
    /// IOMMU faults (audited).
    pub fn write(&mut self, dma: DmaAddr, buf: &[u8]) -> Result<(), HvError> {
        self.hv.device_dma_write(self.domain, dma, buf)
    }

    /// Checks a device-memory access against the active aperture.
    ///
    /// # Errors
    ///
    /// [`HvError::ApertureViolation`] (audited).
    pub fn check_aperture(&mut self, offset: u64, len: u64) -> Result<(), HvError> {
        self.hv.check_aperture(self.domain, offset, len)
    }

    /// The shared clock.
    pub fn clock(&self) -> &ClockSource {
        self.hv.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::vm::VmRole;

    fn boot() -> Hypervisor {
        Hypervisor::new(4096, SimClock::new(), CostModel::default())
    }

    fn guest_with_process(hv: &mut Hypervisor) -> (VmId, GuestPageTables) {
        let guest = hv.create_vm(VmRole::Guest, 64 * PAGE_SIZE).unwrap();
        let mut space = hv.gpa_space(guest);
        let mut pt = GuestPageTables::new(&mut space).unwrap();
        // Map a small user heap: VA 0x10000..0x18000 → GPA 0x1000..0x9000.
        for i in 0..8u64 {
            pt.map(
                &mut space,
                GuestVirtAddr::new(0x10000 + i * PAGE_SIZE),
                GuestPhysAddr::new(0x1000 + i * PAGE_SIZE),
                Access::RW,
            )
            .unwrap();
        }
        (guest, pt)
    }

    #[test]
    fn vm_creation_maps_ram() {
        let mut hv = boot();
        let vm = hv.create_vm(VmRole::Guest, 16 * PAGE_SIZE).unwrap();
        assert_eq!(hv.vm(vm).unwrap().ept().len(), 16);
        assert_eq!(hv.mem().allocated_frames(), 16);
    }

    #[test]
    fn process_rw_roundtrip_through_two_stage_walk() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let va = GuestVirtAddr::new(0x10010);
        hv.process_write(guest, pt.root(), va, b"paradice").unwrap();
        let mut buf = [0u8; 8];
        hv.process_read(guest, pt.root(), va, &mut buf).unwrap();
        assert_eq!(&buf, b"paradice");
    }

    #[test]
    fn granted_copy_executes() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let dst = GuestVirtAddr::new(0x10100);
        let grant = hv
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest {
                    addr: dst,
                    len: 64,
                }],
            )
            .unwrap();
        hv.hc_copy_to_guest(driver, guest, pt.root(), dst, b"result!", grant)
            .unwrap();
        let mut buf = [0u8; 7];
        hv.process_read(guest, pt.root(), dst, &mut buf).unwrap();
        assert_eq!(&buf, b"result!");
        assert!(hv.audit().is_empty());
    }

    #[test]
    fn ungranted_copy_blocked_and_audited() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let grant = hv
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(0x10100),
                    len: 64,
                }],
            )
            .unwrap();
        // The attack: write outside the granted range ("some sensitive
        // memory location inside a guest VM kernel", §4.1).
        let err = hv
            .hc_copy_to_guest(
                driver,
                guest,
                pt.root(),
                GuestVirtAddr::new(0x17000),
                b"evil",
                grant,
            )
            .unwrap_err();
        assert!(matches!(err, HvError::Grant(_)));
        assert_eq!(
            hv.audit()
                .count_blocked_by(crate::audit::BlockedBy::GrantCheck),
            1
        );
    }

    #[test]
    fn memops_batch_is_one_hypercall_and_matches_singles() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let src = GuestVirtAddr::new(0x10000);
        let dst = GuestVirtAddr::new(0x10100);
        hv.process_write(guest, pt.root(), src, b"input-bytes").unwrap();
        let grant = hv
            .declare_grants(
                guest,
                vec![
                    MemOpGrant::CopyFromGuest { addr: src, len: 64 },
                    MemOpGrant::CopyToGuest { addr: dst, len: 64 },
                ],
            )
            .unwrap();
        let before = hv.hypercall_count();
        let results = hv
            .hv_memops_batch(
                driver,
                guest,
                pt.root(),
                grant,
                None,
                vec![
                    BatchMemOp::CopyFromGuest { src, len: 11 },
                    BatchMemOp::CopyToGuest {
                        dst,
                        data: b"out".to_vec(),
                    },
                ],
            )
            .unwrap();
        assert_eq!(hv.hypercall_count() - before, 1, "one crossing for the batch");
        assert_eq!(
            results[0],
            BatchMemOpResult::Bytes(b"input-bytes".to_vec())
        );
        assert_eq!(results[1], BatchMemOpResult::Done);
        let mut buf = [0u8; 3];
        hv.process_read(guest, pt.root(), dst, &mut buf).unwrap();
        assert_eq!(&buf, b"out");
        assert!(hv.audit().is_empty());
    }

    #[test]
    fn memops_batch_is_all_or_nothing_on_a_grant_violation() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let dst = GuestVirtAddr::new(0x10100);
        hv.process_write(guest, pt.root(), dst, b"untouched").unwrap();
        let grant = hv
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest { addr: dst, len: 64 }],
            )
            .unwrap();
        // First entry is granted, second is wild: the batch must be refused
        // wholesale — the granted first write must NOT have been applied.
        let err = hv
            .hv_memops_batch(
                driver,
                guest,
                pt.root(),
                grant,
                None,
                vec![
                    BatchMemOp::CopyToGuest {
                        dst,
                        data: b"leaked!!!".to_vec(),
                    },
                    BatchMemOp::CopyToGuest {
                        dst: GuestVirtAddr::new(0x17000),
                        data: b"evil".to_vec(),
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, HvError::Grant(_)));
        let mut buf = [0u8; 9];
        hv.process_read(guest, pt.root(), dst, &mut buf).unwrap();
        assert_eq!(&buf, b"untouched", "no entry of a refused batch applies");
        assert_eq!(
            hv.audit()
                .count_blocked_by(crate::audit::BlockedBy::GrantCheck),
            1
        );
    }

    #[test]
    fn memops_batch_refuses_a_failed_driver_vm() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        hv.mark_driver_vm_failed(driver).unwrap();
        let err = hv
            .hv_memops_batch(driver, guest, pt.root(), GrantRef(u32::MAX), None, vec![])
            .unwrap_err();
        assert!(matches!(err, HvError::DriverVmFailed { .. }));
    }

    #[test]
    fn guest_cannot_pose_as_driver() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let other = hv.create_vm(VmRole::Guest, 16 * PAGE_SIZE).unwrap();
        let grant = hv
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(0x10000),
                    len: 16,
                }],
            )
            .unwrap();
        let err = hv
            .hc_copy_to_guest(
                other,
                guest,
                pt.root(),
                GuestVirtAddr::new(0x10000),
                b"x",
                grant,
            )
            .unwrap_err();
        assert_eq!(err, HvError::NotDriverVm { caller: other });
    }

    #[test]
    fn insert_pfn_full_protocol() {
        let mut hv = boot();
        let (guest, mut pt) = guest_with_process(&mut hv);
        let driver = hv.create_vm(VmRole::Driver, 32 * PAGE_SIZE).unwrap();
        // Driver writes a recognizable pattern into one of its own pages.
        let driver_page = GuestPhysAddr::new(5 * PAGE_SIZE);
        hv.vm_mem_write(driver, driver_page, b"device-frame").unwrap();

        let map_va = GuestVirtAddr::new(0x4000_0000);
        // Frontend half: pre-create intermediate levels + declare the grant.
        {
            let mut space = hv.gpa_space(guest);
            pt.ensure_intermediate(&mut space, map_va).unwrap();
        }
        let grant = hv
            .declare_grants(
                guest,
                vec![
                    MemOpGrant::MapPages {
                        va: map_va,
                        pages: 1,
                        access: Access::RW,
                    },
                    MemOpGrant::UnmapPages {
                        va: map_va,
                        pages: 1,
                    },
                ],
            )
            .unwrap();
        // Backend half: the driver's insert_pfn redirected to the hypervisor.
        hv.hc_insert_pfn(
            driver,
            guest,
            pt.root(),
            map_va,
            driver_page.page_number(),
            Access::RW,
            grant,
            None,
        )
        .unwrap();
        assert_eq!(hv.live_fixups(), 1);

        // The guest process can now read the device frame through its own
        // address space.
        let mut buf = [0u8; 12];
        hv.process_read(guest, pt.root(), map_va, &mut buf).unwrap();
        assert_eq!(&buf, b"device-frame");

        // Unmap: guest kernel clears its leaf, then the driver zaps.
        {
            let mut space = hv.gpa_space(guest);
            pt.unmap(&mut space, map_va).unwrap();
        }
        hv.hc_zap_page(driver, guest, pt.root(), map_va, grant)
            .unwrap();
        assert_eq!(hv.live_fixups(), 0);
        assert!(hv.process_read(guest, pt.root(), map_va, &mut buf).is_err());
    }

    #[test]
    fn insert_pfn_requires_grant_and_intermediates() {
        let mut hv = boot();
        let (guest, pt) = guest_with_process(&mut hv);
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let va = GuestVirtAddr::new(0x5000_0000);
        let grant = hv.declare_grants(guest, vec![]).unwrap();
        // No grant coverage.
        let err = hv
            .hc_insert_pfn(driver, guest, pt.root(), va, 1, Access::RW, grant, None)
            .unwrap_err();
        assert!(matches!(err, HvError::Grant(_)));
        // Grant but missing intermediates: hypervisor refuses to create them.
        let grant = hv
            .declare_grants(
                guest,
                vec![MemOpGrant::MapPages {
                    va,
                    pages: 1,
                    access: Access::RW,
                }],
            )
            .unwrap();
        let err = hv
            .hc_insert_pfn(driver, guest, pt.root(), va, 1, Access::RW, grant, None)
            .unwrap_err();
        assert!(matches!(
            err,
            HvError::Pt(PtWalkError::MissingIntermediate { .. })
        ));
        // The failed fix-up must not leak window pages.
        assert_eq!(hv.vm(guest).unwrap().ept().len(), 64);
    }

    #[test]
    fn device_assignment_restricts_dma_to_driver_vm() {
        let mut hv = boot();
        let driver = hv.create_vm(VmRole::Driver, 8 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(driver, DataIsolation::Disabled).unwrap();
        // DMA within driver RAM works.
        hv.device_dma_write(domain, DmaAddr::new(0x2000), b"pkt")
            .unwrap();
        let mut buf = [0u8; 3];
        hv.device_dma_read(domain, DmaAddr::new(0x2000), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"pkt");
        // DMA outside driver RAM faults and is audited.
        let err = hv
            .device_dma_read(domain, DmaAddr::new(64 * PAGE_SIZE), &mut buf)
            .unwrap_err();
        assert!(matches!(err, HvError::Iommu(IommuFault::Unmapped { .. })));
        assert_eq!(
            hv.audit()
                .count_blocked_by(crate::audit::BlockedBy::IommuRegion),
            1
        );
    }

    #[test]
    fn data_isolation_protects_pages_from_driver_and_gates_dma() {
        let mut hv = boot();
        let guest1 = hv.create_vm(VmRole::Guest, 8 * PAGE_SIZE).unwrap();
        let guest2 = hv.create_vm(VmRole::Guest, 8 * PAGE_SIZE).unwrap();
        let driver = hv.create_vm(VmRole::Driver, 32 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(driver, DataIsolation::Enabled).unwrap();

        let r1 = hv
            .hc_create_region(driver, domain, guest1, Some(DevMemRange::new(0, 512)))
            .unwrap();
        let r2 = hv
            .hc_create_region(driver, domain, guest2, Some(DevMemRange::new(512, 1024)))
            .unwrap();

        // Driver maps one pool page per region.
        let page1 = GuestPhysAddr::new(10 * PAGE_SIZE);
        let page2 = GuestPhysAddr::new(11 * PAGE_SIZE);
        hv.hc_iommu_map(
            driver,
            domain,
            DmaAddr::new(page1.raw()),
            page1,
            Access::RW,
            Some(r1),
        )
        .unwrap();
        hv.hc_iommu_map(
            driver,
            domain,
            DmaAddr::new(page2.raw()),
            page2,
            Access::RW,
            Some(r2),
        )
        .unwrap();

        // The driver VM can no longer read the protected pages.
        let mut buf = [0u8; 4];
        let err = hv.vm_mem_read(driver, page1, &mut buf).unwrap_err();
        assert!(matches!(err, HvError::Ept(_)));
        assert_eq!(
            hv.audit()
                .count_blocked_by(crate::audit::BlockedBy::EptProtection),
            1
        );

        // With region 1 active, DMA to region 2's page is blocked.
        hv.hc_switch_region(driver, domain, Some(r1)).unwrap();
        hv.device_dma_write(domain, DmaAddr::new(page1.raw()), b"ok!!")
            .unwrap();
        let err = hv
            .device_dma_write(domain, DmaAddr::new(page2.raw()), b"evil")
            .unwrap_err();
        assert!(matches!(
            err,
            HvError::Iommu(IommuFault::RegionInactive { .. })
        ));

        // Aperture follows the active region.
        assert_eq!(hv.aperture(domain), Some(DevMemRange::new(0, 512)));
        assert!(hv.check_aperture(domain, 100, 16).is_ok());
        let err = hv.check_aperture(domain, 600, 16).unwrap_err();
        assert!(matches!(err, HvError::ApertureViolation { .. }));

        // Switching regions flips everything.
        hv.hc_switch_region(driver, domain, Some(r2)).unwrap();
        assert!(hv
            .device_dma_write(domain, DmaAddr::new(page2.raw()), b"ok!!")
            .is_ok());
        assert!(hv.check_aperture(domain, 600, 16).is_ok());
    }

    #[test]
    fn iommu_unmap_zeroes_and_restores() {
        let mut hv = boot();
        let guest = hv.create_vm(VmRole::Guest, 8 * PAGE_SIZE).unwrap();
        let driver = hv.create_vm(VmRole::Driver, 32 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(driver, DataIsolation::Enabled).unwrap();
        let region = hv.hc_create_region(driver, domain, guest, None).unwrap();
        let page = GuestPhysAddr::new(9 * PAGE_SIZE);
        hv.vm_mem_write(driver, page, b"guest-secret").unwrap();
        hv.hc_iommu_map(
            driver,
            domain,
            DmaAddr::new(page.raw()),
            page,
            Access::RW,
            Some(region),
        )
        .unwrap();
        // Unmap: page is zeroed, driver regains access.
        hv.hc_iommu_unmap(driver, domain, DmaAddr::new(page.raw()))
            .unwrap();
        let mut buf = [0u8; 12];
        hv.vm_mem_read(driver, page, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 12], "page must be zeroed before release");
    }

    #[test]
    fn foreign_region_page_cannot_be_mapped_into_other_guest() {
        let mut hv = boot();
        let (guest1, _pt1) = guest_with_process(&mut hv);
        let guest2 = hv.create_vm(VmRole::Guest, 64 * PAGE_SIZE).unwrap();
        let mut pt2 = {
            let mut space = hv.gpa_space(guest2);
            GuestPageTables::new(&mut space).unwrap()
        };
        let driver = hv.create_vm(VmRole::Driver, 32 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(driver, DataIsolation::Enabled).unwrap();
        let r1 = hv.hc_create_region(driver, domain, guest1, None).unwrap();
        let page = GuestPhysAddr::new(12 * PAGE_SIZE);
        hv.hc_iommu_map(
            driver,
            domain,
            DmaAddr::new(page.raw()),
            page,
            Access::RW,
            Some(r1),
        )
        .unwrap();

        // The compromised driver tries to map guest1's protected page into
        // guest2 (with guest2's cooperation — it granted the window).
        let va = GuestVirtAddr::new(0x4000_0000);
        {
            let mut space = hv.gpa_space(guest2);
            pt2.ensure_intermediate(&mut space, va).unwrap();
        }
        let grant = hv
            .declare_grants(
                guest2,
                vec![MemOpGrant::MapPages {
                    va,
                    pages: 1,
                    access: Access::RW,
                }],
            )
            .unwrap();
        let err = hv
            .hc_insert_pfn(
                driver,
                guest2,
                pt2.root(),
                va,
                page.page_number(),
                Access::RW,
                grant,
                Some(domain),
            )
            .unwrap_err();
        assert_eq!(err, HvError::ForeignRegionPage { owner: r1 });
    }

    #[test]
    fn protected_mmio_blocks_direct_aperture_writes() {
        let mut hv = boot();
        let driver = hv.create_vm(VmRole::Driver, 8 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(driver, DataIsolation::Enabled).unwrap();
        // Before protection (trusted init), direct writes work.
        hv.mc_write_direct(driver, domain, MC_APERTURE_LO, 0).unwrap();
        hv.mc_write_direct(driver, domain, MC_APERTURE_HI, 4096)
            .unwrap();
        assert_eq!(hv.aperture(domain), Some(DevMemRange::new(0, 4096)));
        // Init done: MMIO page unmapped from the driver VM.
        hv.hc_protect_mmio(driver, domain).unwrap();
        let err = hv
            .mc_write_direct(driver, domain, MC_APERTURE_LO, u64::MAX)
            .unwrap_err();
        assert!(matches!(err, HvError::ProtectedMmio { .. }));
        // Hypercall path still rejects the bound registers…
        assert!(hv
            .hc_mmio_write(driver, domain, MC_APERTURE_HI, u64::MAX)
            .is_err());
        // …but allows other registers in the page.
        hv.hc_mmio_write(driver, domain, 0x100, 7).unwrap();
        assert_eq!(hv.hc_mmio_read(driver, domain, 0x100).unwrap(), 7);
        // Aperture unchanged by the attacks.
        assert_eq!(hv.aperture(domain), Some(DevMemRange::new(0, 4096)));
        assert_eq!(
            hv.audit()
                .count_blocked_by(crate::audit::BlockedBy::ProtectedMmio),
            2
        );
    }

    #[test]
    fn write_only_emulation() {
        let mut hv = boot();
        let guest = hv.create_vm(VmRole::Guest, 8 * PAGE_SIZE).unwrap();
        let driver = hv.create_vm(VmRole::Driver, 32 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(driver, DataIsolation::Enabled).unwrap();
        let region = hv.hc_create_region(driver, domain, guest, None).unwrap();
        let page = GuestPhysAddr::new(15 * PAGE_SIZE);
        hv.hc_iommu_map(
            driver,
            domain,
            DmaAddr::new(page.raw()),
            page,
            Access::RW,
            Some(region),
        )
        .unwrap();
        hv.hc_switch_region(driver, domain, Some(region)).unwrap();
        // Emulate write-only: device read-only via IOMMU, driver RW via EPT
        // (§5.3(iv) — e.g. the GPU address-translation buffer).
        hv.hc_emulate_write_only(driver, domain, DmaAddr::new(page.raw()))
            .unwrap();
        // Driver can write the buffer again.
        hv.vm_mem_write(driver, page, b"gart-entry").unwrap();
        // Device can read…
        let mut buf = [0u8; 10];
        hv.device_dma_read(domain, DmaAddr::new(page.raw()), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"gart-entry");
        // …but not write.
        assert!(hv
            .device_dma_write(domain, DmaAddr::new(page.raw()), b"x")
            .is_err());
    }

    #[test]
    fn device_bar_mapping() {
        let mut hv = boot();
        let driver = hv.create_vm(VmRole::Driver, 8 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(driver, DataIsolation::Disabled).unwrap();
        let bar = hv.map_device_bar(domain, 4).unwrap();
        assert!(bar.page_number() >= 8);
        assert_eq!(hv.device_bar(domain), Some((bar, 4)));
        // The driver VM can access VRAM through the BAR.
        hv.vm_mem_write(driver, bar, b"vram").unwrap();
        let mut buf = [0u8; 4];
        hv.vm_mem_read(driver, bar, &mut buf).unwrap();
        assert_eq!(&buf, b"vram");
    }

    #[test]
    fn kernel_map_path_mirrors_the_hypercall_path_without_grants() {
        // The native/assignment mapping route: same mechanics, trusted
        // caller, no grant table involved.
        let mut hv = boot();
        let (vm, mut pt) = guest_with_process(&mut hv);
        let va = GuestVirtAddr::new(0x6000_0000);
        {
            let mut space = hv.gpa_space(vm);
            pt.ensure_intermediate(&mut space, va).unwrap();
        }
        // Map the VM's own page 3 into the process.
        hv.vm_mem_write(vm, GuestPhysAddr::new(3 * PAGE_SIZE), b"local-frame")
            .unwrap();
        hv.kernel_map_into_process(vm, pt.root(), va, 3, Access::RW)
            .unwrap();
        let mut buf = [0u8; 11];
        hv.process_read(vm, pt.root(), va, &mut buf).unwrap();
        assert_eq!(&buf, b"local-frame");
        // Teardown mirrors the hypercall path: guest PT leaf first, then
        // the kernel unmap.
        {
            let mut space = hv.gpa_space(vm);
            pt.unmap(&mut space, va).unwrap();
        }
        hv.kernel_unmap_from_process(vm, pt.root(), va).unwrap();
        assert_eq!(hv.live_fixups(), 0);
        assert!(hv
            .kernel_unmap_from_process(vm, pt.root(), va)
            .is_err());
    }

    #[test]
    fn clock_charges_for_hypercalls() {
        let mut hv = boot();
        let driver = hv.create_vm(VmRole::Driver, 8 * PAGE_SIZE).unwrap();
        let before = hv.clock().now_ns();
        hv.hc_noop(driver);
        assert_eq!(
            hv.clock().now_ns() - before,
            hv.cost().hypercall_ns
        );
    }
}
