//! The simulated Type-I hypervisor at the center of Paradice.
//!
//! Paradice's design (paper §3.1, Figure 1(c)) sandboxes each device and its
//! driver in a *driver VM* via device assignment, and has the hypervisor
//! execute the driver's memory operations on guest processes through a small
//! API, validating every request against grants the guest's CVD frontend
//! declared in advance (§4.1). Device data isolation adds hypervisor-enforced
//! protected memory regions (§4.2). This crate implements all of it:
//!
//! * [`clock`] — the deterministic virtual clock and the documented cost
//!   model every simulated action charges against.
//! * [`vm`] — VM containers: RAM, EPT, kernel page allocator, the unused-GPA
//!   window used for `mmap` fix-ups.
//! * [`grants`] — the grant table: legitimate memory operations declared by
//!   the frontend, validated on every hypercall from the driver VM.
//! * [`hv`] — the [`Hypervisor`] itself: VM lifecycle, device assignment,
//!   the hypercall API (cross-VM copies, `mmap` fix-ups, IOMMU control,
//!   protected-MMIO proxying), and device DMA service.
//! * [`regions`] — protected memory regions for device data isolation.
//! * [`channel`] — shared-page inter-VM communication in interrupt and
//!   polling modes, with the paper's measured latencies as cost anchors.
//! * [`ring`] — the pure head/tail ring-index kernel underneath the
//!   channel, factored out so the `crates/verify` model checker and the
//!   optional Kani harnesses can prove its safety properties.
//! * [`audit`] — the isolation audit log: every blocked attack is recorded
//!   with what stopped it.

//! * [`aring`] — the same ring page driven with real atomics
//!   (acquire/release slot publication, park/unpark doorbell) for the
//!   wall-clock engine.
//! * [`shards`] — the grant table behind a sharded, lock-free-read
//!   structure so validation stays off the contended path when frontend
//!   and backend run on separate threads.
//! * [`engine`] — the [`Engine`](engine::Engine) abstraction over the two
//!   execution substrates (deterministic virtual time vs. real threads).
//! * [`atomic`] — the instrumented-atomics shim every atomic in [`aring`]
//!   and [`shards`] routes through: each operation names a declared
//!   access whose ordering is simultaneously what the code executes,
//!   what `paradice-lint`'s MO/RC passes check, and what
//!   `paradice-verify`'s interleaving checker explores.

pub mod aring;
pub mod atomic;
pub mod audit;
pub mod channel;
pub mod clock;
pub mod engine;
pub mod grants;
pub mod hv;
pub mod regions;
pub mod ring;
pub mod shards;
pub mod vm;

/// A shared handle to the hypervisor.
///
/// The simulation is single-threaded and deterministic; components (CVD
/// backend, device models, the machine facade) share the hypervisor through
/// interior mutability with strictly transient borrows.
pub type SharedHypervisor = std::rc::Rc<std::cell::RefCell<hv::Hypervisor>>;

pub use aring::{ARingError, AtomicRing, Doorbell, ARING_CAPACITY, ARING_SLOT_BYTES};
pub use audit::{AuditEvent, AuditLog, BlockedBy};
pub use channel::{Channel, ChannelError, ChannelStats, TransportMode, WireCodec};
pub use clock::{ms, us, Clock, ClockSource, CostModel, SimClock, WallClock};
pub use engine::{Engine, EngineError, EngineKind};
pub use shards::{ShardedGrantTable, GUEST_SLOTS, MAX_GUESTS, RETIRED_CAP, SEQ_BITS};
pub use grants::{GrantError, GrantRef, GrantTable, MemOpGrant, MemOpRequest, GRANT_TABLE_CAPACITY};
pub use hv::{BatchMemOp, BatchMemOpResult, DmaPort, HvError, Hypervisor};
pub use regions::RegionManager;
pub use ring::{PushGrant, RingIndex, RING_CAPACITY};
pub use vm::{Vm, VmId};
