//! The pure ring-index kernel behind the shared-page channel.
//!
//! Each direction of a [`crate::channel::Channel`] is a bounded ring of
//! message slots inside the one 4-KiB shared page. The safety-critical part
//! is not the payload storage but the *index arithmetic*: which slot a send
//! commits into, which slot a take drains, and when the doorbell must ring.
//! [`RingIndex`] isolates exactly that arithmetic — two free-running
//! wrapping `u32` counters and nothing else — so the bounded-model checker
//! in `crates/verify` (and the optional Kani harnesses below) can prove its
//! safety properties over *all* inputs rather than traced ones:
//!
//! * **window**: at most `depth` entries are outstanding, and every slot
//!   handed out is `< RING_CAPACITY`;
//! * **no aliasing**: a producer is never handed a slot that still holds an
//!   undrained entry, so a send can never overwrite a committed message;
//! * **FIFO**: the consumer drains slots in exactly the order the producer
//!   committed them, so the backend never reads an uncommitted slot;
//! * **doorbell edges**: `try_push` reports a doorbell *iff* the ring was
//!   empty, so coalescing never loses an empty→non-empty transition.
//!
//! The counters are free-running (they wrap modulo 2³²) and slots are
//! `counter % RING_CAPACITY`; because the capacity is a power of two the
//! mapping stays seamless across the wrap. `depth` is an *admission bound*
//! supplied per push rather than stored state: narrowing a live ring
//! (`Channel::set_ring_depth`) only constrains future sends, entries already
//! queued stay queued — exactly the documented channel semantics.

/// Slots per direction in the shared page. Equals
/// [`crate::channel::MAX_RING_DEPTH`]; must be a power of two so the
/// `counter % RING_CAPACITY` slot mapping is seamless across `u32` wrap.
pub const RING_CAPACITY: u32 = 16;

const _: () = assert!(RING_CAPACITY.is_power_of_two());

/// Pure head/tail index arithmetic for one ring direction.
///
/// `head` counts entries ever consumed, `tail` entries ever produced; both
/// wrap freely. The outstanding window is `[head, tail)` and its slots are
/// the counters modulo [`RING_CAPACITY`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingIndex {
    head: u32,
    tail: u32,
}

/// What a successful [`RingIndex::try_push`] hands the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushGrant {
    /// The slot (`< RING_CAPACITY`) the entry must be committed into.
    pub slot: u32,
    /// Whether this push made the ring non-empty — the producer must ring
    /// the doorbell. Pushes into a non-empty ring coalesce behind the
    /// doorbell already rung.
    pub doorbell: bool,
}

impl RingIndex {
    /// An empty ring with counters at zero.
    pub const fn new() -> RingIndex {
        RingIndex { head: 0, tail: 0 }
    }

    /// An empty ring whose counters start at `base` (tests and the model
    /// checker seed this near `u32::MAX` to exercise the wrap seam).
    pub const fn new_at(base: u32) -> RingIndex {
        RingIndex {
            head: base,
            tail: base,
        }
    }

    /// Outstanding entries (committed, not yet drained).
    pub fn len(&self) -> u32 {
        self.tail.wrapping_sub(self.head)
    }

    /// Whether no entry is outstanding.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// The raw `(head, tail)` counters (for diagnostics and the checker).
    pub fn counters(&self) -> (u32, u32) {
        (self.head, self.tail)
    }

    /// Claims the next producer slot, bounded by `depth` outstanding
    /// entries. `depth` is clamped to [`RING_CAPACITY`]. Returns `None`
    /// when the ring already holds `depth` entries (the channel reports
    /// `SlotBusy`).
    pub fn try_push(&mut self, depth: u32) -> Option<PushGrant> {
        let depth = depth.min(RING_CAPACITY);
        if self.len() >= depth {
            return None;
        }
        let grant = PushGrant {
            slot: self.tail % RING_CAPACITY,
            doorbell: self.is_empty(),
        };
        self.tail = self.tail.wrapping_add(1);
        Some(grant)
    }

    /// Drains the oldest outstanding slot, or `None` when the ring is
    /// empty. The returned slot is always the one the *earliest* undrained
    /// `try_push` committed (FIFO).
    pub fn try_pop(&mut self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let slot = self.head % RING_CAPACITY;
        self.head = self.head.wrapping_add(1);
        Some(slot)
    }

    /// Un-claims the most recently pushed slot (fault injection: a lost
    /// completion is modeled by dropping the newest entry). Returns the
    /// abandoned slot, or `None` when the ring is empty.
    pub fn unpush(&mut self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        self.tail = self.tail.wrapping_sub(1);
        Some(self.tail % RING_CAPACITY)
    }

    /// The slot of the most recently pushed, still-outstanding entry
    /// (fault-injection hooks mutate it in place).
    pub fn newest_slot(&self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        Some(self.tail.wrapping_sub(1) % RING_CAPACITY)
    }

    /// Resets to empty. The counters keep running (`head` jumps to `tail`)
    /// so slot assignment stays unique across a recovery reset.
    pub fn clear(&mut self) {
        self.head = self.tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pushes `n` entries at `depth`, asserting slot and doorbell per entry
    /// against a naive model, then returns the claimed slots in order.
    fn push_n(ring: &mut RingIndex, depth: u32, n: u32) -> Vec<u32> {
        let mut slots = Vec::new();
        for _ in 0..n {
            let was_empty = ring.is_empty();
            let grant = ring.try_push(depth).expect("ring unexpectedly full");
            assert!(grant.slot < RING_CAPACITY);
            assert_eq!(grant.doorbell, was_empty, "doorbell iff empty→non-empty");
            slots.push(grant.slot);
        }
        slots
    }

    #[test]
    fn depth_one_alternates_one_slot_at_a_time() {
        let mut ring = RingIndex::new();
        for i in 0..40u32 {
            let slots = push_n(&mut ring, 1, 1);
            // Depth 1: a second push must fail before the drain.
            assert_eq!(ring.try_push(1), None);
            assert_eq!(ring.len(), 1);
            assert_eq!(ring.try_pop(), Some(slots[0]));
            assert_eq!(slots[0], i % RING_CAPACITY);
            assert!(ring.is_empty());
            assert_eq!(ring.try_pop(), None);
        }
    }

    #[test]
    fn depth_eight_full_ring_then_fifo_drain() {
        let mut ring = RingIndex::new();
        let slots = push_n(&mut ring, 8, 8);
        assert_eq!(ring.len(), 8);
        // Full at depth 8: the ninth push is refused even though the
        // 16-slot page window has room.
        assert_eq!(ring.try_push(8), None);
        // FIFO: drains in exactly the commit order.
        for (i, &slot) in slots.iter().enumerate() {
            assert_eq!(ring.try_pop(), Some(slot), "entry {i}");
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn wraparound_keeps_slots_unique_and_fifo() {
        // Counters seeded 5 entries before the u32 wrap: pushing 16 crosses
        // the seam. Every outstanding slot must stay distinct and drain in
        // order.
        let mut ring = RingIndex::new_at(u32::MAX - 5);
        let slots = push_n(&mut ring, 16, 16);
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "aliased slot across the wrap: {slots:?}");
        for &slot in &slots {
            assert_eq!(ring.try_pop(), Some(slot));
        }
        assert!(ring.is_empty());
        // The counters really did wrap.
        let (head, tail) = ring.counters();
        assert_eq!(head, tail);
        assert!(tail < 16, "tail should have wrapped past zero: {tail}");
    }

    #[test]
    fn same_slot_produce_consume_at_full_window() {
        // With the window completely full (depth = capacity), head and tail
        // point at the same slot index: the next pop and the next push both
        // name slot k. The pop must come first — and after it does, the
        // push may legitimately reuse exactly that slot.
        let mut ring = RingIndex::new();
        push_n(&mut ring, RING_CAPACITY, RING_CAPACITY);
        let (head, tail) = ring.counters();
        assert_eq!(head % RING_CAPACITY, tail % RING_CAPACITY);
        // Producer blocked at the shared slot index…
        assert_eq!(ring.try_push(RING_CAPACITY), None);
        // …until the consumer frees it; the freed slot is then immediately
        // reissued to the producer.
        let freed = ring.try_pop().unwrap();
        let grant = ring.try_push(RING_CAPACITY).unwrap();
        assert_eq!(grant.slot, freed);
        assert!(!grant.doorbell, "ring was non-empty: no doorbell");
    }

    #[test]
    fn narrowing_depth_keeps_queued_entries() {
        let mut ring = RingIndex::new();
        push_n(&mut ring, 8, 8);
        // Narrowed to 1 with 8 queued: pushes refused, pops still drain.
        assert_eq!(ring.try_push(1), None);
        for _ in 0..7 {
            ring.try_pop().unwrap();
        }
        // Still at len 1 = narrowed depth: refused.
        assert_eq!(ring.try_push(1), None);
        ring.try_pop().unwrap();
        assert!(ring.try_push(1).is_some());
    }

    #[test]
    fn unpush_and_newest_slot_track_the_tail() {
        let mut ring = RingIndex::new();
        assert_eq!(ring.unpush(), None);
        assert_eq!(ring.newest_slot(), None);
        let slots = push_n(&mut ring, 4, 3);
        assert_eq!(ring.newest_slot(), Some(slots[2]));
        assert_eq!(ring.unpush(), Some(slots[2]));
        assert_eq!(ring.newest_slot(), Some(slots[1]));
        assert_eq!(ring.len(), 2);
        // The abandoned slot is reissued to the next push.
        assert_eq!(ring.try_push(4).unwrap().slot, slots[2]);
    }

    #[test]
    fn clear_keeps_counters_monotonic() {
        let mut ring = RingIndex::new();
        push_n(&mut ring, 8, 5);
        ring.clear();
        assert!(ring.is_empty());
        let (head, tail) = ring.counters();
        assert_eq!((head, tail), (5, 5));
        // Post-reset pushes continue the slot sequence, never reusing the
        // abandoned in-flight slots out of order.
        assert_eq!(ring.try_push(8).unwrap().slot, 5);
    }

    #[test]
    fn depth_is_clamped_to_capacity() {
        let mut ring = RingIndex::new();
        let slots = push_n(&mut ring, u32::MAX, RING_CAPACITY);
        assert_eq!(slots.len(), RING_CAPACITY as usize);
        assert_eq!(ring.try_push(u32::MAX), None, "capacity bounds any depth");
    }
}

/// Kani proof harnesses (run via `cargo kani`; absent from normal builds).
///
/// These mirror the `crates/verify` ring properties with symbolic inputs:
/// where the exhaustive checker enumerates event sequences from seeded
/// counters, Kani proves the single-step invariants for *every* reachable
/// `(head, tail)` pair at once.
#[cfg(kani)]
mod kani_proofs {
    use super::*;

    /// Any state with a valid window (`len ≤ RING_CAPACITY`).
    fn any_ring() -> RingIndex {
        let head: u32 = kani::any();
        let len: u32 = kani::any();
        kani::assume(len <= RING_CAPACITY);
        RingIndex {
            head,
            tail: head.wrapping_add(len),
        }
    }

    #[kani::proof]
    fn push_respects_window_and_doorbell_edge() {
        let mut ring = any_ring();
        let depth: u32 = kani::any();
        kani::assume(depth >= 1);
        let len_before = ring.len();
        let was_empty = ring.is_empty();
        match ring.try_push(depth) {
            Some(grant) => {
                // Admission: only under the (clamped) depth bound.
                assert!(len_before < depth.min(RING_CAPACITY));
                assert!(grant.slot < RING_CAPACITY);
                assert!(grant.doorbell == was_empty);
                assert!(ring.len() == len_before + 1);
                assert!(ring.len() <= RING_CAPACITY);
            }
            None => {
                // Refusal: exactly when the window is at the bound.
                assert!(len_before >= depth.min(RING_CAPACITY));
                assert!(ring.len() == len_before);
            }
        }
    }

    #[kani::proof]
    fn pop_is_fifo_and_never_reads_uncommitted() {
        let mut ring = any_ring();
        let len_before = ring.len();
        let (head, _) = ring.counters();
        match ring.try_pop() {
            Some(slot) => {
                // The drained slot is exactly the oldest committed one.
                assert!(len_before > 0);
                assert!(slot == head % RING_CAPACITY);
                assert!(ring.len() == len_before - 1);
            }
            None => assert!(len_before == 0),
        }
    }

    #[kani::proof]
    fn push_never_aliases_an_outstanding_slot() {
        let mut ring = any_ring();
        kani::assume(ring.len() < RING_CAPACITY);
        let (head, tail) = ring.counters();
        let grant = ring.try_push(RING_CAPACITY).unwrap();
        // The claimed slot differs from every outstanding slot: the window
        // [head, tail) never contains a counter congruent to `tail` while
        // its width is below the capacity.
        let mut probe = head;
        while probe != tail {
            assert!(probe % RING_CAPACITY != grant.slot);
            probe = probe.wrapping_add(1);
        }
    }
}
