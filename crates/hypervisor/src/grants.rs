//! Grant tables: declared-legitimate memory operations.
//!
//! Fault isolation's second technique (paper §4.1): the hypervisor performs
//! "strict runtime checks … to validate the memory operations requested by
//! the driver VM, making sure that they cannot be abused by the compromised
//! driver VM to compromise other guest VMs, e.g., by asking the hypervisor to
//! copy data to some sensitive memory location inside a guest VM kernel."
//!
//! Before forwarding a file operation, the CVD frontend *declares* the
//! operation's legitimate memory operations in a grant table (one shared page
//! between the frontend VM and the hypervisor, §5.1), obtaining a
//! [`GrantRef`] that the backend must attach to every hypercall for that file
//! operation. The reference "acts as an index and helps the hypervisor
//! validate the operation with minimal overhead."
//!
//! Validation is *subset* matching: a requested operation must lie entirely
//! within a declared grant of the same kind.

use std::collections::BTreeMap;
use std::fmt;

use paradice_mem::{Access, GuestVirtAddr};

/// Index of a declaration in a guest's grant table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GrantRef(pub u32);

impl fmt::Display for GrantRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grant#{}", self.0)
    }
}

/// One legitimate memory operation declared by the CVD frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpGrant {
    /// The driver may read `[addr, addr+len)` of process memory
    /// (`copy_from_user`).
    CopyFromGuest {
        /// Start of the readable range.
        addr: GuestVirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// The driver may write `[addr, addr+len)` of process memory
    /// (`copy_to_user`).
    CopyToGuest {
        /// Start of the writable range.
        addr: GuestVirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// The driver may map pages into `[va, va + pages·4K)` with at most
    /// `access` rights (`mmap`/fault path).
    MapPages {
        /// Page-aligned start of the mappable window.
        va: GuestVirtAddr,
        /// Number of pages.
        pages: u64,
        /// Maximum access the mapping may carry.
        access: Access,
    },
    /// The driver may tear down mappings in `[va, va + pages·4K)`.
    UnmapPages {
        /// Page-aligned start of the window.
        va: GuestVirtAddr,
        /// Number of pages.
        pages: u64,
    },
}

/// A memory operation the driver VM is requesting via hypercall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpRequest {
    /// Read `len` bytes of process memory at `addr`.
    CopyFromGuest {
        /// Start address.
        addr: GuestVirtAddr,
        /// Byte length.
        len: u64,
    },
    /// Write `len` bytes of process memory at `addr`.
    CopyToGuest {
        /// Start address.
        addr: GuestVirtAddr,
        /// Byte length.
        len: u64,
    },
    /// Map one page at `va` with `access`.
    MapPage {
        /// Page-aligned target address.
        va: GuestVirtAddr,
        /// Requested rights.
        access: Access,
    },
    /// Unmap one page at `va`.
    UnmapPage {
        /// Page-aligned target address.
        va: GuestVirtAddr,
    },
}

fn range_within(addr: u64, len: u64, start: u64, grant_len: u64) -> bool {
    // Empty requests are trivially within any grant starting at or before.
    match addr.checked_add(len) {
        Some(end) => addr >= start && end <= start.saturating_add(grant_len),
        None => false,
    }
}

impl MemOpGrant {
    /// Returns `true` if `request` lies entirely within this grant.
    pub fn covers(&self, request: &MemOpRequest) -> bool {
        match (self, request) {
            (
                MemOpGrant::CopyFromGuest { addr, len },
                MemOpRequest::CopyFromGuest {
                    addr: req_addr,
                    len: req_len,
                },
            ) => range_within(req_addr.raw(), *req_len, addr.raw(), *len),
            (
                MemOpGrant::CopyToGuest { addr, len },
                MemOpRequest::CopyToGuest {
                    addr: req_addr,
                    len: req_len,
                },
            ) => range_within(req_addr.raw(), *req_len, addr.raw(), *len),
            (
                MemOpGrant::MapPages { va, pages, access },
                MemOpRequest::MapPage {
                    va: req_va,
                    access: req_access,
                },
            ) => {
                range_within(
                    req_va.raw(),
                    paradice_mem::PAGE_SIZE,
                    va.raw(),
                    pages * paradice_mem::PAGE_SIZE,
                ) && access.contains(*req_access)
            }
            (
                MemOpGrant::UnmapPages { va, pages },
                MemOpRequest::UnmapPage { va: req_va },
            ) => range_within(
                req_va.raw(),
                paradice_mem::PAGE_SIZE,
                va.raw(),
                pages * paradice_mem::PAGE_SIZE,
            ),
            _ => false,
        }
    }
}

/// Why a grant check rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrantError {
    /// The reference does not name a live declaration.
    UnknownRef {
        /// The offending reference.
        grant: GrantRef,
    },
    /// No declared operation covers the request.
    NotCovered {
        /// The reference whose declarations were consulted.
        grant: GrantRef,
    },
    /// The table page is full (fixed capacity, one shared page).
    TableFull,
    /// The reference names another guest's shard (multi-tenant tables
    /// qualify every reference with its owning guest; spending a foreign
    /// reference is refused before the owner's shard is even touched).
    ForeignGuest {
        /// The offending reference.
        grant: GrantRef,
        /// The guest that tried to spend it.
        caller: u32,
    },
}

impl fmt::Display for GrantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrantError::UnknownRef { grant } => write!(f, "unknown grant reference {grant}"),
            GrantError::NotCovered { grant } => {
                write!(f, "memory operation not covered by {grant}")
            }
            GrantError::TableFull => f.write_str("grant table full"),
            GrantError::ForeignGuest { grant, caller } => {
                write!(f, "grant reference {grant} belongs to another guest (caller {caller})")
            }
        }
    }
}

impl std::error::Error for GrantError {}

/// Maximum simultaneous declarations: the table is one shared 4-KiB page
/// (paper §5.1); with a few dozen bytes per operation entry and a handful of
/// operations per file operation, 128 in-flight declarations is a faithful
/// capacity.
pub const GRANT_TABLE_CAPACITY: usize = 128;

/// Sorted-range index over the declared windows of one grant kind.
///
/// Ranges are kept sorted by start alongside a running prefix maximum of
/// their ends. A request `[addr, addr+len)` is covered by *some single*
/// declared range iff a range starting at or before `addr` ends at or after
/// `addr+len` — which the prefix maximum answers after one binary search,
/// making per-hypercall validation `O(log n)` instead of the old linear
/// scan over every declared operation.
#[derive(Debug, Default, Clone)]
pub(crate) struct RangeIndex {
    /// Range starts, ascending.
    starts: Vec<u64>,
    /// `prefix_max_end[i]` = max end over `starts[0..=i]`'s ranges.
    prefix_max_end: Vec<u64>,
}

impl RangeIndex {
    fn build(mut ranges: Vec<(u64, u64)>) -> RangeIndex {
        ranges.sort_unstable();
        let mut starts = Vec::with_capacity(ranges.len());
        let mut prefix_max_end = Vec::with_capacity(ranges.len());
        let mut max_end = 0u64;
        for (start, end) in ranges {
            max_end = max_end.max(end);
            starts.push(start);
            prefix_max_end.push(max_end);
        }
        RangeIndex { starts, prefix_max_end }
    }

    /// Exactly [`MemOpGrant::covers`]'s arithmetic: the request end is
    /// computed with `checked_add` (overflow is never covered) and compared
    /// against grant ends that were saturated at build time.
    fn covers(&self, addr: u64, len: u64) -> bool {
        let Some(end) = addr.checked_add(len) else {
            return false;
        };
        let idx = self.starts.partition_point(|&s| s <= addr);
        idx > 0 && self.prefix_max_end[idx - 1] >= end
    }
}

/// The per-declaration validation index, built once at declare time.
/// Shared with [`crate::shards`]: each per-guest shard snapshot holds the
/// same per-kind sorted range indexes the virtual-time table uses.
#[derive(Debug, Default)]
pub(crate) struct GrantEntry {
    /// The declarations as declared (kept for audits and tests).
    ops: Vec<MemOpGrant>,
    copy_from: RangeIndex,
    copy_to: RangeIndex,
    unmap: RangeIndex,
    /// One range index per distinct access value; a request is checked
    /// against every bucket whose access contains the requested rights
    /// (the number of distinct access values is tiny).
    map: Vec<(Access, RangeIndex)>,
}

impl GrantEntry {
    pub(crate) fn build(ops: Vec<MemOpGrant>) -> GrantEntry {
        let mut copy_from = Vec::new();
        let mut copy_to = Vec::new();
        let mut unmap = Vec::new();
        let mut map: Vec<(Access, Vec<(u64, u64)>)> = Vec::new();
        for op in &ops {
            match *op {
                MemOpGrant::CopyFromGuest { addr, len } => {
                    copy_from.push((addr.raw(), addr.raw().saturating_add(len)));
                }
                MemOpGrant::CopyToGuest { addr, len } => {
                    copy_to.push((addr.raw(), addr.raw().saturating_add(len)));
                }
                MemOpGrant::MapPages { va, pages, access } => {
                    let len = pages.saturating_mul(paradice_mem::PAGE_SIZE);
                    let range = (va.raw(), va.raw().saturating_add(len));
                    match map.iter_mut().find(|(a, _)| *a == access) {
                        Some((_, ranges)) => ranges.push(range),
                        None => map.push((access, vec![range])),
                    }
                }
                MemOpGrant::UnmapPages { va, pages } => {
                    let len = pages.saturating_mul(paradice_mem::PAGE_SIZE);
                    unmap.push((va.raw(), va.raw().saturating_add(len)));
                }
            }
        }
        GrantEntry {
            ops,
            copy_from: RangeIndex::build(copy_from),
            copy_to: RangeIndex::build(copy_to),
            unmap: RangeIndex::build(unmap),
            map: map
                .into_iter()
                .map(|(access, ranges)| (access, RangeIndex::build(ranges)))
                .collect(),
        }
    }

    pub(crate) fn covers(&self, request: &MemOpRequest) -> bool {
        match *request {
            MemOpRequest::CopyFromGuest { addr, len } => {
                self.copy_from.covers(addr.raw(), len)
            }
            MemOpRequest::CopyToGuest { addr, len } => self.copy_to.covers(addr.raw(), len),
            MemOpRequest::MapPage { va, access } => self
                .map
                .iter()
                .any(|(granted, index)| {
                    granted.contains(access) && index.covers(va.raw(), paradice_mem::PAGE_SIZE)
                }),
            MemOpRequest::UnmapPage { va } => self.unmap.covers(va.raw(), paradice_mem::PAGE_SIZE),
        }
    }
}

/// One guest VM's grant table.
#[derive(Debug, Default)]
pub struct GrantTable {
    entries: BTreeMap<u32, GrantEntry>,
    next_ref: u32,
}

impl GrantTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GrantTable::default()
    }

    /// Declares the legitimate operations of one file operation, returning
    /// the reference the backend must attach to its hypercalls.
    ///
    /// # Errors
    ///
    /// [`GrantError::TableFull`] when [`GRANT_TABLE_CAPACITY`] declarations
    /// are already outstanding.
    pub fn declare(&mut self, ops: Vec<MemOpGrant>) -> Result<GrantRef, GrantError> {
        if self.entries.len() >= GRANT_TABLE_CAPACITY {
            return Err(GrantError::TableFull);
        }
        let reference = GrantRef(self.next_ref);
        self.next_ref = self.next_ref.wrapping_add(1);
        self.entries.insert(reference.0, GrantEntry::build(ops));
        Ok(reference)
    }

    /// Validates `request` against the declarations of `grant`.
    ///
    /// # Errors
    ///
    /// [`GrantError::UnknownRef`] or [`GrantError::NotCovered`].
    pub fn validate(
        &self,
        grant: GrantRef,
        request: &MemOpRequest,
    ) -> Result<(), GrantError> {
        let entry = self
            .entries
            .get(&grant.0)
            .ok_or(GrantError::UnknownRef { grant })?;
        if entry.covers(request) {
            Ok(())
        } else {
            Err(GrantError::NotCovered { grant })
        }
    }

    /// Validates a whole hypercall batch against one grant, all-or-nothing:
    /// `Ok` iff *every* request is covered; otherwise the index of the
    /// first violating request and its error, with no judgement about later
    /// requests. This is the pure phase-1 kernel of `hv_memops_batch` —
    /// the hypervisor applies nothing unless this accepts the batch — and
    /// the `crates/verify` checker proves it equivalent to per-request
    /// [`GrantTable::validate`] at the checked bounds.
    ///
    /// # Errors
    ///
    /// `(index, error)` for the first request that fails validation.
    pub fn validate_batch(
        &self,
        grant: GrantRef,
        requests: &[MemOpRequest],
    ) -> Result<(), (usize, GrantError)> {
        for (index, request) in requests.iter().enumerate() {
            self.validate(grant, request).map_err(|err| (index, err))?;
        }
        Ok(())
    }

    /// Revokes a declaration once its file operation completes.
    ///
    /// Returns `true` if the reference was live.
    pub fn revoke(&mut self, grant: GrantRef) -> bool {
        self.entries.remove(&grant.0).is_some()
    }

    /// Revokes every outstanding declaration (driver-VM failure: a
    /// compromised-after-crash driver must not retain any authority).
    /// Returns the number of declarations revoked. Reference numbering
    /// continues where it left off so stale refs can never alias new ones.
    pub fn revoke_all(&mut self) -> usize {
        let revoked = self.entries.len();
        self.entries.clear();
        revoked
    }

    /// Number of outstanding declarations.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// The declarations behind a reference (for tests and audit dumps).
    pub fn declarations(&self, grant: GrantRef) -> Option<&[MemOpGrant]> {
        self.entries.get(&grant.0).map(|e| e.ops.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_mem::PAGE_SIZE;

    fn va(x: u64) -> GuestVirtAddr {
        GuestVirtAddr::new(x)
    }

    #[test]
    fn declare_validate_revoke_lifecycle() {
        let mut table = GrantTable::new();
        let grant = table
            .declare(vec![MemOpGrant::CopyToGuest {
                addr: va(0x1000),
                len: 256,
            }])
            .unwrap();
        let ok = MemOpRequest::CopyToGuest {
            addr: va(0x1000),
            len: 256,
        };
        assert!(table.validate(grant, &ok).is_ok());
        assert!(table.revoke(grant));
        assert_eq!(
            table.validate(grant, &ok),
            Err(GrantError::UnknownRef { grant })
        );
        assert!(!table.revoke(grant));
    }

    #[test]
    fn subset_requests_allowed() {
        let grant = MemOpGrant::CopyFromGuest {
            addr: va(0x2000),
            len: 1024,
        };
        assert!(grant.covers(&MemOpRequest::CopyFromGuest {
            addr: va(0x2100),
            len: 128,
        }));
        assert!(grant.covers(&MemOpRequest::CopyFromGuest {
            addr: va(0x2000),
            len: 1024,
        }));
    }

    #[test]
    fn escaping_requests_rejected() {
        let grant = MemOpGrant::CopyToGuest {
            addr: va(0x2000),
            len: 1024,
        };
        // Before the range.
        assert!(!grant.covers(&MemOpRequest::CopyToGuest {
            addr: va(0x1fff),
            len: 8,
        }));
        // Runs past the end.
        assert!(!grant.covers(&MemOpRequest::CopyToGuest {
            addr: va(0x23ff),
            len: 8,
        }));
        // The classic attack: copy into a kernel address far away.
        assert!(!grant.covers(&MemOpRequest::CopyToGuest {
            addr: va(0xc000_0000),
            len: 8,
        }));
    }

    #[test]
    fn direction_is_part_of_the_grant() {
        // A read grant must not authorize writes, else a compromised driver
        // VM could corrupt guest memory it was only allowed to read.
        let grant = MemOpGrant::CopyFromGuest {
            addr: va(0x3000),
            len: 64,
        };
        assert!(!grant.covers(&MemOpRequest::CopyToGuest {
            addr: va(0x3000),
            len: 64,
        }));
    }

    #[test]
    fn map_grants_check_access_and_range() {
        let grant = MemOpGrant::MapPages {
            va: va(0x10000),
            pages: 4,
            access: Access::RW,
        };
        assert!(grant.covers(&MemOpRequest::MapPage {
            va: va(0x12000),
            access: Access::READ,
        }));
        assert!(grant.covers(&MemOpRequest::MapPage {
            va: va(0x13000),
            access: Access::RW,
        }));
        // Fifth page is outside.
        assert!(!grant.covers(&MemOpRequest::MapPage {
            va: va(0x14000),
            access: Access::READ,
        }));
        // Escalating to executable is refused.
        assert!(!grant.covers(&MemOpRequest::MapPage {
            va: va(0x10000),
            access: Access::RWX,
        }));
    }

    #[test]
    fn unmap_grants() {
        let grant = MemOpGrant::UnmapPages {
            va: va(0x10000),
            pages: 2,
        };
        assert!(grant.covers(&MemOpRequest::UnmapPage { va: va(0x11000) }));
        assert!(!grant.covers(&MemOpRequest::UnmapPage { va: va(0x12000) }));
    }

    #[test]
    fn multiple_ops_per_declaration() {
        let mut table = GrantTable::new();
        let grant = table
            .declare(vec![
                MemOpGrant::CopyFromGuest {
                    addr: va(0x1000),
                    len: 64,
                },
                MemOpGrant::CopyToGuest {
                    addr: va(0x1000),
                    len: 64,
                },
            ])
            .unwrap();
        assert!(table
            .validate(
                grant,
                &MemOpRequest::CopyFromGuest {
                    addr: va(0x1000),
                    len: 64
                }
            )
            .is_ok());
        assert!(table
            .validate(
                grant,
                &MemOpRequest::CopyToGuest {
                    addr: va(0x1020),
                    len: 32
                }
            )
            .is_ok());
        assert_eq!(table.declarations(grant).unwrap().len(), 2);
    }

    #[test]
    fn revoke_all_clears_but_keeps_numbering() {
        let mut table = GrantTable::new();
        let first = table.declare(vec![]).unwrap();
        table.declare(vec![]).unwrap();
        assert_eq!(table.revoke_all(), 2);
        assert_eq!(table.outstanding(), 0);
        // Stale references are dead...
        assert!(!table.revoke(first));
        // ...and fresh declarations never reuse their numbers.
        let next = table.declare(vec![]).unwrap();
        assert!(next.0 > first.0 + 1);
        assert_eq!(table.revoke_all(), 1);
    }

    #[test]
    fn table_capacity_enforced() {
        let mut table = GrantTable::new();
        for _ in 0..GRANT_TABLE_CAPACITY {
            table.declare(vec![]).unwrap();
        }
        assert_eq!(table.declare(vec![]), Err(GrantError::TableFull));
        assert_eq!(table.outstanding(), GRANT_TABLE_CAPACITY);
    }

    #[test]
    fn overflow_addresses_never_covered() {
        let grant = MemOpGrant::CopyToGuest {
            addr: va(0x1000),
            len: u64::MAX,
        };
        assert!(!grant.covers(&MemOpRequest::CopyToGuest {
            addr: va(u64::MAX - 4),
            len: 8,
        }));
    }

    #[test]
    fn indexed_validation_matches_the_linear_scan() {
        // The sorted-range index must answer exactly like the reference
        // `any(covers)` scan, including for overlapping windows where a
        // request fits no single grant even though the union covers it.
        let ops: Vec<MemOpGrant> = (0..64)
            .map(|i| MemOpGrant::CopyToGuest {
                addr: va(0x1000 + i * 0x80),
                len: 0x100, // every window overlaps its successor
            })
            .collect();
        let mut table = GrantTable::new();
        let grant = table.declare(ops.clone()).unwrap();
        let mut probes = Vec::new();
        for addr in (0x0f00..0x5200u64).step_by(0x40) {
            for len in [0u64, 1, 0x40, 0x100, 0x101, 0x200] {
                probes.push(MemOpRequest::CopyToGuest { addr: va(addr), len });
            }
        }
        probes.push(MemOpRequest::CopyToGuest { addr: va(u64::MAX - 4), len: 8 });
        for request in &probes {
            let linear = ops.iter().any(|op| op.covers(request));
            let indexed = table.validate(grant, request).is_ok();
            assert_eq!(indexed, linear, "divergence on {request:?}");
        }
    }

    #[test]
    fn spanning_two_abutting_grants_is_still_rejected() {
        // Coverage is per single declaration: two back-to-back windows do
        // not merge into one. The prefix-max index preserves this.
        let mut table = GrantTable::new();
        let grant = table
            .declare(vec![
                MemOpGrant::CopyFromGuest { addr: va(0x1000), len: 0x100 },
                MemOpGrant::CopyFromGuest { addr: va(0x1100), len: 0x100 },
            ])
            .unwrap();
        assert!(table
            .validate(grant, &MemOpRequest::CopyFromGuest { addr: va(0x1080), len: 0x100 })
            .is_err());
        assert!(table
            .validate(grant, &MemOpRequest::CopyFromGuest { addr: va(0x1100), len: 0x100 })
            .is_ok());
    }

    #[test]
    fn map_buckets_split_by_access() {
        let mut table = GrantTable::new();
        let grant = table
            .declare(vec![
                MemOpGrant::MapPages { va: va(0x10000), pages: 1, access: Access::READ },
                MemOpGrant::MapPages { va: va(0x20000), pages: 1, access: Access::RW },
            ])
            .unwrap();
        // RW on the READ-only window is refused even though an RW bucket
        // exists elsewhere.
        assert!(table
            .validate(grant, &MemOpRequest::MapPage { va: va(0x10000), access: Access::RW })
            .is_err());
        // READ is satisfied by either bucket's window.
        assert!(table
            .validate(grant, &MemOpRequest::MapPage { va: va(0x10000), access: Access::READ })
            .is_ok());
        assert!(table
            .validate(grant, &MemOpRequest::MapPage { va: va(0x20000), access: Access::READ })
            .is_ok());
    }

    #[test]
    fn batch_validation_is_all_or_nothing() {
        let mut table = GrantTable::new();
        let grant = table
            .declare(vec![MemOpGrant::CopyToGuest {
                addr: va(0x1000),
                len: 0x100,
            }])
            .unwrap();
        let ok = MemOpRequest::CopyToGuest {
            addr: va(0x1000),
            len: 0x80,
        };
        let bad = MemOpRequest::CopyToGuest {
            addr: va(0x2000),
            len: 8,
        };
        assert!(table.validate_batch(grant, &[ok, ok]).is_ok());
        assert!(table.validate_batch(grant, &[]).is_ok());
        // First violation wins, by index.
        assert_eq!(
            table.validate_batch(grant, &[ok, bad, bad]),
            Err((1, GrantError::NotCovered { grant }))
        );
        let stale = GrantRef(99);
        assert_eq!(
            table.validate_batch(stale, &[ok]),
            Err((0, GrantError::UnknownRef { grant: stale }))
        );
    }

    #[test]
    fn map_page_size_constant_consistency() {
        // MapPages windows are measured in pages; make sure the constant
        // used for coverage matches the mem crate.
        let grant = MemOpGrant::MapPages {
            va: va(0),
            pages: 1,
            access: Access::RW,
        };
        assert!(grant.covers(&MemOpRequest::MapPage {
            va: va(0),
            access: Access::RW,
        }));
        assert!(!grant.covers(&MemOpRequest::MapPage {
            va: va(PAGE_SIZE),
            access: Access::RW,
        }));
    }
}

/// Kani proof harnesses (run via `cargo kani`; absent from normal builds).
///
/// Symbolic counterparts of the `crates/verify` grant properties: the
/// exhaustive checker sweeps boundary-value domains; these prove the same
/// coverage arithmetic for *every* `u64` address and length at once, on one
/// declaration (the indexed path degenerates to the single-range check
/// there, so the interesting symbolic surface is the overflow-safe range
/// arithmetic itself).
#[cfg(kani)]
mod kani_proofs {
    use super::*;
    use paradice_mem::GuestVirtAddr;

    /// The intended coverage semantics in exact `u128` arithmetic: request
    /// `[addr, addr+len)` within grant `[start, min(start+glen, 2⁶⁴−1))`,
    /// with any request end past `u64::MAX` rejected (the last byte of the
    /// address space is unaddressable by construction).
    fn model_within(addr: u64, len: u64, start: u64, glen: u64) -> bool {
        let req_end = addr as u128 + len as u128;
        let grant_end = (start as u128 + glen as u128).min(u64::MAX as u128);
        req_end <= u64::MAX as u128 && addr >= start && req_end <= grant_end
    }

    #[kani::proof]
    fn range_arithmetic_matches_exact_model() {
        let addr: u64 = kani::any();
        let len: u64 = kani::any();
        let start: u64 = kani::any();
        let glen: u64 = kani::any();
        assert!(range_within(addr, len, start, glen) == model_within(addr, len, start, glen));
    }

    #[kani::proof]
    fn indexed_single_grant_matches_linear_covers() {
        let g_addr: u64 = kani::any();
        let g_len: u64 = kani::any();
        let addr: u64 = kani::any();
        let len: u64 = kani::any();
        let grant = MemOpGrant::CopyToGuest {
            addr: GuestVirtAddr::new(g_addr),
            len: g_len,
        };
        let request = MemOpRequest::CopyToGuest {
            addr: GuestVirtAddr::new(addr),
            len,
        };
        let entry = GrantEntry::build(vec![grant]);
        assert!(entry.covers(&request) == grant.covers(&request));
    }
}
