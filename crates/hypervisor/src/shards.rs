//! The grant table behind a sharded, lock-free-read structure.
//!
//! [`GrantTable`](crate::grants::GrantTable) is the virtual-time table:
//! single-threaded, stepped under `RefCell` borrows. On the wall-clock
//! engine the *backend* thread validates every memory operation while the
//! *frontend* thread declares and revokes, so `check` must stay off any
//! contended path: a frame's grant check sits on the per-op critical path
//! exactly as the paper's hypercall validation does (§4.1), and a mutex
//! there would serialize the two sides the engine exists to overlap.
//!
//! Design: declarations are sharded by grant-reference low bits. Each
//! shard publishes an immutable snapshot of its live declarations through
//! an `AtomicPtr`; readers announce themselves on a per-shard `in_flight`
//! gate, load the pointer once, and scan — no lock, no waiting. Writers
//! (declare/revoke) take the shard's writer mutex, build the next
//! snapshot copy-on-write, swap the pointer, and *retire* the old
//! snapshot into the shard.
//!
//! # Bounded reclamation (DESIGN.md §14)
//!
//! Retired snapshots used to accumulate until table drop; they are now
//! reclaimed once a shard holds more than [`RETIRED_CAP`] of them. The
//! writer (still under its mutex) spins until it observes
//! `in_flight == 0`, then frees the whole retired list. Soundness is a
//! sequential-consistency argument, which is why the pointer swap, the
//! reader's gate enter, the reader's pointer load, and the writer's gate
//! check are all declared `SeqCst` ([`Edge::Gate`] in [`ATOMIC_SITES`],
//! lint rule `MO005`):
//!
//! * a reader counted in `in_flight` finished its scan before its gate
//!   exit, and the exit precedes the writer's `0` observation in the SC
//!   total order — scan happens-before free;
//! * a reader *not* counted entered the gate SC-after the writer's `0`
//!   observation, hence SC-after every pointer swap that retired the
//!   snapshots being freed; its SeqCst pointer load therefore returns
//!   the current (or a newer) snapshot, never a freed one — the
//!   store-load shape release/acquire cannot order (the
//!   `shard-retire-unfenced` mutant in `paradice-verify` exhibits the
//!   torn read a weaker gate admits).
//!
//! Readers stay wait-free (two uncontended-in-the-common-case RMWs per
//! validate); the writer blocks only on overflow, amortized over
//! [`RETIRED_CAP`] mutations. The per-shard bound makes total retired
//! memory `O(GRANT_SHARDS * RETIRED_CAP)` instead of `O(mutations)`.

use std::fmt;
use std::sync::Mutex;

use crate::atomic::{
    Access, AccessKind, AtomicPtr, AtomicU32, AtomicUsize, Edge, MemOrder, Role, SiteSpec,
};
use crate::grants::{GrantError, GrantRef, MemOpGrant, MemOpRequest, GRANT_TABLE_CAPACITY};

/// Number of shards. Power of two so the shard of a reference is a mask.
pub const GRANT_SHARDS: usize = 8;

/// Per-shard cap on retired snapshots before the writer reclaims them.
pub const RETIRED_CAP: usize = 32;

// --- Declared atomic sites (the model the lint and checker consume). ---

static PTR_WRITER_LOAD: Access =
    Access::new("writer-load", AccessKind::Load, MemOrder::Relaxed, Edge::OwnerLocal);
static PTR_PUBLISH_SWAP: Access =
    Access::new("publish-swap", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate);
static PTR_READER_LOAD: Access =
    Access::new("reader-load", AccessKind::Load, MemOrder::SeqCst, Edge::Gate);
static PTR_TEARDOWN_SWAP: Access =
    Access::new("teardown-swap", AccessKind::Rmw, MemOrder::Relaxed, Edge::OwnerLocal);
static PTR_ACCESSES: [&Access; 4] = [
    &PTR_WRITER_LOAD,
    &PTR_PUBLISH_SWAP,
    &PTR_READER_LOAD,
    &PTR_TEARDOWN_SWAP,
];
static PTR_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "current",
    group: "shards.snapshot",
    role: Role::SnapshotPtr,
    accesses: &PTR_ACCESSES,
};

static INFLIGHT_ENTER: Access =
    Access::new("enter", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate);
static INFLIGHT_EXIT: Access =
    Access::new("exit", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate);
static INFLIGHT_WRITER_CHECK: Access =
    Access::new("writer-check", AccessKind::Load, MemOrder::SeqCst, Edge::Gate);
static INFLIGHT_ACCESSES: [&Access; 3] =
    [&INFLIGHT_ENTER, &INFLIGHT_EXIT, &INFLIGHT_WRITER_CHECK];
static INFLIGHT_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "in_flight",
    group: "shards.snapshot",
    role: Role::Counter,
    accesses: &INFLIGHT_ACCESSES,
};

static NEXT_REF_ALLOCATE: Access =
    Access::new("allocate", AccessKind::Rmw, MemOrder::AcqRel, Edge::Reservation);
static NEXT_REF_ACCESSES: [&Access; 1] = [&NEXT_REF_ALLOCATE];
static NEXT_REF_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "next_ref",
    group: "shards.table",
    role: Role::Counter,
    accesses: &NEXT_REF_ACCESSES,
};

static OUTSTANDING_RESERVE: Access =
    Access::new("reserve", AccessKind::Rmw, MemOrder::AcqRel, Edge::Reservation);
static OUTSTANDING_RELEASE: Access =
    Access::new("release", AccessKind::Rmw, MemOrder::AcqRel, Edge::Reservation);
static OUTSTANDING_OBSERVE: Access =
    Access::new("observe", AccessKind::Load, MemOrder::Acquire, Edge::Observe);
static OUTSTANDING_ACCESSES: [&Access; 3] =
    [&OUTSTANDING_RESERVE, &OUTSTANDING_RELEASE, &OUTSTANDING_OBSERVE];
static OUTSTANDING_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "outstanding",
    group: "shards.table",
    role: Role::Counter,
    accesses: &OUTSTANDING_ACCESSES,
};

/// This module's declared atomic-site table, aggregated by
/// [`crate::atomic::all_sites`] for the MO/RC lint passes and the
/// `paradice-verify` interleaving checker.
pub static ATOMIC_SITES: [&SiteSpec; 4] = [
    &PTR_SITE,
    &INFLIGHT_SITE,
    &NEXT_REF_SITE,
    &OUTSTANDING_SITE,
];

/// One shard's published state: the live declarations homed here.
type Snapshot = Vec<(GrantRef, Vec<MemOpGrant>)>;

struct Shard {
    /// The current snapshot. Readers: one gate enter + one pointer load.
    current: AtomicPtr<Snapshot>,
    /// Readers inside [`Shard::with_snapshot`] right now — the
    /// reclamation gate the writer waits on before freeing retired
    /// snapshots.
    in_flight: AtomicUsize,
    /// Serializes writers and owns the retired snapshots' lifetimes.
    /// The boxes are load-bearing, not redundant: readers hold `&Snapshot`
    /// references into the box allocations, which must stay pinned while
    /// retired — moving the `Vec` headers out would free them.
    #[allow(clippy::vec_box)]
    writer: Mutex<Vec<Box<Snapshot>>>,
}

/// Decrements the reader gate even if the scan closure panics — a stuck
/// gate would spin the next reclaiming writer forever.
struct GateGuard<'a>(&'a AtomicUsize);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, &INFLIGHT_EXIT);
    }
}

impl Shard {
    fn new() -> Self {
        Shard {
            current: AtomicPtr::new(Box::into_raw(Box::new(Snapshot::new()))),
            in_flight: AtomicUsize::new(0),
            writer: Mutex::new(Vec::new()),
        }
    }

    /// Copy-on-write mutation: build the next snapshot from the current
    /// one, publish it, retire the old one — and reclaim the retired
    /// list once it exceeds [`RETIRED_CAP`] (see the module docs for the
    /// soundness argument). Returns `edit`'s output.
    fn mutate<T>(&self, edit: impl FnOnce(&mut Snapshot) -> T) -> T {
        let mut retired = self.writer.lock().expect("grant shard writer poisoned");
        // Safe to dereference: the pointer was published by us (or by
        // `Shard::new`) and we hold the writer mutex, so it cannot be
        // retired-and-freed underneath us.
        let current = unsafe { &*self.current.load(&PTR_WRITER_LOAD) };
        let mut next = current.clone();
        let out = edit(&mut next);
        let fresh = Box::into_raw(Box::new(next));
        let old = self.current.swap(fresh, &PTR_PUBLISH_SWAP);
        // SAFETY: `old` came from `Box::into_raw` and is now unpublished;
        // retiring (not dropping) it keeps any in-flight reader's borrow
        // alive until the gate below proves no reader remains.
        retired.push(unsafe { Box::from_raw(old) });
        if retired.len() > RETIRED_CAP {
            // Wait for a moment with no reader inside the gate. Reader
            // critical sections are a pointer load plus one snapshot
            // scan, so a zero observation arrives quickly; yield after a
            // bounded spin to stay polite under oversubscription.
            let mut spins = 0u32;
            while self.in_flight.load(&INFLIGHT_WRITER_CHECK) != 0 {
                spins += 1;
                if spins.is_multiple_of(128) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            // SC argument (module docs): readers gated in after the zero
            // observation cannot load any pointer retired before it.
            retired.clear();
        }
        out
    }

    /// Wait-free read of the published snapshot under the reclamation
    /// gate: the snapshot is pinned for exactly the closure's duration.
    fn with_snapshot<T>(&self, scan: impl FnOnce(&Snapshot) -> T) -> T {
        self.in_flight.fetch_add(1, &INFLIGHT_ENTER);
        let _gate = GateGuard(&self.in_flight);
        // SAFETY: the gate entry above precedes this load in program
        // order and both are SeqCst, so any writer that observes the
        // gate at zero and frees retired snapshots did so before we
        // could have loaded one of them (module docs).
        let snapshot = unsafe { &*self.current.load(&PTR_READER_LOAD) };
        scan(snapshot)
    }
}

/// A grant table whose validation path is wait-free for readers and safe
/// to share across the wall-clock engine's threads (`Sync` by
/// construction: atomics plus a writer-side mutex).
pub struct ShardedGrantTable {
    shards: [Shard; GRANT_SHARDS],
    next_ref: AtomicU32,
    outstanding: AtomicUsize,
}

impl ShardedGrantTable {
    /// An empty table.
    pub fn new() -> Self {
        ShardedGrantTable {
            shards: std::array::from_fn(|_| Shard::new()),
            next_ref: AtomicU32::new(0),
            outstanding: AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, grant: GrantRef) -> &Shard {
        &self.shards[(grant.0 as usize) & (GRANT_SHARDS - 1)]
    }

    /// Declares the legitimate operations of one file operation.
    /// Semantics mirror [`GrantTable::declare`](crate::grants::GrantTable::declare):
    /// fixed total capacity, monotonically increasing references.
    ///
    /// # Errors
    ///
    /// [`GrantError::TableFull`] at [`GRANT_TABLE_CAPACITY`] outstanding
    /// declarations.
    pub fn declare(&self, ops: Vec<MemOpGrant>) -> Result<GrantRef, GrantError> {
        // Optimistic reservation; raced declares both fitting under the
        // capacity is fine, overshoot is corrected below.
        if self.outstanding.fetch_add(1, &OUTSTANDING_RESERVE) >= GRANT_TABLE_CAPACITY {
            self.outstanding.fetch_sub(1, &OUTSTANDING_RELEASE);
            return Err(GrantError::TableFull);
        }
        let reference = GrantRef(self.next_ref.fetch_add(1, &NEXT_REF_ALLOCATE));
        self.shard_of(reference)
            .mutate(|snapshot| snapshot.push((reference, ops)));
        Ok(reference)
    }

    /// Validates `request` against the declarations of `grant` without
    /// taking any lock — the engine's per-op hot path.
    ///
    /// # Errors
    ///
    /// [`GrantError::UnknownRef`] or [`GrantError::NotCovered`].
    pub fn validate(&self, grant: GrantRef, request: &MemOpRequest) -> Result<(), GrantError> {
        self.shard_of(grant).with_snapshot(|snapshot| {
            match snapshot.iter().find(|(r, _)| *r == grant) {
                Some((_, ops)) => {
                    if ops.iter().any(|g| g.covers(request)) {
                        Ok(())
                    } else {
                        Err(GrantError::NotCovered { grant })
                    }
                }
                None => Err(GrantError::UnknownRef { grant }),
            }
        })
    }

    /// All-or-nothing batch validation, mirroring
    /// [`GrantTable::validate_batch`](crate::grants::GrantTable::validate_batch).
    ///
    /// # Errors
    ///
    /// `(index, error)` for the first uncovered request.
    pub fn validate_batch(
        &self,
        grant: GrantRef,
        requests: &[MemOpRequest],
    ) -> Result<(), (usize, GrantError)> {
        for (index, request) in requests.iter().enumerate() {
            self.validate(grant, request).map_err(|err| (index, err))?;
        }
        Ok(())
    }

    /// Revokes a declaration; `true` if the reference was live.
    pub fn revoke(&self, grant: GrantRef) -> bool {
        let removed = self.shard_of(grant).mutate(|snapshot| {
            let before = snapshot.len();
            snapshot.retain(|(r, _)| *r != grant);
            before != snapshot.len()
        });
        if removed {
            self.outstanding.fetch_sub(1, &OUTSTANDING_RELEASE);
        }
        removed
    }

    /// Revokes everything (driver-VM failure containment). Returns the
    /// number of declarations revoked; reference numbering continues so
    /// stale references can never alias new ones.
    pub fn revoke_all(&self) -> usize {
        let mut revoked = 0;
        for shard in &self.shards {
            revoked += shard.mutate(|snapshot| std::mem::take(snapshot).len());
        }
        self.outstanding.fetch_sub(revoked, &OUTSTANDING_RELEASE);
        revoked
    }

    /// Outstanding declarations (racy snapshot, exact when quiescent).
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(&OUTSTANDING_OBSERVE)
    }

    /// Retired snapshots currently held alive for in-flight readers —
    /// the memory cost of reclamation, surfaced for tests and capacity
    /// planning. Bounded: at most [`RETIRED_CAP`] per shard.
    pub fn retired_snapshots(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.writer.lock().expect("grant shard writer poisoned").len())
            .sum()
    }
}

impl Default for ShardedGrantTable {
    fn default() -> Self {
        ShardedGrantTable::new()
    }
}

impl Drop for ShardedGrantTable {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            let current = shard.current.swap(std::ptr::null_mut(), &PTR_TEARDOWN_SWAP);
            if !current.is_null() {
                // SAFETY: `&mut self` proves no reader exists; the pointer
                // came from `Box::into_raw` and is dropped exactly once.
                drop(unsafe { Box::from_raw(current) });
            }
            // Retired snapshots drop with their Vec<Box<_>>.
        }
    }
}

impl fmt::Debug for ShardedGrantTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedGrantTable")
            .field("shards", &GRANT_SHARDS)
            .field("outstanding", &self.outstanding())
            .field("retired_snapshots", &self.retired_snapshots())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_mem::GuestVirtAddr;
    use std::sync::Arc;

    fn va(x: u64) -> GuestVirtAddr {
        GuestVirtAddr::new(x)
    }

    fn read_grant(addr: u64, len: u64) -> MemOpGrant {
        MemOpGrant::CopyFromGuest { addr: va(addr), len }
    }

    fn read_req(addr: u64, len: u64) -> MemOpRequest {
        MemOpRequest::CopyFromGuest { addr: va(addr), len }
    }

    #[test]
    fn declare_validate_revoke_matches_the_flat_table() {
        let table = ShardedGrantTable::new();
        let grant = table.declare(vec![read_grant(0x1000, 64)]).expect("declare");
        assert_eq!(table.outstanding(), 1);
        table.validate(grant, &read_req(0x1000, 64)).expect("covered");
        table.validate(grant, &read_req(0x1020, 32)).expect("sub-range");
        assert_eq!(
            table.validate(grant, &read_req(0x1000, 65)),
            Err(GrantError::NotCovered { grant })
        );
        assert!(table.revoke(grant));
        assert!(!table.revoke(grant), "double revoke is inert");
        assert_eq!(
            table.validate(grant, &read_req(0x1000, 64)),
            Err(GrantError::UnknownRef { grant })
        );
        assert_eq!(table.outstanding(), 0);
    }

    #[test]
    fn batch_validation_is_all_or_nothing() {
        let table = ShardedGrantTable::new();
        let grant = table.declare(vec![read_grant(0x1000, 64)]).expect("declare");
        table
            .validate_batch(grant, &[read_req(0x1000, 8), read_req(0x1008, 8)])
            .expect("both covered");
        let err = table
            .validate_batch(grant, &[read_req(0x1000, 8), read_req(0x2000, 8)])
            .expect_err("second not covered");
        assert_eq!(err, (1, GrantError::NotCovered { grant }));
    }

    #[test]
    fn capacity_is_enforced_and_released() {
        let table = ShardedGrantTable::new();
        let refs: Vec<_> = (0..GRANT_TABLE_CAPACITY)
            .map(|i| table.declare(vec![read_grant(i as u64 * 0x1000, 16)]).expect("fits"))
            .collect();
        assert_eq!(
            table.declare(vec![read_grant(0, 1)]),
            Err(GrantError::TableFull)
        );
        assert!(table.revoke(refs[7]));
        table.declare(vec![read_grant(0, 1)]).expect("slot freed");
    }

    #[test]
    fn revoke_all_empties_every_shard_without_reusing_refs() {
        let table = ShardedGrantTable::new();
        let first = table.declare(vec![read_grant(0, 8)]).expect("declare");
        for i in 1..20u64 {
            table.declare(vec![read_grant(i * 0x100, 8)]).expect("declare");
        }
        assert_eq!(table.revoke_all(), 20);
        assert_eq!(table.outstanding(), 0);
        let fresh = table.declare(vec![read_grant(0, 8)]).expect("declare");
        assert!(fresh.0 > first.0, "references never restart");
    }

    #[test]
    fn retired_snapshots_track_mutations() {
        let table = ShardedGrantTable::new();
        assert_eq!(table.retired_snapshots(), 0);
        let grant = table.declare(vec![read_grant(0, 8)]).expect("declare");
        assert_eq!(table.retired_snapshots(), 1);
        table.revoke(grant);
        assert_eq!(table.retired_snapshots(), 2);
    }

    /// ISSUE 9 satellite: the retired list used to grow with every
    /// mutation until table drop; it is now reclaimed past
    /// [`RETIRED_CAP`] per shard.
    #[test]
    fn retired_snapshots_are_bounded_under_churn() {
        let table = ShardedGrantTable::new();
        for i in 0..10_000u64 {
            let g = table.declare(vec![read_grant(i * 0x10, 8)]).expect("declare");
            assert!(table.revoke(g));
            assert!(
                table.retired_snapshots() <= GRANT_SHARDS * RETIRED_CAP,
                "retired list escaped the bound at mutation {i}"
            );
        }
        assert!(table.retired_snapshots() <= GRANT_SHARDS * RETIRED_CAP);
    }

    #[test]
    fn concurrent_readers_never_block_or_misjudge() {
        let table = Arc::new(ShardedGrantTable::new());
        let stable = table
            .declare(vec![read_grant(0x9000, 4096)])
            .expect("declare");
        let mut readers = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            readers.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    // The stable grant must always validate, regardless of
                    // the churn the writer thread is causing.
                    table
                        .validate(stable, &read_req(0x9000 + (i % 4000), 16))
                        .expect("stable grant always covered");
                }
            }));
        }
        let writer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let g = table
                        .declare(vec![read_grant(i * 0x10, 8)])
                        .expect("churn declare");
                    assert!(table.revoke(g));
                    // The reclamation bound must hold *during* the churn,
                    // with readers pinning snapshots the whole time.
                    if i.is_multiple_of(128) {
                        assert!(
                            table.retired_snapshots() <= GRANT_SHARDS * RETIRED_CAP,
                            "retired list escaped the bound mid-churn"
                        );
                    }
                }
            })
        };
        for reader in readers {
            reader.join().expect("reader");
        }
        writer.join().expect("writer");
        assert_eq!(table.outstanding(), 1);
        assert!(
            table.retired_snapshots() <= GRANT_SHARDS * RETIRED_CAP,
            "retired list escaped the bound after churn"
        );
    }
}
