//! The multi-tenant grant table: per-guest shards with lock-free reads.
//!
//! [`GrantTable`](crate::grants::GrantTable) is the virtual-time table:
//! single-threaded, stepped under `RefCell` borrows. On the wall-clock
//! engine the *backend* thread validates every memory operation while the
//! *frontend* thread declares and revokes, so `check` must stay off any
//! contended path: a frame's grant check sits on the per-op critical path
//! exactly as the paper's hypercall validation does (§4.1), and a mutex
//! there would serialize the two sides the engine exists to overlap.
//!
//! # Per-guest sharding
//!
//! Declarations are sharded by *guest* first. Every [`GrantRef`] is
//! qualified with its owning guest in the reference's high bits
//! ([`GUEST_BITS`]); the low [`SEQ_BITS`] are a per-guest monotonic
//! sequence. Two consequences, both load-bearing for multi-tenancy:
//!
//! * **Isolation of contention.** One guest's grant churn mutates only its
//!   own shard (own snapshot pointer, own writer mutex, own `next_seq` and
//!   `outstanding` counters), so a noisy neighbor never contends on
//!   another guest's validation fast path. This is the shared-metadata
//!   separation Kedia & Bansal identify as the scale separator.
//! * **Attribution before access.** A reference forged to name another
//!   guest's shard fails the guest-bits comparison in [`validate`]
//!   (`GrantError::ForeignGuest`) before the owner's shard is even
//!   touched — cross-guest probing cannot generate load on the victim.
//!
//! Each per-guest snapshot stores, per declaration, the same per-kind
//! sorted range index the virtual-time table builds
//! ([`GrantEntry`](crate::grants::GrantEntry)): validation is a binary
//! search over references plus an `O(log n)` coverage check, entries
//! shared by `Arc` so copy-on-write republication never rebuilds them.
//!
//! Capacity is accounted per guest ([`GRANT_TABLE_CAPACITY`] outstanding
//! declarations each — the paper's one shared table page *per guest pair*,
//! §5.1), so a guest flooding declarations exhausts only its own table.
//!
//! # Read/write protocol (unchanged from the race-checked design)
//!
//! Each shard publishes an immutable snapshot of its live declarations
//! through an `AtomicPtr`; readers announce themselves on a per-shard
//! `in_flight` gate, load the pointer once, and scan — no lock, no
//! waiting. Writers (declare/revoke) take the shard's writer mutex, build
//! the next snapshot copy-on-write, swap the pointer, and *retire* the old
//! snapshot into the shard.
//!
//! # Bounded reclamation (DESIGN.md §14)
//!
//! Retired snapshots used to accumulate until table drop; they are now
//! reclaimed once a shard holds more than [`RETIRED_CAP`] of them. The
//! writer (still under its mutex) spins until it observes
//! `in_flight == 0`, then frees the whole retired list. Soundness is a
//! sequential-consistency argument, which is why the pointer swap, the
//! reader's gate enter, the reader's pointer load, and the writer's gate
//! check are all declared `SeqCst` ([`Edge::Gate`] in [`ATOMIC_SITES`],
//! lint rule `MO005`):
//!
//! * a reader counted in `in_flight` finished its scan before its gate
//!   exit, and the exit precedes the writer's `0` observation in the SC
//!   total order — scan happens-before free;
//! * a reader *not* counted entered the gate SC-after the writer's `0`
//!   observation, hence SC-after every pointer swap that retired the
//!   snapshots being freed; its SeqCst pointer load therefore returns
//!   the current (or a newer) snapshot, never a freed one — the
//!   store-load shape release/acquire cannot order (the
//!   `shard-retire-unfenced` mutant in `paradice-verify` exhibits the
//!   torn read a weaker gate admits).
//!
//! Readers stay wait-free (two uncontended-in-the-common-case RMWs per
//! validate); the writer blocks only on overflow, amortized over
//! [`RETIRED_CAP`] mutations. The per-shard bound makes total retired
//! memory `O(guests * RETIRED_CAP)` instead of `O(mutations)`. The
//! per-guest protocol instances all execute the orderings declared once
//! in [`ATOMIC_SITES`] — one logical site, many instances — so the MO/RC
//! lint and the `race-shards` interleaving model cover every guest's
//! shard with the same proof.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::atomic::{
    Access, AccessKind, AtomicPtr, AtomicU32, AtomicUsize, Edge, MemOrder, Role, SiteSpec,
};
use crate::grants::{
    GrantEntry, GrantError, GrantRef, MemOpGrant, MemOpRequest, GRANT_TABLE_CAPACITY,
};

/// High bits of a [`GrantRef`] carrying the owning guest id.
pub const GUEST_BITS: u32 = 12;
/// Low bits of a [`GrantRef`] carrying the per-guest sequence number.
pub const SEQ_BITS: u32 = 32 - GUEST_BITS;
/// Exclusive upper bound on guest ids a reference can carry (4096).
pub const MAX_GUESTS: u32 = 1 << GUEST_BITS;
/// Mask extracting the per-guest sequence from a reference.
pub const SEQ_MASK: u32 = (1 << SEQ_BITS) - 1;

/// Default number of per-guest shard slots when the guest population is
/// not known up front ([`ShardedGrantTable::new`]). Guests hash onto
/// slots by id modulo the slot count; size the table with
/// [`ShardedGrantTable::with_guests`] to give every guest an exclusive
/// shard (the scale bench does, at 1–1000 guests).
pub const GUEST_SLOTS: usize = 64;

/// Per-shard cap on retired snapshots before the writer reclaims them.
pub const RETIRED_CAP: usize = 32;

// --- Declared atomic sites (the model the lint and checker consume). ---

static PTR_WRITER_LOAD: Access =
    Access::new("writer-load", AccessKind::Load, MemOrder::Relaxed, Edge::OwnerLocal);
static PTR_PUBLISH_SWAP: Access =
    Access::new("publish-swap", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate);
static PTR_READER_LOAD: Access =
    Access::new("reader-load", AccessKind::Load, MemOrder::SeqCst, Edge::Gate);
static PTR_TEARDOWN_SWAP: Access =
    Access::new("teardown-swap", AccessKind::Rmw, MemOrder::Relaxed, Edge::OwnerLocal);
static PTR_ACCESSES: [&Access; 4] = [
    &PTR_WRITER_LOAD,
    &PTR_PUBLISH_SWAP,
    &PTR_READER_LOAD,
    &PTR_TEARDOWN_SWAP,
];
static PTR_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "current",
    group: "shards.snapshot",
    role: Role::SnapshotPtr,
    accesses: &PTR_ACCESSES,
};

static INFLIGHT_ENTER: Access =
    Access::new("enter", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate);
static INFLIGHT_EXIT: Access =
    Access::new("exit", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate);
static INFLIGHT_WRITER_CHECK: Access =
    Access::new("writer-check", AccessKind::Load, MemOrder::SeqCst, Edge::Gate);
static INFLIGHT_ACCESSES: [&Access; 3] =
    [&INFLIGHT_ENTER, &INFLIGHT_EXIT, &INFLIGHT_WRITER_CHECK];
static INFLIGHT_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "in_flight",
    group: "shards.snapshot",
    role: Role::Counter,
    accesses: &INFLIGHT_ACCESSES,
};

static NEXT_REF_ALLOCATE: Access =
    Access::new("allocate", AccessKind::Rmw, MemOrder::AcqRel, Edge::Reservation);
static NEXT_REF_OBSERVE: Access =
    Access::new("observe", AccessKind::Load, MemOrder::Acquire, Edge::Observe);
static NEXT_REF_ACCESSES: [&Access; 2] = [&NEXT_REF_ALLOCATE, &NEXT_REF_OBSERVE];
static NEXT_REF_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "next_ref",
    group: "shards.table",
    role: Role::Counter,
    accesses: &NEXT_REF_ACCESSES,
};

static OUTSTANDING_RESERVE: Access =
    Access::new("reserve", AccessKind::Rmw, MemOrder::AcqRel, Edge::Reservation);
static OUTSTANDING_RELEASE: Access =
    Access::new("release", AccessKind::Rmw, MemOrder::AcqRel, Edge::Reservation);
static OUTSTANDING_OBSERVE: Access =
    Access::new("observe", AccessKind::Load, MemOrder::Acquire, Edge::Observe);
static OUTSTANDING_ACCESSES: [&Access; 3] =
    [&OUTSTANDING_RESERVE, &OUTSTANDING_RELEASE, &OUTSTANDING_OBSERVE];
static OUTSTANDING_SITE: SiteSpec = SiteSpec {
    module: "hypervisor::shards",
    name: "outstanding",
    group: "shards.table",
    role: Role::Counter,
    accesses: &OUTSTANDING_ACCESSES,
};

/// This module's declared atomic-site table, aggregated by
/// [`crate::atomic::all_sites`] for the MO/RC lint passes and the
/// `paradice-verify` interleaving checker. The per-guest refactor added
/// no new sites: the guest shards are *instances* of the same four
/// logical sites (the counters moved from one global instance to one per
/// guest, executing the identical declared orderings).
pub static ATOMIC_SITES: [&SiteSpec; 4] = [
    &PTR_SITE,
    &INFLIGHT_SITE,
    &NEXT_REF_SITE,
    &OUTSTANDING_SITE,
];

/// One shard's published state: the live declarations homed here, sorted
/// by reference for binary-search lookup. Entries are `Arc`-shared so a
/// copy-on-write republication clones `(ref, ptr)` pairs, never the
/// per-kind range indexes behind them.
type Snapshot = Vec<(GrantRef, Arc<GrantEntry>)>;

/// One guest's shard: snapshot, reclamation gate, writer mutex, and the
/// guest-local reference/capacity counters. Nothing in here is shared
/// with any other guest.
struct Shard {
    /// The current snapshot. Readers: one gate enter + one pointer load.
    current: AtomicPtr<Snapshot>,
    /// Readers inside [`Shard::with_snapshot`] right now — the
    /// reclamation gate the writer waits on before freeing retired
    /// snapshots.
    in_flight: AtomicUsize,
    /// Serializes writers and owns the retired snapshots' lifetimes.
    /// The boxes are load-bearing, not redundant: readers hold `&Snapshot`
    /// references into the box allocations, which must stay pinned while
    /// retired — moving the `Vec` headers out would free them.
    #[allow(clippy::vec_box)]
    writer: Mutex<Vec<Box<Snapshot>>>,
    /// Per-guest monotonic sequence (the low [`SEQ_BITS`] of issued refs).
    next_seq: AtomicU32,
    /// Per-guest outstanding declarations, capped at
    /// [`GRANT_TABLE_CAPACITY`].
    outstanding: AtomicUsize,
}

/// Decrements the reader gate even if the scan closure panics — a stuck
/// gate would spin the next reclaiming writer forever.
struct GateGuard<'a>(&'a AtomicUsize);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, &INFLIGHT_EXIT);
    }
}

impl Shard {
    fn new() -> Self {
        Shard {
            current: AtomicPtr::new(Box::into_raw(Box::new(Snapshot::new()))),
            in_flight: AtomicUsize::new(0),
            writer: Mutex::new(Vec::new()),
            next_seq: AtomicU32::new(0),
            outstanding: AtomicUsize::new(0),
        }
    }

    /// Copy-on-write mutation: build the next snapshot from the current
    /// one, publish it, retire the old one — and reclaim the retired
    /// list once it exceeds [`RETIRED_CAP`] (see the module docs for the
    /// soundness argument). Returns `edit`'s output.
    fn mutate<T>(&self, edit: impl FnOnce(&mut Snapshot) -> T) -> T {
        let mut retired = self.writer.lock().expect("grant shard writer poisoned");
        // Safe to dereference: the pointer was published by us (or by
        // `Shard::new`) and we hold the writer mutex, so it cannot be
        // retired-and-freed underneath us.
        let current = unsafe { &*self.current.load(&PTR_WRITER_LOAD) };
        let mut next = current.clone();
        let out = edit(&mut next);
        let fresh = Box::into_raw(Box::new(next));
        let old = self.current.swap(fresh, &PTR_PUBLISH_SWAP);
        // SAFETY: `old` came from `Box::into_raw` and is now unpublished;
        // retiring (not dropping) it keeps any in-flight reader's borrow
        // alive until the gate below proves no reader remains.
        retired.push(unsafe { Box::from_raw(old) });
        if retired.len() > RETIRED_CAP {
            // Wait for a moment with no reader inside the gate. Reader
            // critical sections are a pointer load plus one snapshot
            // scan, so a zero observation arrives quickly; yield after a
            // bounded spin to stay polite under oversubscription.
            let mut spins = 0u32;
            while self.in_flight.load(&INFLIGHT_WRITER_CHECK) != 0 {
                spins += 1;
                if spins.is_multiple_of(128) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            // SC argument (module docs): readers gated in after the zero
            // observation cannot load any pointer retired before it.
            retired.clear();
        }
        out
    }

    /// Wait-free read of the published snapshot under the reclamation
    /// gate: the snapshot is pinned for exactly the closure's duration.
    fn with_snapshot<T>(&self, scan: impl FnOnce(&Snapshot) -> T) -> T {
        self.in_flight.fetch_add(1, &INFLIGHT_ENTER);
        let _gate = GateGuard(&self.in_flight);
        // SAFETY: the gate entry above precedes this load in program
        // order and both are SeqCst, so any writer that observes the
        // gate at zero and frees retired snapshots did so before we
        // could have loaded one of them (module docs).
        let snapshot = unsafe { &*self.current.load(&PTR_READER_LOAD) };
        scan(snapshot)
    }
}

/// A multi-tenant grant table: per-guest shards, wait-free validation,
/// safe to share across the wall-clock engine's threads (`Sync` by
/// construction: atomics plus per-shard writer mutexes).
pub struct ShardedGrantTable {
    shards: Vec<Shard>,
}

impl ShardedGrantTable {
    /// An empty table with [`GUEST_SLOTS`] per-guest slots.
    pub fn new() -> Self {
        Self::with_guests(GUEST_SLOTS)
    }

    /// An empty table sized for `guests` distinct guest ids, each with an
    /// exclusive shard. Guest ids hash onto slots modulo the (power of
    /// two, at least one) slot count, so sizing at or above the actual
    /// population guarantees zero cross-guest sharing.
    pub fn with_guests(guests: usize) -> Self {
        let slots = guests.clamp(1, MAX_GUESTS as usize).next_power_of_two();
        ShardedGrantTable {
            shards: (0..slots).map(|_| Shard::new()).collect(),
        }
    }

    /// The guest id a reference is qualified with.
    pub fn guest_of(grant: GrantRef) -> u32 {
        grant.0 >> SEQ_BITS
    }

    /// Composes a guest-qualified reference (test/adversary helper; the
    /// table itself allocates via [`declare`](Self::declare)).
    pub fn compose_ref(guest: u32, seq: u32) -> GrantRef {
        debug_assert!(guest < MAX_GUESTS && seq <= SEQ_MASK);
        GrantRef((guest << SEQ_BITS) | (seq & SEQ_MASK))
    }

    fn shard_of(&self, guest: u32) -> &Shard {
        &self.shards[(guest as usize) & (self.shards.len() - 1)]
    }

    /// Declares the legitimate operations of one file operation on behalf
    /// of `guest`. Semantics mirror
    /// [`GrantTable::declare`](crate::grants::GrantTable::declare) scoped
    /// to one guest: per-guest capacity, per-guest monotonically
    /// increasing references (the guest id rides in the reference's high
    /// bits).
    ///
    /// `guest` must be below [`MAX_GUESTS`] — ids are host-assigned, so a
    /// larger one is a programming error, not hostile input.
    ///
    /// # Errors
    ///
    /// [`GrantError::TableFull`] at [`GRANT_TABLE_CAPACITY`] outstanding
    /// declarations *for this guest* (neighbors are unaffected), or when
    /// the guest's [`SEQ_BITS`]-wide reference space is exhausted
    /// (references never restart, so stale references can never alias).
    pub fn declare(&self, guest: u32, ops: Vec<MemOpGrant>) -> Result<GrantRef, GrantError> {
        assert!(guest < MAX_GUESTS, "guest id {guest} exceeds MAX_GUESTS");
        let shard = self.shard_of(guest);
        // Optimistic reservation; raced declares both fitting under the
        // capacity is fine, overshoot is corrected below.
        if shard.outstanding.fetch_add(1, &OUTSTANDING_RESERVE) >= GRANT_TABLE_CAPACITY {
            shard.outstanding.fetch_sub(1, &OUTSTANDING_RELEASE);
            return Err(GrantError::TableFull);
        }
        // Sequence allocation pins at SEQ_MASK + 1: once the guest's
        // reference space is spent the shard fails closed *forever*. An
        // unbounded fetch_add would wrap past 2^32 and land back under
        // SEQ_MASK, re-issuing references a stale holder may still name.
        let seq = loop {
            let current = shard.next_seq.load(&NEXT_REF_OBSERVE);
            if current > SEQ_MASK {
                // Reference space exhausted: fail closed rather than alias.
                shard.outstanding.fetch_sub(1, &OUTSTANDING_RELEASE);
                return Err(GrantError::TableFull);
            }
            if shard
                .next_seq
                .compare_exchange(current, current + 1, &NEXT_REF_ALLOCATE)
                .is_ok()
            {
                break current;
            }
        };
        let reference = Self::compose_ref(guest, seq);
        let entry = Arc::new(GrantEntry::build(ops));
        // Sorted insert, not push: concurrent declares can reach the
        // writer mutex out of sequence order, and with hashed slots two
        // resident guests' disjoint reference ranges interleave — the
        // binary search in validate() needs the snapshot sorted either way.
        shard.mutate(|snapshot| {
            let position = snapshot
                .binary_search_by_key(&reference, |(r, _)| *r)
                .unwrap_or_else(|p| p);
            snapshot.insert(position, (reference, entry));
        });
        Ok(reference)
    }

    /// Validates `request` against the declarations of `grant` without
    /// taking any lock — the engine's per-op hot path. A reference whose
    /// guest bits disagree with `guest` is refused before the owning
    /// shard is touched.
    ///
    /// # Errors
    ///
    /// [`GrantError::ForeignGuest`], [`GrantError::UnknownRef`] or
    /// [`GrantError::NotCovered`].
    pub fn validate(
        &self,
        guest: u32,
        grant: GrantRef,
        request: &MemOpRequest,
    ) -> Result<(), GrantError> {
        if Self::guest_of(grant) != guest {
            return Err(GrantError::ForeignGuest { grant, caller: guest });
        }
        self.shard_of(guest).with_snapshot(|snapshot| {
            match snapshot.binary_search_by_key(&grant, |(r, _)| *r) {
                Ok(index) => {
                    if snapshot[index].1.covers(request) {
                        Ok(())
                    } else {
                        Err(GrantError::NotCovered { grant })
                    }
                }
                Err(_) => Err(GrantError::UnknownRef { grant }),
            }
        })
    }

    /// All-or-nothing batch validation, mirroring
    /// [`GrantTable::validate_batch`](crate::grants::GrantTable::validate_batch).
    ///
    /// # Errors
    ///
    /// `(index, error)` for the first uncovered request.
    pub fn validate_batch(
        &self,
        guest: u32,
        grant: GrantRef,
        requests: &[MemOpRequest],
    ) -> Result<(), (usize, GrantError)> {
        for (index, request) in requests.iter().enumerate() {
            self.validate(guest, grant, request).map_err(|err| (index, err))?;
        }
        Ok(())
    }

    /// Revokes a declaration; `true` if the reference was live. Foreign
    /// references (guest bits ≠ `guest`) are inert, exactly like revoking
    /// a reference that was never issued.
    pub fn revoke(&self, guest: u32, grant: GrantRef) -> bool {
        if Self::guest_of(grant) != guest {
            return false;
        }
        let shard = self.shard_of(guest);
        let removed = shard.mutate(|snapshot| {
            let before = snapshot.len();
            snapshot.retain(|(r, _)| *r != grant);
            before != snapshot.len()
        });
        if removed {
            shard.outstanding.fetch_sub(1, &OUTSTANDING_RELEASE);
        }
        removed
    }

    /// Revokes everything one guest declared (guest teardown / flood
    /// containment) without touching any neighbor's shard. Returns the
    /// number of declarations revoked; the guest's reference numbering
    /// continues so stale references can never alias new ones.
    pub fn revoke_guest(&self, guest: u32) -> usize {
        let shard = self.shard_of(guest);
        let revoked = shard.mutate(|snapshot| {
            let before = snapshot.len();
            snapshot.retain(|(r, _)| Self::guest_of(*r) != guest);
            before - snapshot.len()
        });
        shard.outstanding.fetch_sub(revoked, &OUTSTANDING_RELEASE);
        revoked
    }

    /// Revokes everything (driver-VM failure containment). Returns the
    /// number of declarations revoked; reference numbering continues so
    /// stale references can never alias new ones.
    pub fn revoke_all(&self) -> usize {
        let mut revoked = 0;
        for shard in &self.shards {
            let cleared = shard.mutate(|snapshot| std::mem::take(snapshot).len());
            shard.outstanding.fetch_sub(cleared, &OUTSTANDING_RELEASE);
            revoked += cleared;
        }
        revoked
    }

    /// Outstanding declarations across all guests (racy snapshot, exact
    /// when quiescent).
    pub fn outstanding(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.outstanding.load(&OUTSTANDING_OBSERVE))
            .sum()
    }

    /// Outstanding declarations of one guest (racy snapshot, exact when
    /// quiescent). With exact sizing this is exactly the guest's count;
    /// with hashed slots it covers the slot's residents.
    pub fn outstanding_of(&self, guest: u32) -> usize {
        self.shard_of(guest).outstanding.load(&OUTSTANDING_OBSERVE)
    }

    /// Number of per-guest shard slots.
    pub fn slots(&self) -> usize {
        self.shards.len()
    }

    /// Test hook: jumps one guest's sequence allocator (exhaustion tests
    /// would otherwise need 2^[`SEQ_BITS`] declares to reach the edge).
    #[cfg(test)]
    fn set_next_seq(&self, guest: u32, seq: u32) {
        let shard = self.shard_of(guest);
        loop {
            let current = shard.next_seq.load(&NEXT_REF_OBSERVE);
            if shard
                .next_seq
                .compare_exchange(current, seq, &NEXT_REF_ALLOCATE)
                .is_ok()
            {
                break;
            }
        }
    }

    /// Test hook: one guest's current sequence-allocator value.
    #[cfg(test)]
    fn next_seq(&self, guest: u32) -> u32 {
        self.shard_of(guest).next_seq.load(&NEXT_REF_OBSERVE)
    }

    /// Retired snapshots currently held alive for in-flight readers —
    /// the memory cost of reclamation, surfaced for tests and capacity
    /// planning. Bounded: at most [`RETIRED_CAP`] per shard.
    pub fn retired_snapshots(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.writer.lock().expect("grant shard writer poisoned").len())
            .sum()
    }
}

impl Default for ShardedGrantTable {
    fn default() -> Self {
        ShardedGrantTable::new()
    }
}

impl Drop for ShardedGrantTable {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            let current = shard.current.swap(std::ptr::null_mut(), &PTR_TEARDOWN_SWAP);
            if !current.is_null() {
                // SAFETY: `&mut self` proves no reader exists; the pointer
                // came from `Box::into_raw` and is dropped exactly once.
                drop(unsafe { Box::from_raw(current) });
            }
            // Retired snapshots drop with their Vec<Box<_>>.
        }
    }
}

impl fmt::Debug for ShardedGrantTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedGrantTable")
            .field("slots", &self.shards.len())
            .field("outstanding", &self.outstanding())
            .field("retired_snapshots", &self.retired_snapshots())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_mem::GuestVirtAddr;

    fn va(x: u64) -> GuestVirtAddr {
        GuestVirtAddr::new(x)
    }

    fn read_grant(addr: u64, len: u64) -> MemOpGrant {
        MemOpGrant::CopyFromGuest { addr: va(addr), len }
    }

    fn read_req(addr: u64, len: u64) -> MemOpRequest {
        MemOpRequest::CopyFromGuest { addr: va(addr), len }
    }

    #[test]
    fn declare_validate_revoke_matches_the_flat_table() {
        let table = ShardedGrantTable::new();
        let grant = table.declare(1, vec![read_grant(0x1000, 64)]).expect("declare");
        assert_eq!(table.outstanding(), 1);
        table.validate(1, grant, &read_req(0x1000, 64)).expect("covered");
        table.validate(1, grant, &read_req(0x1020, 32)).expect("sub-range");
        assert_eq!(
            table.validate(1, grant, &read_req(0x1000, 65)),
            Err(GrantError::NotCovered { grant })
        );
        assert!(table.revoke(1, grant));
        assert!(!table.revoke(1, grant), "double revoke is inert");
        assert_eq!(
            table.validate(1, grant, &read_req(0x1000, 64)),
            Err(GrantError::UnknownRef { grant })
        );
        assert_eq!(table.outstanding(), 0);
    }

    #[test]
    fn batch_validation_is_all_or_nothing() {
        let table = ShardedGrantTable::new();
        let grant = table.declare(1, vec![read_grant(0x1000, 64)]).expect("declare");
        table
            .validate_batch(1, grant, &[read_req(0x1000, 8), read_req(0x1008, 8)])
            .expect("both covered");
        let err = table
            .validate_batch(1, grant, &[read_req(0x1000, 8), read_req(0x2000, 8)])
            .expect_err("second not covered");
        assert_eq!(err, (1, GrantError::NotCovered { grant }));
    }

    #[test]
    fn capacity_is_per_guest() {
        let table = ShardedGrantTable::with_guests(4);
        let refs: Vec<_> = (0..GRANT_TABLE_CAPACITY)
            .map(|i| {
                table
                    .declare(1, vec![read_grant(i as u64 * 0x1000, 16)])
                    .expect("fits")
            })
            .collect();
        assert_eq!(
            table.declare(1, vec![read_grant(0, 1)]),
            Err(GrantError::TableFull)
        );
        // A flooding neighbor exhausts only its own table: guest 2 still
        // has its full capacity.
        table.declare(2, vec![read_grant(0, 1)]).expect("neighbor unaffected");
        assert!(table.revoke(1, refs[7]));
        table.declare(1, vec![read_grant(0, 1)]).expect("slot freed");
    }

    #[test]
    fn cross_guest_references_are_foreign_before_the_shard_is_touched() {
        let table = ShardedGrantTable::with_guests(4);
        let owner_ref = table.declare(2, vec![read_grant(0x1000, 64)]).expect("declare");
        // Guest 1 spends guest 2's (perfectly valid) reference: refused
        // with attribution, not UnknownRef.
        assert_eq!(
            table.validate(1, owner_ref, &read_req(0x1000, 8)),
            Err(GrantError::ForeignGuest { grant: owner_ref, caller: 1 })
        );
        // A forged reference naming guest 2's shard from guest 1 is
        // equally foreign; and revoke is inert.
        let forged = ShardedGrantTable::compose_ref(2, 0);
        assert_eq!(
            table.validate(1, forged, &read_req(0x1000, 8)),
            Err(GrantError::ForeignGuest { grant: forged, caller: 1 })
        );
        assert!(!table.revoke(1, forged));
        // The owner is untouched throughout.
        table.validate(2, owner_ref, &read_req(0x1000, 8)).expect("owner fine");
        assert_eq!(table.outstanding_of(2), 1);
    }

    #[test]
    fn guest_ids_ride_in_the_reference_high_bits() {
        let table = ShardedGrantTable::with_guests(1024);
        for guest in [0u32, 1, 63, 64, 999] {
            let r = table.declare(guest, vec![read_grant(0, 8)]).expect("declare");
            assert_eq!(ShardedGrantTable::guest_of(r), guest);
        }
    }

    #[test]
    fn revoke_guest_clears_only_that_guest() {
        let table = ShardedGrantTable::with_guests(8);
        for i in 0..5u64 {
            table.declare(1, vec![read_grant(i * 0x100, 8)]).expect("declare");
        }
        let neighbor = table.declare(2, vec![read_grant(0x9000, 8)]).expect("declare");
        assert_eq!(table.revoke_guest(1), 5);
        assert_eq!(table.outstanding_of(1), 0);
        table.validate(2, neighbor, &read_req(0x9000, 8)).expect("neighbor live");
        assert_eq!(table.outstanding(), 1);
    }

    #[test]
    fn revoke_all_empties_every_shard_without_reusing_refs() {
        let table = ShardedGrantTable::new();
        let first = table.declare(1, vec![read_grant(0, 8)]).expect("declare");
        for i in 1..20u64 {
            table
                .declare(1 + (i as u32 % 3), vec![read_grant(i * 0x100, 8)])
                .expect("declare");
        }
        assert_eq!(table.revoke_all(), 20);
        assert_eq!(table.outstanding(), 0);
        let fresh = table.declare(1, vec![read_grant(0, 8)]).expect("declare");
        assert!(fresh.0 > first.0, "references never restart");
    }

    /// With hashed slots ([`ShardedGrantTable::new`], 64 slots) guests
    /// 65 and 1 share slot 1 and interleave disjoint reference ranges; a
    /// push-maintained snapshot would deterministically unsort and the
    /// binary search in validate() would miss live grants.
    #[test]
    fn hashed_slot_collisions_keep_validation_sound() {
        let table = ShardedGrantTable::new();
        assert_eq!(table.slots(), GUEST_SLOTS);
        // Higher-numbered guest declares first: its references are
        // numerically larger, so a later lower-guest push would land
        // out of order.
        let high = table.declare(65, vec![read_grant(0x1000, 64)]).expect("declare");
        let low = table.declare(1, vec![read_grant(0x2000, 64)]).expect("declare");
        let mut interleaved = Vec::new();
        for i in 0..8u64 {
            let guest = if i % 2 == 0 { 65 } else { 1 };
            let addr = 0x3000 + i * 0x100;
            let r = table.declare(guest, vec![read_grant(addr, 32)]).expect("declare");
            interleaved.push((guest, r, addr));
        }
        table.validate(65, high, &read_req(0x1000, 64)).expect("high guest live");
        table.validate(1, low, &read_req(0x2000, 64)).expect("low guest live");
        for (guest, r, addr) in &interleaved {
            table
                .validate(*guest, *r, &read_req(*addr, 32))
                .expect("interleaved grant live");
        }
        // Revocation in the shared slot leaves the co-resident intact.
        assert!(table.revoke(1, low));
        table.validate(65, high, &read_req(0x1000, 64)).expect("co-resident survives");
    }

    /// Sequence allocation is not serialized by the writer mutex, so
    /// same-shard declares can reach the snapshot out of sequence order;
    /// every issued reference must still binary-search to its entry.
    #[test]
    fn concurrent_same_shard_declares_stay_searchable() {
        let table = Arc::new(ShardedGrantTable::with_guests(4));
        let mut workers = Vec::new();
        for t in 0..4u64 {
            let table = Arc::clone(&table);
            workers.push(std::thread::spawn(move || {
                (0..24u64)
                    .map(|i| {
                        let addr = (t * 24 + i) * 0x100;
                        let r = table.declare(1, vec![read_grant(addr, 16)]).expect("declare");
                        (r, addr)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut issued = Vec::new();
        for worker in workers {
            issued.extend(worker.join().expect("worker"));
        }
        assert_eq!(issued.len(), 96);
        for (r, addr) in issued {
            table
                .validate(1, r, &read_req(addr, 16))
                .expect("every issued reference resolves");
        }
        assert_eq!(table.outstanding_of(1), 96);
    }

    /// After the per-guest reference space is spent the allocator pins at
    /// `SEQ_MASK + 1` instead of counting on toward a u32 wrap that would
    /// eventually re-issue references a stale holder may still name.
    #[test]
    fn sequence_exhaustion_pins_closed_without_aliasing() {
        let table = ShardedGrantTable::with_guests(4);
        table.set_next_seq(1, SEQ_MASK - 1);
        let penultimate = table.declare(1, vec![read_grant(0x1000, 8)]).expect("declare");
        let last = table.declare(1, vec![read_grant(0x2000, 8)]).expect("last reference");
        assert_eq!(last.0 & SEQ_MASK, SEQ_MASK);
        for _ in 0..64 {
            assert_eq!(
                table.declare(1, vec![read_grant(0x3000, 8)]),
                Err(GrantError::TableFull),
                "exhausted shard must fail closed"
            );
        }
        assert_eq!(table.next_seq(1), SEQ_MASK + 1, "allocator pinned, not wrapping");
        // Live references keep validating; neighbors are unaffected.
        table.validate(1, penultimate, &read_req(0x1000, 8)).expect("live");
        table.validate(1, last, &read_req(0x2000, 8)).expect("live");
        table.declare(2, vec![read_grant(0, 8)]).expect("neighbor unaffected");
    }

    #[test]
    fn retired_snapshots_track_mutations() {
        let table = ShardedGrantTable::new();
        assert_eq!(table.retired_snapshots(), 0);
        let grant = table.declare(1, vec![read_grant(0, 8)]).expect("declare");
        assert_eq!(table.retired_snapshots(), 1);
        table.revoke(1, grant);
        assert_eq!(table.retired_snapshots(), 2);
    }

    /// ISSUE 9 satellite: the retired list used to grow with every
    /// mutation until table drop; it is now reclaimed past
    /// [`RETIRED_CAP`] per shard — and since ISSUE 10 a single guest's
    /// churn is confined to a single shard's bound.
    #[test]
    fn retired_snapshots_are_bounded_under_churn() {
        let table = ShardedGrantTable::new();
        for i in 0..10_000u64 {
            let g = table.declare(1, vec![read_grant(i * 0x10, 8)]).expect("declare");
            assert!(table.revoke(1, g));
            assert!(
                table.retired_snapshots() <= RETIRED_CAP + 1,
                "retired list escaped the single-shard bound at mutation {i}"
            );
        }
    }

    #[test]
    fn concurrent_readers_never_block_or_misjudge() {
        let table = Arc::new(ShardedGrantTable::with_guests(8));
        let stable = table
            .declare(1, vec![read_grant(0x9000, 4096)])
            .expect("declare");
        let mut readers = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            readers.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    // The stable grant must always validate, regardless of
                    // the churn the writer thread is causing — here the
                    // churn even lives in the same guest's shard.
                    table
                        .validate(1, stable, &read_req(0x9000 + (i % 4000), 16))
                        .expect("stable grant always covered");
                }
            }));
        }
        let writer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let g = table
                        .declare(1, vec![read_grant(i * 0x10, 8)])
                        .expect("churn declare");
                    assert!(table.revoke(1, g));
                    // The reclamation bound must hold *during* the churn,
                    // with readers pinning snapshots the whole time.
                    if i.is_multiple_of(128) {
                        assert!(
                            table.retired_snapshots() <= 8 * RETIRED_CAP,
                            "retired list escaped the bound mid-churn"
                        );
                    }
                }
            })
        };
        for reader in readers {
            reader.join().expect("reader");
        }
        writer.join().expect("writer");
        assert_eq!(table.outstanding(), 1);
        assert!(
            table.retired_snapshots() <= 8 * RETIRED_CAP,
            "retired list escaped the bound after churn"
        );
    }

    /// A heavy neighbor's churn must not grow the victim's shard
    /// metadata: with exact sizing the two guests share nothing.
    #[test]
    fn neighbor_churn_leaves_the_victim_shard_untouched() {
        let table = Arc::new(ShardedGrantTable::with_guests(2));
        let victim = table.declare(0, vec![read_grant(0x4000, 64)]).expect("declare");
        let churner = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    let g = table.declare(1, vec![read_grant(i * 8, 8)]).expect("declare");
                    table.revoke(1, g);
                }
            })
        };
        for i in 0..20_000u64 {
            table
                .validate(0, victim, &read_req(0x4000 + (i % 60), 4))
                .expect("victim validate never disturbed");
        }
        churner.join().expect("churner");
        assert_eq!(table.outstanding_of(0), 1);
    }
}
