//! The grant table behind a sharded, lock-free-read structure.
//!
//! [`GrantTable`](crate::grants::GrantTable) is the virtual-time table:
//! single-threaded, stepped under `RefCell` borrows. On the wall-clock
//! engine the *backend* thread validates every memory operation while the
//! *frontend* thread declares and revokes, so `check` must stay off any
//! contended path: a frame's grant check sits on the per-op critical path
//! exactly as the paper's hypercall validation does (§4.1), and a mutex
//! there would serialize the two sides the engine exists to overlap.
//!
//! Design: declarations are sharded by grant-reference low bits. Each
//! shard publishes an immutable snapshot of its live declarations through
//! an `AtomicPtr`; readers do one `Acquire` pointer load and scan — no
//! lock, no reference-count traffic, no waiting. Writers (declare/revoke)
//! take the shard's writer mutex, build the next snapshot copy-on-write,
//! swap the pointer with `Release`, and *retire* the old snapshot into the
//! shard instead of freeing it. Retired snapshots are only dropped when
//! the table itself is dropped (`&mut self` proves no reader can still
//! hold a pointer), which makes the scheme safe without hazard pointers
//! or epochs at the cost of memory proportional to the number of
//! mutations — bounded in practice by the fast path's grant-declaration
//! cache, which exists precisely to make declarations rare.

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::grants::{GrantError, GrantRef, MemOpGrant, MemOpRequest, GRANT_TABLE_CAPACITY};

/// Number of shards. Power of two so the shard of a reference is a mask.
pub const GRANT_SHARDS: usize = 8;

/// One shard's published state: the live declarations homed here.
type Snapshot = Vec<(GrantRef, Vec<MemOpGrant>)>;

struct Shard {
    /// The current snapshot. Readers: one `Acquire` load, then scan.
    current: AtomicPtr<Snapshot>,
    /// Serializes writers and owns the retired snapshots' lifetimes.
    /// The boxes are load-bearing, not redundant: readers hold `&Snapshot`
    /// references into the box allocations, which must stay pinned while
    /// retired — moving the `Vec` headers out would free them.
    #[allow(clippy::vec_box)]
    writer: Mutex<Vec<Box<Snapshot>>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            current: AtomicPtr::new(Box::into_raw(Box::new(Snapshot::new()))),
            writer: Mutex::new(Vec::new()),
        }
    }

    /// Copy-on-write mutation: build the next snapshot from the current
    /// one, publish it, retire the old one. Returns `edit`'s output.
    fn mutate<T>(&self, edit: impl FnOnce(&mut Snapshot) -> T) -> T {
        let mut retired = self.writer.lock().expect("grant shard writer poisoned");
        // Safe to dereference: the pointer was published by us (or by
        // `Shard::new`) and is only invalidated at table drop.
        let current = unsafe { &*self.current.load(Ordering::Relaxed) };
        let mut next = current.clone();
        let out = edit(&mut next);
        let fresh = Box::into_raw(Box::new(next));
        let old = self.current.swap(fresh, Ordering::Release);
        // SAFETY: `old` came from `Box::into_raw` and is now unpublished;
        // retiring (not dropping) it keeps any in-flight reader's borrow
        // alive until the table itself is dropped.
        retired.push(unsafe { Box::from_raw(old) });
        out
    }

    /// Lock-free read of the published snapshot.
    fn read(&self) -> &Snapshot {
        // SAFETY: published pointers stay allocated until table drop, and
        // drop requires `&mut self` — no reader can coexist with it.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }
}

/// A grant table whose validation path is wait-free for readers and safe
/// to share across the wall-clock engine's threads (`Sync` by
/// construction: atomics plus a writer-side mutex).
pub struct ShardedGrantTable {
    shards: [Shard; GRANT_SHARDS],
    next_ref: AtomicU32,
    outstanding: AtomicUsize,
}

impl ShardedGrantTable {
    /// An empty table.
    pub fn new() -> Self {
        ShardedGrantTable {
            shards: std::array::from_fn(|_| Shard::new()),
            next_ref: AtomicU32::new(0),
            outstanding: AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, grant: GrantRef) -> &Shard {
        &self.shards[(grant.0 as usize) & (GRANT_SHARDS - 1)]
    }

    /// Declares the legitimate operations of one file operation.
    /// Semantics mirror [`GrantTable::declare`](crate::grants::GrantTable::declare):
    /// fixed total capacity, monotonically increasing references.
    ///
    /// # Errors
    ///
    /// [`GrantError::TableFull`] at [`GRANT_TABLE_CAPACITY`] outstanding
    /// declarations.
    pub fn declare(&self, ops: Vec<MemOpGrant>) -> Result<GrantRef, GrantError> {
        // Optimistic reservation; raced declares both fitting under the
        // capacity is fine, overshoot is corrected below.
        if self.outstanding.fetch_add(1, Ordering::AcqRel) >= GRANT_TABLE_CAPACITY {
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
            return Err(GrantError::TableFull);
        }
        let reference = GrantRef(self.next_ref.fetch_add(1, Ordering::AcqRel));
        self.shard_of(reference)
            .mutate(|snapshot| snapshot.push((reference, ops)));
        Ok(reference)
    }

    /// Validates `request` against the declarations of `grant` without
    /// taking any lock — the engine's per-op hot path.
    ///
    /// # Errors
    ///
    /// [`GrantError::UnknownRef`] or [`GrantError::NotCovered`].
    pub fn validate(&self, grant: GrantRef, request: &MemOpRequest) -> Result<(), GrantError> {
        let snapshot = self.shard_of(grant).read();
        match snapshot.iter().find(|(r, _)| *r == grant) {
            Some((_, ops)) => {
                if ops.iter().any(|g| g.covers(request)) {
                    Ok(())
                } else {
                    Err(GrantError::NotCovered { grant })
                }
            }
            None => Err(GrantError::UnknownRef { grant }),
        }
    }

    /// All-or-nothing batch validation, mirroring
    /// [`GrantTable::validate_batch`](crate::grants::GrantTable::validate_batch).
    ///
    /// # Errors
    ///
    /// `(index, error)` for the first uncovered request.
    pub fn validate_batch(
        &self,
        grant: GrantRef,
        requests: &[MemOpRequest],
    ) -> Result<(), (usize, GrantError)> {
        for (index, request) in requests.iter().enumerate() {
            self.validate(grant, request).map_err(|err| (index, err))?;
        }
        Ok(())
    }

    /// Revokes a declaration; `true` if the reference was live.
    pub fn revoke(&self, grant: GrantRef) -> bool {
        let removed = self.shard_of(grant).mutate(|snapshot| {
            let before = snapshot.len();
            snapshot.retain(|(r, _)| *r != grant);
            before != snapshot.len()
        });
        if removed {
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
        }
        removed
    }

    /// Revokes everything (driver-VM failure containment). Returns the
    /// number of declarations revoked; reference numbering continues so
    /// stale references can never alias new ones.
    pub fn revoke_all(&self) -> usize {
        let mut revoked = 0;
        for shard in &self.shards {
            revoked += shard.mutate(|snapshot| std::mem::take(snapshot).len());
        }
        self.outstanding.fetch_sub(revoked, Ordering::AcqRel);
        revoked
    }

    /// Outstanding declarations (racy snapshot, exact when quiescent).
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Retired snapshots currently held alive for in-flight readers —
    /// the memory cost of epoch-free reclamation, surfaced for tests and
    /// capacity planning.
    pub fn retired_snapshots(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.writer.lock().expect("grant shard writer poisoned").len())
            .sum()
    }
}

impl Default for ShardedGrantTable {
    fn default() -> Self {
        ShardedGrantTable::new()
    }
}

impl Drop for ShardedGrantTable {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            let current = shard.current.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !current.is_null() {
                // SAFETY: `&mut self` proves no reader exists; the pointer
                // came from `Box::into_raw` and is dropped exactly once.
                drop(unsafe { Box::from_raw(current) });
            }
            // Retired snapshots drop with their Vec<Box<_>>.
        }
    }
}

impl fmt::Debug for ShardedGrantTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedGrantTable")
            .field("shards", &GRANT_SHARDS)
            .field("outstanding", &self.outstanding())
            .field("retired_snapshots", &self.retired_snapshots())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_mem::GuestVirtAddr;
    use std::sync::Arc;

    fn va(x: u64) -> GuestVirtAddr {
        GuestVirtAddr::new(x)
    }

    fn read_grant(addr: u64, len: u64) -> MemOpGrant {
        MemOpGrant::CopyFromGuest { addr: va(addr), len }
    }

    fn read_req(addr: u64, len: u64) -> MemOpRequest {
        MemOpRequest::CopyFromGuest { addr: va(addr), len }
    }

    #[test]
    fn declare_validate_revoke_matches_the_flat_table() {
        let table = ShardedGrantTable::new();
        let grant = table.declare(vec![read_grant(0x1000, 64)]).expect("declare");
        assert_eq!(table.outstanding(), 1);
        table.validate(grant, &read_req(0x1000, 64)).expect("covered");
        table.validate(grant, &read_req(0x1020, 32)).expect("sub-range");
        assert_eq!(
            table.validate(grant, &read_req(0x1000, 65)),
            Err(GrantError::NotCovered { grant })
        );
        assert!(table.revoke(grant));
        assert!(!table.revoke(grant), "double revoke is inert");
        assert_eq!(
            table.validate(grant, &read_req(0x1000, 64)),
            Err(GrantError::UnknownRef { grant })
        );
        assert_eq!(table.outstanding(), 0);
    }

    #[test]
    fn batch_validation_is_all_or_nothing() {
        let table = ShardedGrantTable::new();
        let grant = table.declare(vec![read_grant(0x1000, 64)]).expect("declare");
        table
            .validate_batch(grant, &[read_req(0x1000, 8), read_req(0x1008, 8)])
            .expect("both covered");
        let err = table
            .validate_batch(grant, &[read_req(0x1000, 8), read_req(0x2000, 8)])
            .expect_err("second not covered");
        assert_eq!(err, (1, GrantError::NotCovered { grant }));
    }

    #[test]
    fn capacity_is_enforced_and_released() {
        let table = ShardedGrantTable::new();
        let refs: Vec<_> = (0..GRANT_TABLE_CAPACITY)
            .map(|i| table.declare(vec![read_grant(i as u64 * 0x1000, 16)]).expect("fits"))
            .collect();
        assert_eq!(
            table.declare(vec![read_grant(0, 1)]),
            Err(GrantError::TableFull)
        );
        assert!(table.revoke(refs[7]));
        table.declare(vec![read_grant(0, 1)]).expect("slot freed");
    }

    #[test]
    fn revoke_all_empties_every_shard_without_reusing_refs() {
        let table = ShardedGrantTable::new();
        let first = table.declare(vec![read_grant(0, 8)]).expect("declare");
        for i in 1..20u64 {
            table.declare(vec![read_grant(i * 0x100, 8)]).expect("declare");
        }
        assert_eq!(table.revoke_all(), 20);
        assert_eq!(table.outstanding(), 0);
        let fresh = table.declare(vec![read_grant(0, 8)]).expect("declare");
        assert!(fresh.0 > first.0, "references never restart");
    }

    #[test]
    fn retired_snapshots_track_mutations() {
        let table = ShardedGrantTable::new();
        assert_eq!(table.retired_snapshots(), 0);
        let grant = table.declare(vec![read_grant(0, 8)]).expect("declare");
        assert_eq!(table.retired_snapshots(), 1);
        table.revoke(grant);
        assert_eq!(table.retired_snapshots(), 2);
    }

    #[test]
    fn concurrent_readers_never_block_or_misjudge() {
        let table = Arc::new(ShardedGrantTable::new());
        let stable = table
            .declare(vec![read_grant(0x9000, 4096)])
            .expect("declare");
        let mut readers = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            readers.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    // The stable grant must always validate, regardless of
                    // the churn the writer thread is causing.
                    table
                        .validate(stable, &read_req(0x9000 + (i % 4000), 16))
                        .expect("stable grant always covered");
                }
            }));
        }
        let writer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let g = table
                        .declare(vec![read_grant(i * 0x10, 8)])
                        .expect("churn declare");
                    assert!(table.revoke(g));
                }
            })
        };
        for reader in readers {
            reader.join().expect("reader");
        }
        writer.join().expect("writer");
        assert_eq!(table.outstanding(), 1);
    }
}
