//! Virtual machine containers.
//!
//! Each [`Vm`] owns its guest-physical RAM (frames in system memory mapped by
//! an EPT), a simple kernel page allocator (page tables and kernel buffers
//! are carved from the top of RAM), and the unused-GPA window the hypervisor
//! draws from when it services `mmap` (paper §5.2).

use std::fmt;

use paradice_mem::layout::GpaAllocator;
use paradice_mem::{Access, Ept, GuestPhysAddr, PAGE_SIZE};

/// Identifies a VM within the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// The role a VM plays in the Paradice topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmRole {
    /// A guest VM running applications.
    Guest,
    /// The driver VM: hosts the device driver and the assigned device.
    /// Untrusted — a malicious guest may compromise it through the device
    /// file interface (paper §4).
    Driver,
}

/// One virtual machine.
pub struct Vm {
    id: VmId,
    role: VmRole,
    ram_pages: u64,
    ept: Ept,
    /// Kernel page allocator: page-table pages and kernel buffers are carved
    /// from the top of RAM downward.
    next_kernel_page: u64,
    /// Window of unused guest-physical pages for hypervisor `mmap` fix-ups.
    gpa_window: GpaAllocator,
    /// Whether the VM has been marked compromised by the attack harness
    /// (affects nothing mechanically — isolation must hold regardless — but
    /// lets tests assert the *assumed* threat model).
    compromised: bool,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("id", &self.id)
            .field("role", &self.role)
            .field("ram_pages", &self.ram_pages)
            .field("ept_pages", &self.ept.len())
            .field("compromised", &self.compromised)
            .finish()
    }
}

/// Size of the unused-GPA window reserved above each VM's RAM for `mmap`
/// fix-ups (64 MiB of page addresses — addresses only, no frames).
pub const GPA_WINDOW_BYTES: u64 = 64 * 1024 * 1024;

impl Vm {
    /// Creates a VM shell; the hypervisor populates its EPT with RAM frames.
    pub(crate) fn new(id: VmId, role: VmRole, ram_bytes: u64) -> Self {
        let ram_pages = ram_bytes / PAGE_SIZE;
        Vm {
            id,
            role,
            ram_pages,
            ept: Ept::new(),
            next_kernel_page: ram_pages,
            gpa_window: GpaAllocator::new(ram_pages * PAGE_SIZE, GPA_WINDOW_BYTES),
            compromised: false,
        }
    }

    /// The VM's identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM's role.
    pub fn role(&self) -> VmRole {
        self.role
    }

    /// RAM size in pages.
    pub fn ram_pages(&self) -> u64 {
        self.ram_pages
    }

    /// The VM's extended page table.
    pub fn ept(&self) -> &Ept {
        &self.ept
    }

    /// Mutable access to the EPT (hypervisor-internal).
    pub(crate) fn ept_mut(&mut self) -> &mut Ept {
        &mut self.ept
    }

    /// The unused-GPA window allocator (hypervisor-internal).
    pub(crate) fn gpa_window_mut(&mut self) -> &mut GpaAllocator {
        &mut self.gpa_window
    }

    /// Allocates one kernel page (guest-physical) from the top of RAM.
    ///
    /// Returns `None` when kernel memory collides with the bottom of RAM —
    /// the guest is out of memory.
    pub fn alloc_kernel_page(&mut self) -> Option<GuestPhysAddr> {
        if self.next_kernel_page == 0 {
            return None;
        }
        self.next_kernel_page -= 1;
        Some(GuestPhysAddr::new(self.next_kernel_page * PAGE_SIZE))
    }

    /// Marks the VM compromised (attack harness bookkeeping).
    pub fn mark_compromised(&mut self) {
        self.compromised = true;
    }

    /// Whether the attack harness marked this VM compromised.
    pub fn is_compromised(&self) -> bool {
        self.compromised
    }

    /// Verifies that `gpa` lies within the VM's RAM.
    pub fn owns_gpa(&self, gpa: GuestPhysAddr) -> bool {
        gpa.page_number() < self.ram_pages
    }

    /// Default access for RAM mappings.
    pub(crate) fn ram_access() -> Access {
        Access::RWX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_pages_come_from_top_of_ram() {
        let mut vm = Vm::new(VmId(0), VmRole::Guest, 16 * PAGE_SIZE);
        let a = vm.alloc_kernel_page().unwrap();
        let b = vm.alloc_kernel_page().unwrap();
        assert_eq!(a.page_number(), 15);
        assert_eq!(b.page_number(), 14);
    }

    #[test]
    fn kernel_allocator_exhausts() {
        let mut vm = Vm::new(VmId(0), VmRole::Guest, 2 * PAGE_SIZE);
        assert!(vm.alloc_kernel_page().is_some());
        assert!(vm.alloc_kernel_page().is_some());
        assert!(vm.alloc_kernel_page().is_none());
    }

    #[test]
    fn gpa_ownership() {
        let vm = Vm::new(VmId(1), VmRole::Driver, 4 * PAGE_SIZE);
        assert!(vm.owns_gpa(GuestPhysAddr::new(3 * PAGE_SIZE)));
        assert!(!vm.owns_gpa(GuestPhysAddr::new(4 * PAGE_SIZE)));
        assert_eq!(vm.role(), VmRole::Driver);
    }

    #[test]
    fn compromise_flag() {
        let mut vm = Vm::new(VmId(2), VmRole::Driver, PAGE_SIZE);
        assert!(!vm.is_compromised());
        vm.mark_compromised();
        assert!(vm.is_compromised());
    }
}
