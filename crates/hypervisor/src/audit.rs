//! The isolation audit log.
//!
//! Every attack the isolation machinery blocks — an ungranted memory
//! operation, a driver-VM read of a protected region, a device DMA outside
//! its active region, a GPU access outside its aperture — is recorded here
//! with *which mechanism stopped it*. The paper's isolation claims (§4, §6)
//! become directly testable assertions over this log.

use std::fmt;

use paradice_mem::{DmaAddr, GuestPhysAddr, GuestVirtAddr, RegionId};

use crate::grants::GrantRef;
use crate::vm::VmId;

/// The isolation mechanism that blocked an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockedBy {
    /// Grant-table validation of driver-VM memory operations (§4.1).
    GrantCheck,
    /// EPT permission stripping on protected regions (§4.2).
    EptProtection,
    /// IOMMU region gating of device DMA (§4.2).
    IommuRegion,
    /// Device-memory aperture bounds (GPU memory controller, §4.2).
    DeviceAperture,
    /// The per-guest wait-queue cap in the CVD backend (§5.1).
    WaitQueueCap,
    /// Protected-MMIO interposition: the register page is unmapped from the
    /// driver VM (§5.3(iii)).
    ProtectedMmio,
}

impl fmt::Display for BlockedBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BlockedBy::GrantCheck => "grant-table validation",
            BlockedBy::EptProtection => "EPT permission stripping",
            BlockedBy::IommuRegion => "IOMMU region gating",
            BlockedBy::DeviceAperture => "device-memory aperture bounds",
            BlockedBy::WaitQueueCap => "per-guest wait-queue cap",
            BlockedBy::ProtectedMmio => "protected-MMIO interposition",
        };
        f.write_str(name)
    }
}

/// One blocked (or notable) event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// A driver-VM memory operation failed grant validation.
    UngrantedMemOp {
        /// The driver VM that issued the hypercall.
        caller: VmId,
        /// The guest the operation targeted.
        target: VmId,
        /// The grant reference presented (if any).
        grant: Option<GrantRef>,
        /// Human-readable description of the request.
        description: String,
    },
    /// The driver VM touched a protected region through its EPT.
    ProtectedRegionAccess {
        /// The driver VM.
        caller: VmId,
        /// The protected guest-physical page (driver-VM space).
        gpa: GuestPhysAddr,
    },
    /// A device DMA was blocked by the IOMMU.
    DmaBlocked {
        /// The faulting bus address.
        dma: DmaAddr,
        /// Region the mapping belonged to, if any.
        region: Option<RegionId>,
    },
    /// A device access fell outside its permitted memory aperture.
    ApertureViolation {
        /// The device-memory offset of the access.
        offset: u64,
    },
    /// The driver VM wrote a protected MMIO register directly.
    ProtectedMmioWrite {
        /// The register offset.
        offset: u64,
    },
    /// A guest flooded its wait queue past the DoS cap.
    WaitQueueOverflow {
        /// The flooding guest.
        guest: VmId,
        /// Queue length at the time.
        depth: usize,
    },
    /// A hypervisor `mmap` fix-up targeted an address outside the guest's
    /// declared window (defence-in-depth check).
    BadMapTarget {
        /// Target guest.
        guest: VmId,
        /// The suspicious virtual address.
        va: GuestVirtAddr,
    },
}

impl AuditEvent {
    /// Stable machine-readable kind, used in the text export consumed by
    /// the lint suite's conformance pass (`paradice_analyzer::lint`).
    pub fn kind_str(&self) -> &'static str {
        match self {
            AuditEvent::UngrantedMemOp { .. } => "ungranted_mem_op",
            AuditEvent::ProtectedRegionAccess { .. } => "protected_region_access",
            AuditEvent::DmaBlocked { .. } => "dma_blocked",
            AuditEvent::ApertureViolation { .. } => "aperture_violation",
            AuditEvent::ProtectedMmioWrite { .. } => "protected_mmio_write",
            AuditEvent::WaitQueueOverflow { .. } => "wait_queue_overflow",
            AuditEvent::BadMapTarget { .. } => "bad_map_target",
        }
    }

    /// Human-readable detail string for the text export.
    pub fn detail(&self) -> String {
        match self {
            AuditEvent::UngrantedMemOp {
                caller,
                target,
                grant,
                description,
            } => format!(
                "caller={caller:?} target={target:?} grant={grant:?} {description}"
            ),
            AuditEvent::ProtectedRegionAccess { caller, gpa } => {
                format!("caller={caller:?} gpa={gpa:?}")
            }
            AuditEvent::DmaBlocked { dma, region } => {
                format!("dma={dma:?} region={region:?}")
            }
            AuditEvent::ApertureViolation { offset } => format!("offset={offset:#x}"),
            AuditEvent::ProtectedMmioWrite { offset } => format!("offset={offset:#x}"),
            AuditEvent::WaitQueueOverflow { guest, depth } => {
                format!("guest={guest:?} depth={depth}")
            }
            AuditEvent::BadMapTarget { guest, va } => {
                format!("guest={guest:?} va={va:?}")
            }
        }
    }

    /// The mechanism that blocked this event.
    pub fn blocked_by(&self) -> BlockedBy {
        match self {
            AuditEvent::UngrantedMemOp { .. } | AuditEvent::BadMapTarget { .. } => {
                BlockedBy::GrantCheck
            }
            AuditEvent::ProtectedRegionAccess { .. } => BlockedBy::EptProtection,
            AuditEvent::DmaBlocked { .. } => BlockedBy::IommuRegion,
            AuditEvent::ApertureViolation { .. } => BlockedBy::DeviceAperture,
            AuditEvent::ProtectedMmioWrite { .. } => BlockedBy::ProtectedMmio,
            AuditEvent::WaitQueueOverflow { .. } => BlockedBy::WaitQueueCap,
        }
    }
}

/// A timestamped audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Virtual time of the event, ns.
    pub at_ns: u64,
    /// The event.
    pub event: AuditEvent,
}

/// The append-only audit log.
#[derive(Debug, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends an event at virtual time `at_ns`.
    pub fn record(&mut self, at_ns: u64, event: AuditEvent) {
        self.records.push(AuditRecord { at_ns, event });
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Number of records blocked by a given mechanism.
    pub fn count_blocked_by(&self, by: BlockedBy) -> usize {
        self.records
            .iter()
            .filter(|r| r.event.blocked_by() == by)
            .count()
    }

    /// Returns `true` if no attack was ever blocked — i.e. a clean run.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Clears the log (between experiment repetitions).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Exports the log as stable tab-separated text
    /// (`at_ns\tkind\tdetail`, one record per line), the format
    /// `paradice_analyzer::lint::conformance::parse_audit_text` consumes.
    /// Newlines and tabs inside details are flattened to spaces so the
    /// format stays one-record-per-line.
    pub fn export_text(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            let detail = record
                .event
                .detail()
                .replace(['\n', '\t'], " ");
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                record.at_ns,
                record.event.kind_str(),
                detail,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_with_mechanism_attribution() {
        let mut log = AuditLog::new();
        log.record(
            100,
            AuditEvent::UngrantedMemOp {
                caller: VmId(1),
                target: VmId(2),
                grant: Some(GrantRef(7)),
                description: "copy_to_guest 0xc0000000+8".to_owned(),
            },
        );
        log.record(
            200,
            AuditEvent::DmaBlocked {
                dma: DmaAddr::new(0x1000),
                region: Some(RegionId(1)),
            },
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.count_blocked_by(BlockedBy::GrantCheck), 1);
        assert_eq!(log.count_blocked_by(BlockedBy::IommuRegion), 1);
        assert_eq!(log.count_blocked_by(BlockedBy::DeviceAperture), 0);
        assert_eq!(log.records()[0].at_ns, 100);
    }

    #[test]
    fn clear_resets() {
        let mut log = AuditLog::new();
        log.record(
            1,
            AuditEvent::ApertureViolation { offset: 0xdead },
        );
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn export_text_is_one_record_per_line() {
        let mut log = AuditLog::new();
        log.record(
            120,
            AuditEvent::UngrantedMemOp {
                caller: VmId(1),
                target: VmId(2),
                grant: None,
                description: "write 64B\nat 0x9000".to_owned(),
            },
        );
        log.record(340, AuditEvent::ProtectedMmioWrite { offset: 0x44 });
        let text = log.export_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("120\tungranted_mem_op\t"));
        assert!(!lines[0].contains("0x9000\n")); // embedded newline flattened
        assert!(lines[1].starts_with("340\tprotected_mmio_write\t"));
    }

    #[test]
    fn blocked_by_display() {
        assert_eq!(
            BlockedBy::EptProtection.to_string(),
            "EPT permission stripping"
        );
    }
}
