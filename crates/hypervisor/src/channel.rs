//! Shared-page inter-VM communication.
//!
//! "The CVD frontend and backend use shared memory pages and inter-VM
//! interrupts to communicate. The frontend puts the file operation arguments
//! in a shared page, and uses an interrupt to inform the backend to read
//! them. The backend communicates the return values of the file operation in
//! a similar way. Because interrupts have noticeable latency (§6.1.1), CVD
//! supports a polling mode for high-performance applications such as netmap.
//! In this mode, the frontend and backend both poll the shared page for
//! 200 µs before they go to sleep to wait for interrupts" (paper §5.1).
//!
//! [`Channel`] models one frontend↔backend pair: a bounded message ring in
//! each direction plus a notification slot (for `fasync` events), charging
//! the cost model for every delivery. In polling mode, a delivery that
//! arrives after the 200 µs spin budget has lapsed since the peer's last
//! activity falls back to interrupt cost — the peer has gone to sleep.
//!
//! # Pipelined ring (fast path)
//!
//! By default each direction holds a single entry, which is exactly the
//! paper's bounded-slot discipline: a second `send_request` before the
//! backend drains the first returns [`ChannelError::SlotBusy`].
//! [`Channel::set_ring_depth`] widens each direction to a small multi-entry
//! ring — still backed by the one 4-KiB shared page, so the *sum* of the
//! encoded entries queued in a direction can never exceed [`PAGE_SIZE`].
//! Only the send that makes a ring non-empty rings the doorbell (pays the
//! transport delivery cost); follow-up sends into a non-empty ring are
//! coalesced behind that doorbell and pay marshalling only, netmap-style:
//! the peer is already on its way to drain the ring. Coalesced sends are
//! counted in [`ChannelStats::coalesced_deliveries`] so delivery accounting
//! stays audit-complete.
//!
//! # Typed transport
//!
//! The channel is generic over the three message types it carries
//! (`Channel<Req, Resp, Sig>`), each of which supplies its wire format via
//! [`WireCodec`]. Encoding happens inside `send_*` and decoding inside
//! `take_*` — exactly one serialization boundary, so the frontend and
//! backend exchange typed values and never hand-roll byte buffers. The
//! shared-page model is unchanged underneath: slots still hold the encoded
//! bytes and still enforce the 4-KiB page cap. `Vec<u8>` implements
//! [`WireCodec`] as the identity codec, and the type parameters default to
//! it, so a bare `Channel` is the old untyped byte channel.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;

use paradice_mem::PAGE_SIZE;

use crate::clock::{ClockSource, CostModel};
use crate::ring::{RingIndex, RING_CAPACITY};

/// A message type with a defined shared-page wire format.
///
/// Implementations must round-trip: `decode_wire(&x.encode_wire())` is
/// `Some(x)` for every value `x`, and decoding must reject trailing bytes
/// (the slot hands back exactly what was posted, so extra bytes mean a
/// malformed or forged message).
pub trait WireCodec: Sized {
    /// Serializes the message for the shared page.
    fn encode_wire(&self) -> Vec<u8>;
    /// Parses a message from the shared page; `None` on any malformation.
    fn decode_wire(bytes: &[u8]) -> Option<Self>;
}

/// The identity codec: raw bytes travel as-is (the pre-typed-channel API).
impl WireCodec for Vec<u8> {
    fn encode_wire(&self) -> Vec<u8> {
        self.clone()
    }

    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

/// How the two channel ends signal each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportMode {
    /// Inter-VM interrupts: ~35 µs round trip (paper §6.1.1).
    Interrupts,
    /// Shared-page polling with a spin budget before falling back to
    /// interrupts: ~2 µs round trip while hot (paper §5.1, §6.1.1).
    Polling {
        /// How long a side spins before sleeping, ns (paper: 200 µs,
        /// "chosen empirically and … not currently optimized").
        spin_budget_ns: u64,
    },
    /// The DSM-based cross-machine transport the paper sketches as future
    /// work (§8: "a DSM-based solution that allows the guest and driver VM
    /// to reside in separate physical machines"): every delivery pays a
    /// network one-way latency instead of an inter-VM interrupt.
    Remote {
        /// One-way network latency, ns (e.g. ~25 µs for 10 GbE RDMA-ish
        /// fabric, ~250 µs for commodity TCP).
        one_way_ns: u64,
    },
}

impl TransportMode {
    /// The paper's polling configuration (200 µs spin).
    pub const fn polling_default() -> TransportMode {
        TransportMode::Polling {
            spin_budget_ns: 200_000,
        }
    }

    /// A representative datacenter-network remote transport (25 µs one way).
    pub const fn remote_default() -> TransportMode {
        TransportMode::Remote { one_way_ns: 25_000 }
    }
}

impl fmt::Display for TransportMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportMode::Interrupts => f.write_str("interrupts"),
            TransportMode::Polling { spin_budget_ns } => {
                write!(f, "polling({} µs spin)", spin_budget_ns / 1_000)
            }
            TransportMode::Remote { one_way_ns } => {
                write!(f, "remote({} µs one-way)", one_way_ns / 1_000)
            }
        }
    }
}

/// Channel errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelError {
    /// Message exceeds the shared page (4 KiB).
    TooLarge {
        /// Offending length.
        len: usize,
    },
    /// A message is already pending in that direction.
    SlotBusy,
    /// No message pending.
    Empty,
    /// The shared page held bytes the typed codec could not parse.
    Malformed,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::TooLarge { len } => {
                write!(f, "message of {len} bytes exceeds the shared page")
            }
            ChannelError::SlotBusy => f.write_str("shared-page slot already occupied"),
            ChannelError::Empty => f.write_str("no message pending"),
            ChannelError::Malformed => f.write_str("malformed message in shared page"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Delivery statistics for overhead accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Requests delivered frontend → backend.
    pub requests: u64,
    /// Responses delivered backend → frontend.
    pub responses: u64,
    /// Asynchronous notifications delivered backend → frontend.
    pub notifications: u64,
    /// Deliveries that paid interrupt cost.
    pub interrupt_deliveries: u64,
    /// Deliveries that paid polling cost.
    pub polling_deliveries: u64,
    /// Deliveries that paid a network hop (remote transport).
    pub remote_deliveries: u64,
    /// Sends coalesced into an already-rung doorbell (multi-entry ring:
    /// the ring was non-empty, so only marshalling was paid).
    pub coalesced_deliveries: u64,
    /// Cumulative encoded request bytes (frontend → backend).
    pub request_bytes: u64,
    /// Cumulative encoded response bytes (backend → frontend).
    pub response_bytes: u64,
    /// Cumulative encoded notification bytes (backend → frontend).
    pub notification_bytes: u64,
    /// Entries whose shared-page bytes failed to parse on `take_request`
    /// or `take_response` — each one is a detected corruption/forgery, so
    /// flood campaigns can assert *detection* and not just survival.
    pub malformed_count: u64,
}

impl ChannelStats {
    /// Total deliveries in all three classes (used for per-span deltas).
    pub fn deliveries(&self) -> u64 {
        self.requests + self.responses + self.notifications
    }
}

/// One direction's slot storage: the pure [`RingIndex`] kernel assigns the
/// slot numbers; this wrapper owns the payload bytes those slots hold and
/// the shared-page byte budget. All index arithmetic — window bounds,
/// aliasing, FIFO order, doorbell edges — lives in the kernel, where the
/// model checker and Kani harnesses prove it; this wrapper only moves bytes
/// in and out of the slots the kernel names.
#[derive(Debug)]
struct Ring {
    idx: RingIndex,
    slots: Vec<Option<Vec<u8>>>,
    queued_bytes: u64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            idx: RingIndex::new(),
            slots: (0..RING_CAPACITY).map(|_| None).collect(),
            queued_bytes: 0,
        }
    }

    fn len(&self) -> usize {
        self.idx.len() as usize
    }

    /// Admission into this direction: entry count bounded by the ring
    /// depth, total queued bytes bounded by the shared page. On success the
    /// entry is committed into the kernel-assigned slot and the doorbell
    /// flag (empty→non-empty edge) is returned.
    fn try_push(&mut self, depth: usize, bytes: Vec<u8>) -> Result<bool, ChannelError> {
        if self.len() >= depth {
            return Err(ChannelError::SlotBusy);
        }
        if self.queued_bytes + bytes.len() as u64 > PAGE_SIZE {
            return Err(ChannelError::SlotBusy);
        }
        let grant = self.idx.try_push(depth as u32).ok_or(ChannelError::SlotBusy)?;
        let slot = &mut self.slots[grant.slot as usize];
        debug_assert!(slot.is_none(), "kernel handed out an occupied slot");
        self.queued_bytes += bytes.len() as u64;
        *slot = Some(bytes);
        Ok(grant.doorbell)
    }

    /// Drains the oldest committed entry (FIFO per the kernel).
    fn try_pop(&mut self) -> Option<Vec<u8>> {
        let slot = self.idx.try_pop()?;
        let bytes = self.slots[slot as usize]
            .take()
            .expect("kernel drained an uncommitted slot");
        self.queued_bytes -= bytes.len() as u64;
        Some(bytes)
    }

    /// The most recently posted, undrained entry (fault hooks mutate it).
    fn newest_mut(&mut self) -> Option<&mut Vec<u8>> {
        let slot = self.idx.newest_slot()?;
        self.slots[slot as usize].as_mut()
    }

    /// Removes the most recently posted entry (lost-completion injection).
    fn drop_newest(&mut self) -> Option<Vec<u8>> {
        let slot = self.idx.unpush()?;
        let bytes = self.slots[slot as usize]
            .take()
            .expect("kernel abandoned an uncommitted slot");
        self.queued_bytes -= bytes.len() as u64;
        Some(bytes)
    }

    fn clear(&mut self) {
        self.idx.clear();
        for slot in &mut self.slots {
            *slot = None;
        }
        self.queued_bytes = 0;
    }

    /// Adjusts the newest entry's byte accounting after an in-place fault
    /// mutation (scramble/truncate may change the payload length).
    fn reaccount(&mut self, old_len: usize, new_len: usize) {
        self.queued_bytes = self.queued_bytes - old_len as u64 + new_len as u64;
    }
}

/// One frontend↔backend shared-page channel carrying typed messages.
///
/// `Req`/`Resp`/`Sig` default to `Vec<u8>` (the identity codec), so a plain
/// `Channel` behaves exactly like the historical untyped byte channel.
pub struct Channel<Req = Vec<u8>, Resp = Vec<u8>, Sig = Vec<u8>> {
    mode: TransportMode,
    clock: ClockSource,
    cost: CostModel,
    /// Entries per direction; 1 is the paper's bounded-slot discipline.
    ring_depth: usize,
    requests: Ring,
    responses: Ring,
    notifications: VecDeque<Vec<u8>>,
    /// Virtual time of the last activity on the channel, for the polling
    /// spin-budget model.
    last_activity_ns: u64,
    stats: ChannelStats,
    _types: PhantomData<(Req, Resp, Sig)>,
}

/// Upper bound on [`Channel::set_ring_depth`]: the ring descriptors live in
/// the shared page's header, which caps how many entries one page can index.
pub const MAX_RING_DEPTH: usize = RING_CAPACITY as usize;

impl<Req, Resp, Sig> fmt::Debug for Channel<Req, Resp, Sig> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("mode", &self.mode)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<Req: WireCodec, Resp: WireCodec, Sig: WireCodec> Channel<Req, Resp, Sig> {
    /// Creates a channel in the given transport mode. The clock decides
    /// the substrate: a [`SimClock`] charges the cost model on virtual
    /// time, a [`crate::clock::WallClock`] makes every charge a no-op and
    /// reports real elapsed time (the spin-budget comparison then runs on
    /// real nanoseconds).
    pub fn new(mode: TransportMode, clock: impl Into<ClockSource>, cost: CostModel) -> Self {
        Channel {
            mode,
            clock: clock.into(),
            cost,
            ring_depth: 1,
            requests: Ring::new(),
            responses: Ring::new(),
            notifications: VecDeque::new(),
            last_activity_ns: 0,
            stats: ChannelStats::default(),
            _types: PhantomData,
        }
    }

    /// The transport mode.
    pub fn mode(&self) -> TransportMode {
        self.mode
    }

    /// Changes the transport mode (experiments switch between them).
    pub fn set_mode(&mut self, mode: TransportMode) {
        self.mode = mode;
    }

    /// Entries per direction (1 = the paper's single bounded slot).
    pub fn ring_depth(&self) -> usize {
        self.ring_depth
    }

    /// Widens (or narrows) each direction's ring. Clamped to
    /// `1..=`[`MAX_RING_DEPTH`]. Messages already queued stay queued; a
    /// narrower ring only constrains future sends.
    pub fn set_ring_depth(&mut self, depth: usize) {
        self.ring_depth = depth.clamp(1, MAX_RING_DEPTH);
    }

    /// Requests currently queued (posted but not yet taken).
    pub fn request_backlog(&self) -> usize {
        self.requests.len()
    }

    /// Responses currently queued (posted but not yet taken).
    pub fn response_backlog(&self) -> usize {
        self.responses.len()
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Charges one delivery: marshalling plus either a polling handoff (peer
    /// still spinning) or an inter-VM interrupt (peer asleep or interrupt
    /// mode).
    fn charge_delivery(&mut self) {
        self.clock.advance(self.cost.marshal_ns);
        let use_interrupt = match self.mode {
            TransportMode::Interrupts => true,
            TransportMode::Polling { spin_budget_ns } => {
                self.clock.now_ns().saturating_sub(self.last_activity_ns) > spin_budget_ns
            }
            TransportMode::Remote { one_way_ns } => {
                self.clock.advance(one_way_ns);
                self.stats.remote_deliveries += 1;
                self.last_activity_ns = self.clock.now_ns();
                return;
            }
        };
        if use_interrupt {
            self.clock.advance(self.cost.intervm_interrupt_ns);
            self.stats.interrupt_deliveries += 1;
        } else {
            self.clock.advance(self.cost.polling_side_ns);
            self.stats.polling_deliveries += 1;
        }
        self.last_activity_ns = self.clock.now_ns();
    }

    fn check_len(bytes: &[u8]) -> Result<(), ChannelError> {
        if bytes.len() as u64 > PAGE_SIZE {
            Err(ChannelError::TooLarge { len: bytes.len() })
        } else {
            Ok(())
        }
    }

    /// A coalesced send: the ring was already non-empty, so the doorbell is
    /// already rung — the peer will drain this entry under the same
    /// interrupt (or polling pass). Only marshalling is paid.
    fn charge_coalesced(&mut self) {
        self.clock.advance(self.cost.marshal_ns);
        self.stats.coalesced_deliveries += 1;
        self.last_activity_ns = self.clock.now_ns();
    }

    /// Frontend → backend: posts a file-operation request.
    ///
    /// # Errors
    ///
    /// [`ChannelError::TooLarge`] or [`ChannelError::SlotBusy`] (ring full,
    /// or the queued entries would overflow the shared page).
    pub fn send_request(&mut self, request: Req) -> Result<(), ChannelError> {
        let bytes = request.encode_wire();
        Self::check_len(&bytes)?;
        let len = bytes.len() as u64;
        let doorbell = self.requests.try_push(self.ring_depth, bytes)?;
        if doorbell {
            self.charge_delivery();
        } else {
            self.charge_coalesced();
        }
        self.stats.requests += 1;
        self.stats.request_bytes += len;
        Ok(())
    }

    /// Backend: takes the oldest pending request.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Empty`] if nothing is pending;
    /// [`ChannelError::Malformed`] if the entry bytes do not parse (the
    /// bad message is consumed either way, freeing the entry).
    pub fn take_request(&mut self) -> Result<Req, ChannelError> {
        let bytes = self.requests.try_pop().ok_or(ChannelError::Empty)?;
        Req::decode_wire(&bytes).ok_or_else(|| {
            self.stats.malformed_count += 1;
            ChannelError::Malformed
        })
    }

    /// Backend → frontend: posts the response.
    ///
    /// # Errors
    ///
    /// [`ChannelError::TooLarge`] or [`ChannelError::SlotBusy`] (ring full,
    /// or the queued entries would overflow the shared page).
    pub fn send_response(&mut self, response: Resp) -> Result<(), ChannelError> {
        let bytes = response.encode_wire();
        Self::check_len(&bytes)?;
        let len = bytes.len() as u64;
        let doorbell = self.responses.try_push(self.ring_depth, bytes)?;
        if doorbell {
            self.charge_delivery();
        } else {
            self.charge_coalesced();
        }
        self.stats.responses += 1;
        self.stats.response_bytes += len;
        Ok(())
    }

    /// Frontend: takes the oldest pending response.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Empty`] if nothing is pending;
    /// [`ChannelError::Malformed`] if the entry bytes do not parse.
    pub fn take_response(&mut self) -> Result<Resp, ChannelError> {
        let bytes = self.responses.try_pop().ok_or(ChannelError::Empty)?;
        Resp::decode_wire(&bytes).ok_or_else(|| {
            self.stats.malformed_count += 1;
            ChannelError::Malformed
        })
    }

    /// Backend → frontend: posts an asynchronous notification (`fasync`
    /// events such as key presses, paper §5.1). Notifications queue rather
    /// than occupying the request/response slots.
    ///
    /// # Errors
    ///
    /// [`ChannelError::TooLarge`].
    pub fn send_notification(&mut self, signal: Sig) -> Result<(), ChannelError> {
        let bytes = signal.encode_wire();
        Self::check_len(&bytes)?;
        self.charge_delivery();
        self.stats.notifications += 1;
        self.stats.notification_bytes += bytes.len() as u64;
        self.notifications.push_back(bytes);
        Ok(())
    }

    /// Frontend: takes the oldest pending notification. A notification
    /// whose bytes fail to parse is consumed and dropped (`None`), exactly
    /// as a real frontend would discard a garbled fasync doorbell.
    pub fn take_notification(&mut self) -> Option<Sig> {
        let bytes = self.notifications.pop_front()?;
        Sig::decode_wire(&bytes)
    }

    /// Number of queued notifications.
    pub fn pending_notifications(&self) -> usize {
        self.notifications.len()
    }

    /// Clears both message rings and the notification queue (driver-VM
    /// recovery: the rebooted backend must not see requests posted to its
    /// dead predecessor, and the frontend must not read a stale response).
    /// Statistics, the transport mode, and the ring depth are preserved.
    pub fn reset(&mut self) {
        self.requests.clear();
        self.responses.clear();
        self.notifications.clear();
    }

    /// Fault injection: scrambles the bytes of the most recently posted
    /// response in place (a corrupted shared-page write by a crashing
    /// driver). Returns `false` when no response is pending.
    pub fn scramble_response_slot(&mut self) -> bool {
        let Some(bytes) = self.responses.newest_mut() else {
            return false;
        };
        let old_len = bytes.len();
        if bytes.is_empty() {
            // An empty slot payload cannot decode anyway; make it
            // visibly garbled.
            *bytes = vec![0xde, 0xad];
        } else {
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = b.wrapping_add(0x5a).rotate_left((i % 7) as u32);
            }
        }
        let new_len = self.responses.newest_mut().map_or(0, |b| b.len());
        self.responses.reaccount(old_len, new_len);
        true
    }

    /// Fault injection: truncates the most recently posted response to half
    /// its length (a partial shared-page write). Returns `false` when no
    /// response is pending.
    pub fn truncate_response_slot(&mut self) -> bool {
        let Some(bytes) = self.responses.newest_mut() else {
            return false;
        };
        let old_len = bytes.len();
        let keep = old_len / 2;
        bytes.truncate(keep);
        self.responses.reaccount(old_len, keep);
        true
    }

    /// Fault injection: drops the most recently posted response entirely (a
    /// lost completion delivery). Returns `false` when no response was
    /// pending.
    pub fn drop_response_slot(&mut self) -> bool {
        self.responses.drop_newest().is_some()
    }

    /// Fault injection: scrambles the bytes of the most recently posted
    /// *request* in place (a malicious guest rewriting the shared page after
    /// ringing the doorbell). Returns `false` when no request is pending.
    pub fn scramble_request_slot(&mut self) -> bool {
        let Some(bytes) = self.requests.newest_mut() else {
            return false;
        };
        let old_len = bytes.len();
        if bytes.is_empty() {
            *bytes = vec![0xde, 0xad];
        } else {
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = b.wrapping_add(0x5a).rotate_left((i % 7) as u32);
            }
        }
        let new_len = self.requests.newest_mut().map_or(0, |b| b.len());
        self.requests.reaccount(old_len, new_len);
        true
    }

    /// Fault injection: truncates the most recently posted *request* to half
    /// its length (a partial shared-page write by a hostile guest). Returns
    /// `false` when no request is pending.
    pub fn truncate_request_slot(&mut self) -> bool {
        let Some(bytes) = self.requests.newest_mut() else {
            return false;
        };
        let old_len = bytes.len();
        let keep = old_len / 2;
        bytes.truncate(keep);
        self.requests.reaccount(old_len, keep);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{us, SimClock};

    fn channel(mode: TransportMode) -> Channel {
        Channel::new(mode, SimClock::new(), CostModel::default())
    }

    #[test]
    fn request_response_roundtrip() {
        let mut ch = channel(TransportMode::Interrupts);
        ch.send_request(b"op".to_vec()).unwrap();
        assert_eq!(ch.take_request().unwrap(), b"op");
        ch.send_response(b"ret".to_vec()).unwrap();
        assert_eq!(ch.take_response().unwrap(), b"ret");
        assert_eq!(ch.stats().requests, 1);
        assert_eq!(ch.stats().responses, 1);
        assert_eq!(ch.stats().request_bytes, 2);
        assert_eq!(ch.stats().response_bytes, 3);
    }

    #[test]
    fn interrupt_mode_costs_two_interrupts_per_roundtrip() {
        let clock = SimClock::new();
        let cost = CostModel::default();
        let mut ch: Channel = Channel::new(TransportMode::Interrupts, clock.clone(), cost.clone());
        ch.send_request(vec![]).unwrap();
        ch.take_request().unwrap();
        ch.send_response(vec![]).unwrap();
        ch.take_response().unwrap();
        let expected = 2 * (cost.marshal_ns + cost.intervm_interrupt_ns);
        assert_eq!(clock.now_ns(), expected);
        // The paper's headline: ~35 µs.
        assert!((34_000..36_000).contains(&clock.now_ns()));
    }

    #[test]
    fn polling_mode_is_fast_while_hot() {
        let clock = SimClock::new();
        let cost = CostModel::default();
        let mut ch: Channel =
            Channel::new(TransportMode::polling_default(), clock.clone(), cost.clone());
        // Warm up: first delivery after boot is within the spin budget of
        // time zero, so it's already a polling delivery.
        ch.send_request(vec![]).unwrap();
        ch.take_request().unwrap();
        ch.send_response(vec![]).unwrap();
        ch.take_response().unwrap();
        let round_trip = clock.now_ns();
        // ~2 µs headline.
        assert!((1_500..2_500).contains(&round_trip), "{round_trip} ns");
        assert_eq!(ch.stats().polling_deliveries, 2);
    }

    #[test]
    fn polling_falls_back_to_interrupts_after_idle() {
        let clock = SimClock::new();
        let mut ch: Channel = Channel::new(
            TransportMode::polling_default(),
            clock.clone(),
            CostModel::default(),
        );
        ch.send_request(vec![]).unwrap();
        ch.take_request().unwrap();
        ch.send_response(vec![]).unwrap();
        ch.take_response().unwrap();
        assert_eq!(ch.stats().interrupt_deliveries, 0);
        // Device idle for 1 ms: both sides asleep; next delivery pays the
        // interrupt.
        clock.advance(us(1_000));
        ch.send_request(vec![]).unwrap();
        assert_eq!(ch.stats().interrupt_deliveries, 1);
        // …but the response follows immediately, so it polls again.
        ch.take_request().unwrap();
        ch.send_response(vec![]).unwrap();
        assert_eq!(ch.stats().interrupt_deliveries, 1);
        assert_eq!(ch.stats().polling_deliveries, 3);
    }

    /// The spin-budget boundary, entry by entry: a delivery landing exactly
    /// at the budget still finds the peer spinning (polling cost); one
    /// nanosecond past it pays the interrupt (strict `>` in
    /// `charge_delivery`).
    #[test]
    fn spin_budget_boundary_charges_the_right_class() {
        let budget = 200_000u64;
        for (idle_ns, interrupts, pollings) in [
            (budget - 1, 0, 1), // just under: peer still spinning
            (budget, 0, 1),     // exactly at: the last spin iteration catches it
            (budget + 1, 1, 0), // just over: peer asleep, interrupt
        ] {
            let clock = SimClock::new();
            let cost = CostModel::default();
            let mut ch: Channel = Channel::new(
                TransportMode::Polling {
                    spin_budget_ns: budget,
                },
                clock.clone(),
                cost.clone(),
            );
            // `last_activity_ns` is 0 at boot; idle the channel, then
            // arrange the send so the delivery *lands* at last_activity +
            // idle_ns: charge_delivery first advances marshal_ns, so start
            // marshal_ns early.
            clock.advance(idle_ns - cost.marshal_ns);
            ch.send_request(vec![]).unwrap();
            assert_eq!(
                (ch.stats().interrupt_deliveries, ch.stats().polling_deliveries),
                (interrupts, pollings),
                "idle {idle_ns} ns vs budget {budget} ns"
            );
        }
    }

    #[test]
    fn ring_depth_lets_a_batch_share_one_doorbell() {
        let clock = SimClock::new();
        let cost = CostModel::default();
        let mut ch: Channel =
            Channel::new(TransportMode::Interrupts, clock.clone(), cost.clone());
        ch.set_ring_depth(4);
        assert_eq!(ch.ring_depth(), 4);
        // Four requests: one doorbell interrupt, three coalesced sends.
        for i in 0..4u8 {
            ch.send_request(vec![i]).unwrap();
        }
        assert_eq!(ch.send_request(vec![9]), Err(ChannelError::SlotBusy));
        assert_eq!(ch.stats().interrupt_deliveries, 1);
        assert_eq!(ch.stats().coalesced_deliveries, 3);
        assert_eq!(
            clock.now_ns(),
            4 * cost.marshal_ns + cost.intervm_interrupt_ns,
            "batch cost = one interrupt + per-entry marshalling"
        );
        // FIFO drain, then the ring accepts entries again.
        for i in 0..4u8 {
            assert_eq!(ch.take_request().unwrap(), vec![i]);
        }
        assert_eq!(ch.take_request(), Err(ChannelError::Empty));
        assert_eq!(ch.request_backlog(), 0);
        ch.send_request(vec![9]).unwrap();
        assert_eq!(ch.stats().interrupt_deliveries, 2);
    }

    #[test]
    fn ring_entries_share_the_one_shared_page() {
        let mut ch = channel(TransportMode::Interrupts);
        ch.set_ring_depth(4);
        let half = vec![0u8; PAGE_SIZE as usize / 2];
        ch.send_request(half.clone()).unwrap();
        ch.send_request(half.clone()).unwrap();
        // Two half-page entries fill the page: a third entry — even a tiny
        // one — must wait for the backend to drain.
        assert_eq!(ch.send_request(vec![1]), Err(ChannelError::SlotBusy));
        ch.take_request().unwrap();
        ch.send_request(vec![1]).unwrap();
    }

    #[test]
    fn ring_depth_is_clamped() {
        let mut ch = channel(TransportMode::Interrupts);
        ch.set_ring_depth(0);
        assert_eq!(ch.ring_depth(), 1);
        ch.set_ring_depth(1_000);
        assert_eq!(ch.ring_depth(), MAX_RING_DEPTH);
    }

    #[test]
    fn slot_discipline() {
        let mut ch = channel(TransportMode::Interrupts);
        ch.send_request(vec![1]).unwrap();
        assert_eq!(ch.send_request(vec![2]), Err(ChannelError::SlotBusy));
        assert_eq!(ch.take_response(), Err(ChannelError::Empty));
        ch.take_request().unwrap();
        assert_eq!(ch.take_request(), Err(ChannelError::Empty));
    }

    #[test]
    fn oversized_messages_rejected() {
        let mut ch = channel(TransportMode::Interrupts);
        let big = vec![0u8; PAGE_SIZE as usize + 1];
        assert_eq!(
            ch.send_request(big),
            Err(ChannelError::TooLarge {
                len: PAGE_SIZE as usize + 1
            })
        );
        // Exactly a page is fine.
        ch.send_request(vec![0u8; PAGE_SIZE as usize]).unwrap();
    }

    #[test]
    fn notifications_queue_independently() {
        let mut ch = channel(TransportMode::Interrupts);
        ch.send_request(b"rq".to_vec()).unwrap();
        ch.send_notification(b"key".to_vec()).unwrap();
        ch.send_notification(b"key2".to_vec()).unwrap();
        assert_eq!(ch.pending_notifications(), 2);
        assert_eq!(ch.take_notification().unwrap(), b"key");
        assert_eq!(ch.take_notification().unwrap(), b"key2");
        assert!(ch.take_notification().is_none());
        assert_eq!(ch.stats().notifications, 2);
        // The request slot is untouched.
        assert_eq!(ch.take_request().unwrap(), b"rq");
    }

    #[test]
    fn mode_display() {
        assert_eq!(TransportMode::Interrupts.to_string(), "interrupts");
        assert_eq!(
            TransportMode::polling_default().to_string(),
            "polling(200 µs spin)"
        );
    }

    /// A strict little codec for exercising the typed path: one tag byte
    /// plus a u32, trailing bytes rejected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ping(u32);

    impl WireCodec for Ping {
        fn encode_wire(&self) -> Vec<u8> {
            let mut out = vec![0x50];
            out.extend_from_slice(&self.0.to_le_bytes());
            out
        }

        fn decode_wire(bytes: &[u8]) -> Option<Self> {
            if bytes.len() != 5 || bytes[0] != 0x50 {
                return None;
            }
            Some(Ping(u32::from_le_bytes(bytes[1..5].try_into().ok()?)))
        }
    }

    #[test]
    fn typed_messages_roundtrip_through_one_boundary() {
        let mut ch: Channel<Ping, Ping, Ping> = Channel::new(
            TransportMode::Interrupts,
            SimClock::new(),
            CostModel::default(),
        );
        ch.send_request(Ping(7)).unwrap();
        assert_eq!(ch.take_request().unwrap(), Ping(7));
        ch.send_response(Ping(8)).unwrap();
        assert_eq!(ch.take_response().unwrap(), Ping(8));
        ch.send_notification(Ping(9)).unwrap();
        assert_eq!(ch.take_notification(), Some(Ping(9)));
        // Encoded sizes are what hit the wire counters.
        assert_eq!(ch.stats().request_bytes, 5);
        assert_eq!(ch.stats().response_bytes, 5);
        assert_eq!(ch.stats().notification_bytes, 5);
        assert_eq!(ch.stats().deliveries(), 3);
    }

    #[test]
    fn reset_clears_slots_and_queue_but_keeps_stats() {
        let mut ch = channel(TransportMode::Interrupts);
        ch.send_request(b"rq".to_vec()).unwrap();
        ch.send_response(b"rs".to_vec()).unwrap();
        ch.send_notification(b"n".to_vec()).unwrap();
        let stats_before = ch.stats();
        ch.reset();
        assert_eq!(ch.take_request(), Err(ChannelError::Empty));
        assert_eq!(ch.take_response(), Err(ChannelError::Empty));
        assert!(ch.take_notification().is_none());
        assert_eq!(ch.stats(), stats_before);
    }

    #[test]
    fn response_slot_fault_hooks() {
        let mut ch: Channel<Ping, Ping, Ping> = Channel::new(
            TransportMode::Interrupts,
            SimClock::new(),
            CostModel::default(),
        );
        // Nothing pending: every hook reports false.
        assert!(!ch.scramble_response_slot());
        assert!(!ch.truncate_response_slot());
        assert!(!ch.drop_response_slot());

        ch.send_response(Ping(7)).unwrap();
        assert!(ch.scramble_response_slot());
        assert_eq!(ch.take_response(), Err(ChannelError::Malformed));

        ch.send_response(Ping(8)).unwrap();
        assert!(ch.truncate_response_slot());
        assert_eq!(ch.take_response(), Err(ChannelError::Malformed));

        ch.send_response(Ping(9)).unwrap();
        assert!(ch.drop_response_slot());
        assert_eq!(ch.take_response(), Err(ChannelError::Empty));
    }

    #[test]
    fn malformed_entries_are_counted_per_channel() {
        let mut ch: Channel<Ping, Ping, Ping> = Channel::new(
            TransportMode::Interrupts,
            SimClock::new(),
            CostModel::default(),
        );
        assert_eq!(ch.stats().malformed_count, 0);
        ch.send_response(Ping(7)).unwrap();
        assert!(ch.scramble_response_slot());
        assert_eq!(ch.take_response(), Err(ChannelError::Malformed));
        assert_eq!(ch.stats().malformed_count, 1);
        // Request direction counts into the same per-channel stat.
        ch.send_request(Ping(8)).unwrap();
        assert!(ch.scramble_request_slot());
        assert_eq!(ch.take_request(), Err(ChannelError::Malformed));
        assert_eq!(ch.stats().malformed_count, 2);
        // Empty is not a detection: the counter must not move.
        assert_eq!(ch.take_response(), Err(ChannelError::Empty));
        assert_eq!(ch.stats().malformed_count, 2);
        // Truncated requests are also detected and counted.
        ch.send_request(Ping(9)).unwrap();
        assert!(ch.truncate_request_slot());
        assert_eq!(ch.take_request(), Err(ChannelError::Malformed));
        assert_eq!(ch.stats().malformed_count, 3);
    }

    #[test]
    fn malformed_slot_bytes_surface_as_malformed() {
        // A byte channel accepts anything; retyping the slot contents via a
        // second channel isn't possible, so simulate corruption by sending
        // a Ping whose codec round-trip we then violate: the identity
        // channel posts garbage and the typed take sees it.
        let mut ch: Channel<Ping, Ping, Ping> = Channel::new(
            TransportMode::Interrupts,
            SimClock::new(),
            CostModel::default(),
        );
        // Reach the slot through the public API only: a well-formed send
        // then a hostile mutation is not possible, so instead check the
        // decoder directly and the Empty/Malformed distinction.
        assert_eq!(ch.take_request(), Err(ChannelError::Empty));
        assert_eq!(Ping::decode_wire(&[0x50, 1, 0, 0, 0, 99]), None);
        assert_eq!(Ping::decode_wire(&[0x51, 1, 0, 0, 0]), None);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::clock::SimClock;
    use proptest::prelude::*;

    proptest! {
        /// Delivery accounting is conserved across arbitrary traffic: every
        /// send is counted exactly once, in exactly one delivery class.
        #[test]
        fn delivery_accounting_is_conserved(
            ops in proptest::collection::vec((0u8..3, 0u64..500_000), 1..60),
            mode_pick in 0u8..3,
        ) {
            let clock = SimClock::new();
            let mode = match mode_pick {
                0 => TransportMode::Interrupts,
                1 => TransportMode::polling_default(),
                _ => TransportMode::remote_default(),
            };
            let mut ch: Channel = Channel::new(mode, clock.clone(), CostModel::default());
            let mut sent = 0u64;
            for (kind, idle_ns) in ops {
                clock.advance(idle_ns);
                match kind {
                    0 => {
                        if ch.send_request(vec![1]).is_ok() {
                            sent += 1;
                            let _ = ch.take_request();
                        }
                    }
                    1 => {
                        if ch.send_response(vec![2]).is_ok() {
                            sent += 1;
                            let _ = ch.take_response();
                        }
                    }
                    _ => {
                        if ch.send_notification(vec![3]).is_ok() {
                            sent += 1;
                        }
                    }
                }
            }
            let stats = ch.stats();
            prop_assert_eq!(
                stats.requests + stats.responses + stats.notifications,
                sent
            );
            prop_assert_eq!(stats.deliveries(), sent);
            prop_assert_eq!(
                stats.interrupt_deliveries + stats.polling_deliveries + stats.remote_deliveries,
                sent
            );
            // Mode purity: interrupts never poll; remote never interrupts.
            match mode {
                TransportMode::Interrupts => {
                    prop_assert_eq!(stats.polling_deliveries, 0);
                    prop_assert_eq!(stats.remote_deliveries, 0);
                }
                TransportMode::Polling { .. } => {
                    prop_assert_eq!(stats.remote_deliveries, 0);
                }
                TransportMode::Remote { .. } => {
                    prop_assert_eq!(stats.interrupt_deliveries, 0);
                    prop_assert_eq!(stats.polling_deliveries, 0);
                }
            }
        }

        /// With a multi-entry ring, every successful send is still counted
        /// exactly once: either it rang a doorbell (one transport class) or
        /// it was coalesced behind one. Drains happen in bursts, so rings
        /// genuinely fill up.
        #[test]
        fn ring_accounting_is_conserved(
            ops in proptest::collection::vec((0u8..3, 0u64..400_000), 1..80),
            depth in 1usize..=16,
            mode_pick in 0u8..3,
        ) {
            let clock = SimClock::new();
            let mode = match mode_pick {
                0 => TransportMode::Interrupts,
                1 => TransportMode::polling_default(),
                _ => TransportMode::remote_default(),
            };
            let mut ch: Channel = Channel::new(mode, clock.clone(), CostModel::default());
            ch.set_ring_depth(depth);
            let mut sent = 0u64;
            for (kind, idle_ns) in ops {
                clock.advance(idle_ns);
                match kind {
                    0 => {
                        if ch.send_request(vec![1]).is_ok() {
                            sent += 1;
                        } else {
                            while ch.take_request().is_ok() {}
                        }
                    }
                    1 => {
                        if ch.send_response(vec![2]).is_ok() {
                            sent += 1;
                        } else {
                            while ch.take_response().is_ok() {}
                        }
                    }
                    _ => {
                        if ch.send_notification(vec![3]).is_ok() {
                            sent += 1;
                        }
                    }
                }
            }
            let stats = ch.stats();
            prop_assert_eq!(
                stats.requests + stats.responses + stats.notifications,
                sent
            );
            prop_assert_eq!(
                stats.interrupt_deliveries
                    + stats.polling_deliveries
                    + stats.remote_deliveries
                    + stats.coalesced_deliveries,
                sent
            );
            // A single-entry ring never coalesces.
            if depth == 1 {
                prop_assert_eq!(stats.coalesced_deliveries, 0);
            }
        }
    }
}
