//! Instrumented atomics: the shim between the lock-free kernels and
//! `std::sync::atomic`.
//!
//! Every atomic in `hypervisor::{aring, shards}` is one of these
//! wrappers, and every operation on one names a static
//! [`Access`] drawn from the module's declared [`SiteSpec`] table. The
//! ordering the operation *executes* is `access.ordering` — the same
//! constant the `paradice-race` MO/RC passes lint and the
//! `paradice-verify` interleaving checker interprets. Downgrade an
//! ordering in the site table and all three see it at once: the code
//! runs weaker, the static pass flags it, and the checker finds the
//! interleaving it breaks. There is no second copy to drift.
//!
//! Cost: the wrappers are `repr(transparent)` with no extra fields
//! (the ring's one-page layout assert still holds), the ordering
//! conversion is a constant match that folds away, and the
//! observed-access registry only exists under `debug_assertions` — in
//! release builds this module is a zero-cost re-export of the std
//! atomics.

use std::sync::atomic::{self as std_atomic, Ordering};

pub use paradice_analyzer::race::{Access, AccessKind, Edge, MemOrder, Role, SiteSpec};

/// Converts the model ordering into the std ordering it stands for.
#[inline(always)]
pub const fn to_std(order: MemOrder) -> Ordering {
    match order {
        MemOrder::Relaxed => Ordering::Relaxed,
        MemOrder::Acquire => Ordering::Acquire,
        MemOrder::Release => Ordering::Release,
        MemOrder::AcqRel => Ordering::AcqRel,
        MemOrder::SeqCst => Ordering::SeqCst,
    }
}

/// The strongest failure ordering a compare-exchange at `order` may
/// carry: a failed exchange is a load, so it cannot release.
#[inline(always)]
pub const fn failure_of(order: MemOrder) -> Ordering {
    match order {
        MemOrder::Relaxed | MemOrder::Release => Ordering::Relaxed,
        MemOrder::Acquire | MemOrder::AcqRel => Ordering::Acquire,
        MemOrder::SeqCst => Ordering::SeqCst,
    }
}

/// Every atomic site declared by the wall-clock substrate, aggregated
/// for the lint (`paradice-lint`), the interleaving checker
/// (`paradice-verify`), and the coverage report (`experiments --race`).
pub fn all_sites() -> Vec<&'static SiteSpec> {
    let mut sites = Vec::new();
    sites.extend_from_slice(&crate::aring::ATOMIC_SITES);
    sites.extend_from_slice(&crate::shards::ATOMIC_SITES);
    sites
}

/// Total declared accesses across [`all_sites`].
pub fn total_accesses() -> usize {
    all_sites().iter().map(|s| s.accesses.len()).sum()
}

#[cfg(debug_assertions)]
mod registry {
    use super::Access;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    static OBSERVED: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());

    pub(super) fn record(access: &'static Access) {
        OBSERVED
            .lock()
            .expect("atomic access registry poisoned")
            .insert(access as *const Access as usize);
    }

    pub(super) fn was_observed(access: &'static Access) -> bool {
        OBSERVED
            .lock()
            .expect("atomic access registry poisoned")
            .contains(&(access as *const Access as usize))
    }

    pub(super) fn observed_count() -> usize {
        OBSERVED
            .lock()
            .expect("atomic access registry poisoned")
            .len()
    }
}

#[inline(always)]
fn record(access: &'static Access) {
    #[cfg(debug_assertions)]
    registry::record(access);
    #[cfg(not(debug_assertions))]
    let _ = access;
}

/// Whether `access` has executed at least once in this process
/// (debug builds only; always `false` in release).
pub fn was_observed(access: &'static Access) -> bool {
    #[cfg(debug_assertions)]
    return registry::was_observed(access);
    #[cfg(not(debug_assertions))]
    {
        let _ = access;
        false
    }
}

/// Distinct accesses executed so far (debug builds only; `0` in release).
pub fn observed_accesses() -> usize {
    #[cfg(debug_assertions)]
    return registry::observed_count();
    #[cfg(not(debug_assertions))]
    0
}

/// An instrumented `std::sync::atomic::AtomicU32`.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct AtomicU32(std_atomic::AtomicU32);

impl AtomicU32 {
    /// A new word holding `value`.
    pub const fn new(value: u32) -> Self {
        AtomicU32(std_atomic::AtomicU32::new(value))
    }

    /// Loads with `access.ordering`.
    #[inline(always)]
    pub fn load(&self, access: &'static Access) -> u32 {
        record(access);
        self.0.load(to_std(access.ordering))
    }

    /// Stores with `access.ordering`.
    #[inline(always)]
    pub fn store(&self, value: u32, access: &'static Access) {
        record(access);
        self.0.store(value, to_std(access.ordering));
    }

    /// Wrapping add, returning the previous value, with `access.ordering`.
    #[inline(always)]
    pub fn fetch_add(&self, value: u32, access: &'static Access) -> u32 {
        record(access);
        self.0.fetch_add(value, to_std(access.ordering))
    }

    /// Compare-exchange with `access.ordering` on success and the
    /// strongest failure ordering that ordering permits
    /// ([`failure_of`]). Returns `Ok(previous)` on success, `Err` with
    /// the observed value on mismatch.
    ///
    /// # Errors
    ///
    /// The value actually held when it differed from `current`.
    #[inline(always)]
    pub fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        access: &'static Access,
    ) -> Result<u32, u32> {
        record(access);
        self.0.compare_exchange(
            current,
            new,
            to_std(access.ordering),
            failure_of(access.ordering),
        )
    }
}

/// An instrumented `std::sync::atomic::AtomicUsize`.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct AtomicUsize(std_atomic::AtomicUsize);

impl AtomicUsize {
    /// A new word holding `value`.
    pub const fn new(value: usize) -> Self {
        AtomicUsize(std_atomic::AtomicUsize::new(value))
    }

    /// Loads with `access.ordering`.
    #[inline(always)]
    pub fn load(&self, access: &'static Access) -> usize {
        record(access);
        self.0.load(to_std(access.ordering))
    }

    /// Wrapping add, returning the previous value, with `access.ordering`.
    #[inline(always)]
    pub fn fetch_add(&self, value: usize, access: &'static Access) -> usize {
        record(access);
        self.0.fetch_add(value, to_std(access.ordering))
    }

    /// Wrapping subtract, returning the previous value, with `access.ordering`.
    #[inline(always)]
    pub fn fetch_sub(&self, value: usize, access: &'static Access) -> usize {
        record(access);
        self.0.fetch_sub(value, to_std(access.ordering))
    }
}

/// An instrumented `std::sync::atomic::AtomicBool`.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct AtomicBool(std_atomic::AtomicBool);

impl AtomicBool {
    /// A new flag holding `value`.
    pub const fn new(value: bool) -> Self {
        AtomicBool(std_atomic::AtomicBool::new(value))
    }

    /// Loads with `access.ordering`.
    #[inline(always)]
    pub fn load(&self, access: &'static Access) -> bool {
        record(access);
        self.0.load(to_std(access.ordering))
    }

    /// Stores with `access.ordering`.
    #[inline(always)]
    pub fn store(&self, value: bool, access: &'static Access) {
        record(access);
        self.0.store(value, to_std(access.ordering));
    }

    /// Swaps, returning the previous value, with `access.ordering`.
    #[inline(always)]
    pub fn swap(&self, value: bool, access: &'static Access) -> bool {
        record(access);
        self.0.swap(value, to_std(access.ordering))
    }
}

/// An instrumented `std::sync::atomic::AtomicPtr<T>`.
#[repr(transparent)]
#[derive(Debug)]
pub struct AtomicPtr<T>(std_atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    /// A new cell holding `ptr`.
    pub const fn new(ptr: *mut T) -> Self {
        AtomicPtr(std_atomic::AtomicPtr::new(ptr))
    }

    /// Loads with `access.ordering`.
    #[inline(always)]
    pub fn load(&self, access: &'static Access) -> *mut T {
        record(access);
        self.0.load(to_std(access.ordering))
    }

    /// Swaps, returning the previous pointer, with `access.ordering`.
    #[inline(always)]
    pub fn swap(&self, ptr: *mut T, access: &'static Access) -> *mut T {
        record(access);
        self.0.swap(ptr, to_std(access.ordering))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_analyzer::race::check_model;

    #[test]
    fn wrappers_add_no_bytes() {
        assert_eq!(
            std::mem::size_of::<AtomicU32>(),
            std::mem::size_of::<std_atomic::AtomicU32>()
        );
        assert_eq!(
            std::mem::size_of::<AtomicBool>(),
            std::mem::size_of::<std_atomic::AtomicBool>()
        );
        assert_eq!(
            std::mem::size_of::<AtomicPtr<u8>>(),
            std::mem::size_of::<std_atomic::AtomicPtr<u8>>()
        );
    }

    /// The acceptance gate in miniature: the shipped site tables must be
    /// MO/RC-clean. `paradice-lint` runs the same check as a pass.
    #[test]
    fn shipped_site_tables_lint_clean() {
        let diags = check_model(&all_sites());
        assert!(diags.is_empty(), "shipped atomics flagged: {diags:#?}");
    }

    #[test]
    fn site_tables_cover_both_modules() {
        let sites = all_sites();
        assert!(sites.iter().any(|s| s.module == "hypervisor::aring"));
        assert!(sites.iter().any(|s| s.module == "hypervisor::shards"));
        assert!(total_accesses() >= sites.len());
    }

    #[test]
    fn compare_exchange_reports_the_observed_value() {
        static PROBE_CAS: Access =
            Access::new("probe-cas", AccessKind::Rmw, MemOrder::AcqRel, Edge::Reservation);
        static PROBE_CAS_CHECK: Access =
            Access::new("probe-cas-check", AccessKind::Load, MemOrder::Acquire, Edge::Observe);
        let word = AtomicU32::new(5);
        assert_eq!(word.compare_exchange(5, 6, &PROBE_CAS), Ok(5));
        assert_eq!(word.compare_exchange(5, 7, &PROBE_CAS), Err(6));
        assert_eq!(word.load(&PROBE_CAS_CHECK), 6);
    }

    #[test]
    fn executed_orderings_come_from_the_model() {
        static PROBE: Access =
            Access::new("probe", AccessKind::Store, MemOrder::SeqCst, Edge::Gate);
        let word = AtomicU32::new(0);
        word.store(7, &PROBE);
        static PROBE_LOAD: Access =
            Access::new("probe-load", AccessKind::Load, MemOrder::SeqCst, Edge::Gate);
        assert_eq!(word.load(&PROBE_LOAD), 7);
        if cfg!(debug_assertions) {
            assert!(was_observed(&PROBE));
            assert!(was_observed(&PROBE_LOAD));
            assert!(observed_accesses() >= 2);
        }
    }
}
