//! The virtual clock and the simulation cost model.
//!
//! Every timed result in the paper's evaluation (§6) is reproduced here on a
//! *virtual* nanosecond clock: simulated actions charge documented costs
//! instead of being measured on wall time, so every figure regenerates
//! bit-identically on any machine. The anchors come straight from the paper:
//!
//! * a no-op file operation forwarded with inter-VM interrupts costs ~35 µs,
//!   "most of which comes from two inter-VM interrupts" (§6.1.1) — hence
//!   [`CostModel::intervm_interrupt_ns`] = 17.5 µs each;
//! * the same no-op in polling mode costs ~2 µs (§6.1.1) — hence
//!   [`CostModel::polling_side_ns`] = 1 µs per direction;
//! * native mouse read latency is ~39 µs, device assignment ~55 µs (§6.1.5),
//!   fixing the baseline syscall and assignment-interrupt costs.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

/// Converts microseconds to the clock's nanosecond unit.
pub const fn us(x: u64) -> u64 {
    x * 1_000
}

/// Converts milliseconds to the clock's nanosecond unit.
pub const fn ms(x: u64) -> u64 {
    x * 1_000_000
}

/// What every timed component asks of its time source.
///
/// Two implementations exist: [`SimClock`] (the deterministic virtual
/// clock — every cost-model charge *steers* it, making whole runs
/// bit-reproducible) and [`WallClock`] (real time over
/// [`std::time::Instant`] — charges are no-ops and `now_ns` reports what
/// the hardware actually took). [`ClockSource`] is the concrete handle
/// components store so the choice is made once, at machine construction.
pub trait Clock {
    /// Current time in nanoseconds (virtual or wall, by implementation).
    fn now_ns(&self) -> u64;

    /// Charges `delta_ns` of modeled cost. Steers a virtual clock; a
    /// wall clock ignores it (real time cannot be pushed forward).
    fn advance(&self, delta_ns: u64);

    /// Advances to `target_ns` if that is in the future; returns `true`
    /// if time moved. Always `false` on a wall clock.
    fn advance_to(&self, target_ns: u64) -> bool;
}

/// A shared, deterministic virtual clock (nanosecond resolution).
///
/// Cloning yields another handle to the *same* clock. The simulation is
/// single-threaded by design (determinism is what makes the experiment
/// harness reproducible), so the handle is intentionally not `Send`.
#[derive(Clone, Default)]
pub struct SimClock {
    now_ns: Rc<Cell<u64>>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.get()
    }

    /// Advances the clock by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now_ns.set(self.now_ns.get() + delta_ns);
    }

    /// Advances the clock to `target_ns` if that is in the future; returns
    /// `true` if time moved.
    pub fn advance_to(&self, target_ns: u64) -> bool {
        if target_ns > self.now_ns.get() {
            self.now_ns.set(target_ns);
            true
        } else {
            false
        }
    }

    /// Runs `f` and returns its result together with the virtual time it
    /// consumed.
    pub fn timed<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.now_ns();
        let result = f();
        (result, self.now_ns() - start)
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimClock({} ns)", self.now_ns())
    }
}

impl Clock for SimClock {
    fn now_ns(&self) -> u64 {
        SimClock::now_ns(self)
    }

    fn advance(&self, delta_ns: u64) {
        SimClock::advance(self, delta_ns);
    }

    fn advance_to(&self, target_ns: u64) -> bool {
        SimClock::advance_to(self, target_ns)
    }
}

/// Real time over [`std::time::Instant`], nanosecond resolution.
///
/// Clones share the epoch (an `Instant` is `Copy`), so every handle in a
/// machine reports the same timeline. Unlike [`SimClock`] this handle is
/// `Send + Sync`: the wall-clock engine hands clones to its frontend and
/// backend threads. Cost-model charges are no-ops — on wall time the
/// hardware charges itself.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose zero is "now".
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Real nanoseconds since this clock's epoch.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// No-op: wall time cannot be steered by modeled costs.
    pub fn advance(&self, _delta_ns: u64) {}

    /// No-op: always `false` — wall time cannot be pushed to a target.
    pub fn advance_to(&self, _target_ns: u64) -> bool {
        false
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        WallClock::now_ns(self)
    }

    fn advance(&self, delta_ns: u64) {
        WallClock::advance(self, delta_ns);
    }

    fn advance_to(&self, target_ns: u64) -> bool {
        WallClock::advance_to(self, target_ns)
    }
}

/// The concrete time source a component stores.
///
/// An enum rather than a `Box<dyn Clock>` so the hot `now_ns`/`advance`
/// calls stay monomorphic (one branch, no vtable) and the handle stays
/// `Clone` without allocation. Constructors take `impl Into<ClockSource>`,
/// so existing call sites that pass a bare [`SimClock`] keep compiling.
#[derive(Clone, Debug)]
pub enum ClockSource {
    /// The deterministic virtual clock — the correctness oracle.
    Virtual(SimClock),
    /// Real time — measurement mode; modeled charges are no-ops.
    Wall(WallClock),
}

impl ClockSource {
    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self {
            ClockSource::Virtual(c) => c.now_ns(),
            ClockSource::Wall(c) => c.now_ns(),
        }
    }

    /// Charges `delta_ns` of modeled cost (no-op on wall time).
    pub fn advance(&self, delta_ns: u64) {
        match self {
            ClockSource::Virtual(c) => c.advance(delta_ns),
            ClockSource::Wall(c) => c.advance(delta_ns),
        }
    }

    /// Advances to `target_ns` if in the future; `false` on wall time.
    pub fn advance_to(&self, target_ns: u64) -> bool {
        match self {
            ClockSource::Virtual(c) => c.advance_to(target_ns),
            ClockSource::Wall(c) => c.advance_to(target_ns),
        }
    }

    /// Runs `f` and returns its result together with the time it consumed
    /// on this source.
    pub fn timed<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.now_ns();
        let result = f();
        (result, self.now_ns().saturating_sub(start))
    }

    /// `true` when this source reports real time.
    pub fn is_wall(&self) -> bool {
        matches!(self, ClockSource::Wall(_))
    }

    /// The underlying virtual clock, when this source is virtual.
    pub fn as_sim(&self) -> Option<&SimClock> {
        match self {
            ClockSource::Virtual(c) => Some(c),
            ClockSource::Wall(_) => None,
        }
    }
}

impl Default for ClockSource {
    fn default() -> Self {
        ClockSource::Virtual(SimClock::new())
    }
}

impl From<SimClock> for ClockSource {
    fn from(clock: SimClock) -> Self {
        ClockSource::Virtual(clock)
    }
}

impl From<WallClock> for ClockSource {
    fn from(clock: WallClock) -> Self {
        ClockSource::Wall(clock)
    }
}

impl Clock for ClockSource {
    fn now_ns(&self) -> u64 {
        ClockSource::now_ns(self)
    }

    fn advance(&self, delta_ns: u64) {
        ClockSource::advance(self, delta_ns);
    }

    fn advance_to(&self, target_ns: u64) -> bool {
        ClockSource::advance_to(self, target_ns)
    }
}

/// All timing constants of the simulation, with their paper anchors.
///
/// The defaults are calibrated so that the microbenchmarks of §6.1.1/§6.1.5
/// land on the paper's measurements; see `paradice-bench`'s calibration
/// module for the derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// One inter-VM interrupt (virtual IPI + wakeup), ns. Two of these
    /// dominate the 35 µs no-op forward (§6.1.1).
    pub intervm_interrupt_ns: u64,
    /// One direction of shared-page polling handoff, ns. The polling no-op
    /// round trip is ~2 µs (§6.1.1).
    pub polling_side_ns: u64,
    /// Guest system-call entry/exit, ns (native baseline component).
    pub syscall_ns: u64,
    /// One hypercall into the hypervisor, ns.
    pub hypercall_ns: u64,
    /// Software two-stage address translation of one page (guest PT walk
    /// plus EPT walk), ns (§5.2).
    pub walk_page_ns: u64,
    /// Copying one full 4-KiB page between VMs, ns.
    pub copy_page_ns: u64,
    /// Fixing one page mapping during hypervisor-served `mmap` (EPT edit +
    /// guest PT leaf fix), ns.
    pub map_page_ns: u64,
    /// Installing or removing one IOMMU mapping, ns.
    pub iommu_map_ns: u64,
    /// Re-mapping one page during a protected-region switch, ns (§4.2).
    pub region_switch_page_ns: u64,
    /// Marshalling one file operation into/out of the shared page, ns.
    pub marshal_ns: u64,
    /// Device interrupt delivery to a directly-assigned VM, ns — the
    /// native-to-assignment latency delta of §6.1.5 (~55 µs − 39 µs).
    pub assigned_irq_ns: u64,
    /// CVD backend dispatch (dequeue + thread marking + handler call), ns.
    pub backend_dispatch_ns: u64,
    /// Waking a sleeping process (signal/poll-return → scheduled → in the
    /// read syscall), ns. Calibrated so the native mouse path lands on
    /// ~39 µs (§6.1.5).
    pub process_wakeup_ns: u64,
    /// Extra scheduling latency when the woken process lives in a VM —
    /// the device-assignment mouse delta (~55 µs − ~39 µs, §6.1.5).
    pub vm_sched_penalty_ns: u64,
}

impl CostModel {
    /// Cost of forwarding one request+response round trip in the given
    /// transport mode, excluding marshalling.
    pub fn round_trip_ns(&self, interrupts: bool) -> u64 {
        if interrupts {
            2 * self.intervm_interrupt_ns
        } else {
            2 * self.polling_side_ns
        }
    }

    /// Cost of a cross-VM copy of `bytes` bytes touching `pages` pages.
    pub fn copy_cost_ns(&self, bytes: u64, pages: u64) -> u64 {
        let page_fraction =
            (self.copy_page_ns * bytes).div_ceil(paradice_mem::PAGE_SIZE);
        self.hypercall_ns + pages * self.walk_page_ns + page_fraction
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            intervm_interrupt_ns: 17_350,
            polling_side_ns: 850,
            syscall_ns: 250,
            hypercall_ns: 300,
            walk_page_ns: 120,
            copy_page_ns: 400,
            map_page_ns: 350,
            iommu_map_ns: 250,
            region_switch_page_ns: 300,
            marshal_ns: 150,
            assigned_irq_ns: 16_000,
            backend_dispatch_ns: 400,
            process_wakeup_ns: 38_750,
            vm_sched_penalty_ns: 16_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(us(5));
        assert_eq!(clock.now_ns(), 5_000);
        assert!(clock.advance_to(ms(1)));
        assert_eq!(clock.now_ns(), 1_000_000);
        assert!(!clock.advance_to(10));
        assert_eq!(clock.now_ns(), 1_000_000);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_ns(), 42);
    }

    #[test]
    fn timed_measures_virtual_time() {
        let clock = SimClock::new();
        let (value, elapsed) = clock.timed(|| {
            clock.advance(us(7));
            "done"
        });
        assert_eq!(value, "done");
        assert_eq!(elapsed, 7_000);
    }

    #[test]
    fn noop_round_trip_matches_paper_anchors() {
        let cost = CostModel::default();
        // §6.1.1: ~35 µs with interrupts, ~2 µs with polling. Allow the
        // small non-interrupt components to account for the remainder.
        let interrupt_rt = cost.round_trip_ns(true) + 2 * cost.marshal_ns;
        assert!(
            (34_000..36_000).contains(&interrupt_rt),
            "interrupt round trip {interrupt_rt} ns"
        );
        let polling_rt = cost.round_trip_ns(false) + 2 * cost.marshal_ns;
        assert!(
            (1_500..2_500).contains(&polling_rt),
            "polling round trip {polling_rt} ns"
        );
    }

    #[test]
    fn copy_cost_scales_with_pages_and_bytes() {
        let cost = CostModel::default();
        let small = cost.copy_cost_ns(64, 1);
        let large = cost.copy_cost_ns(8192, 2);
        assert!(large > small);
        // One full page costs roughly hypercall + walk + copy_page.
        let one_page = cost.copy_cost_ns(4096, 1);
        assert_eq!(
            one_page,
            cost.hypercall_ns + cost.walk_page_ns + cost.copy_page_ns
        );
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(2), 2_000_000);
    }

    #[test]
    fn wall_clock_moves_forward_and_ignores_charges() {
        let clock = WallClock::new();
        let t0 = clock.now_ns();
        clock.advance(ms(1_000));
        assert!(!clock.advance_to(u64::MAX - 1));
        // Charges are no-ops: only real elapsed time shows (a few µs at
        // most here, never the charged second).
        let t1 = clock.now_ns();
        assert!(t1 >= t0);
        assert!(t1 - t0 < ms(1_000), "charge leaked into wall time");
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.now_ns() > t1, "wall clock must move on its own");
    }

    #[test]
    fn wall_clock_clones_share_the_epoch() {
        let a = WallClock::new();
        let b = a;
        std::thread::sleep(std::time::Duration::from_millis(1));
        let (ta, tb) = (a.now_ns(), b.now_ns());
        // Same epoch: the two reads are a few µs apart, not an epoch apart.
        assert!(ta.abs_diff(tb) < ms(100));
    }

    #[test]
    fn clock_source_dispatches_to_both_implementations() {
        let sim: ClockSource = SimClock::new().into();
        assert!(!sim.is_wall());
        assert!(sim.as_sim().is_some());
        sim.advance(us(5));
        assert_eq!(sim.now_ns(), 5_000);
        assert!(sim.advance_to(us(9)));
        let (value, elapsed) = sim.timed(|| {
            sim.advance(us(1));
            7
        });
        assert_eq!((value, elapsed), (7, 1_000));

        let wall: ClockSource = WallClock::new().into();
        assert!(wall.is_wall());
        assert!(wall.as_sim().is_none());
        wall.advance(ms(1_000));
        assert!(!wall.advance_to(u64::MAX - 1));
        assert!(wall.now_ns() < ms(1_000), "charge leaked into wall time");
    }

    #[test]
    fn trait_object_dispatch_matches_inherent_calls() {
        let sim = SimClock::new();
        let dynamic: &dyn Clock = &sim;
        dynamic.advance(42);
        assert_eq!(dynamic.now_ns(), 42);
        assert_eq!(sim.now_ns(), 42);
    }
}
