//! The virtual clock and the simulation cost model.
//!
//! Every timed result in the paper's evaluation (§6) is reproduced here on a
//! *virtual* nanosecond clock: simulated actions charge documented costs
//! instead of being measured on wall time, so every figure regenerates
//! bit-identically on any machine. The anchors come straight from the paper:
//!
//! * a no-op file operation forwarded with inter-VM interrupts costs ~35 µs,
//!   "most of which comes from two inter-VM interrupts" (§6.1.1) — hence
//!   [`CostModel::intervm_interrupt_ns`] = 17.5 µs each;
//! * the same no-op in polling mode costs ~2 µs (§6.1.1) — hence
//!   [`CostModel::polling_side_ns`] = 1 µs per direction;
//! * native mouse read latency is ~39 µs, device assignment ~55 µs (§6.1.5),
//!   fixing the baseline syscall and assignment-interrupt costs.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Converts microseconds to the clock's nanosecond unit.
pub const fn us(x: u64) -> u64 {
    x * 1_000
}

/// Converts milliseconds to the clock's nanosecond unit.
pub const fn ms(x: u64) -> u64 {
    x * 1_000_000
}

/// A shared, deterministic virtual clock (nanosecond resolution).
///
/// Cloning yields another handle to the *same* clock. The simulation is
/// single-threaded by design (determinism is what makes the experiment
/// harness reproducible), so the handle is intentionally not `Send`.
#[derive(Clone, Default)]
pub struct SimClock {
    now_ns: Rc<Cell<u64>>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.get()
    }

    /// Advances the clock by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now_ns.set(self.now_ns.get() + delta_ns);
    }

    /// Advances the clock to `target_ns` if that is in the future; returns
    /// `true` if time moved.
    pub fn advance_to(&self, target_ns: u64) -> bool {
        if target_ns > self.now_ns.get() {
            self.now_ns.set(target_ns);
            true
        } else {
            false
        }
    }

    /// Runs `f` and returns its result together with the virtual time it
    /// consumed.
    pub fn timed<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.now_ns();
        let result = f();
        (result, self.now_ns() - start)
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimClock({} ns)", self.now_ns())
    }
}

/// All timing constants of the simulation, with their paper anchors.
///
/// The defaults are calibrated so that the microbenchmarks of §6.1.1/§6.1.5
/// land on the paper's measurements; see `paradice-bench`'s calibration
/// module for the derivations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// One inter-VM interrupt (virtual IPI + wakeup), ns. Two of these
    /// dominate the 35 µs no-op forward (§6.1.1).
    pub intervm_interrupt_ns: u64,
    /// One direction of shared-page polling handoff, ns. The polling no-op
    /// round trip is ~2 µs (§6.1.1).
    pub polling_side_ns: u64,
    /// Guest system-call entry/exit, ns (native baseline component).
    pub syscall_ns: u64,
    /// One hypercall into the hypervisor, ns.
    pub hypercall_ns: u64,
    /// Software two-stage address translation of one page (guest PT walk
    /// plus EPT walk), ns (§5.2).
    pub walk_page_ns: u64,
    /// Copying one full 4-KiB page between VMs, ns.
    pub copy_page_ns: u64,
    /// Fixing one page mapping during hypervisor-served `mmap` (EPT edit +
    /// guest PT leaf fix), ns.
    pub map_page_ns: u64,
    /// Installing or removing one IOMMU mapping, ns.
    pub iommu_map_ns: u64,
    /// Re-mapping one page during a protected-region switch, ns (§4.2).
    pub region_switch_page_ns: u64,
    /// Marshalling one file operation into/out of the shared page, ns.
    pub marshal_ns: u64,
    /// Device interrupt delivery to a directly-assigned VM, ns — the
    /// native-to-assignment latency delta of §6.1.5 (~55 µs − 39 µs).
    pub assigned_irq_ns: u64,
    /// CVD backend dispatch (dequeue + thread marking + handler call), ns.
    pub backend_dispatch_ns: u64,
    /// Waking a sleeping process (signal/poll-return → scheduled → in the
    /// read syscall), ns. Calibrated so the native mouse path lands on
    /// ~39 µs (§6.1.5).
    pub process_wakeup_ns: u64,
    /// Extra scheduling latency when the woken process lives in a VM —
    /// the device-assignment mouse delta (~55 µs − ~39 µs, §6.1.5).
    pub vm_sched_penalty_ns: u64,
}

impl CostModel {
    /// Cost of forwarding one request+response round trip in the given
    /// transport mode, excluding marshalling.
    pub fn round_trip_ns(&self, interrupts: bool) -> u64 {
        if interrupts {
            2 * self.intervm_interrupt_ns
        } else {
            2 * self.polling_side_ns
        }
    }

    /// Cost of a cross-VM copy of `bytes` bytes touching `pages` pages.
    pub fn copy_cost_ns(&self, bytes: u64, pages: u64) -> u64 {
        let page_fraction =
            (self.copy_page_ns * bytes).div_ceil(paradice_mem::PAGE_SIZE);
        self.hypercall_ns + pages * self.walk_page_ns + page_fraction
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            intervm_interrupt_ns: 17_350,
            polling_side_ns: 850,
            syscall_ns: 250,
            hypercall_ns: 300,
            walk_page_ns: 120,
            copy_page_ns: 400,
            map_page_ns: 350,
            iommu_map_ns: 250,
            region_switch_page_ns: 300,
            marshal_ns: 150,
            assigned_irq_ns: 16_000,
            backend_dispatch_ns: 400,
            process_wakeup_ns: 38_750,
            vm_sched_penalty_ns: 16_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(us(5));
        assert_eq!(clock.now_ns(), 5_000);
        assert!(clock.advance_to(ms(1)));
        assert_eq!(clock.now_ns(), 1_000_000);
        assert!(!clock.advance_to(10));
        assert_eq!(clock.now_ns(), 1_000_000);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_ns(), 42);
    }

    #[test]
    fn timed_measures_virtual_time() {
        let clock = SimClock::new();
        let (value, elapsed) = clock.timed(|| {
            clock.advance(us(7));
            "done"
        });
        assert_eq!(value, "done");
        assert_eq!(elapsed, 7_000);
    }

    #[test]
    fn noop_round_trip_matches_paper_anchors() {
        let cost = CostModel::default();
        // §6.1.1: ~35 µs with interrupts, ~2 µs with polling. Allow the
        // small non-interrupt components to account for the remainder.
        let interrupt_rt = cost.round_trip_ns(true) + 2 * cost.marshal_ns;
        assert!(
            (34_000..36_000).contains(&interrupt_rt),
            "interrupt round trip {interrupt_rt} ns"
        );
        let polling_rt = cost.round_trip_ns(false) + 2 * cost.marshal_ns;
        assert!(
            (1_500..2_500).contains(&polling_rt),
            "polling round trip {polling_rt} ns"
        );
    }

    #[test]
    fn copy_cost_scales_with_pages_and_bytes() {
        let cost = CostModel::default();
        let small = cost.copy_cost_ns(64, 1);
        let large = cost.copy_cost_ns(8192, 2);
        assert!(large > small);
        // One full page costs roughly hypercall + walk + copy_page.
        let one_page = cost.copy_cost_ns(4096, 1);
        assert_eq!(
            one_page,
            cost.hypercall_ns + cost.walk_page_ns + cost.copy_page_ns
        );
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(2), 2_000_000);
    }
}
