//! The execution engine abstraction.
//!
//! A Paradice machine can execute in two substrates:
//!
//! * **Virtual** — the deterministic step function: one thread, the
//!   [`SimClock`](crate::clock::SimClock), every action charged against
//!   the cost model. This is the correctness oracle: runs are
//!   bit-reproducible, so every proof, lint, and figure is anchored here.
//! * **Wall** — real OS threads for frontend and backend, the shared ring
//!   page driven with atomics ([`AtomicRing`](crate::aring::AtomicRing)),
//!   grants validated through the lock-free-read
//!   [`ShardedGrantTable`](crate::shards::ShardedGrantTable), and the
//!   [`WallClock`](crate::clock::WallClock) reporting what the hardware
//!   actually took.
//!
//! The [`Engine`] trait is the seam between the two: a byte-level
//! submit/complete interface over encoded wire frames, deliberately
//! codec-agnostic so this crate does not depend on the CVD wire types.
//! `paradice-cvd`'s `exec` module provides both implementations and the
//! differential harness that proves them op-equivalent.

use std::fmt;

use crate::clock::ClockSource;

/// Which execution substrate an engine (or a whole machine) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Deterministic virtual time; the correctness oracle.
    #[default]
    Virtual,
    /// Real threads on the atomic ring; the measurement mode.
    Wall,
}

impl EngineKind {
    /// Stable lowercase name (report keys, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Virtual => "virtual",
            EngineKind::Wall => "wall",
        }
    }

    /// The clock source a machine of this kind should be built with.
    pub fn clock(self) -> ClockSource {
        match self {
            EngineKind::Virtual => ClockSource::Virtual(crate::clock::SimClock::new()),
            EngineKind::Wall => ClockSource::Wall(crate::clock::WallClock::new()),
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Engine-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request ring is full; retry after draining completions.
    Backpressure,
    /// The frame exceeds one ring slot.
    Oversize {
        /// Offending length.
        len: usize,
    },
    /// The engine's backend is gone (thread panicked or shut down).
    Dead(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Backpressure => f.write_str("engine request ring full"),
            EngineError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds an engine ring slot")
            }
            EngineError::Dead(why) => write!(f, "engine backend dead: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// One execution substrate, scheduling included.
///
/// The contract is pipelined and byte-level: [`submit`](Engine::submit)
/// hands the engine one encoded request frame, [`complete`](Engine::complete)
/// yields encoded response frames **in submission order** (both engines
/// run a FIFO ring; order is part of the differential gate). How the
/// frames travel — a cost-charged step function or two threads and a
/// doorbell — is the implementation's business, which is precisely what
/// lets `Hypervisor`, `Channel`, and `Machine` stop hard-coding the
/// virtual substrate.
pub trait Engine {
    /// Which substrate this is.
    fn kind(&self) -> EngineKind;

    /// The time source measurements against this engine should read.
    fn clock(&self) -> ClockSource;

    /// Submits one encoded request frame.
    ///
    /// # Errors
    ///
    /// [`EngineError::Backpressure`] when the ring is full (drain
    /// completions and retry), [`EngineError::Oversize`] for frames that
    /// cannot fit a slot, [`EngineError::Dead`] when the backend is gone.
    fn submit(&mut self, frame: &[u8]) -> Result<(), EngineError>;

    /// Takes the next completed response frame, if one is ready.
    ///
    /// # Errors
    ///
    /// [`EngineError::Dead`] when the backend is gone.
    fn complete(&mut self) -> Result<Option<Vec<u8>>, EngineError>;

    /// Blocks (or steps the substrate) until a response frame is ready.
    ///
    /// # Errors
    ///
    /// [`EngineError::Dead`] when the backend is gone with frames pending.
    fn complete_blocking(&mut self) -> Result<Vec<u8>, EngineError>;

    /// Stops the substrate; subsequent submissions fail with
    /// [`EngineError::Dead`]. Idempotent.
    fn shutdown(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_clocks_line_up() {
        assert_eq!(EngineKind::Virtual.name(), "virtual");
        assert_eq!(EngineKind::Wall.name(), "wall");
        assert_eq!(EngineKind::default(), EngineKind::Virtual);
        assert!(!EngineKind::Virtual.clock().is_wall());
        assert!(EngineKind::Wall.clock().is_wall());
        assert_eq!(format!("{}", EngineKind::Wall), "wall");
    }

    #[test]
    fn errors_render() {
        assert_eq!(
            EngineError::Oversize { len: 9999 }.to_string(),
            "frame of 9999 bytes exceeds an engine ring slot"
        );
        assert!(EngineError::Dead("panic".into()).to_string().contains("panic"));
    }
}
