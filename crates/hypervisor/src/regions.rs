//! Protected memory regions for device data isolation.
//!
//! "We enforce device data isolation in the hypervisor by allocating
//! non-overlapping protected memory regions on the driver VM memory and on
//! the device memory for each guest VM's data and assigning appropriate
//! access permissions to these regions" (paper §4.2, Figure 1(d)). The
//! permission set is:
//!
//! * driver-VM CPU code (including the driver): **no read** — enforced by
//!   stripping EPT permissions (and, since x86 cannot express write-only,
//!   stripping write too, §5.3(iv));
//! * each guest VM: access to **its own** region only, through
//!   hypervisor-executed memory operations;
//! * the device: access to **one region at a time** — IOMMU gating for
//!   system memory, memory-controller aperture bounds for device memory.
//!
//! [`RegionManager`] is the hypervisor's bookkeeping for this: which pages
//! and device-memory ranges belong to which guest's region, with the
//! non-overlap invariant enforced at registration time.

use std::collections::BTreeMap;
use std::fmt;

use paradice_mem::{GuestPhysAddr, RegionId};

use crate::vm::VmId;

/// A half-open range `[lo, hi)` of device-memory offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevMemRange {
    /// Inclusive lower bound (byte offset into device memory).
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
}

impl DevMemRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` — a configuration bug.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "inverted device-memory range");
        DevMemRange { lo, hi }
    }

    /// Whether `offset` lies in the range.
    pub fn contains(&self, offset: u64) -> bool {
        (self.lo..self.hi).contains(&offset)
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &DevMemRange) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// Errors from region registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// The device-memory range overlaps another region's.
    DevMemOverlap {
        /// The region already owning the overlapping range.
        existing: RegionId,
    },
    /// The system-memory page already belongs to a region.
    SysPageTaken {
        /// The page in question (driver-VM guest-physical).
        gpa: GuestPhysAddr,
        /// Its owner.
        existing: RegionId,
    },
    /// Unknown region.
    UnknownRegion {
        /// The offending id.
        region: RegionId,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::DevMemOverlap { existing } => {
                write!(f, "device-memory range overlaps {existing}")
            }
            RegionError::SysPageTaken { gpa, existing } => {
                write!(f, "system page {gpa} already protected for {existing}")
            }
            RegionError::UnknownRegion { region } => write!(f, "unknown {region}"),
        }
    }
}

impl std::error::Error for RegionError {}

#[derive(Debug)]
struct Region {
    guest: VmId,
    dev_mem: Option<DevMemRange>,
    sys_pages: Vec<GuestPhysAddr>,
}

/// The hypervisor's protected-region bookkeeping for one device.
#[derive(Debug, Default)]
pub struct RegionManager {
    regions: BTreeMap<u32, Region>,
    /// Reverse map: protected driver-VM page → owning region.
    page_owner: BTreeMap<u64, RegionId>,
    next_id: u32,
}

impl RegionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        RegionManager::default()
    }

    /// Creates a region for `guest`, optionally claiming a device-memory
    /// range (e.g. half of the GPU's VRAM, §6: "we split the 1GB GPU memory
    /// between two memory regions").
    ///
    /// # Errors
    ///
    /// [`RegionError::DevMemOverlap`] if the range collides with another
    /// region — regions must be non-overlapping by construction.
    pub fn create_region(
        &mut self,
        guest: VmId,
        dev_mem: Option<DevMemRange>,
    ) -> Result<RegionId, RegionError> {
        if let Some(range) = &dev_mem {
            for (&id, region) in &self.regions {
                if let Some(existing) = &region.dev_mem {
                    if existing.overlaps(range) {
                        return Err(RegionError::DevMemOverlap {
                            existing: RegionId(id),
                        });
                    }
                }
            }
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        self.regions.insert(
            id.0,
            Region {
                guest,
                dev_mem,
                sys_pages: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Adds a driver-VM system-memory page to a region's protected pool
    /// (§5.3(i): "we allocate a pool of pages for each memory region").
    ///
    /// # Errors
    ///
    /// Fails if the region is unknown or the page already belongs to one.
    pub fn add_sys_page(
        &mut self,
        region: RegionId,
        gpa: GuestPhysAddr,
    ) -> Result<(), RegionError> {
        if let Some(&existing) = self.page_owner.get(&gpa.page_number()) {
            return Err(RegionError::SysPageTaken { gpa, existing });
        }
        let entry = self
            .regions
            .get_mut(&region.0)
            .ok_or(RegionError::UnknownRegion { region })?;
        entry.sys_pages.push(gpa.page_base());
        self.page_owner.insert(gpa.page_number(), region);
        Ok(())
    }

    /// The region owning a protected driver-VM page, if any.
    pub fn owner_of_page(&self, gpa: GuestPhysAddr) -> Option<RegionId> {
        self.page_owner.get(&gpa.page_number()).copied()
    }

    /// Removes a page from its region's pool (on IOMMU unmap; the hypervisor
    /// zeroes the page first, §5.3(i)). Returns the owning region, if any.
    pub fn remove_sys_page(&mut self, gpa: GuestPhysAddr) -> Option<RegionId> {
        let region = self.page_owner.remove(&gpa.page_number())?;
        if let Some(entry) = self.regions.get_mut(&region.0) {
            entry.sys_pages.retain(|p| p.page_number() != gpa.page_number());
        }
        Some(region)
    }

    /// The guest a region belongs to.
    ///
    /// # Errors
    ///
    /// [`RegionError::UnknownRegion`].
    pub fn guest_of(&self, region: RegionId) -> Result<VmId, RegionError> {
        self.regions
            .get(&region.0)
            .map(|r| r.guest)
            .ok_or(RegionError::UnknownRegion { region })
    }

    /// The device-memory aperture of a region.
    ///
    /// # Errors
    ///
    /// [`RegionError::UnknownRegion`].
    pub fn dev_mem_of(&self, region: RegionId) -> Result<Option<DevMemRange>, RegionError> {
        self.regions
            .get(&region.0)
            .map(|r| r.dev_mem)
            .ok_or(RegionError::UnknownRegion { region })
    }

    /// The protected system pages of a region.
    ///
    /// # Errors
    ///
    /// [`RegionError::UnknownRegion`].
    pub fn sys_pages_of(&self, region: RegionId) -> Result<&[GuestPhysAddr], RegionError> {
        self.regions
            .get(&region.0)
            .map(|r| r.sys_pages.as_slice())
            .ok_or(RegionError::UnknownRegion { region })
    }

    /// The region belonging to `guest`, if one exists.
    pub fn region_of_guest(&self, guest: VmId) -> Option<RegionId> {
        self.regions
            .iter()
            .find(|(_, r)| r.guest == guest)
            .map(|(&id, _)| RegionId(id))
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions exist (data isolation disabled or unused).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterates over region ids.
    pub fn iter_ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.regions.keys().map(|&id| RegionId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_mem::PAGE_SIZE;

    #[test]
    fn non_overlapping_dev_mem_enforced() {
        let mut mgr = RegionManager::new();
        let r1 = mgr
            .create_region(VmId(1), Some(DevMemRange::new(0, 512 << 20)))
            .unwrap();
        // Overlap with r1 rejected.
        let err = mgr
            .create_region(VmId(2), Some(DevMemRange::new(256 << 20, 768 << 20)))
            .unwrap_err();
        assert_eq!(err, RegionError::DevMemOverlap { existing: r1 });
        // Disjoint range accepted.
        let r2 = mgr
            .create_region(VmId(2), Some(DevMemRange::new(512 << 20, 1 << 30)))
            .unwrap();
        assert_ne!(r1, r2);
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn sys_pages_belong_to_one_region() {
        let mut mgr = RegionManager::new();
        let r1 = mgr.create_region(VmId(1), None).unwrap();
        let r2 = mgr.create_region(VmId(2), None).unwrap();
        let page = GuestPhysAddr::new(5 * PAGE_SIZE);
        mgr.add_sys_page(r1, page).unwrap();
        assert_eq!(
            mgr.add_sys_page(r2, page),
            Err(RegionError::SysPageTaken {
                gpa: page,
                existing: r1
            })
        );
        assert_eq!(mgr.owner_of_page(page.add(123)), Some(r1));
        assert_eq!(mgr.owner_of_page(GuestPhysAddr::new(0)), None);
    }

    #[test]
    fn region_lookups() {
        let mut mgr = RegionManager::new();
        let range = DevMemRange::new(0, 1024);
        let r = mgr.create_region(VmId(9), Some(range)).unwrap();
        assert_eq!(mgr.guest_of(r).unwrap(), VmId(9));
        assert_eq!(mgr.dev_mem_of(r).unwrap(), Some(range));
        assert_eq!(mgr.region_of_guest(VmId(9)), Some(r));
        assert_eq!(mgr.region_of_guest(VmId(10)), None);
        let bogus = RegionId(99);
        assert!(mgr.guest_of(bogus).is_err());
    }

    #[test]
    fn dev_mem_range_geometry() {
        let a = DevMemRange::new(0, 100);
        let b = DevMemRange::new(100, 200);
        assert!(!a.overlaps(&b));
        assert!(a.contains(99));
        assert!(!a.contains(100));
        assert_eq!(b.len(), 100);
        assert!(!a.is_empty());
        assert!(DevMemRange::new(5, 5).is_empty());
    }

    #[test]
    fn iter_ids_sorted() {
        let mut mgr = RegionManager::new();
        let r1 = mgr.create_region(VmId(1), None).unwrap();
        let r2 = mgr.create_region(VmId(2), None).unwrap();
        let ids: Vec<RegionId> = mgr.iter_ids().collect();
        assert_eq!(ids, vec![r1, r2]);
    }
}
