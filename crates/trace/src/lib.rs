//! paradice-trace — the span/event model threaded through the forwarding path.
//!
//! Every guest file operation forwarded by the CVD frontend opens a **span**:
//! a trace id stamped into the wire request and carried through the backend
//! dispatch and the hypervisor's memory-operation hypercalls, so that one
//! operation's full lifecycle — declared grants, wire bytes, channel stats
//! deltas, every grant-checked memory operation, and the final result — can
//! be reconstructed from a flat event log.
//!
//! The crate is dependency-free by design: the analyzer's replay lint
//! (`paradice-lint --replay`) consumes traces without pulling in the driver
//! or device crates, and the hypervisor/cvd crates record into it without a
//! cycle. Addresses, lengths, and access bits are plain integers here;
//! producers translate their typed values at the recording boundary.
//!
//! Traces serialize to JSONL (one event object per line) via
//! [`Tracer::to_jsonl`] / [`TraceEvent::to_json`] and parse back with
//! [`parse_jsonl`]. No serde: the JSON writer mirrors the hand-rolled
//! `Diagnostic::to_json` idiom used by the lint suite, and the reader is a
//! small recursive-descent parser sufficient for the schema (objects,
//! arrays, strings, integers, booleans, null).
//!
//! **Zero-cost disabled path:** a [`Tracer`] constructed with
//! [`Tracer::disabled`] holds no buffer; [`Tracer::begin_span`] returns
//! [`SpanId::NONE`] and every `record` call is a branch on an `Option` that
//! is `None` — no allocation, no formatting. Tracing never advances the
//! simulated clock, so enabling it cannot perturb virtual-time measurements
//! either.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Identifier of one traced file operation's span.
///
/// `SpanId::NONE` (zero) means "untraced": it is what a disabled tracer
/// hands out, what untraced wire requests carry, and what recording
/// functions silently ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: events attributed to it are dropped.
    pub const NONE: SpanId = SpanId(0);

    /// Returns `true` for any real (non-null) span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// The file operation a span covers (mirrors the wire opcode set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOpKind {
    /// `open(2)` on the virtual device file.
    Open,
    /// `close(2)` / release.
    Release,
    /// `read(2)`.
    Read,
    /// `write(2)`.
    Write,
    /// `ioctl(2)`.
    Ioctl,
    /// `mmap(2)`.
    Mmap,
    /// `munmap(2)`.
    Munmap,
    /// Page fault on a device mapping.
    Fault,
    /// `poll(2)`.
    Poll,
    /// `fcntl(F_SETFL, FASYNC)` signal registration.
    Fasync,
}

impl TraceOpKind {
    /// Stable lowercase name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOpKind::Open => "open",
            TraceOpKind::Release => "release",
            TraceOpKind::Read => "read",
            TraceOpKind::Write => "write",
            TraceOpKind::Ioctl => "ioctl",
            TraceOpKind::Mmap => "mmap",
            TraceOpKind::Munmap => "munmap",
            TraceOpKind::Fault => "fault",
            TraceOpKind::Poll => "poll",
            TraceOpKind::Fasync => "fasync",
        }
    }

    /// Inverse of [`TraceOpKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "open" => TraceOpKind::Open,
            "release" => TraceOpKind::Release,
            "read" => TraceOpKind::Read,
            "write" => TraceOpKind::Write,
            "ioctl" => TraceOpKind::Ioctl,
            "mmap" => TraceOpKind::Mmap,
            "munmap" => TraceOpKind::Munmap,
            "fault" => TraceOpKind::Fault,
            "poll" => TraceOpKind::Poll,
            "fasync" => TraceOpKind::Fasync,
            _ => return None,
        })
    }
}

/// A declared grant, as recorded in the trace (untyped mirror of the
/// hypervisor's `MemOpGrant`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceGrant {
    /// Driver may read `[addr, addr+len)` of process memory.
    CopyFromGuest {
        /// Start of the readable range.
        addr: u64,
        /// Byte length.
        len: u64,
    },
    /// Driver may write `[addr, addr+len)` of process memory.
    CopyToGuest {
        /// Start of the writable range.
        addr: u64,
        /// Byte length.
        len: u64,
    },
    /// Driver may map pages into `[va, va + pages·4K)`.
    MapPages {
        /// Page-aligned window start.
        va: u64,
        /// Number of pages.
        pages: u64,
        /// Maximum access bits (READ=1, WRITE=2, EXEC=4).
        access: u8,
    },
    /// Driver may unmap pages in `[va, va + pages·4K)`.
    UnmapPages {
        /// Page-aligned window start.
        va: u64,
        /// Number of pages.
        pages: u64,
    },
}

/// The kind of a hypervisor-validated memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceMemOpKind {
    /// `copy_from_user` — driver reads process memory.
    CopyFromGuest,
    /// `copy_to_user` — driver writes process memory.
    CopyToGuest,
    /// `vm_insert_pfn` — driver maps one page.
    MapPage,
    /// `zap_vma_ptes` — driver unmaps one page.
    UnmapPage,
}

impl TraceMemOpKind {
    /// Stable lowercase name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceMemOpKind::CopyFromGuest => "copy_from_guest",
            TraceMemOpKind::CopyToGuest => "copy_to_guest",
            TraceMemOpKind::MapPage => "map_page",
            TraceMemOpKind::UnmapPage => "unmap_page",
        }
    }

    /// Inverse of [`TraceMemOpKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "copy_from_guest" => TraceMemOpKind::CopyFromGuest,
            "copy_to_guest" => TraceMemOpKind::CopyToGuest,
            "map_page" => TraceMemOpKind::MapPage,
            "unmap_page" => TraceMemOpKind::UnmapPage,
            _ => return None,
        })
    }
}

/// Channel activity attributed to one span: wire bytes and delivery counts,
/// measured as stats deltas around the request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WireDelta {
    /// Encoded request bytes sent frontend → backend.
    pub bytes_out: u64,
    /// Encoded response bytes received backend → frontend.
    pub bytes_in: u64,
    /// Channel deliveries (requests + responses + notifications) charged.
    pub deliveries: u64,
}

/// One event in a trace. Events sharing a `span` describe one file
/// operation's lifecycle; a well-formed span is `OpStart`, optionally
/// `Grants`, zero or more `MemOp`s, then `OpEnd`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The frontend is about to forward a file operation.
    OpStart {
        /// Span id stamped into the wire request.
        span: SpanId,
        /// Simulated time at forward, in nanoseconds.
        t_ns: u64,
        /// Originating guest VM id.
        guest: u64,
        /// Guest task issuing the operation.
        task: u64,
        /// Backend file handle (0 for `open`).
        handle: u64,
        /// Device file path, e.g. `/dev/dri/card0`.
        device: String,
        /// Which file operation.
        op: TraceOpKind,
        /// Ioctl command number (ioctl spans only).
        cmd: Option<u32>,
        /// Primary user pointer / offset argument, if the op has one.
        addr: Option<u64>,
        /// Byte length argument, if the op has one.
        len: Option<u64>,
    },
    /// The grants the frontend declared for the span's operation.
    Grants {
        /// Owning span.
        span: SpanId,
        /// Declared-legitimate memory operations.
        grants: Vec<TraceGrant>,
    },
    /// The frontend's grant-declaration cache resolved this span's grant
    /// reference: `hit` means an earlier declaration was reused (no declare
    /// hypercall), `!hit` means a cold declare populated the cache. Always
    /// accompanied by a [`TraceEvent::Grants`] event carrying the (cached or
    /// fresh) declared set, so the replay lint's used ⊆ declared ⊆ envelope
    /// check is oblivious to caching.
    GrantCache {
        /// Owning span.
        span: SpanId,
        /// `true` when a previously declared reference was reused.
        hit: bool,
    },
    /// The hypervisor validated (or blocked) one driver memory operation.
    MemOp {
        /// Owning span (`SpanId::NONE` events are never recorded).
        span: SpanId,
        /// Simulated time of the hypercall.
        t_ns: u64,
        /// Operation kind.
        kind: TraceMemOpKind,
        /// Target process virtual address.
        addr: u64,
        /// Byte length (`PAGE_SIZE` for map/unmap).
        len: u64,
        /// `true` if the grant check admitted the operation.
        ok: bool,
    },
    /// The frontend received the operation's response.
    OpEnd {
        /// Owning span.
        span: SpanId,
        /// Simulated time at completion.
        t_ns: u64,
        /// `true` when the operation succeeded.
        ok: bool,
        /// Return value on success; negated errno magnitude on failure.
        value: i64,
        /// Virtual time the whole round trip took.
        duration_ns: u64,
        /// Channel bytes/deliveries attributed to this span.
        wire: WireDelta,
    },
    /// A fault was injected into the driver VM (fault campaigns, §7.1).
    FaultInjected {
        /// The span being dispatched when the fault fired
        /// ([`SpanId::NONE`] when injected outside any traced operation).
        span: SpanId,
        /// Simulated time of the injection.
        t_ns: u64,
        /// Stable fault-kind name (`"driver-panic"`, `"hang"`, …).
        kind: String,
        /// The operation being dispatched when the fault fired.
        op: String,
    },
    /// An adversary (or fault hook) mutated this span's wire bytes in
    /// flight. A span carrying this marker must not complete with a
    /// successful `OpEnd`: the replay lint flags that as RP006, because a
    /// `WireResponse::Value` served for a tampered request means the
    /// backend acted on bytes the frontend never sent.
    WireTampered {
        /// The span whose shared-page bytes were mutated.
        span: SpanId,
        /// Simulated time of the mutation.
        t_ns: u64,
        /// Which direction was tampered: `"request"` or `"response"`.
        direction: String,
    },
    /// The hypervisor declared a driver VM failed: its grants were revoked
    /// and its hypercalls are refused until recovery.
    DriverVmFailed {
        /// The span whose operation exposed the failure, if any.
        span: SpanId,
        /// Simulated time of the declaration.
        t_ns: u64,
        /// The failed driver VM's id.
        vm: u64,
        /// Outstanding grant declarations revoked at failure time.
        revoked_grants: u64,
    },
    /// The driver VM was rebooted and its hypervisor state rebuilt.
    DriverVmRecovered {
        /// Usually [`SpanId::NONE`]: recovery runs outside guest operations.
        span: SpanId,
        /// Simulated time recovery completed.
        t_ns: u64,
        /// The recovered driver VM's id.
        vm: u64,
    },
}

impl TraceEvent {
    /// The span this event belongs to.
    pub fn span(&self) -> SpanId {
        match self {
            TraceEvent::OpStart { span, .. }
            | TraceEvent::Grants { span, .. }
            | TraceEvent::GrantCache { span, .. }
            | TraceEvent::MemOp { span, .. }
            | TraceEvent::OpEnd { span, .. }
            | TraceEvent::FaultInjected { span, .. }
            | TraceEvent::WireTampered { span, .. }
            | TraceEvent::DriverVmFailed { span, .. }
            | TraceEvent::DriverVmRecovered { span, .. } => *span,
        }
    }

    /// Driver-VM lifecycle events are machine-global, not per-operation:
    /// they are meaningful (and recorded) even with a [`SpanId::NONE`] span.
    pub fn is_lifecycle(&self) -> bool {
        matches!(
            self,
            TraceEvent::FaultInjected { .. }
                | TraceEvent::WireTampered { .. }
                | TraceEvent::DriverVmFailed { .. }
                | TraceEvent::DriverVmRecovered { .. }
        )
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            TraceEvent::OpStart {
                span,
                t_ns,
                guest,
                task,
                handle,
                device,
                op,
                cmd,
                addr,
                len,
            } => {
                out.push_str(&format!(
                    "{{\"type\":\"op_start\",\"span\":{},\"t_ns\":{},\"guest\":{},\
                     \"task\":{},\"handle\":{},\"device\":\"{}\",\"op\":\"{}\"",
                    span.0,
                    t_ns,
                    guest,
                    task,
                    handle,
                    json_escape(device),
                    op.as_str(),
                ));
                if let Some(cmd) = cmd {
                    out.push_str(&format!(",\"cmd\":{cmd}"));
                }
                if let Some(addr) = addr {
                    out.push_str(&format!(",\"addr\":{addr}"));
                }
                if let Some(len) = len {
                    out.push_str(&format!(",\"len\":{len}"));
                }
                out.push('}');
            }
            TraceEvent::Grants { span, grants } => {
                out.push_str(&format!("{{\"type\":\"grants\",\"span\":{},\"grants\":[", span.0));
                for (i, g) in grants.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match g {
                        TraceGrant::CopyFromGuest { addr, len } => out.push_str(&format!(
                            "{{\"kind\":\"copy_from_guest\",\"addr\":{addr},\"len\":{len}}}"
                        )),
                        TraceGrant::CopyToGuest { addr, len } => out.push_str(&format!(
                            "{{\"kind\":\"copy_to_guest\",\"addr\":{addr},\"len\":{len}}}"
                        )),
                        TraceGrant::MapPages { va, pages, access } => out.push_str(&format!(
                            "{{\"kind\":\"map_pages\",\"va\":{va},\"pages\":{pages},\
                             \"access\":{access}}}"
                        )),
                        TraceGrant::UnmapPages { va, pages } => out.push_str(&format!(
                            "{{\"kind\":\"unmap_pages\",\"va\":{va},\"pages\":{pages}}}"
                        )),
                    }
                }
                out.push_str("]}");
            }
            TraceEvent::GrantCache { span, hit } => {
                out.push_str(&format!(
                    "{{\"type\":\"grant_cache\",\"span\":{},\"hit\":{}}}",
                    span.0, hit,
                ));
            }
            TraceEvent::MemOp {
                span,
                t_ns,
                kind,
                addr,
                len,
                ok,
            } => {
                out.push_str(&format!(
                    "{{\"type\":\"mem_op\",\"span\":{},\"t_ns\":{},\"kind\":\"{}\",\
                     \"addr\":{},\"len\":{},\"ok\":{}}}",
                    span.0,
                    t_ns,
                    kind.as_str(),
                    addr,
                    len,
                    ok,
                ));
            }
            TraceEvent::OpEnd {
                span,
                t_ns,
                ok,
                value,
                duration_ns,
                wire,
            } => {
                out.push_str(&format!(
                    "{{\"type\":\"op_end\",\"span\":{},\"t_ns\":{},\"ok\":{},\
                     \"value\":{},\"duration_ns\":{},\"bytes_out\":{},\"bytes_in\":{},\
                     \"deliveries\":{}}}",
                    span.0,
                    t_ns,
                    ok,
                    value,
                    duration_ns,
                    wire.bytes_out,
                    wire.bytes_in,
                    wire.deliveries,
                ));
            }
            TraceEvent::FaultInjected {
                span,
                t_ns,
                kind,
                op,
            } => {
                out.push_str(&format!(
                    "{{\"type\":\"fault_injected\",\"span\":{},\"t_ns\":{},\
                     \"kind\":\"{}\",\"op\":\"{}\"}}",
                    span.0,
                    t_ns,
                    json_escape(kind),
                    json_escape(op),
                ));
            }
            TraceEvent::WireTampered { span, t_ns, direction } => {
                out.push_str(&format!(
                    "{{\"type\":\"wire_tampered\",\"span\":{},\"t_ns\":{},\
                     \"direction\":\"{}\"}}",
                    span.0,
                    t_ns,
                    json_escape(direction),
                ));
            }
            TraceEvent::DriverVmFailed {
                span,
                t_ns,
                vm,
                revoked_grants,
            } => {
                out.push_str(&format!(
                    "{{\"type\":\"driver_vm_failed\",\"span\":{},\"t_ns\":{},\
                     \"vm\":{},\"revoked_grants\":{}}}",
                    span.0, t_ns, vm, revoked_grants,
                ));
            }
            TraceEvent::DriverVmRecovered { span, t_ns, vm } => {
                out.push_str(&format!(
                    "{{\"type\":\"driver_vm_recovered\",\"span\":{},\"t_ns\":{},\"vm\":{}}}",
                    span.0, t_ns, vm,
                ));
            }
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct TraceLog {
    next_span: u64,
    events: Vec<TraceEvent>,
}

/// Handle to a trace buffer, shared by every component on the forwarding
/// path (frontends, backend, hypervisor). Cloning is cheap; all clones feed
/// the same buffer.
///
/// # Example
///
/// ```
/// use paradice_trace::{TraceEvent, TraceMemOpKind, Tracer};
///
/// let tracer = Tracer::enabled();
/// let span = tracer.begin_span();
/// tracer.mem_op(span, 10, TraceMemOpKind::CopyFromGuest, 0x1000, 8, true);
/// assert_eq!(tracer.events().len(), 1);
///
/// let off = Tracer::disabled();
/// assert!(!off.begin_span().is_some());
/// off.mem_op(off.begin_span(), 10, TraceMemOpKind::CopyFromGuest, 0, 8, true);
/// assert!(off.events().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceLog>>>,
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A live tracer with an empty buffer.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceLog::default()))),
        }
    }

    /// `true` when events will actually be recorded. Producers use this to
    /// skip building event payloads on the disabled path.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocates the next span id, or [`SpanId::NONE`] when disabled.
    pub fn begin_span(&self) -> SpanId {
        match &self.inner {
            Some(log) => {
                let mut log = log.borrow_mut();
                log.next_span += 1;
                SpanId(log.next_span)
            }
            None => SpanId::NONE,
        }
    }

    /// Appends `event` to the buffer. Dropped when the tracer is disabled
    /// or the event belongs to [`SpanId::NONE`] — except driver-VM
    /// lifecycle events ([`TraceEvent::is_lifecycle`]), which are recorded
    /// regardless of span: faults and recoveries are machine-global.
    pub fn record(&self, event: TraceEvent) {
        if let Some(log) = &self.inner {
            if event.span().is_some() || event.is_lifecycle() {
                log.borrow_mut().events.push(event);
            }
        }
    }

    /// Convenience for the hypervisor's hypercall paths: records a
    /// [`TraceEvent::MemOp`] without the caller building the variant.
    pub fn mem_op(
        &self,
        span: SpanId,
        t_ns: u64,
        kind: TraceMemOpKind,
        addr: u64,
        len: u64,
        ok: bool,
    ) {
        if self.inner.is_some() && span.is_some() {
            self.record(TraceEvent::MemOp {
                span,
                t_ns,
                kind,
                addr,
                len,
                ok,
            });
        }
    }

    /// Snapshot of all recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(log) => log.borrow().events.clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(log) => log.borrow().events.len(),
            None => 0,
        }
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the whole buffer as JSONL (one event per line, trailing
    /// newline included when nonempty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(log) = &self.inner {
            for event in &log.borrow().events {
                out.push_str(&event.to_json());
                out.push('\n');
            }
        }
        out
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a JSONL trace produced by [`Tracer::to_jsonl`]. Blank lines are
/// skipped; any malformed line is an error.
///
/// # Errors
///
/// [`TraceParseError`] naming the first offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|message| TraceParseError {
            line: idx + 1,
            message,
        })?;
        events.push(event_from_value(&value).map_err(|message| TraceParseError {
            line: idx + 1,
            message,
        })?);
    }
    Ok(events)
}

fn event_from_value(value: &json::Value) -> Result<TraceEvent, String> {
    let obj = value.as_object().ok_or("event is not a JSON object")?;
    let ty = get_str(obj, "type")?;
    let span = SpanId(get_u64(obj, "span")?);
    match ty {
        "op_start" => Ok(TraceEvent::OpStart {
            span,
            t_ns: get_u64(obj, "t_ns")?,
            guest: get_u64(obj, "guest")?,
            task: get_u64(obj, "task")?,
            handle: get_u64(obj, "handle")?,
            device: get_str(obj, "device")?.to_owned(),
            op: TraceOpKind::parse(get_str(obj, "op")?)
                .ok_or_else(|| format!("unknown op kind {:?}", get_str(obj, "op")))?,
            cmd: opt_u64(obj, "cmd")?.map(|v| v as u32),
            addr: opt_u64(obj, "addr")?,
            len: opt_u64(obj, "len")?,
        }),
        "grants" => {
            let arr = obj
                .get("grants")
                .and_then(json::Value::as_array)
                .ok_or("grants event without grants array")?;
            let mut grants = Vec::with_capacity(arr.len());
            for g in arr {
                let g = g.as_object().ok_or("grant entry is not an object")?;
                grants.push(match get_str(g, "kind")? {
                    "copy_from_guest" => TraceGrant::CopyFromGuest {
                        addr: get_u64(g, "addr")?,
                        len: get_u64(g, "len")?,
                    },
                    "copy_to_guest" => TraceGrant::CopyToGuest {
                        addr: get_u64(g, "addr")?,
                        len: get_u64(g, "len")?,
                    },
                    "map_pages" => TraceGrant::MapPages {
                        va: get_u64(g, "va")?,
                        pages: get_u64(g, "pages")?,
                        access: get_u64(g, "access")? as u8,
                    },
                    "unmap_pages" => TraceGrant::UnmapPages {
                        va: get_u64(g, "va")?,
                        pages: get_u64(g, "pages")?,
                    },
                    other => return Err(format!("unknown grant kind {other:?}")),
                });
            }
            Ok(TraceEvent::Grants { span, grants })
        }
        "grant_cache" => Ok(TraceEvent::GrantCache {
            span,
            hit: get_bool(obj, "hit")?,
        }),
        "mem_op" => Ok(TraceEvent::MemOp {
            span,
            t_ns: get_u64(obj, "t_ns")?,
            kind: TraceMemOpKind::parse(get_str(obj, "kind")?)
                .ok_or_else(|| format!("unknown mem-op kind {:?}", get_str(obj, "kind")))?,
            addr: get_u64(obj, "addr")?,
            len: get_u64(obj, "len")?,
            ok: get_bool(obj, "ok")?,
        }),
        "op_end" => Ok(TraceEvent::OpEnd {
            span,
            t_ns: get_u64(obj, "t_ns")?,
            ok: get_bool(obj, "ok")?,
            value: get_i64(obj, "value")?,
            duration_ns: get_u64(obj, "duration_ns")?,
            wire: WireDelta {
                bytes_out: get_u64(obj, "bytes_out")?,
                bytes_in: get_u64(obj, "bytes_in")?,
                deliveries: get_u64(obj, "deliveries")?,
            },
        }),
        "fault_injected" => Ok(TraceEvent::FaultInjected {
            span,
            t_ns: get_u64(obj, "t_ns")?,
            kind: get_str(obj, "kind")?.to_owned(),
            op: get_str(obj, "op")?.to_owned(),
        }),
        "wire_tampered" => Ok(TraceEvent::WireTampered {
            span,
            t_ns: get_u64(obj, "t_ns")?,
            direction: get_str(obj, "direction")?.to_owned(),
        }),
        "driver_vm_failed" => Ok(TraceEvent::DriverVmFailed {
            span,
            t_ns: get_u64(obj, "t_ns")?,
            vm: get_u64(obj, "vm")?,
            revoked_grants: get_u64(obj, "revoked_grants")?,
        }),
        "driver_vm_recovered" => Ok(TraceEvent::DriverVmRecovered {
            span,
            t_ns: get_u64(obj, "t_ns")?,
            vm: get_u64(obj, "vm")?,
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

fn get_str<'a>(obj: &'a BTreeMap<String, json::Value>, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(json::Value::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn get_u64(obj: &BTreeMap<String, json::Value>, key: &str) -> Result<u64, String> {
    opt_u64(obj, key)?.ok_or_else(|| format!("missing field {key:?}"))
}

fn opt_u64(obj: &BTreeMap<String, json::Value>, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_i128()
            .and_then(|n| u64::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not a u64")),
    }
}

fn get_i64(obj: &BTreeMap<String, json::Value>, key: &str) -> Result<i64, String> {
    obj.get(key)
        .and_then(json::Value::as_i128)
        .and_then(|n| i64::try_from(n).ok())
        .ok_or_else(|| format!("missing or non-i64 field {key:?}"))
}

fn get_bool(obj: &BTreeMap<String, json::Value>, key: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(json::Value::as_bool)
        .ok_or_else(|| format!("missing or non-bool field {key:?}"))
}

/// Minimal JSON reader sufficient for the trace schema. Integers are kept
/// as `i128` so the full `u64` address range survives the round trip
/// (floats are rejected — the schema never emits them).
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Value {
        Null,
        Bool(bool),
        Int(i128),
        Str(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(map) => Some(map),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_i128(&self) -> Option<i128> {
            match self {
                Value::Int(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".to_owned()),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
            Some(c) => Err(format!("unexpected byte {c:#04x} at offset {pos}")),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at offset {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!("float at offset {start} (schema is integer-only)"));
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        debug_assert_eq!(bytes[*pos], b'"');
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            *pos += 4;
                        }
                        _ => return Err("bad escape".to_owned()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar at a time.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // consume '['
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // consume '{'
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b'"') {
                return Err(format!("expected string key at offset {pos}"));
            }
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at offset {pos}"));
            }
            *pos += 1;
            let value = parse_value(bytes, pos)?;
            map.insert(key, value);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::OpStart {
                span: SpanId(1),
                t_ns: 100,
                guest: 1,
                task: 7,
                handle: 3,
                device: "/dev/dri/card0".to_owned(),
                op: TraceOpKind::Ioctl,
                cmd: Some(0xC010_6444),
                addr: Some(0x7fff_0000),
                len: Some(24),
            },
            TraceEvent::Grants {
                span: SpanId(1),
                grants: vec![
                    TraceGrant::CopyFromGuest {
                        addr: 0x7fff_0000,
                        len: 24,
                    },
                    TraceGrant::MapPages {
                        va: 0x1000,
                        pages: 2,
                        access: 3,
                    },
                ],
            },
            TraceEvent::GrantCache {
                span: SpanId(1),
                hit: true,
            },
            TraceEvent::MemOp {
                span: SpanId(1),
                t_ns: 120,
                kind: TraceMemOpKind::CopyFromGuest,
                addr: 0x7fff_0000,
                len: 24,
                ok: true,
            },
            TraceEvent::OpEnd {
                span: SpanId(1),
                t_ns: 150,
                ok: false,
                value: -22,
                duration_ns: 50,
                wire: WireDelta {
                    bytes_out: 38,
                    bytes_in: 9,
                    deliveries: 2,
                },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip() {
        let tracer = Tracer::enabled();
        for event in sample_events() {
            tracer.record(event);
        }
        let text = tracer.to_jsonl();
        assert_eq!(text.lines().count(), 5);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn full_u64_addresses_survive() {
        let tracer = Tracer::enabled();
        tracer.record(TraceEvent::MemOp {
            span: SpanId(9),
            t_ns: 0,
            kind: TraceMemOpKind::CopyToGuest,
            addr: u64::MAX,
            len: u64::MAX,
            ok: false,
        });
        let parsed = parse_jsonl(&tracer.to_jsonl()).unwrap();
        match parsed[0] {
            TraceEvent::MemOp { addr, len, ok, .. } => {
                assert_eq!(addr, u64::MAX);
                assert_eq!(len, u64::MAX);
                assert!(!ok);
            }
            _ => panic!("wrong event"),
        }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.begin_span(), SpanId::NONE);
        tracer.mem_op(SpanId(1), 0, TraceMemOpKind::MapPage, 0, 4096, true);
        assert!(tracer.is_empty());
        assert_eq!(tracer.to_jsonl(), "");
    }

    #[test]
    fn none_span_events_are_dropped() {
        let tracer = Tracer::enabled();
        tracer.mem_op(SpanId::NONE, 0, TraceMemOpKind::MapPage, 0, 4096, true);
        assert!(tracer.is_empty());
    }

    #[test]
    fn lifecycle_events_survive_none_span() {
        let tracer = Tracer::enabled();
        tracer.record(TraceEvent::FaultInjected {
            span: SpanId::NONE,
            t_ns: 5,
            kind: "driver-panic".to_owned(),
            op: "ioctl".to_owned(),
        });
        tracer.record(TraceEvent::DriverVmFailed {
            span: SpanId::NONE,
            t_ns: 6,
            vm: 3,
            revoked_grants: 2,
        });
        tracer.record(TraceEvent::DriverVmRecovered {
            span: SpanId::NONE,
            t_ns: 7,
            vm: 3,
        });
        assert_eq!(tracer.len(), 3);
    }

    #[test]
    fn lifecycle_events_roundtrip() {
        let events = vec![
            TraceEvent::FaultInjected {
                span: SpanId(4),
                t_ns: 100,
                kind: "malformed-response".to_owned(),
                op: "read".to_owned(),
            },
            TraceEvent::DriverVmFailed {
                span: SpanId(4),
                t_ns: 110,
                vm: 9,
                revoked_grants: 17,
            },
            TraceEvent::DriverVmRecovered {
                span: SpanId::NONE,
                t_ns: 200,
                vm: 9,
            },
        ];
        let tracer = Tracer::enabled();
        for event in events.clone() {
            tracer.record(event);
        }
        let parsed = parse_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn span_ids_are_sequential_and_shared() {
        let tracer = Tracer::enabled();
        let clone = tracer.clone();
        assert_eq!(tracer.begin_span(), SpanId(1));
        assert_eq!(clone.begin_span(), SpanId(2));
        assert_eq!(tracer.begin_span(), SpanId(3));
    }

    #[test]
    fn device_paths_with_escapes_roundtrip() {
        let tracer = Tracer::enabled();
        tracer.record(TraceEvent::OpStart {
            span: SpanId(2),
            t_ns: 1,
            guest: 2,
            task: 3,
            handle: 0,
            device: "weird\"path\\with\nnewline".to_owned(),
            op: TraceOpKind::Open,
            cmd: None,
            addr: None,
            len: None,
        });
        let parsed = parse_jsonl(&tracer.to_jsonl()).unwrap();
        match &parsed[0] {
            TraceEvent::OpStart { device, .. } => {
                assert_eq!(device, "weird\"path\\with\nnewline");
            }
            _ => panic!("wrong event"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = parse_jsonl("{\"type\":\"op_end\"}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 1); // missing fields already fails line 1
        let err = parse_jsonl("\n{oops\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_jsonl("{\"type\":\"mystery\",\"span\":1}").is_err());
        // Trailing bytes after a valid object are malformed.
        assert!(parse_jsonl("{\"type\":\"grants\",\"span\":1,\"grants\":[]} x").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        assert!(parse_jsonl("\n\n  \n").unwrap().is_empty());
    }
}
