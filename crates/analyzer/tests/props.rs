//! Property tests: static extraction and JIT evaluation agree.

use proptest::prelude::*;

use paradice_analyzer::extract::{extract_command, AddrTemplate, Extraction};
use paradice_analyzer::ir::OpKind;
use paradice_analyzer::jit::{evaluate_slice, UserReader};
use paradice_analyzer::props_support::{static_handler, CopyRecipe};

struct InfiniteZeroes;

impl UserReader for InfiniteZeroes {
    fn read_user(&mut self, _addr: u64, buf: &mut [u8]) -> Result<(), ()> {
        buf.fill(0);
        Ok(())
    }
}

proptest! {
    /// For argument-linear handlers, static extraction must succeed, and
    /// resolving its templates must equal JIT-evaluating the same program —
    /// the two grant-derivation paths of §4.1 agree.
    #[test]
    fn static_templates_equal_jit_resolution(
        cmd in any::<u32>(),
        arg in 0u64..1 << 40,
        recipes in proptest::collection::vec(
            (0u64..1 << 16, 1u64..8192, any::<bool>()).prop_map(|(arg_offset, len, from_user)| {
                CopyRecipe { arg_offset, len, from_user }
            }),
            1..12,
        ),
    ) {
        let handler = static_handler(cmd, &recipes);
        let extraction = extract_command(&handler, cmd).unwrap();
        let templates = match extraction {
            Extraction::Static(t) => t,
            Extraction::Jit { .. } => {
                return Err(TestCaseError::fail("argument-linear handler classified as JIT"))
            }
        };
        prop_assert_eq!(templates.len(), recipes.len());
        // Resolve the templates against the concrete argument.
        let resolved: Vec<(OpKind, u64, u64)> = templates
            .iter()
            .map(|t| {
                let addr = match t.addr {
                    AddrTemplate::Abs(a) => a,
                    AddrTemplate::ArgPlus(k) => arg.wrapping_add(k),
                };
                (t.kind, addr, t.len)
            })
            .collect();
        // JIT-evaluate the equivalent specialized slice.
        let slice: Vec<paradice_analyzer::ir::Stmt> = {
            use paradice_analyzer::ir::{Expr, Stmt, VarId};
            recipes
                .iter()
                .enumerate()
                .map(|(i, recipe)| {
                    let addr = Expr::add(Expr::Arg, Expr::Const(recipe.arg_offset));
                    if recipe.from_user {
                        Stmt::CopyFromUser {
                            dst: VarId(i as u32),
                            src: addr,
                            len: Expr::Const(recipe.len),
                        }
                    } else {
                        Stmt::CopyToUser {
                            dst: addr,
                            len: Expr::Const(recipe.len),
                        }
                    }
                })
                .collect()
        };
        let jit_ops = evaluate_slice(&slice, cmd, arg, &mut InfiniteZeroes).unwrap();
        let jit_resolved: Vec<(OpKind, u64, u64)> =
            jit_ops.iter().map(|op| (op.kind, op.addr, op.len)).collect();
        prop_assert_eq!(resolved, jit_resolved);
    }

    /// Unknown commands always produce an empty static extraction (the
    /// default arm returns) — never a spurious operation.
    #[test]
    fn unknown_commands_extract_nothing(cmd in any::<u32>(), other in any::<u32>()) {
        prop_assume!(cmd != other);
        let handler = static_handler(cmd, &[CopyRecipe { arg_offset: 0, len: 8, from_user: true }]);
        match extract_command(&handler, other).unwrap() {
            Extraction::Static(ops) => prop_assert!(ops.is_empty()),
            Extraction::Jit { .. } => return Err(TestCaseError::fail("default arm must be static")),
        }
    }
}
