//! Differential gate: the flow-sensitive double-fetch pass must dominate
//! the syntactic one.
//!
//! For every command of the seeded fixture handler, each finding of the old
//! syntactic walker (`double_fetch::check_syntactic`, preserved for exactly
//! this comparison) must be covered by the flow engine: either the same
//! code fires on the same command, or the flow pass *upgraded* the
//! syntactic `DF002` to a `DF001` there — strictly more precise, never
//! quieter. The cross-helper fixture then pins the strict part: the flow
//! pass reports a `DF001` the syntactic walker provably cannot (it
//! classifies at fetch time, so consumption after the re-fetch is invisible
//! to it).

use paradice_analyzer::extract::specialize_command;
use paradice_analyzer::lint::double_fetch::{analyze_flow, check, check_syntactic};
use paradice_analyzer::lint::{fixtures, DiagCode, Diagnostic};

/// The fixture commands whose slices specialize (recursion and the unknown
/// helper are the orchestrator's to report, before any dataflow runs).
fn specializable_commands() -> Vec<u32> {
    let handler = fixtures::buggy_handler();
    handler
        .commands()
        .into_iter()
        .filter(|cmd| specialize_command(&handler, *cmd).is_ok())
        .collect()
}

#[test]
fn flow_pass_covers_every_syntactic_finding_on_the_fixtures() {
    let handler = fixtures::buggy_handler();
    for cmd in specializable_commands() {
        let slice = specialize_command(&handler, cmd).unwrap();
        let mut syntactic: Vec<Diagnostic> = Vec::new();
        check_syntactic(fixtures::FIXTURE_DRIVER, cmd, &slice, &mut syntactic);
        let mut flow: Vec<Diagnostic> = Vec::new();
        check(fixtures::FIXTURE_DRIVER, cmd, &handler, &mut flow);
        for old in &syntactic {
            let covered = flow.iter().any(|new| {
                new.command == old.command
                    && (new.code == old.code
                        // An upgrade covers: DF001 subsumes DF002 at the
                        // same command.
                        || (old.code == DiagCode::Df002 && new.code == DiagCode::Df001))
            });
            assert!(
                covered,
                "flow pass lost a syntactic finding on cmd {cmd:#010x}: {}\nflow findings:\n{}",
                old.render(),
                flow.iter()
                    .map(|d| d.render())
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
    }
}

#[test]
fn flow_pass_is_strictly_stronger_on_the_cross_helper_fixture() {
    let handler = fixtures::buggy_handler();
    let cmd = fixtures::FIX_XHELPER_DF.raw();
    let slice = specialize_command(&handler, cmd).unwrap();

    let mut syntactic: Vec<Diagnostic> = Vec::new();
    check_syntactic(fixtures::FIXTURE_DRIVER, cmd, &slice, &mut syntactic);
    assert!(
        syntactic.iter().all(|d| d.code != DiagCode::Df001),
        "syntactic pass unexpectedly caught the cross-helper pair: {syntactic:?}"
    );
    assert!(
        syntactic.iter().any(|d| d.code == DiagCode::Df002),
        "syntactic pass should at least see the overlap: {syntactic:?}"
    );

    let mut flow: Vec<Diagnostic> = Vec::new();
    check(fixtures::FIXTURE_DRIVER, cmd, &handler, &mut flow);
    let df001: Vec<&Diagnostic> = flow
        .iter()
        .filter(|d| d.code == DiagCode::Df001)
        .collect();
    assert_eq!(df001.len(), 1, "{flow:?}");
    // The finding anchors inside the helper, where the re-fetch lives.
    assert_eq!(df001[0].site.as_deref(), Some("xh_refetch#0"));
}

#[test]
fn fixed_twins_are_clean_under_both_passes() {
    let handler = fixtures::buggy_handler();
    for cmd in [
        fixtures::FIX_XHELPER_DF_FIXED.raw(),
        fixtures::FIX_OVERFLOW_LEN_FIXED.raw(),
    ] {
        let slice = specialize_command(&handler, cmd).unwrap();
        let mut syntactic: Vec<Diagnostic> = Vec::new();
        check_syntactic(fixtures::FIXTURE_DRIVER, cmd, &slice, &mut syntactic);
        assert!(syntactic.is_empty(), "cmd {cmd:#010x}: {syntactic:?}");
        let run = analyze_flow(&handler, Some(cmd));
        assert!(run.findings.is_empty(), "cmd {cmd:#010x}: {:?}", run.findings);
    }
}

#[test]
fn flow_run_reports_solver_work() {
    // The stats the CLI surfaces must be grounded: a multi-function command
    // lowers several CFGs and the fixpoint visits blocks more than once.
    let handler = fixtures::buggy_handler();
    let run = analyze_flow(&handler, Some(fixtures::FIX_XHELPER_DF.raw()));
    assert!(run.blocks >= 3, "blocks = {}", run.blocks);
    assert!(run.iterations >= run.blocks, "iterations = {}", run.iterations);
}
