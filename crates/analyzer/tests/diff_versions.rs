//! Cross-version diff over a Radeon-style handler pair (paper §4.1).
//!
//! The paper's argument for carrying static entries across driver updates
//! rests on one observation: "the memory operations of common ioctl
//! commands are identical in both drivers, while the latter has four new
//! ioctl commands". This test builds a v1/v2 handler pair shaped like the
//! Radeon 2.6.35 → 3.2.0 update and checks that [`diff_handlers`]
//! classifies every command correctly — exercising **all four**
//! [`CommandDelta`] variants in a single comparison.

use paradice_analyzer::ir::{Expr, Handler, Stmt, VarId};
use paradice_analyzer::{diff_handlers, CommandDelta};
use paradice_devfs::ioc::{io, iowr};

// DRM-flavoured command numbers, stable across both versions where shared.
const CP_IDLE: u32 = 0x4007_6407; // no memory operations
const GETPARAM: u32 = 0xc010_6411; // inout 16
const INFO: u32 = 0xc010_6427; // inout, grows between versions
const GEM_PREAD: u32 = 0xc020_6445; // static in v1, nested copy in v2
const CP_START: u32 = 0x4004_6406; // dropped in v2
const CS: u32 = 0xc010_6466; // nested copy in both versions

fn v(n: u32) -> VarId {
    VarId(n)
}

fn inout(len: u64) -> Vec<Stmt> {
    vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(len),
        },
        Stmt::CopyToUser {
            dst: Expr::Arg,
            len: Expr::Const(len),
        },
    ]
}

fn input_only(len: u64) -> Vec<Stmt> {
    vec![Stmt::CopyFromUser {
        dst: v(0),
        src: Expr::Arg,
        len: Expr::Const(len),
    }]
}

/// A Radeon-CS-style nested copy: the header names a chunk the handler
/// then fetches.
fn nested_copy(header_len: u64, chunk_len: u64) -> Vec<Stmt> {
    vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(header_len),
        },
        Stmt::CopyFromUser {
            dst: v(1),
            src: Expr::field(v(0), 0, 8),
            len: Expr::Const(chunk_len),
        },
    ]
}

fn handler(arms: Vec<(u32, Vec<Stmt>)>) -> Handler {
    Handler::single(vec![Stmt::SwitchCmd {
        arms,
        default: vec![Stmt::Return],
    }])
}

fn radeon_v1() -> Handler {
    handler(vec![
        (CP_IDLE, vec![Stmt::Return]),
        (GETPARAM, inout(16)),
        (INFO, inout(8)),
        (GEM_PREAD, input_only(32)),
        (CP_START, vec![Stmt::Return]),
        (CS, nested_copy(16, 64)),
    ])
}

fn radeon_v2() -> Handler {
    // Four new GEM commands, CP_START dropped, INFO's struct grew,
    // GEM_PREAD became a nested copy; everything else untouched.
    let gem_wait_idle = io(b'd', 0x60).raw();
    let gem_busy = iowr(b'd', 0x61, 8).raw();
    let gem_set_tiling = iowr(b'd', 0x62, 12).raw();
    let gem_get_tiling = iowr(b'd', 0x63, 12).raw();
    handler(vec![
        (CP_IDLE, vec![Stmt::Return]),
        (GETPARAM, inout(16)),
        (INFO, inout(16)),
        (GEM_PREAD, nested_copy(32, 128)),
        (CS, nested_copy(16, 64)),
        (gem_wait_idle, vec![Stmt::Return]),
        (gem_busy, inout(8)),
        (gem_set_tiling, input_only(12)),
        (gem_get_tiling, inout(12)),
    ])
}

#[test]
fn radeon_style_update_classifies_every_command() {
    let diff = diff_handlers(&radeon_v1(), &radeon_v2()).unwrap();

    // Every command in either version is classified exactly once.
    assert_eq!(diff.deltas.len(), 10);

    // The paper's headline: common commands carry over...
    let identical = diff.with_delta(CommandDelta::Identical);
    assert!(identical.contains(&CP_IDLE));
    assert!(identical.contains(&GETPARAM));
    assert!(identical.contains(&CS), "JIT slices equal in both versions");
    assert_eq!(diff.count(CommandDelta::Identical), 3);

    // ...changed commands need re-analysis (one grew its struct, one went
    // from a static entry to a nested-copy JIT slice)...
    let changed = diff.with_delta(CommandDelta::Changed);
    assert!(changed.contains(&INFO));
    assert!(changed.contains(&GEM_PREAD));
    assert_eq!(diff.count(CommandDelta::Changed), 2);

    // ...one command disappeared...
    assert_eq!(diff.with_delta(CommandDelta::Removed), vec![CP_START]);

    // ...and "the latter has four new ioctl commands".
    assert_eq!(diff.count(CommandDelta::Added), 4);
}

#[test]
fn identical_versions_diff_to_all_identical() {
    let diff = diff_handlers(&radeon_v1(), &radeon_v1()).unwrap();
    assert_eq!(diff.count(CommandDelta::Identical), diff.deltas.len());
    assert_eq!(diff.count(CommandDelta::Changed), 0);
    assert_eq!(diff.count(CommandDelta::Added), 0);
    assert_eq!(diff.count(CommandDelta::Removed), 0);
}

#[test]
fn deltas_are_sorted_by_command() {
    let diff = diff_handlers(&radeon_v1(), &radeon_v2()).unwrap();
    let cmds: Vec<u32> = diff.deltas.iter().map(|(cmd, _)| *cmd).collect();
    let mut sorted = cmds.clone();
    sorted.sort_unstable();
    assert_eq!(cmds, sorted);
}
