//! Static analysis of driver ioctl handlers: extracting legitimate memory
//! operations for fault isolation.
//!
//! The paper's CVD frontend must declare every memory operation a file
//! operation will trigger *before* forwarding it (§4.1). For most ioctls the
//! `_IOC` command encoding suffices, but some drivers perform operations the
//! encoding cannot describe — most notably **nested copies**, "in which the
//! data from one copy operation is used as the input arguments for the next
//! one" (the Radeon command-submission path). For those, the authors built a
//! Clang/LLVM tool that parses the driver, applies classic program slicing
//! \[Weiser\], and emits either *static entries* (fully-constant operation
//! lists) or *extracted code* that the frontend executes — offline when
//! possible, **just-in-time** at runtime for nested copies.
//!
//! Our reproduction implements the same contract over a miniature C-like
//! driver IR instead of C source:
//!
//! * [`ir`] — the abstract syntax tree drivers describe their ioctl
//!   handlers in (assignments, user copies, conditionals, `switch (cmd)`,
//!   bounded loops, calls).
//! * [`extract`] — the analyzer: symbolically executes the handler for each
//!   command, classifying it as [`Extraction::Static`] (operation templates
//!   linear in the ioctl argument) or [`Extraction::Jit`] (a pruned slice to
//!   run at operation time), and detecting nested copies.
//! * [`jit`] — the runtime evaluator the CVD frontend uses to turn a slice
//!   plus concrete argument (and reads of the caller's own memory) into the
//!   final grant list.
//! * [`diff`] — cross-version comparison: the paper validates that memory
//!   operations of common commands are identical between the Radeon drivers
//!   of Linux 2.6.35 and 3.2.0, with four new commands in the latter.
//!
//! The drivers crate ships real handler IR (including Radeon-style nested
//! copies), and integration tests cross-check that the operations the
//! analyzer predicts are exactly the operations the driver later performs.
//!
//! # Static lint suite
//!
//! [`lint`] turns the extraction machinery into a safety linter
//! (`paradice-lint`): the same specialized slices the frontend would JIT
//! are walked by passes that flag double fetches (`DF001`/`DF002` —
//! re-reading user memory a decision was already made on), over-grants
//! (`OG001`–`OG003` — declared `_IOC` envelopes provably wider than, or
//! disjoint from, what the handler does), structural hazards
//! (`SH001`–`SH006` — unroll-limit loops, opaque trip counts, recursion,
//! dead `switch` arms, deep nested-copy chains, unknown helpers), and a
//! runtime conformance replay (`CF001`–`CF004`) that checks grants and
//! executed operations from an actual run — plus the hypervisor's audit
//! log — against the analyzer's predictions. Shipped drivers must lint
//! clean or carry an explicit, reasoned [`lint::AllowEntry`]; seeded buggy
//! fixtures ([`lint::fixtures`]) prove every pass actually fires.
//!
//! The order-sensitive passes sit on a proper dataflow stack ([`dataflow`]):
//! CFG lowering, a generic worklist fixpoint solver, and interprocedural
//! function summaries. Double-fetch v2 (`DF001`/`DF002`), user-taint copy
//! lengths (`TA001`/`TA002`) and the wire-protocol decode lint (`WP001`)
//! are domains over that engine, which buys them helper-boundary reasoning
//! and loop fixpoints the syntactic walkers never had.

pub mod dataflow;
pub mod diff;
pub mod extract;
pub mod ir;
pub mod jit;
pub mod lint;
pub mod props_support;
pub mod race;

pub use diff::{diff_handlers, CommandDelta, HandlerDiff};
pub use extract::{analyze_handler, extract_command, Extraction, ExtractionError, HandlerReport};
pub use ir::{Expr, Function, Handler, OpKind, Stmt, VarId};
pub use jit::{evaluate_slice, JitError, ResolvedOp, UserReader};
pub use lint::{apply_allowlist, has_errors, lint_handler, AllowEntry, DiagCode, Diagnostic, Severity};
