//! Random-handler generation for property tests (test-support module).
//!
//! Generates well-formed ioctl-handler IR whose memory operations depend
//! only on the argument and constants — i.e. handlers the analyzer must
//! classify as *static* — so tests can check that static extraction and JIT
//! evaluation of the same program agree exactly.

use crate::ir::{Expr, Handler, Stmt, VarId};

/// A recipe for one static-analyzable copy operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRecipe {
    /// Offset added to the argument pointer.
    pub arg_offset: u64,
    /// Copy length.
    pub len: u64,
    /// Direction: `true` = from user.
    pub from_user: bool,
}

/// Builds a single-command handler performing the given copies in order.
pub fn static_handler(cmd: u32, recipes: &[CopyRecipe]) -> Handler {
    let mut body = Vec::new();
    for (i, recipe) in recipes.iter().enumerate() {
        let src = Expr::add(Expr::Arg, Expr::Const(recipe.arg_offset));
        if recipe.from_user {
            body.push(Stmt::CopyFromUser {
                dst: VarId(i as u32),
                src,
                len: Expr::Const(recipe.len),
            });
        } else {
            body.push(Stmt::CopyToUser {
                dst: src,
                len: Expr::Const(recipe.len),
            });
        }
    }
    Handler::single(vec![Stmt::SwitchCmd {
        arms: vec![(cmd, body)],
        default: vec![Stmt::Return],
    }])
}
