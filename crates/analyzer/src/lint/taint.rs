//! User-taint copy-length detection — `TA001`/`TA002`.
//!
//! The integer-overflow-to-overcopy shape: a length that the process
//! controls (a field of a fetched struct, or the raw ioctl argument) flows
//! — possibly through `Assign`/`Add`/`Mul` — into the byte count of a
//! `CopyFromUser`/`CopyToUser`, with no bounds check in between. Under
//! Paradice the hypervisor clips the copy to the granted region, but the
//! native driver has no such backstop, and a tainted *arithmetic* length
//! (`count * size`) can overflow past any implicit limit.
//!
//! * **TA001** (error): the copy length is user-controlled *and* has passed
//!   through `Add`/`Mul` without a dominating bounds check — the overflow
//!   shape.
//! * **TA002** (warning): the copy length is a raw user-controlled value
//!   with no dominating bounds check — unbounded, but at least not
//!   overflowable by arithmetic.
//!
//! A `Cond::Lt`/`Cond::Gt` comparison mentioning a tainted source marks
//! that source *checked*; only checks that dominate the copy count (i.e.
//! survive the meet over all paths — the `checked` set joins by
//! intersection) clear the taint. Re-fetching a buffer invalidates checks
//! on its fields: the bytes just changed, the old comparison proved
//! nothing (the TOCTOU interaction the double-fetch pass reports from the
//! other side).
//!
//! Like the other passes this one is interprocedural via function
//! summaries, so a helper that validates and a caller that copies compose.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::cfg::{lower, CfgStmt, SiteId, Terminator};
use crate::dataflow::solver::{Analysis, JoinSemiLattice};
use crate::dataflow::summary::{solve_program, ProcTable};
use crate::ir::{Cond, Expr, Handler, OpKind, Stmt, VarId};
use crate::lint::{DiagCode, Diagnostic};

/// A user-controlled taint source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Src {
    /// The raw ioctl argument used as a scalar.
    Arg,
    /// A field of a fetched buffer: `(buffer, offset, width)`.
    Field(VarId, u64, u8),
}

impl Src {
    fn describe(self) -> String {
        match self {
            Src::Arg => "the ioctl argument".to_owned(),
            Src::Field(var, offset, width) => {
                format!("{var}[{offset}..+{width}]")
            }
        }
    }
}

/// Taint of one scalar value: the sources it derives from, and whether it
/// passed through arithmetic. Empty sources = clean.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Taint {
    arith: bool,
    srcs: BTreeSet<Src>,
}

impl Taint {
    fn clean() -> Taint {
        Taint::default()
    }

    fn source(src: Src) -> Taint {
        Taint {
            arith: false,
            srcs: BTreeSet::from([src]),
        }
    }

    fn join(&mut self, other: &Taint) -> bool {
        let before = (self.arith, self.srcs.len());
        self.arith |= other.arith;
        self.srcs.extend(other.srcs.iter().copied());
        before != (self.arith, self.srcs.len())
    }

    /// Combines two operand taints through `Add`/`Mul`.
    fn through_arith(a: Taint, b: Taint) -> Taint {
        let mut srcs = a.srcs;
        srcs.extend(b.srcs);
        if srcs.is_empty() {
            Taint::clean()
        } else {
            Taint { arith: true, srcs }
        }
    }
}

/// Forward domain: per-variable taint, known buffers, and the sources a
/// bounds check dominates.
#[derive(Debug, Clone, Default)]
struct TaState {
    env: BTreeMap<VarId, Taint>,
    buffers: BTreeSet<VarId>,
    /// Sources proven bounded on *every* path reaching this point (joins by
    /// intersection — a check must dominate to count).
    checked: BTreeSet<Src>,
    /// Distinguishes the pre-seed bottom from a real (empty-checked) state,
    /// so the first join into a `checked` set doesn't intersect with ∅.
    seeded: bool,
}

impl TaState {
    fn boundary() -> TaState {
        TaState {
            seeded: true,
            ..TaState::default()
        }
    }
}

impl JoinSemiLattice for TaState {
    fn join_with(&mut self, other: &Self) -> bool {
        if !other.seeded {
            return false;
        }
        if !self.seeded {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        for (var, taint) in &other.env {
            match self.env.get_mut(var) {
                Some(existing) => changed |= existing.join(taint),
                None => {
                    self.env.insert(*var, taint.clone());
                    changed = true;
                }
            }
        }
        for var in &other.buffers {
            changed |= self.buffers.insert(*var);
        }
        // Must-analysis component: only checks present on both paths hold.
        let before = self.checked.len();
        self.checked = self
            .checked
            .intersection(&other.checked)
            .copied()
            .collect();
        changed |= self.checked.len() != before;
        changed
    }
}

fn eval_taint(state: &TaState, expr: &Expr) -> Taint {
    match expr {
        Expr::Const(_) | Expr::Cmd => Taint::clean(),
        Expr::Arg => Taint::source(Src::Arg),
        Expr::Var(var) => state.env.get(var).cloned().unwrap_or_default(),
        Expr::Field {
            base,
            offset,
            width,
        } => {
            if state.buffers.contains(base) {
                Taint::source(Src::Field(*base, *offset, *width))
            } else {
                Taint::clean()
            }
        }
        Expr::Add(a, b) | Expr::Mul(a, b) => {
            Taint::through_arith(eval_taint(state, a), eval_taint(state, b))
        }
    }
}

/// The sources of `taint` that no dominating check bounds.
fn unchecked_srcs(state: &TaState, taint: &Taint) -> Vec<Src> {
    taint
        .srcs
        .iter()
        .filter(|src| !state.checked.contains(src))
        .copied()
        .collect()
}

struct TaAnalysis<'a> {
    handler: &'a Handler,
    cmd: Option<u32>,
    table: &'a RefCell<ProcTable<TaState>>,
}

impl TaAnalysis<'_> {
    fn transfer_linear(&self, stmt: &CfgStmt, state: &mut TaState) -> bool {
        match stmt {
            // The counter ranges over `0..count`: bounded by construction.
            CfgStmt::LoopIndex(var) => {
                state.env.remove(var);
                true
            }
            CfgStmt::Ir(Stmt::Assign { var, value }) => {
                let taint = eval_taint(state, value);
                state.env.insert(*var, taint);
                true
            }
            CfgStmt::Ir(Stmt::CopyFromUser { dst, .. }) => {
                state.buffers.insert(*dst);
                state.env.remove(dst);
                // The buffer's bytes just changed: any bounds check on its
                // fields proved something about the *old* bytes.
                state.checked.retain(|src| !matches!(src, Src::Field(base, _, _) if base == dst));
                true
            }
            CfgStmt::Ir(Stmt::CopyToUser { .. }) => true,
            CfgStmt::Ir(Stmt::Call(name)) => {
                self.table
                    .borrow_mut()
                    .apply_call(name, self.handler, self.cmd, state)
            }
            CfgStmt::Ir(_) => true,
        }
    }
}

impl Analysis for TaAnalysis<'_> {
    type State = TaState;

    fn transfer_stmt(&self, _site: SiteId, stmt: &CfgStmt, state: &mut TaState) -> bool {
        self.transfer_linear(stmt, state)
    }

    fn transfer_term(&self, term: &Terminator, state: &mut TaState) {
        // A magnitude comparison bounds every source feeding either side.
        // (`LoopHead` trip counts are deliberately *not* checks: looping
        // `count` times does not bound a copy of `count` bytes.)
        if let Terminator::Branch {
            cond: Cond::Lt(a, b) | Cond::Gt(a, b),
            ..
        } = term
        {
            for expr in [a, b] {
                let taint = eval_taint(state, expr);
                state.checked.extend(taint.srcs.iter().copied());
            }
        }
    }
}

/// One raw taint finding.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// `Ta001` (arithmetic) or `Ta002` (raw).
    pub code: DiagCode,
    /// Stable site label (`function#statement`).
    pub site: String,
    /// Human-readable explanation.
    pub message: String,
}

/// One taint run: findings plus solver cost counters.
#[derive(Debug, Clone, Default)]
pub struct TaintRun {
    /// The findings, in reporting order.
    pub findings: Vec<TaintFinding>,
    /// Basic blocks lowered across the entry slice and every helper.
    pub blocks: usize,
    /// Total solver block-visits.
    pub iterations: usize,
}

/// Runs the taint analysis over a handler's entry, specialized to `cmd`
/// when given.
pub fn analyze_taint(handler: &Handler, cmd: Option<u32>) -> TaintRun {
    let entry = handler
        .function(handler.entry())
        .expect("Handler::new checked the entry");
    let entry_cfg = lower(handler.entry(), &entry.body, cmd);
    let table = RefCell::new(ProcTable::new());
    let analysis = TaAnalysis {
        handler,
        cmd,
        table: &table,
    };
    let stats = solve_program(&analysis, &table, entry_cfg, TaState::boundary());

    let mut run = TaintRun {
        findings: Vec::new(),
        blocks: stats.blocks,
        iterations: stats.iterations,
    };

    // Snapshot the procs: the transfer calls below re-enter the table
    // through `apply_call`, which needs the mutable borrow.
    let procs = table.borrow().procs().to_vec();
    for proc in &procs {
        let Some(solution) = &proc.solution else {
            continue;
        };
        for (block_idx, block) in proc.cfg.blocks.iter().enumerate() {
            let Some(in_state) = &solution.block_states[block_idx] else {
                continue;
            };
            let mut state = in_state.clone();
            for (site, stmt) in &block.stmts {
                if let CfgStmt::Ir(
                    Stmt::CopyFromUser { len, .. } | Stmt::CopyToUser { len, .. },
                ) = stmt
                {
                    let kind = match stmt {
                        CfgStmt::Ir(Stmt::CopyFromUser { .. }) => OpKind::CopyFromUser,
                        _ => OpKind::CopyToUser,
                    };
                    report_sink(&state, len, kind, &proc.name, *site, &mut run.findings);
                }
                if !analysis.transfer_linear(stmt, &mut state) {
                    break;
                }
            }
        }
    }
    run
}

fn report_sink(
    state: &TaState,
    len: &Expr,
    kind: OpKind,
    func: &str,
    site: SiteId,
    findings: &mut Vec<TaintFinding>,
) {
    let taint = eval_taint(state, len);
    let unchecked = unchecked_srcs(state, &taint);
    if unchecked.is_empty() {
        return;
    }
    let srcs: Vec<String> = unchecked.iter().map(|s| s.describe()).collect();
    let direction = match kind {
        OpKind::CopyFromUser => "copy_from_user",
        OpKind::CopyToUser => "copy_to_user",
    };
    let (code, message) = if taint.arith {
        (
            DiagCode::Ta001,
            format!(
                "{direction} length is arithmetic over user-controlled {} with no \
                 dominating bounds check; a large value overflows the computed size \
                 and over-copies",
                srcs.join(", "),
            ),
        )
    } else {
        (
            DiagCode::Ta002,
            format!(
                "{direction} length is user-controlled {} with no dominating bounds \
                 check; the process picks how many bytes the driver copies",
                srcs.join(", "),
            ),
        )
    };
    findings.push(TaintFinding {
        code,
        site: format!("{func}#{}", site.0),
        message,
    });
}

/// Runs the taint pass over one command of a handler. Returns
/// `(blocks, fixpoint iterations)` for the stats block.
pub fn check(
    driver: &str,
    cmd: u32,
    handler: &Handler,
    diags: &mut Vec<Diagnostic>,
) -> (usize, usize) {
    let run = analyze_taint(handler, Some(cmd));
    for finding in run.findings {
        diags.push(
            Diagnostic::new(finding.code, driver, Some(cmd), finding.message)
                .with_site(finding.site),
        );
    }
    (run.blocks, run.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Function;
    use crate::lint::Severity;
    use std::collections::BTreeMap;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn header_fetch() -> Stmt {
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(16),
        }
    }

    fn run(slice: &[Stmt]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check("test", 0x1234, &Handler::single(slice.to_vec()), &mut diags);
        diags
    }

    #[test]
    fn unchecked_arithmetic_length_is_ta001() {
        let slice = vec![
            header_fetch(),
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 8, 8),
                len: Expr::mul(Expr::field(v(0), 0, 4), Expr::Const(16)),
            },
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::Ta001);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("v0[0..+4]"));
    }

    #[test]
    fn unchecked_raw_field_length_is_ta002() {
        let slice = vec![
            header_fetch(),
            Stmt::CopyToUser {
                dst: Expr::field(v(0), 8, 8),
                len: Expr::field(v(0), 0, 4),
            },
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Ta002);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn dominating_gt_check_clears_the_taint() {
        let slice = vec![
            header_fetch(),
            Stmt::If {
                cond: Cond::Gt(Expr::field(v(0), 0, 4), Expr::Const(64)),
                then: vec![Stmt::Return],
                els: vec![],
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 8, 8),
                len: Expr::mul(Expr::field(v(0), 0, 4), Expr::Const(16)),
            },
        ];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn check_through_assigned_variable_counts() {
        // v5 = field; if (v5 > max) return; copy(len = v5 * 16)
        let slice = vec![
            header_fetch(),
            Stmt::Assign {
                var: v(5),
                value: Expr::field(v(0), 0, 4),
            },
            Stmt::If {
                cond: Cond::Gt(Expr::Var(v(5)), Expr::Const(64)),
                then: vec![Stmt::Return],
                els: vec![],
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 8, 8),
                len: Expr::mul(Expr::Var(v(5)), Expr::Const(16)),
            },
        ];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn non_dominating_check_does_not_clear() {
        // The check sits inside one arm of an unrelated branch: a path to
        // the copy exists on which the field was never compared.
        let slice = vec![
            header_fetch(),
            Stmt::If {
                cond: Cond::Eq(Expr::Arg, Expr::Const(0)),
                then: vec![Stmt::If {
                    cond: Cond::Gt(Expr::field(v(0), 0, 4), Expr::Const(64)),
                    then: vec![Stmt::Return],
                    els: vec![],
                }],
                els: vec![],
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 8, 8),
                len: Expr::mul(Expr::field(v(0), 0, 4), Expr::Const(16)),
            },
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::Ta001);
    }

    #[test]
    fn refetch_invalidates_the_check() {
        // Check the field, fetch the buffer again, use the field: the
        // validated bytes are gone.
        let slice = vec![
            header_fetch(),
            Stmt::If {
                cond: Cond::Gt(Expr::field(v(0), 0, 4), Expr::Const(64)),
                then: vec![Stmt::Return],
                els: vec![],
            },
            header_fetch(),
            Stmt::CopyToUser {
                dst: Expr::field(v(0), 8, 8),
                len: Expr::field(v(0), 0, 4),
            },
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::Ta002);
    }

    #[test]
    fn eq_comparison_is_not_a_bounds_check() {
        let slice = vec![
            header_fetch(),
            Stmt::If {
                cond: Cond::Ne(Expr::field(v(0), 0, 4), Expr::Const(0)),
                then: vec![Stmt::Return],
                els: vec![],
            },
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::field(v(0), 0, 4),
            },
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Ta002);
    }

    #[test]
    fn constant_lengths_are_clean() {
        let slice = vec![
            header_fetch(),
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::Const(16),
            },
        ];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn loop_counter_as_length_is_clean() {
        // `for i in 0..count { copy(len = 16) }` and even `len = i` are
        // bounded by the loop structure, not taint sinks.
        let slice = vec![
            header_fetch(),
            Stmt::ForRange {
                var: v(9),
                count: Expr::field(v(0), 0, 4),
                body: vec![Stmt::CopyToUser {
                    dst: Expr::Arg,
                    len: Expr::Var(v(9)),
                }],
            },
        ];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn validation_helper_composes_interprocedurally() {
        // A helper does the bounds check; the caller does the copy.
        let mut functions = BTreeMap::new();
        functions.insert(
            "ioctl".to_owned(),
            Function {
                body: vec![
                    header_fetch(),
                    Stmt::Call("validate".to_owned()),
                    Stmt::CopyFromUser {
                        dst: v(1),
                        src: Expr::field(v(0), 8, 8),
                        len: Expr::mul(Expr::field(v(0), 0, 4), Expr::Const(16)),
                    },
                ],
            },
        );
        functions.insert(
            "validate".to_owned(),
            Function {
                body: vec![Stmt::If {
                    cond: Cond::Gt(Expr::field(v(0), 0, 4), Expr::Const(64)),
                    then: vec![Stmt::Return],
                    els: vec![],
                }],
            },
        );
        let handler = Handler::new("ioctl", functions);
        let mut diags = Vec::new();
        check("test", 0x1234, &handler, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn arg_as_length_is_ta002() {
        let slice = vec![Stmt::CopyToUser {
            dst: Expr::Arg,
            len: Expr::Arg,
        }];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Ta002);
        assert!(diags[0].message.contains("ioctl argument"));
    }
}
