//! Runtime conformance replay — `CF001`–`CF004`.
//!
//! The static passes reason about what a handler *could* do; this pass
//! replays what a run *actually did* against the analyzer's predictions.
//! Inputs come from two places:
//!
//! 1. **Observed ioctls**: for each call, the grant set the frontend
//!    declared and the operation set the driver executed (captured by a
//!    recording `MemOps`).
//! 2. **The hypervisor audit log** (exported text, see
//!    `paradice_hypervisor::audit`): anything the hypervisor blocked at
//!    runtime.
//!
//! * **CF001** (error): an executed operation not covered by the declared
//!   grants — under Paradice this is exactly the isolation violation the
//!   grant table exists to stop.
//! * **CF002** (warning): the grants are much wider than what executed
//!   (≥4× the bytes and more than 256 bytes of slack), or a grant is not
//!   justified by the static prediction — runtime over-grant.
//! * **CF003** (error): a command was observed that the handler IR does not
//!   dispatch on — the IR and the binary disagree.
//! * **CF004** (error): the audit log records a blocked operation; the
//!   frontend's predictions and the driver's behaviour diverged in
//!   production.

use crate::extract::{extract_command, Extraction};
use crate::ir::Handler;
use crate::jit::ResolvedOp;
use crate::lint::{DiagCode, Diagnostic};

/// Grant slack (in bytes) below which CF002 stays quiet.
const SLACK_FLOOR: u64 = 256;
/// Grant/executed byte ratio at which CF002 fires.
const SLACK_RATIO: u64 = 4;

/// One ioctl call as observed at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedIoctl {
    /// The command number.
    pub cmd: u32,
    /// The concrete pointer argument.
    pub arg: u64,
    /// The operations the frontend granted for this call.
    pub granted: Vec<ResolvedOp>,
    /// The operations the driver actually performed.
    pub executed: Vec<ResolvedOp>,
}

/// One parsed line of a hypervisor audit export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Virtual-time timestamp.
    pub at_ns: u64,
    /// Stable event kind (e.g. `ungranted_mem_op`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Parses the tab-separated `at_ns\tkind\tdetail` audit export format
/// produced by `paradice_hypervisor::audit::AuditLog::export_text`.
/// Malformed lines are skipped.
pub fn parse_audit_text(text: &str) -> Vec<AuditEntry> {
    text.lines()
        .filter_map(|line| {
            let mut parts = line.splitn(3, '\t');
            let at_ns = parts.next()?.trim().parse().ok()?;
            let kind = parts.next()?.trim();
            if kind.is_empty() {
                return None;
            }
            Some(AuditEntry {
                at_ns,
                kind: kind.to_owned(),
                detail: parts.next().unwrap_or("").trim().to_owned(),
            })
        })
        .collect()
}

fn covered(op: &ResolvedOp, grants: &[ResolvedOp]) -> bool {
    grants.iter().any(|g| {
        g.kind == op.kind && g.addr <= op.addr && op.addr + op.len <= g.addr + g.len
    })
}

fn total_bytes(ops: &[ResolvedOp]) -> u64 {
    ops.iter().map(|op| op.len).sum()
}

/// Replays observed ioctls against the handler's static predictions.
pub fn check_replay(
    driver: &str,
    handler: &Handler,
    observed: &[ObservedIoctl],
    diags: &mut Vec<Diagnostic>,
) {
    let known = handler.commands();
    for obs in observed {
        if !known.contains(&obs.cmd) {
            diags.push(Diagnostic::new(
                DiagCode::Cf003,
                driver,
                Some(obs.cmd),
                format!(
                    "runtime observed command {:#010x} which the handler IR does not \
                     dispatch on; the IR and the running driver disagree",
                    obs.cmd,
                ),
            ));
            continue;
        }
        for op in &obs.executed {
            if !covered(op, &obs.granted) {
                diags.push(Diagnostic::new(
                    DiagCode::Cf001,
                    driver,
                    Some(obs.cmd),
                    format!(
                        "driver executed {:?} of {} bytes at {:#x} outside every \
                         declared grant; under Paradice the hypervisor blocks this",
                        op.kind, op.len, op.addr,
                    ),
                ));
            }
        }
        // Cross-check grants against the static prediction where one exists.
        if let Ok(Extraction::Static(templates)) = extract_command(handler, obs.cmd) {
            let predicted: Vec<ResolvedOp> = templates
                .iter()
                .map(|t| ResolvedOp {
                    kind: t.kind,
                    addr: t.addr.resolve(obs.arg),
                    len: t.len,
                })
                .collect();
            for grant in &obs.granted {
                if !covered(grant, &predicted) {
                    diags.push(Diagnostic::new(
                        DiagCode::Cf002,
                        driver,
                        Some(obs.cmd),
                        format!(
                            "frontend granted {:?} of {} bytes at {:#x} that the static \
                             prediction does not justify",
                            grant.kind, grant.len, grant.addr,
                        ),
                    ));
                }
            }
        }
        let granted_bytes = total_bytes(&obs.granted);
        let executed_bytes = total_bytes(&obs.executed);
        if granted_bytes > executed_bytes.saturating_mul(SLACK_RATIO)
            && granted_bytes - executed_bytes > SLACK_FLOOR
        {
            diags.push(Diagnostic::new(
                DiagCode::Cf002,
                driver,
                Some(obs.cmd),
                format!(
                    "grants cover {granted_bytes} bytes but the driver touched only \
                     {executed_bytes}; the envelope is far wider than the call needed",
                ),
            ));
        }
    }
}

/// Flags hypervisor-blocked operations from an audit export (`CF004`).
pub fn check_audit(driver: &str, entries: &[AuditEntry], diags: &mut Vec<Diagnostic>) {
    for entry in entries {
        diags.push(Diagnostic::new(
            DiagCode::Cf004,
            driver,
            None,
            format!(
                "hypervisor audit log records a blocked operation at t={}ns \
                 ({}): {}",
                entry.at_ns, entry.kind, entry.detail,
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, OpKind, Stmt, VarId};

    fn handler() -> Handler {
        Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![(
                7,
                vec![
                    Stmt::CopyFromUser {
                        dst: VarId(0),
                        src: Expr::Arg,
                        len: Expr::Const(16),
                    },
                    Stmt::CopyToUser {
                        dst: Expr::Arg,
                        len: Expr::Const(16),
                    },
                ],
            )],
            default: vec![Stmt::Return],
        }])
    }

    fn op(kind: OpKind, addr: u64, len: u64) -> ResolvedOp {
        ResolvedOp { kind, addr, len }
    }

    fn run(observed: &[ObservedIoctl]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_replay("test", &handler(), observed, &mut diags);
        diags
    }

    #[test]
    fn conforming_call_is_clean() {
        let grants = vec![
            op(OpKind::CopyFromUser, 0x1000, 16),
            op(OpKind::CopyToUser, 0x1000, 16),
        ];
        let obs = ObservedIoctl {
            cmd: 7,
            arg: 0x1000,
            granted: grants.clone(),
            executed: grants,
        };
        assert!(run(&[obs]).is_empty());
    }

    #[test]
    fn ungranted_execution_is_cf001() {
        let obs = ObservedIoctl {
            cmd: 7,
            arg: 0x1000,
            granted: vec![
                op(OpKind::CopyFromUser, 0x1000, 16),
                op(OpKind::CopyToUser, 0x1000, 16),
            ],
            executed: vec![op(OpKind::CopyFromUser, 0x9000, 64)],
        };
        let diags = run(&[obs]);
        assert!(diags.iter().any(|d| d.code == DiagCode::Cf001));
    }

    #[test]
    fn direction_mismatch_is_cf001() {
        // Write where only a read was granted.
        let obs = ObservedIoctl {
            cmd: 7,
            arg: 0x1000,
            granted: vec![
                op(OpKind::CopyFromUser, 0x1000, 16),
                op(OpKind::CopyToUser, 0x1000, 16),
            ],
            executed: vec![op(OpKind::CopyToUser, 0x1000, 16)],
        };
        assert!(run(&[obs]).is_empty());
        let bad = ObservedIoctl {
            cmd: 7,
            arg: 0x1000,
            granted: vec![op(OpKind::CopyFromUser, 0x1000, 16)],
            executed: vec![op(OpKind::CopyToUser, 0x1000, 16)],
        };
        // Note: grant set itself now disagrees with prediction? It's a
        // subset, which is fine; only the executed write is flagged.
        let diags = run(&[bad]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Cf001);
    }

    #[test]
    fn unknown_command_is_cf003() {
        let obs = ObservedIoctl {
            cmd: 0xdead,
            arg: 0,
            granted: vec![],
            executed: vec![],
        };
        let diags = run(&[obs]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Cf003);
    }

    #[test]
    fn unjustified_grant_is_cf002() {
        let obs = ObservedIoctl {
            cmd: 7,
            arg: 0x1000,
            granted: vec![
                op(OpKind::CopyFromUser, 0x1000, 16),
                op(OpKind::CopyToUser, 0x1000, 16),
                op(OpKind::CopyFromUser, 0x4000, 8),
            ],
            executed: vec![
                op(OpKind::CopyFromUser, 0x1000, 16),
                op(OpKind::CopyToUser, 0x1000, 16),
            ],
        };
        let diags = run(&[obs]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Cf002);
    }

    #[test]
    fn wide_slack_is_cf002() {
        let obs = ObservedIoctl {
            cmd: 7,
            arg: 0x1000,
            granted: vec![
                // Covering grants, but enormously wide.
                op(OpKind::CopyFromUser, 0x0, 0x10000),
                op(OpKind::CopyToUser, 0x0, 0x10000),
            ],
            executed: vec![op(OpKind::CopyFromUser, 0x1000, 16)],
        };
        let diags = run(&[obs]);
        assert!(diags.iter().any(|d| d.code == DiagCode::Cf002));
    }

    #[test]
    fn audit_entries_become_cf004() {
        let text = "120\tungranted_mem_op\tcaller=frontend write 64B at 0x9000\n\
                    bogus line without tabs\n\
                    340\tprotected_region_access\tgpa=0x7000";
        let entries = parse_audit_text(text);
        assert_eq!(entries.len(), 2);
        let mut diags = Vec::new();
        check_audit("test", &entries, &mut diags);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == DiagCode::Cf004));
        assert!(diags[0].message.contains("ungranted_mem_op"));
    }
}
