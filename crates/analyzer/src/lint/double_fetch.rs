//! Double-fetch (TOCTOU) detection — `DF001`/`DF002`.
//!
//! A handler that copies the same user region twice gives the process a
//! race window: flip the bytes between the fetches and the values that were
//! *validated* (or that sized a grant) differ from the values that are
//! *used*. The JIT evaluator pins repeated reads to a per-evaluation
//! snapshot (see [`crate::jit`]), but a handler that re-fetches at all is
//! still a bug worth surfacing at analysis time — the native (non-Paradice)
//! driver has no snapshot protecting it.
//!
//! * **DF001** (error): a fetch overlaps an earlier fetch whose buffer is
//!   consumed (a field of it feeds an address, length, branch or
//!   assignment) — before *or after* the re-fetch. Either way a decision is
//!   split across two copies of the same bytes: the exploitable shape.
//! * **DF002** (warning): overlapping re-fetch whose first copy is never
//!   consumed — wasteful and fragile, but no decision races yet.
//!
//! The pass is flow-sensitive: the slice is lowered to a CFG
//! ([`crate::dataflow::cfg`]) and solved to a fixpoint
//! ([`crate::dataflow::solver`]), with helper calls composed through
//! function summaries ([`crate::dataflow::summary`]) instead of inlining —
//! so fetch/consume pairs that straddle helper boundaries are caught, and
//! loop bodies converge instead of being walked twice. A *forward* analysis
//! tracks reached fetches and already-consumed buffers; a *backward* one
//! computes which buffers are still consumed later, which is what upgrades
//! an "unconsumed" re-fetch to DF001 when the first copy is used after it.
//!
//! The pass is deliberately conservative: only fetches whose address and
//! length are statically concrete (constant or `arg + k`) participate.
//! Nested-copy fetches at user-data-derived addresses are the JIT's
//! business and never reported here.
//!
//! The pre-dataflow syntactic walker survives as [`check_syntactic`]: the
//! differential test pins the new engine to find at least everything the
//! old one did (and strictly more — see
//! `upgrade_when_first_copy_consumed_after_refetch`).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::cfg::{lower, CfgStmt, SiteId, Terminator};
use crate::dataflow::solver::{Analysis, Direction, JoinSemiLattice};
use crate::dataflow::summary::{solve_program, ProcTable};
use crate::ir::{Expr, Handler, Stmt, VarId};
use crate::lint::envelope::{cond_field_bases, eval_expr, field_bases, merge_env, SymScalar};
use crate::lint::{DiagCode, Diagnostic};

/// Address-space class of a concrete fetch interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Base {
    /// Absolute user address.
    Abs,
    /// Relative to the ioctl argument.
    Arg,
}

/// A concrete fetched interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Fetch {
    base: Base,
    start: u64,
    len: u64,
    /// The buffer variable the bytes landed in.
    var: VarId,
}

impl Fetch {
    fn overlaps(&self, other: &Fetch) -> bool {
        self.base == other.base
            && self.start < other.start + other.len
            && other.start < self.start + self.len
    }

    fn describe(&self) -> String {
        match self.base {
            Base::Abs => format!("[{:#x}, {:#x})", self.start, self.start + self.len),
            Base::Arg => format!("[arg+{}, arg+{})", self.start, self.start + self.len),
        }
    }
}

// ---------------------------------------------------------------------------
// Flow-sensitive engine (the shipping pass)
// ---------------------------------------------------------------------------

/// Forward domain: reached fetches plus which buffers were consumed so far.
#[derive(Debug, Clone, Default)]
struct DfState {
    env: BTreeMap<VarId, SymScalar>,
    buffers: BTreeSet<VarId>,
    fetches: BTreeSet<Fetch>,
    consumed: BTreeSet<VarId>,
}

impl JoinSemiLattice for DfState {
    fn join_with(&mut self, other: &Self) -> bool {
        let mut changed = false;
        // Environments: agreeing bindings survive; a binding present on only
        // one path, or with different values, degrades to Opaque.
        for (var, value) in &other.env {
            match self.env.get(var) {
                Some(existing) if existing == value => {}
                Some(SymScalar::Opaque) => {}
                _ => {
                    self.env.insert(*var, SymScalar::Opaque);
                    changed = true;
                }
            }
        }
        let one_sided: Vec<VarId> = self
            .env
            .iter()
            .filter(|(var, value)| {
                !other.env.contains_key(var) && **value != SymScalar::Opaque
            })
            .map(|(var, _)| *var)
            .collect();
        for var in one_sided {
            self.env.insert(var, SymScalar::Opaque);
            changed = true;
        }
        for var in &other.buffers {
            changed |= self.buffers.insert(*var);
        }
        for fetch in &other.fetches {
            changed |= self.fetches.insert(*fetch);
        }
        for var in &other.consumed {
            changed |= self.consumed.insert(*var);
        }
        changed
    }
}

fn consume_expr(expr: &Expr, consumed: &mut BTreeSet<VarId>) {
    field_bases(expr, consumed);
}

/// The concrete fetch a `CopyFromUser` performs under `state`, if its
/// address and length are statically known (and non-empty).
fn concrete_fetch(state: &DfState, src: &Expr, len: &Expr, dst: VarId) -> Option<Fetch> {
    let (base, start) = match eval_expr(&state.env, &state.buffers, src) {
        SymScalar::Const(addr) => (Base::Abs, addr),
        SymScalar::ArgPlus(offset) => (Base::Arg, offset),
        _ => return None,
    };
    match eval_expr(&state.env, &state.buffers, len) {
        SymScalar::Const(n) if n > 0 => Some(Fetch {
            base,
            start,
            len: n,
            var: dst,
        }),
        _ => None,
    }
}

struct DfAnalysis<'a> {
    handler: &'a Handler,
    cmd: Option<u32>,
    table: &'a RefCell<ProcTable<DfState>>,
}

impl Analysis for DfAnalysis<'_> {
    type State = DfState;

    fn transfer_stmt(&self, _site: SiteId, stmt: &CfgStmt, state: &mut DfState) -> bool {
        match stmt {
            CfgStmt::LoopIndex(var) => {
                state.env.insert(*var, SymScalar::Opaque);
                true
            }
            CfgStmt::Ir(Stmt::Assign { var, value }) => {
                consume_expr(value, &mut state.consumed);
                let value = eval_expr(&state.env, &state.buffers, value);
                state.env.insert(*var, value);
                true
            }
            CfgStmt::Ir(Stmt::CopyFromUser { dst, src, len }) => {
                consume_expr(src, &mut state.consumed);
                consume_expr(len, &mut state.consumed);
                if let Some(fetch) = concrete_fetch(state, src, len, *dst) {
                    state.fetches.insert(fetch);
                }
                state.buffers.insert(*dst);
                state.env.remove(dst);
                true
            }
            CfgStmt::Ir(Stmt::CopyToUser { dst, len }) => {
                consume_expr(dst, &mut state.consumed);
                consume_expr(len, &mut state.consumed);
                true
            }
            CfgStmt::Ir(Stmt::Call(name)) => {
                self.table
                    .borrow_mut()
                    .apply_call(name, self.handler, self.cmd, state)
            }
            // Control flow was lowered away; nothing else reaches a block.
            CfgStmt::Ir(_) => true,
        }
    }

    fn transfer_term(&self, term: &Terminator, state: &mut DfState) {
        match term {
            Terminator::Branch { cond, .. } => cond_field_bases(cond, &mut state.consumed),
            Terminator::LoopHead { count, .. } => consume_expr(count, &mut state.consumed),
            Terminator::Jump(_) | Terminator::Return => {}
        }
    }
}

/// Backward domain: buffers whose fields are still read later.
#[derive(Debug, Clone, Default)]
struct ConsumedLater(BTreeSet<VarId>);

impl JoinSemiLattice for ConsumedLater {
    fn join_with(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

struct ConsumeAnalysis<'a> {
    handler: &'a Handler,
    cmd: Option<u32>,
    table: &'a RefCell<ProcTable<ConsumedLater>>,
}

impl Analysis for ConsumeAnalysis<'_> {
    type State = ConsumedLater;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn transfer_stmt(&self, _site: SiteId, stmt: &CfgStmt, state: &mut ConsumedLater) -> bool {
        match stmt {
            CfgStmt::LoopIndex(_) => true,
            CfgStmt::Ir(Stmt::Assign { value, .. }) => {
                consume_expr(value, &mut state.0);
                true
            }
            CfgStmt::Ir(Stmt::CopyFromUser { src, len, .. }) => {
                consume_expr(src, &mut state.0);
                consume_expr(len, &mut state.0);
                true
            }
            CfgStmt::Ir(Stmt::CopyToUser { dst, len }) => {
                consume_expr(dst, &mut state.0);
                consume_expr(len, &mut state.0);
                true
            }
            CfgStmt::Ir(Stmt::Call(name)) => {
                self.table
                    .borrow_mut()
                    .apply_call(name, self.handler, self.cmd, state)
            }
            CfgStmt::Ir(_) => true,
        }
    }

    fn transfer_term(&self, term: &Terminator, state: &mut ConsumedLater) {
        match term {
            Terminator::Branch { cond, .. } => cond_field_bases(cond, &mut state.0),
            Terminator::LoopHead { count, .. } => consume_expr(count, &mut state.0),
            Terminator::Jump(_) | Terminator::Return => {}
        }
    }
}

/// One raw flow-sensitive finding, before driver/command labeling. The wire
/// lint reuses these under its own code (`WP001`).
#[derive(Debug, Clone)]
pub struct FlowFinding {
    /// `Df001` or `Df002`.
    pub code: DiagCode,
    /// Stable site label (`function#statement`), the dedupe key.
    pub site: String,
    /// Human-readable explanation.
    pub message: String,
}

/// One flow-sensitive run: findings plus solver cost counters.
#[derive(Debug, Clone, Default)]
pub struct FlowRun {
    /// The findings, in reporting order.
    pub findings: Vec<FlowFinding>,
    /// Basic blocks lowered across the entry slice and every helper.
    pub blocks: usize,
    /// Total solver block-visits (forward + backward fixpoints).
    pub iterations: usize,
}

/// Runs the flow-sensitive double-fetch analysis over a handler's entry,
/// specialized to `cmd` when given (wire-protocol IR passes `None` — it has
/// no dispatcher).
pub fn analyze_flow(handler: &Handler, cmd: Option<u32>) -> FlowRun {
    let entry = handler
        .function(handler.entry())
        .expect("Handler::new checked the entry");
    let entry_cfg = lower(handler.entry(), &entry.body, cmd);

    let fwd_table = RefCell::new(ProcTable::new());
    let fwd = DfAnalysis {
        handler,
        cmd,
        table: &fwd_table,
    };
    let fwd_stats = solve_program(&fwd, &fwd_table, entry_cfg.clone(), DfState::default());

    let bwd_table = RefCell::new(ProcTable::new());
    let bwd = ConsumeAnalysis {
        handler,
        cmd,
        table: &bwd_table,
    };
    let bwd_stats = solve_program(&bwd, &bwd_table, entry_cfg, ConsumedLater::default());

    let mut run = FlowRun {
        findings: Vec::new(),
        blocks: fwd_stats.blocks,
        iterations: fwd_stats.iterations + bwd_stats.iterations,
    };

    // Reporting: walk every analyzed function once with its converged
    // states — each site is visited exactly once, so loop bodies cannot
    // produce duplicate findings by construction. The procs are snapshotted
    // out of the tables first: re-running the transfer functions below
    // routes `Call`s through `apply_call`, which needs the table borrow.
    let fwd_procs = fwd_table.borrow().procs().to_vec();
    let bwd_procs = bwd_table.borrow().procs().to_vec();
    for proc in &fwd_procs {
        let Some(solution) = &proc.solution else {
            continue;
        };
        let bwd_proc = bwd_procs.iter().find(|p| p.name == proc.name);
        for (block_idx, block) in proc.cfg.blocks.iter().enumerate() {
            let Some(in_state) = &solution.block_states[block_idx] else {
                continue;
            };
            let block_out = bwd_proc
                .and_then(|p| p.solution.as_ref())
                .and_then(|s| s.block_states[block_idx].clone())
                .unwrap_or_default();
            let afters = consumed_afters(&bwd, block, block_out);
            let mut state = in_state.clone();
            for (stmt_idx, (site, stmt)) in block.stmts.iter().enumerate() {
                if let CfgStmt::Ir(Stmt::CopyFromUser { dst, src, len }) = stmt {
                    // Mirror the transfer's ordering: this statement's own
                    // operand reads count as prior consumption.
                    consume_expr(src, &mut state.consumed);
                    consume_expr(len, &mut state.consumed);
                    if let Some(fetch) = concrete_fetch(&state, src, len, *dst) {
                        report_fetch(
                            &state,
                            &afters[stmt_idx],
                            &fetch,
                            &proc.name,
                            *site,
                            &mut run.findings,
                        );
                        state.fetches.insert(fetch);
                    }
                    state.buffers.insert(*dst);
                    state.env.remove(dst);
                } else if !fwd.transfer_stmt(*site, stmt, &mut state) {
                    break; // callee summary never materialized; abandon
                }
            }
        }
    }
    run
}

/// Per-statement "consumed strictly after this point" sets for one block,
/// derived from the backward fixpoint's block-exit state.
fn consumed_afters(
    bwd: &ConsumeAnalysis<'_>,
    block: &crate::dataflow::cfg::Block,
    block_out: ConsumedLater,
) -> Vec<BTreeSet<VarId>> {
    let mut state = block_out;
    bwd.transfer_term(&block.term, &mut state);
    let mut afters = vec![BTreeSet::new(); block.stmts.len()];
    for (idx, (site, stmt)) in block.stmts.iter().enumerate().rev() {
        afters[idx] = state.0.clone();
        // A blocked call leaves the state unchanged: conservative (the
        // finding stays DF002 instead of upgrading).
        let _ = bwd.transfer_stmt(*site, stmt, &mut state);
    }
    afters
}

fn report_fetch(
    state: &DfState,
    consumed_after: &BTreeSet<VarId>,
    fetch: &Fetch,
    func: &str,
    site: SiteId,
    findings: &mut Vec<FlowFinding>,
) {
    // Rank overlapping priors: consumed-before > consumed-after > never.
    let mut worst: Option<(u8, Fetch)> = None;
    for prior in &state.fetches {
        if prior.overlaps(fetch) {
            let rank = if state.consumed.contains(&prior.var) {
                2
            } else if consumed_after.contains(&prior.var) {
                1
            } else {
                0
            };
            let better = match worst {
                None => true,
                Some((best, _)) => rank > best,
            };
            if better {
                worst = Some((rank, *prior));
            }
        }
    }
    let Some((rank, prior)) = worst else { return };
    let (code, message) = match rank {
        2 => (
            DiagCode::Df001,
            format!(
                "re-fetches already-consumed user region {} (first copied into {}); a \
                 concurrent thread can change the bytes between the fetches",
                prior.describe(),
                prior.var,
            ),
        ),
        1 => (
            DiagCode::Df001,
            format!(
                "re-fetches user region {} (first copied into {}) whose first copy is \
                 still consumed after the re-fetch; the decision is split across two \
                 copies a concurrent thread can tear",
                prior.describe(),
                prior.var,
            ),
        ),
        _ => (
            DiagCode::Df002,
            format!(
                "re-fetches previously-fetched user region {} (first copied into {}); a \
                 concurrent thread can change the bytes between the fetches",
                prior.describe(),
                prior.var,
            ),
        ),
    };
    findings.push(FlowFinding {
        code,
        site: format!("{func}#{}", site.0),
        message,
    });
}

/// Runs the flow-sensitive double-fetch pass over one command of a handler.
/// Returns `(blocks, fixpoint iterations)` for the stats block.
pub fn check(
    driver: &str,
    cmd: u32,
    handler: &Handler,
    diags: &mut Vec<Diagnostic>,
) -> (usize, usize) {
    let run = analyze_flow(handler, Some(cmd));
    for finding in run.findings {
        diags.push(
            Diagnostic::new(finding.code, driver, Some(cmd), finding.message)
                .with_site(finding.site),
        );
    }
    (run.blocks, run.iterations)
}

// ---------------------------------------------------------------------------
// Syntactic v1 (kept as the differential baseline)
// ---------------------------------------------------------------------------

#[derive(Clone, Default)]
struct SynState {
    env: BTreeMap<VarId, SymScalar>,
    buffers: BTreeSet<VarId>,
    fetches: Vec<Fetch>,
    consumed: BTreeSet<VarId>,
}

struct SynCtx<'a> {
    driver: &'a str,
    cmd: u32,
    diags: Vec<Diagnostic>,
}

fn syn_walk(stmts: &[Stmt], state: &mut SynState, ctx: &mut SynCtx<'_>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                field_bases(value, &mut state.consumed);
                let value = eval_expr(&state.env, &state.buffers, value);
                state.env.insert(*var, value);
            }
            Stmt::CopyFromUser { dst, src, len } => {
                field_bases(src, &mut state.consumed);
                field_bases(len, &mut state.consumed);
                let addr = eval_expr(&state.env, &state.buffers, src);
                let length = eval_expr(&state.env, &state.buffers, len);
                if let (Some((base, start)), SymScalar::Const(n)) = (
                    match addr {
                        SymScalar::Const(a) => Some((Base::Abs, a)),
                        SymScalar::ArgPlus(k) => Some((Base::Arg, k)),
                        _ => None,
                    },
                    length,
                ) {
                    let fetch = Fetch {
                        base,
                        start,
                        len: n,
                        var: *dst,
                    };
                    let mut worst: Option<(bool, Fetch)> = None;
                    for prior in &state.fetches {
                        if n > 0 && prior.len > 0 && prior.overlaps(&fetch) {
                            let consumed = state.consumed.contains(&prior.var);
                            let better = match worst {
                                None => true,
                                Some((was_consumed, _)) => consumed && !was_consumed,
                            };
                            if better {
                                worst = Some((consumed, *prior));
                            }
                        }
                    }
                    if let Some((consumed, prior)) = worst {
                        let (code, verb) = if consumed {
                            (DiagCode::Df001, "already-consumed")
                        } else {
                            (DiagCode::Df002, "previously-fetched")
                        };
                        ctx.diags.push(Diagnostic::new(
                            code,
                            ctx.driver,
                            Some(ctx.cmd),
                            format!(
                                "re-fetches {} user region {} (first copied into {}); a \
                                 concurrent thread can change the bytes between the fetches",
                                verb,
                                prior.describe(),
                                prior.var,
                            ),
                        ));
                    }
                    state.fetches.push(fetch);
                }
                state.buffers.insert(*dst);
                state.env.remove(dst);
            }
            Stmt::CopyToUser { dst, len } => {
                field_bases(dst, &mut state.consumed);
                field_bases(len, &mut state.consumed);
            }
            Stmt::If { cond, then, els } => {
                cond_field_bases(cond, &mut state.consumed);
                let shared = state.fetches.len();
                let mut then_state = state.clone();
                syn_walk(then, &mut then_state, ctx);
                syn_walk(els, state, ctx);
                // Conflicts across exclusive branches are impossible, so they
                // were checked per-branch; afterwards, both branches' fetches
                // and consumption conservatively persist.
                state.env = merge_env(then_state.env, &state.env);
                state.buffers.extend(then_state.buffers);
                state.consumed.extend(then_state.consumed);
                state
                    .fetches
                    .extend(then_state.fetches.iter().skip(shared).copied());
            }
            Stmt::ForRange { var, count, body } => {
                field_bases(count, &mut state.consumed);
                // Two passes: the second sees the first's fetches, so a
                // loop-invariant concrete fetch conflicts with itself — the
                // "fetch the same header every iteration" bug. Loop-variant
                // addresses are opaque and never participate.
                state.env.insert(*var, SymScalar::Opaque);
                syn_walk(body, state, ctx);
                syn_walk(body, state, ctx);
            }
            Stmt::Return => return,
            Stmt::SwitchCmd { .. } | Stmt::Call(_) => {}
        }
    }
}

/// The pre-dataflow syntactic double-fetch pass, run over a fully-inlined
/// specialized slice. Kept verbatim as the differential-test baseline: the
/// flow-sensitive [`check`] must find everything this does. Its known blind
/// spot — classification happens at fetch time, so consumption *after* the
/// re-fetch never upgrades DF002 to DF001 — is exactly what the dataflow
/// engine fixes.
pub fn check_syntactic(driver: &str, cmd: u32, slice: &[Stmt], diags: &mut Vec<Diagnostic>) {
    let mut ctx = SynCtx {
        driver,
        cmd,
        diags: Vec::new(),
    };
    let mut state = SynState::default();
    syn_walk(slice, &mut state, &mut ctx);
    // The two-pass loop walk can report one site twice; keep each distinct
    // finding once.
    ctx.diags
        .dedup_by(|a, b| a.code == b.code && a.message == b.message);
    diags.extend(ctx.diags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Cond, Function};
    use crate::lint::Severity;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn fetch(dst: u32, len: u64) -> Stmt {
        Stmt::CopyFromUser {
            dst: v(dst),
            src: Expr::Arg,
            len: Expr::Const(len),
        }
    }

    /// Runs the flow-sensitive pass over a dispatcher-less body.
    fn run_flow(slice: &[Stmt]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check("test", 0x1234, &Handler::single(slice.to_vec()), &mut diags);
        diags
    }

    fn run_syntactic(slice: &[Stmt]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_syntactic("test", 0x1234, slice, &mut diags);
        diags
    }

    /// Both engines, asserted to agree (the differential test does this at
    /// corpus scale; here it documents per-scenario expectations).
    fn run_both(slice: &[Stmt]) -> Vec<Diagnostic> {
        let flow = run_flow(slice);
        let syn = run_syntactic(slice);
        assert_eq!(
            flow.iter().map(|d| d.code).collect::<Vec<_>>(),
            syn.iter().map(|d| d.code).collect::<Vec<_>>(),
            "flow vs syntactic disagreement"
        );
        flow
    }

    #[test]
    fn consumed_refetch_is_df001() {
        let slice = vec![
            fetch(0, 16),
            Stmt::Assign {
                var: v(5),
                value: Expr::field(v(0), 0, 4),
            },
            fetch(1, 16),
        ];
        let diags = run_both(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df001);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn unconsumed_refetch_is_df002() {
        let diags = run_both(&[fetch(0, 8), fetch(1, 8)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df002);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn partial_overlap_detected() {
        let slice = vec![
            fetch(0, 16),
            Stmt::CopyToUser {
                dst: Expr::field(v(0), 0, 8),
                len: Expr::Const(4),
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::add(Expr::Arg, Expr::Const(12)),
                len: Expr::Const(8),
            },
        ];
        let diags = run_both(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df001);
    }

    #[test]
    fn disjoint_fetches_are_clean() {
        let slice = vec![
            fetch(0, 8),
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::add(Expr::Arg, Expr::Const(8)),
                len: Expr::Const(8),
            },
        ];
        assert!(run_both(&slice).is_empty());
    }

    #[test]
    fn nested_copy_fetches_are_not_reported() {
        // The Radeon PWRITE shape: second fetch at a user-data address.
        let slice = vec![
            fetch(0, 32),
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 24, 8),
                len: Expr::field(v(0), 16, 8),
            },
        ];
        assert!(run_both(&slice).is_empty());
    }

    #[test]
    fn exclusive_branches_do_not_conflict() {
        let both_branches_fetch = vec![Stmt::If {
            cond: Cond::Eq(Expr::Arg, Expr::Const(0)),
            then: vec![fetch(0, 16)],
            els: vec![fetch(1, 16)],
        }];
        assert!(run_both(&both_branches_fetch).is_empty());
    }

    #[test]
    fn branch_fetch_conflicts_with_later_fetch() {
        let slice = vec![
            Stmt::If {
                cond: Cond::Eq(Expr::Arg, Expr::Const(0)),
                then: vec![fetch(0, 16)],
                els: vec![],
            },
            fetch(1, 16),
        ];
        let diags = run_both(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df002);
    }

    #[test]
    fn loop_invariant_fetch_conflicts_with_itself() {
        let slice = vec![Stmt::ForRange {
            var: v(9),
            count: Expr::Const(4),
            body: vec![fetch(0, 8)],
        }];
        let diags = run_both(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df002);
    }

    #[test]
    fn loop_variant_fetch_is_clean() {
        let slice = vec![Stmt::ForRange {
            var: v(9),
            count: Expr::Const(4),
            body: vec![Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::add(Expr::Arg, Expr::mul(Expr::Var(v(9)), Expr::Const(16))),
                len: Expr::Const(16),
            }],
        }];
        assert!(run_both(&slice).is_empty());
    }

    // -- cases only the flow-sensitive engine gets right ---------------------

    #[test]
    fn upgrade_when_first_copy_consumed_after_refetch() {
        // The v1 blind spot: the first copy is consumed *after* the
        // re-fetch, so v1 can only ever say DF002.
        let slice = vec![
            fetch(0, 16),
            fetch(1, 16),
            Stmt::Assign {
                var: v(5),
                value: Expr::field(v(0), 0, 4),
            },
        ];
        let syn = run_syntactic(&slice);
        assert_eq!(syn.len(), 1);
        assert_eq!(syn[0].code, DiagCode::Df002, "v1 baseline misses the upgrade");
        let flow = run_flow(&slice);
        assert_eq!(flow.len(), 1);
        assert_eq!(flow[0].code, DiagCode::Df001);
        assert!(flow[0].message.contains("after the re-fetch"));
    }

    #[test]
    fn cross_helper_pair_is_found_without_inlining() {
        // fetch in the entry, re-fetch in one helper, consumption of the
        // first copy in another: three functions, one bug.
        let mut functions = BTreeMap::new();
        functions.insert(
            "ioctl".to_owned(),
            Function {
                body: vec![
                    fetch(0, 16),
                    Stmt::Call("refetch".to_owned()),
                    Stmt::Call("commit".to_owned()),
                ],
            },
        );
        functions.insert(
            "refetch".to_owned(),
            Function {
                body: vec![fetch(1, 16)],
            },
        );
        functions.insert(
            "commit".to_owned(),
            Function {
                body: vec![Stmt::Assign {
                    var: v(5),
                    value: Expr::field(v(0), 0, 4),
                }],
            },
        );
        let handler = Handler::new("ioctl", functions);
        let mut diags = Vec::new();
        let (blocks, iterations) = check("test", 0x1234, &handler, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::Df001);
        assert_eq!(diags[0].site.as_deref(), Some("refetch#0"));
        assert!(blocks >= 3);
        assert!(iterations >= 3);
    }

    #[test]
    fn helper_called_twice_reports_once() {
        let mut functions = BTreeMap::new();
        functions.insert(
            "ioctl".to_owned(),
            Function {
                body: vec![
                    Stmt::Call("pair".to_owned()),
                    Stmt::Call("pair".to_owned()),
                ],
            },
        );
        functions.insert(
            "pair".to_owned(),
            Function {
                // Self-contained double fetch inside the helper.
                body: vec![fetch(0, 8), fetch(1, 8)],
            },
        );
        let handler = Handler::new("ioctl", functions);
        let mut diags = Vec::new();
        check("test", 0x1234, &handler, &mut diags);
        // The helper is analyzed once (summaries, not inlining): the inner
        // pair fires at its one site; the second *call* also re-fetches
        // regions the first call left behind, at the same site.
        let sites: BTreeSet<_> = diags.iter().filter_map(|d| d.site.clone()).collect();
        assert_eq!(sites.len(), diags.len(), "one finding per site: {diags:?}");
        assert!(sites.iter().all(|s| s.starts_with("pair#")));
    }

    #[test]
    fn flow_findings_carry_sites() {
        let diags = run_flow(&[fetch(0, 8), fetch(1, 8)]);
        assert_eq!(diags[0].site.as_deref(), Some("ioctl#1"));
    }
}
