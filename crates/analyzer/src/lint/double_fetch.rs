//! Double-fetch (TOCTOU) detection — `DF001`/`DF002`.
//!
//! A handler that copies the same user region twice gives the process a
//! race window: flip the bytes between the fetches and the values that were
//! *validated* (or that sized a grant) differ from the values that are
//! *used*. The JIT evaluator pins repeated reads to a per-evaluation
//! snapshot (see [`crate::jit`]), but a handler that re-fetches at all is
//! still a bug worth surfacing at analysis time — the native (non-Paradice)
//! driver has no snapshot protecting it.
//!
//! * **DF001** (error): a fetch overlaps an earlier fetch whose buffer has
//!   already been *consumed* (a field of it fed an address, length, branch
//!   or assignment). This is the exploitable shape: decisions were made on
//!   bytes that are now being read again.
//! * **DF002** (warning): overlapping re-fetch with no consumption in
//!   between — wasteful and fragile, but no decision has been split across
//!   the two copies yet.
//!
//! The pass is deliberately conservative: only fetches whose address and
//! length are statically concrete (constant or `arg + k`) participate.
//! Nested-copy fetches at user-data-derived addresses are the JIT's
//! business and never reported here.

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{Stmt, VarId};
use crate::lint::envelope::{cond_field_bases, eval_expr, field_bases, merge_env, SymScalar};
use crate::lint::{DiagCode, Diagnostic};

/// Address-space class of a concrete fetch interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Base {
    /// Absolute user address.
    Abs,
    /// Relative to the ioctl argument.
    Arg,
}

/// A concrete fetched interval.
#[derive(Debug, Clone, Copy)]
struct Fetch {
    base: Base,
    start: u64,
    len: u64,
    /// The buffer variable the bytes landed in.
    var: VarId,
}

impl Fetch {
    fn overlaps(&self, other: &Fetch) -> bool {
        self.base == other.base
            && self.len > 0
            && other.len > 0
            && self.start < other.start + other.len
            && other.start < self.start + self.len
    }

    fn describe(&self) -> String {
        match self.base {
            Base::Abs => format!("[{:#x}, {:#x})", self.start, self.start + self.len),
            Base::Arg => format!("[arg+{}, arg+{})", self.start, self.start + self.len),
        }
    }
}

#[derive(Clone, Default)]
struct DfState {
    env: BTreeMap<VarId, SymScalar>,
    buffers: BTreeSet<VarId>,
    fetches: Vec<Fetch>,
    consumed: BTreeSet<VarId>,
}

struct DfCtx<'a> {
    driver: &'a str,
    cmd: u32,
    diags: Vec<Diagnostic>,
}

fn consume(state: &mut DfState, bases: BTreeSet<VarId>) {
    state.consumed.extend(bases);
}

fn walk(stmts: &[Stmt], state: &mut DfState, ctx: &mut DfCtx<'_>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                let mut bases = BTreeSet::new();
                field_bases(value, &mut bases);
                consume(state, bases);
                let value = eval_expr(&state.env, &state.buffers, value);
                state.env.insert(*var, value);
            }
            Stmt::CopyFromUser { dst, src, len } => {
                let mut bases = BTreeSet::new();
                field_bases(src, &mut bases);
                field_bases(len, &mut bases);
                consume(state, bases);
                let addr = eval_expr(&state.env, &state.buffers, src);
                let length = eval_expr(&state.env, &state.buffers, len);
                if let (Some((base, start)), SymScalar::Const(n)) = (
                    match addr {
                        SymScalar::Const(a) => Some((Base::Abs, a)),
                        SymScalar::ArgPlus(k) => Some((Base::Arg, k)),
                        _ => None,
                    },
                    length,
                ) {
                    let fetch = Fetch {
                        base,
                        start,
                        len: n,
                        var: *dst,
                    };
                    let mut worst: Option<(bool, Fetch)> = None;
                    for prior in &state.fetches {
                        if prior.overlaps(&fetch) {
                            let consumed = state.consumed.contains(&prior.var);
                            if worst.map_or(true, |(was_consumed, _)| consumed && !was_consumed)
                            {
                                worst = Some((consumed, *prior));
                            }
                        }
                    }
                    if let Some((consumed, prior)) = worst {
                        let (code, verb) = if consumed {
                            (DiagCode::Df001, "already-consumed")
                        } else {
                            (DiagCode::Df002, "previously-fetched")
                        };
                        ctx.diags.push(Diagnostic::new(
                            code,
                            ctx.driver,
                            Some(ctx.cmd),
                            format!(
                                "re-fetches {} user region {} (first copied into {}); a \
                                 concurrent thread can change the bytes between the fetches",
                                verb,
                                prior.describe(),
                                prior.var,
                            ),
                        ));
                    }
                    state.fetches.push(fetch);
                }
                state.buffers.insert(*dst);
                state.env.remove(dst);
            }
            Stmt::CopyToUser { dst, len } => {
                let mut bases = BTreeSet::new();
                field_bases(dst, &mut bases);
                field_bases(len, &mut bases);
                consume(state, bases);
            }
            Stmt::If { cond, then, els } => {
                let mut bases = BTreeSet::new();
                cond_field_bases(cond, &mut bases);
                consume(state, bases);
                let shared = state.fetches.len();
                let mut then_state = state.clone();
                walk(then, &mut then_state, ctx);
                walk(els, state, ctx);
                // Conflicts across exclusive branches are impossible, so they
                // were checked per-branch; afterwards, both branches' fetches
                // and consumption conservatively persist.
                state.env = merge_env(then_state.env, &state.env);
                state.buffers.extend(then_state.buffers);
                state.consumed.extend(then_state.consumed);
                state
                    .fetches
                    .extend(then_state.fetches.iter().skip(shared).copied());
            }
            Stmt::ForRange { var, count, body } => {
                let mut bases = BTreeSet::new();
                field_bases(count, &mut bases);
                consume(state, bases);
                // Two passes: the second sees the first's fetches, so a
                // loop-invariant concrete fetch conflicts with itself — the
                // "fetch the same header every iteration" bug. Loop-variant
                // addresses are opaque and never participate.
                state.env.insert(*var, SymScalar::Opaque);
                walk(body, state, ctx);
                walk(body, state, ctx);
            }
            Stmt::Return => return,
            Stmt::SwitchCmd { .. } | Stmt::Call(_) => {}
        }
    }
}

/// Runs the double-fetch pass over one command's specialized slice.
pub fn check(driver: &str, cmd: u32, slice: &[Stmt], diags: &mut Vec<Diagnostic>) {
    let mut ctx = DfCtx {
        driver,
        cmd,
        diags: Vec::new(),
    };
    let mut state = DfState::default();
    walk(slice, &mut state, &mut ctx);
    // The two-pass loop walk can report one site twice; keep each distinct
    // finding once.
    ctx.diags.dedup_by(|a, b| a.code == b.code && a.message == b.message);
    diags.extend(ctx.diags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;
    use crate::lint::Severity;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn fetch(dst: u32, len: u64) -> Stmt {
        Stmt::CopyFromUser {
            dst: v(dst),
            src: Expr::Arg,
            len: Expr::Const(len),
        }
    }

    fn run(slice: &[Stmt]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check("test", 0x1234, slice, &mut diags);
        diags
    }

    #[test]
    fn consumed_refetch_is_df001() {
        let slice = vec![
            fetch(0, 16),
            Stmt::Assign {
                var: v(5),
                value: Expr::field(v(0), 0, 4),
            },
            fetch(1, 16),
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df001);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn unconsumed_refetch_is_df002() {
        let diags = run(&[fetch(0, 8), fetch(1, 8)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df002);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn partial_overlap_detected() {
        let slice = vec![
            fetch(0, 16),
            Stmt::CopyToUser {
                dst: Expr::field(v(0), 0, 8),
                len: Expr::Const(4),
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::add(Expr::Arg, Expr::Const(12)),
                len: Expr::Const(8),
            },
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df001);
    }

    #[test]
    fn disjoint_fetches_are_clean() {
        let slice = vec![
            fetch(0, 8),
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::add(Expr::Arg, Expr::Const(8)),
                len: Expr::Const(8),
            },
        ];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn nested_copy_fetches_are_not_reported() {
        // The Radeon PWRITE shape: second fetch at a user-data address.
        let slice = vec![
            fetch(0, 32),
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 24, 8),
                len: Expr::field(v(0), 16, 8),
            },
        ];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn exclusive_branches_do_not_conflict() {
        let both_branches_fetch = vec![Stmt::If {
            cond: Cond::Eq(Expr::Arg, Expr::Const(0)),
            then: vec![fetch(0, 16)],
            els: vec![fetch(1, 16)],
        }];
        assert!(run(&both_branches_fetch).is_empty());
    }

    use crate::ir::Cond;

    #[test]
    fn branch_fetch_conflicts_with_later_fetch() {
        let slice = vec![
            Stmt::If {
                cond: Cond::Eq(Expr::Arg, Expr::Const(0)),
                then: vec![fetch(0, 16)],
                els: vec![],
            },
            fetch(1, 16),
        ];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df002);
    }

    #[test]
    fn loop_invariant_fetch_conflicts_with_itself() {
        let slice = vec![Stmt::ForRange {
            var: v(9),
            count: Expr::Const(4),
            body: vec![fetch(0, 8)],
        }];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Df002);
    }

    #[test]
    fn loop_variant_fetch_is_clean() {
        let slice = vec![Stmt::ForRange {
            var: v(9),
            count: Expr::Const(4),
            body: vec![Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::add(Expr::Arg, Expr::mul(Expr::Var(v(9)), Expr::Const(16))),
                len: Expr::Const(16),
            }],
        }];
        assert!(run(&slice).is_empty());
    }
}
