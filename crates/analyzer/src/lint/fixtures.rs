//! Seeded-bug fixture handler.
//!
//! A deliberately buggy driver IR that trips every static pass with a known
//! diagnostic code — the lint suite's ground truth. The integration tests
//! (and `paradice-lint --fixtures`) assert that each seeded bug fires with
//! *exactly* its expected code; a pass that goes quiet on its fixture is
//! broken, not clean.

use std::collections::BTreeMap;

use paradice_devfs::ioc::{io, iow, iowr, IoctlCmd};

use crate::extract::MAX_UNROLL;
use crate::ir::{Cond, Expr, Function, Handler, Stmt, VarId};

/// Double fetch with consumption in between → `DF001`.
pub const FIX_DOUBLE_FETCH: IoctlCmd = iowr(b'!', 1, 16);
/// Overlapping re-fetch without consumption → `DF002`.
pub const FIX_REFETCH: IoctlCmd = iow(b'!', 2, 8);
/// Declared 64-byte envelope, handler touches 8 → `OG001` (both directions).
pub const FIX_OVER_GRANT: IoctlCmd = iowr(b'!', 3, 64);
/// `_IOWR` declared but the handler never copies back → `OG002`.
pub const FIX_DEAD_DIR: IoctlCmd = iowr(b'!', 4, 16);
/// Constant loop past the unroll limit → `SH001`.
pub const FIX_BIG_LOOP: IoctlCmd = iow(b'!', 5, 4);
/// Opaque loop trip count → `SH002`.
pub const FIX_OPAQUE_LOOP: IoctlCmd = io(b'!', 6);
/// Nested-copy chain past the depth limit → `SH005`.
pub const FIX_DEEP_CHAIN: IoctlCmd = iow(b'!', 7, 16);
/// Calls a helper that does not exist → `SH006`.
pub const FIX_UNKNOWN_FN: IoctlCmd = io(b'!', 8);
/// Recursive helper → `SH003`.
pub const FIX_RECURSION: IoctlCmd = io(b'!', 9);
/// Cross-helper double fetch: one helper re-fetches, another consumes the
/// first copy *after* the re-fetch → `DF001` (flow pass only; the syntactic
/// walker, which classifies at fetch time, sees a harmless `DF002`).
pub const FIX_XHELPER_DF: IoctlCmd = iowr(b'!', 10, 16);
/// Fixed twin of [`FIX_XHELPER_DF`]: fetches once, helpers consume that one
/// copy → clean.
pub const FIX_XHELPER_DF_FIXED: IoctlCmd = iowr(b'!', 11, 16);
/// Nested copy sized `field * const` with no bounds check → `TA001`.
pub const FIX_OVERFLOW_LEN: IoctlCmd = iow(b'!', 12, 16);
/// Fixed twin of [`FIX_OVERFLOW_LEN`]: a dominating `if (count > max)
/// return;` guard before the sized copy → clean.
pub const FIX_OVERFLOW_LEN_FIXED: IoctlCmd = iow(b'!', 13, 16);

/// The fixture driver's name as reported in diagnostics.
pub const FIXTURE_DRIVER: &str = "fixture-buggy";

fn v(n: u32) -> VarId {
    VarId(n)
}

fn fetch(dst: u32, len: u64) -> Stmt {
    Stmt::CopyFromUser {
        dst: v(dst),
        src: Expr::Arg,
        len: Expr::Const(len),
    }
}

fn writeback(len: u64) -> Stmt {
    Stmt::CopyToUser {
        dst: Expr::Arg,
        len: Expr::Const(len),
    }
}

/// Builds the seeded-bug handler. Every arm trips exactly the pass named in
/// its command constant's docs; the duplicate `FIX_DOUBLE_FETCH` arm
/// additionally trips `SH004`.
pub fn buggy_handler() -> Handler {
    let deep_chain = {
        let mut body = vec![fetch(0, 16)];
        for i in 1..=5u32 {
            body.push(Stmt::CopyFromUser {
                dst: v(i),
                src: Expr::field(v(i - 1), 0, 8),
                len: Expr::Const(16),
            });
        }
        body
    };
    let entry = vec![Stmt::SwitchCmd {
        arms: vec![
            (
                FIX_DOUBLE_FETCH.raw(),
                vec![
                    fetch(0, 16),
                    // Consume a field of the first copy (a "validated" size)…
                    Stmt::Assign {
                        var: v(5),
                        value: Expr::field(v(0), 0, 4),
                    },
                    // …then fetch the same region again and use *that*.
                    fetch(1, 16),
                    writeback(16),
                ],
            ),
            (FIX_REFETCH.raw(), vec![fetch(0, 8), fetch(1, 8)]),
            (FIX_OVER_GRANT.raw(), vec![fetch(0, 8), writeback(8)]),
            (FIX_DEAD_DIR.raw(), vec![fetch(0, 16)]),
            (
                FIX_BIG_LOOP.raw(),
                vec![
                    fetch(0, 4),
                    Stmt::ForRange {
                        var: v(9),
                        count: Expr::Const(MAX_UNROLL * 2),
                        body: vec![Stmt::Assign {
                            var: v(3),
                            value: Expr::Var(v(9)),
                        }],
                    },
                ],
            ),
            (
                FIX_OPAQUE_LOOP.raw(),
                vec![Stmt::ForRange {
                    var: v(9),
                    count: Expr::Var(v(99)),
                    body: vec![],
                }],
            ),
            (FIX_DEEP_CHAIN.raw(), deep_chain),
            (FIX_UNKNOWN_FN.raw(), vec![Stmt::Call("missing_helper".to_owned())]),
            (FIX_RECURSION.raw(), vec![Stmt::Call("recurse".to_owned())]),
            (
                FIX_XHELPER_DF.raw(),
                vec![
                    fetch(0, 16),
                    // One helper re-fetches the same region…
                    Stmt::Call("xh_refetch".to_owned()),
                    // …another still consumes the *first* copy afterwards:
                    // the decision is split across two copies.
                    Stmt::Call("xh_commit".to_owned()),
                    writeback(16),
                ],
            ),
            (
                FIX_XHELPER_DF_FIXED.raw(),
                vec![
                    fetch(0, 16),
                    Stmt::Call("xh_commit_fixed".to_owned()),
                    writeback(16),
                ],
            ),
            (
                FIX_OVERFLOW_LEN.raw(),
                vec![
                    fetch(0, 16),
                    Stmt::CopyFromUser {
                        dst: v(1),
                        src: Expr::field(v(0), 8, 8),
                        len: Expr::mul(Expr::field(v(0), 0, 4), Expr::Const(16)),
                    },
                ],
            ),
            (
                FIX_OVERFLOW_LEN_FIXED.raw(),
                vec![
                    fetch(0, 16),
                    Stmt::If {
                        cond: Cond::Gt(Expr::field(v(0), 0, 4), Expr::Const(64)),
                        then: vec![Stmt::Return],
                        els: vec![],
                    },
                    Stmt::CopyFromUser {
                        dst: v(1),
                        src: Expr::field(v(0), 8, 8),
                        len: Expr::mul(Expr::field(v(0), 0, 4), Expr::Const(16)),
                    },
                ],
            ),
            // Duplicate arm: unreachable, `SH004`.
            (FIX_DOUBLE_FETCH.raw(), vec![Stmt::Return]),
        ],
        default: vec![Stmt::Return],
    }];
    let mut functions = BTreeMap::new();
    functions.insert("ioctl".to_owned(), Function { body: entry });
    functions.insert(
        "recurse".to_owned(),
        Function {
            body: vec![Stmt::Call("recurse".to_owned())],
        },
    );
    functions.insert(
        "xh_refetch".to_owned(),
        Function {
            body: vec![fetch(1, 16)],
        },
    );
    functions.insert(
        "xh_commit".to_owned(),
        Function {
            body: vec![
                Stmt::Assign {
                    var: v(5),
                    value: Expr::field(v(0), 0, 4),
                },
                Stmt::Assign {
                    var: v(6),
                    value: Expr::field(v(1), 4, 4),
                },
            ],
        },
    );
    functions.insert(
        "xh_commit_fixed".to_owned(),
        Function {
            body: vec![Stmt::Assign {
                var: v(5),
                value: Expr::field(v(0), 0, 4),
            }],
        },
    );
    Handler::new("ioctl", functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lint_handler, DiagCode};

    #[test]
    fn every_seeded_bug_fires_with_its_code() {
        let diags = lint_handler(FIXTURE_DRIVER, &buggy_handler());
        let fired = |code: DiagCode, cmd: IoctlCmd| {
            diags
                .iter()
                .any(|d| d.code == code && d.command == Some(cmd.raw()))
        };
        assert!(fired(DiagCode::Df001, FIX_DOUBLE_FETCH));
        assert!(fired(DiagCode::Df002, FIX_REFETCH));
        assert!(fired(DiagCode::Og001, FIX_OVER_GRANT));
        assert!(fired(DiagCode::Og002, FIX_DEAD_DIR));
        assert!(fired(DiagCode::Sh001, FIX_BIG_LOOP));
        assert!(fired(DiagCode::Sh002, FIX_OPAQUE_LOOP));
        assert!(fired(DiagCode::Sh004, FIX_DOUBLE_FETCH));
        assert!(fired(DiagCode::Sh005, FIX_DEEP_CHAIN));
        assert!(fired(DiagCode::Sh006, FIX_UNKNOWN_FN));
        assert!(fired(DiagCode::Sh003, FIX_RECURSION));
        assert!(fired(DiagCode::Df001, FIX_XHELPER_DF));
        assert!(fired(DiagCode::Ta001, FIX_OVERFLOW_LEN));
    }

    #[test]
    fn fixed_twins_are_clean() {
        let diags = lint_handler(FIXTURE_DRIVER, &buggy_handler());
        for cmd in [FIX_XHELPER_DF_FIXED, FIX_OVERFLOW_LEN_FIXED] {
            let on_cmd: Vec<_> = diags
                .iter()
                .filter(|d| d.command == Some(cmd.raw()))
                .collect();
            assert!(on_cmd.is_empty(), "{on_cmd:?}");
        }
    }

    #[test]
    fn cross_helper_double_fetch_upgrades_past_the_syntactic_pass() {
        // The syntactic walker classifies at fetch time: when the helper
        // re-fetches, nothing is consumed yet, so it reports only DF002.
        // The flow pass sees the post-re-fetch consumption via the backward
        // summary and upgrades to DF001.
        use crate::extract::specialize_command;
        let handler = buggy_handler();
        let slice = specialize_command(&handler, FIX_XHELPER_DF.raw()).unwrap();
        let mut syn = Vec::new();
        crate::lint::double_fetch::check_syntactic(
            FIXTURE_DRIVER,
            FIX_XHELPER_DF.raw(),
            &slice,
            &mut syn,
        );
        assert!(syn.iter().any(|d| d.code == DiagCode::Df002), "{syn:?}");
        assert!(!syn.iter().any(|d| d.code == DiagCode::Df001), "{syn:?}");
    }

    #[test]
    fn no_cross_contamination() {
        // The clean-by-construction arms must not pick up each other's
        // codes: the refetch arm must not be DF001, the over-grant arm must
        // not double-fetch.
        let diags = lint_handler(FIXTURE_DRIVER, &buggy_handler());
        assert!(!diags
            .iter()
            .any(|d| d.code == DiagCode::Df001 && d.command == Some(FIX_REFETCH.raw())));
        assert!(!diags
            .iter()
            .any(|d| d.code == DiagCode::Df001 && d.command == Some(FIX_OVER_GRANT.raw())));
        assert!(!diags
            .iter()
            .any(|d| d.code == DiagCode::Og001 && d.command == Some(FIX_DOUBLE_FETCH.raw())));
        // The taint fixture must not also double-fetch, and vice versa.
        assert!(!diags
            .iter()
            .any(|d| d.code == DiagCode::Df001 && d.command == Some(FIX_OVERFLOW_LEN.raw())));
        assert!(!diags
            .iter()
            .any(|d| d.code == DiagCode::Ta001 && d.command == Some(FIX_XHELPER_DF.raw())));
    }
}
