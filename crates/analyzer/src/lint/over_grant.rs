//! Over-grant detection — `OG001`/`OG002`/`OG003`.
//!
//! The CVD frontend derives the grant envelope for simple commands straight
//! from the `_IOC` encoding: direction and parameter-struct size "embed the
//! size of these data structures and the direction of the copy" (paper
//! §4.1). Least privilege then demands the envelope match what the handler
//! actually does:
//!
//! * **OG001** (error): the declared envelope is *provably wider* than
//!   every operation the handler can perform in that direction — the grant
//!   exposes process memory the driver never touches.
//! * **OG002** (error): a declared direction is never performed at all
//!   (e.g. `_IOWR` but the handler never copies back). The whole
//!   direction's grant is dead weight.
//! * **OG003** (warning): the handler reaches *outside* the declared
//!   envelope with a statically-concrete access — under Paradice the
//!   hypervisor would block it at runtime; natively it is an ABI lie.
//!
//! Accesses at user-data-derived or opaque addresses (nested copies) are
//! granted precisely by the JIT path and suppress OG001/OG002 for their
//! direction — the pass only claims what it can prove.

use paradice_devfs::ioc::IoctlCmd;

use crate::ir::{OpKind, Stmt};
use crate::lint::envelope::{collect_accesses, Access, SymScalar};
use crate::lint::{DiagCode, Diagnostic};

fn direction_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::CopyFromUser => "from-user",
        OpKind::CopyToUser => "to-user",
    }
}

fn check_direction(
    driver: &str,
    cmd: u32,
    accesses: &[Access],
    kind: OpKind,
    declared: bool,
    declared_size: u64,
    diags: &mut Vec<Diagnostic>,
) {
    let of_kind: Vec<&Access> = accesses.iter().filter(|a| a.kind == kind).collect();
    let has_dynamic = of_kind
        .iter()
        .any(|a| a.addr.is_dynamic() || a.len.is_none());
    let arg_intervals: Vec<(u64, u64)> =
        of_kind.iter().filter_map(|a| a.arg_interval()).collect();
    let max_extent = arg_intervals.iter().map(|(_, end)| *end).max().unwrap_or(0);

    if declared && declared_size > 0 {
        if of_kind.is_empty() {
            diags.push(Diagnostic::new(
                DiagCode::Og002,
                driver,
                Some(cmd),
                format!(
                    "command declares a {}-byte {} envelope but the handler never copies \
                     in that direction; the grant is pure over-exposure",
                    declared_size,
                    direction_name(kind),
                ),
            ));
        } else if !has_dynamic && max_extent < declared_size {
            // Grant-width minimization hint: re-encode the command with the
            // size the handler provably needs, so the frontend's `_IOC`
            // fallback would derive the tight envelope.
            let ioc = IoctlCmd(cmd);
            let tight = IoctlCmd::new(ioc.dir(), ioc.ty(), ioc.nr(), max_extent as u32);
            diags.push(Diagnostic::new(
                DiagCode::Og001,
                driver,
                Some(cmd),
                format!(
                    "command declares a {}-byte {} envelope but the handler provably \
                     touches at most {} bytes of it; the grant should shrink to match \
                     (tight encoding: {tight})",
                    declared_size,
                    direction_name(kind),
                    max_extent,
                ),
            ));
        }
    }

    // Escapes: concrete accesses beyond the declared envelope (or in an
    // undeclared direction). Dynamic accesses are the JIT's to grant.
    for (start, end) in &arg_intervals {
        if !declared {
            diags.push(Diagnostic::new(
                DiagCode::Og003,
                driver,
                Some(cmd),
                format!(
                    "handler performs a {} copy of [arg+{}, arg+{}) but the command \
                     number declares no {} direction; the hypervisor would block it",
                    direction_name(kind),
                    start,
                    end,
                    direction_name(kind),
                ),
            ));
        } else if *end > declared_size {
            diags.push(Diagnostic::new(
                DiagCode::Og003,
                driver,
                Some(cmd),
                format!(
                    "handler {} copy of [arg+{}, arg+{}) runs past the declared \
                     {}-byte envelope",
                    direction_name(kind),
                    start,
                    end,
                    declared_size,
                ),
            ));
        }
    }
}

/// Runs the over-grant pass over one command's specialized slice.
pub fn check(driver: &str, cmd: u32, slice: &[Stmt], diags: &mut Vec<Diagnostic>) {
    let ioc = IoctlCmd(cmd);
    let accesses = collect_accesses(slice);
    // Absolute-address accesses don't participate in the arg envelope; they
    // are rare (fixed mappings) and granted as absolute static templates.
    let accesses: Vec<Access> = accesses
        .into_iter()
        .filter(|a| !matches!(a.addr, SymScalar::Const(_)))
        .collect();
    let size = u64::from(ioc.size());
    check_direction(
        driver,
        cmd,
        &accesses,
        OpKind::CopyFromUser,
        ioc.dir().copies_from_user(),
        size,
        diags,
    );
    check_direction(
        driver,
        cmd,
        &accesses,
        OpKind::CopyToUser,
        ioc.dir().copies_to_user(),
        size,
        diags,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, VarId};
    use paradice_devfs::ioc::{io, ior, iow, iowr};

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn inout(len: u64) -> Vec<Stmt> {
        vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(len),
            },
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::Const(len),
            },
        ]
    }

    fn run(cmd: u32, slice: &[Stmt]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check("test", cmd, slice, &mut diags);
        diags
    }

    #[test]
    fn matching_envelope_is_clean() {
        assert!(run(iowr(b'X', 1, 16).raw(), &inout(16)).is_empty());
    }

    #[test]
    fn wider_declaration_is_og001_per_direction() {
        let diags = run(iowr(b'X', 2, 64).raw(), &inout(8));
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == DiagCode::Og001));
    }

    #[test]
    fn og001_suggests_the_tight_encoding() {
        let diags = run(iowr(b'X', 2, 64).raw(), &inout(8));
        let tight = iowr(b'X', 2, 8);
        assert!(
            diags
                .iter()
                .all(|d| d.message.contains(&format!("tight encoding: {tight}"))),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_direction_is_og002() {
        // _IOWR declared, handler only copies in.
        let slice = vec![Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(4),
        }];
        let diags = run(iowr(b'X', 3, 4).raw(), &slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Og002);
    }

    #[test]
    fn escape_past_envelope_is_og003() {
        let slice = vec![Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::add(Expr::Arg, Expr::Const(8)),
            len: Expr::Const(16),
        }];
        let diags = run(iow(b'X', 4, 16).raw(), &slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Og003);
    }

    #[test]
    fn undeclared_direction_is_og003() {
        // _IOR declared (to-user only) but the handler also reads.
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(8),
            },
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::Const(8),
            },
        ];
        let diags = run(ior(b'X', 5, 8).raw(), &slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Og003);
    }

    #[test]
    fn nested_copies_suppress_og001() {
        // PWRITE shape: declared 32, concrete fetch covers 32, second fetch
        // dynamic. No over-grant provable.
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(32),
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 24, 8),
                len: Expr::field(v(0), 16, 8),
            },
        ];
        assert!(run(iow(b'X', 6, 32).raw(), &slice).is_empty());
    }

    #[test]
    fn io_command_with_no_ops_is_clean() {
        assert!(run(io(b'X', 7).raw(), &[Stmt::Return]).is_empty());
    }

    #[test]
    fn io_command_with_ops_is_og003() {
        let slice = vec![Stmt::CopyToUser {
            dst: Expr::Arg,
            len: Expr::Const(4),
        }];
        let diags = run(io(b'X', 8).raw(), &slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Og003);
    }
}
