//! Shared symbolic machinery for the lint passes.
//!
//! Every pass walks a *specialized slice* (see
//! [`specialize_command`](crate::extract::specialize_command)) and needs the
//! same question answered: "what does this address/length expression look
//! like relative to the ioctl argument?". [`SymScalar`] is the lint suite's
//! slightly coarser cousin of the extractor's internal lattice — it keeps
//! the distinction between *user-data-derived* values (nested copies; fine,
//! the JIT grants them precisely) and *opaque* values (unbound variables,
//! nonlinear arithmetic; the analyzer can say nothing about them).

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{Cond, Expr, OpKind, Stmt, VarId};

/// Symbolic value of a scalar expression in a specialized slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymScalar {
    /// A compile-time constant (absolute address or literal length).
    Const(u64),
    /// The ioctl argument plus a constant offset — the declared-envelope
    /// case.
    ArgPlus(u64),
    /// Derived from bytes copied in from user space (nested-copy data; the
    /// JIT path grants these exactly at runtime).
    UserData,
    /// Nothing useful is known (unbound variable, nonlinear arithmetic).
    Opaque,
}

impl SymScalar {
    /// Whether a memory access at this address can escape static reasoning.
    pub fn is_dynamic(self) -> bool {
        matches!(self, SymScalar::UserData | SymScalar::Opaque)
    }
}

/// Evaluates an expression against an environment of scalar bindings and a
/// set of variables known to hold user-copied buffers.
pub fn eval_expr(
    env: &BTreeMap<VarId, SymScalar>,
    buffers: &BTreeSet<VarId>,
    expr: &Expr,
) -> SymScalar {
    match expr {
        Expr::Const(value) => SymScalar::Const(*value),
        Expr::Arg => SymScalar::ArgPlus(0),
        // Slices are specialized to one command, but the constant is not
        // threaded here; `Cmd` in address math is driver-defined weirdness.
        Expr::Cmd => SymScalar::Opaque,
        Expr::Var(var) => env.get(var).copied().unwrap_or(SymScalar::Opaque),
        Expr::Field { base, .. } => {
            if buffers.contains(base) {
                SymScalar::UserData
            } else {
                SymScalar::Opaque
            }
        }
        Expr::Add(a, b) => match (eval_expr(env, buffers, a), eval_expr(env, buffers, b)) {
            (SymScalar::Const(x), SymScalar::Const(y)) => SymScalar::Const(x.wrapping_add(y)),
            (SymScalar::ArgPlus(x), SymScalar::Const(y))
            | (SymScalar::Const(y), SymScalar::ArgPlus(x)) => {
                SymScalar::ArgPlus(x.wrapping_add(y))
            }
            (SymScalar::UserData, _) | (_, SymScalar::UserData) => SymScalar::UserData,
            _ => SymScalar::Opaque,
        },
        Expr::Mul(a, b) => match (eval_expr(env, buffers, a), eval_expr(env, buffers, b)) {
            (SymScalar::Const(x), SymScalar::Const(y)) => SymScalar::Const(x.wrapping_mul(y)),
            (SymScalar::UserData, _) | (_, SymScalar::UserData) => SymScalar::UserData,
            _ => SymScalar::Opaque,
        },
    }
}

/// Collects every buffer variable whose *fields* an expression reads — the
/// consumption signal the double-fetch pass keys on.
pub fn field_bases(expr: &Expr, out: &mut BTreeSet<VarId>) {
    match expr {
        Expr::Field { base, .. } => {
            out.insert(*base);
        }
        Expr::Add(a, b) | Expr::Mul(a, b) => {
            field_bases(a, out);
            field_bases(b, out);
        }
        Expr::Const(_) | Expr::Arg | Expr::Cmd | Expr::Var(_) => {}
    }
}

/// [`field_bases`] over a condition's both sides.
pub fn cond_field_bases(cond: &Cond, out: &mut BTreeSet<VarId>) {
    let (a, b) = match cond {
        Cond::Eq(a, b) | Cond::Ne(a, b) | Cond::Lt(a, b) | Cond::Gt(a, b) => (a, b),
    };
    field_bases(a, out);
    field_bases(b, out);
}

/// Merges the variable environments of two exclusive branches: bindings that
/// agree survive, everything else degrades to [`SymScalar::Opaque`].
pub fn merge_env(
    mut then_env: BTreeMap<VarId, SymScalar>,
    els_env: &BTreeMap<VarId, SymScalar>,
) -> BTreeMap<VarId, SymScalar> {
    for (var, value) in els_env {
        match then_env.get(var) {
            Some(existing) if existing == value => {}
            _ => {
                then_env.insert(*var, SymScalar::Opaque);
            }
        }
    }
    let stale: Vec<VarId> = then_env
        .keys()
        .filter(|var| !els_env.contains_key(*var))
        .copied()
        .collect();
    for var in stale {
        then_env.insert(var, SymScalar::Opaque);
    }
    then_env
}

/// One user-memory access observed while walking a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Copy direction.
    pub kind: OpKind,
    /// Symbolic address.
    pub addr: SymScalar,
    /// Constant byte length, if statically known.
    pub len: Option<u64>,
    /// Whether the access sits inside a `ForRange` body.
    pub in_loop: bool,
}

impl Access {
    /// The `[offset, offset+len)` interval inside the declared `arg`
    /// envelope, when both ends are statically known.
    pub fn arg_interval(&self) -> Option<(u64, u64)> {
        match (self.addr, self.len) {
            (SymScalar::ArgPlus(offset), Some(len)) => Some((offset, offset + len)),
            _ => None,
        }
    }
}

fn walk(
    stmts: &[Stmt],
    env: &mut BTreeMap<VarId, SymScalar>,
    buffers: &mut BTreeSet<VarId>,
    in_loop: bool,
    out: &mut Vec<Access>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                let value = eval_expr(env, buffers, value);
                env.insert(*var, value);
            }
            Stmt::CopyFromUser { dst, src, len } => {
                let addr = eval_expr(env, buffers, src);
                let len = match eval_expr(env, buffers, len) {
                    SymScalar::Const(n) => Some(n),
                    _ => None,
                };
                out.push(Access {
                    kind: OpKind::CopyFromUser,
                    addr,
                    len,
                    in_loop,
                });
                buffers.insert(*dst);
                env.remove(dst);
            }
            Stmt::CopyToUser { dst, len } => {
                let addr = eval_expr(env, buffers, dst);
                let len = match eval_expr(env, buffers, len) {
                    SymScalar::Const(n) => Some(n),
                    _ => None,
                };
                out.push(Access {
                    kind: OpKind::CopyToUser,
                    addr,
                    len,
                    in_loop,
                });
            }
            Stmt::If { then, els, .. } => {
                let mut then_env = env.clone();
                let mut then_buffers = buffers.clone();
                walk(then, &mut then_env, &mut then_buffers, in_loop, out);
                walk(els, env, buffers, in_loop, out);
                *env = merge_env(then_env, env);
                buffers.extend(then_buffers);
            }
            Stmt::ForRange { var, body, .. } => {
                // One conservative pass with the counter opaque: accesses
                // whose address depends on it surface as dynamic, which is
                // exactly how the grant machinery must treat them.
                env.insert(*var, SymScalar::Opaque);
                walk(body, env, buffers, true, out);
            }
            Stmt::Return => return,
            // Slices are specialized; anything left is malformed and the
            // orchestrator reports it before the passes run.
            Stmt::SwitchCmd { .. } | Stmt::Call(_) => {}
        }
    }
}

/// Collects every user-memory access a specialized slice can perform, over
/// *all* branches (both arms of each `If`, loop bodies once).
pub fn collect_accesses(slice: &[Stmt]) -> Vec<Access> {
    let mut env = BTreeMap::new();
    let mut buffers = BTreeSet::new();
    let mut out = Vec::new();
    walk(slice, &mut env, &mut buffers, false, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    #[test]
    fn accesses_collected_across_branches() {
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(16),
            },
            Stmt::If {
                cond: Cond::Ne(Expr::field(v(0), 0, 4), Expr::Const(0)),
                then: vec![Stmt::CopyToUser {
                    dst: Expr::add(Expr::Arg, Expr::Const(8)),
                    len: Expr::Const(8),
                }],
                els: vec![Stmt::CopyToUser {
                    dst: Expr::Arg,
                    len: Expr::Const(4),
                }],
            },
        ];
        let accesses = collect_accesses(&slice);
        assert_eq!(accesses.len(), 3);
        assert_eq!(accesses[1].arg_interval(), Some((8, 16)));
        assert_eq!(accesses[2].arg_interval(), Some((0, 4)));
    }

    #[test]
    fn loop_counter_is_opaque() {
        let slice = vec![Stmt::ForRange {
            var: v(1),
            count: Expr::Const(4),
            body: vec![Stmt::CopyToUser {
                dst: Expr::add(Expr::Arg, Expr::mul(Expr::Var(v(1)), Expr::Const(16))),
                len: Expr::Const(16),
            }],
        }];
        let accesses = collect_accesses(&slice);
        assert_eq!(accesses.len(), 1);
        assert!(accesses[0].in_loop);
        assert!(accesses[0].addr.is_dynamic());
    }

    #[test]
    fn nested_copy_addresses_are_user_data() {
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(16),
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::field(v(0), 0, 8),
                len: Expr::field(v(0), 8, 4),
            },
        ];
        let accesses = collect_accesses(&slice);
        assert_eq!(accesses[1].addr, SymScalar::UserData);
        assert_eq!(accesses[1].len, None);
    }

    #[test]
    fn field_bases_found_in_nested_arithmetic() {
        let expr = Expr::add(
            Expr::field(v(3), 0, 8),
            Expr::mul(Expr::Var(v(9)), Expr::field(v(4), 4, 4)),
        );
        let mut bases = BTreeSet::new();
        field_bases(&expr, &mut bases);
        assert_eq!(bases.into_iter().collect::<Vec<_>>(), vec![v(3), v(4)]);
    }

    #[test]
    fn merge_env_keeps_agreement_only() {
        let mut a = BTreeMap::new();
        a.insert(v(0), SymScalar::Const(1));
        a.insert(v(1), SymScalar::Const(2));
        let mut b = BTreeMap::new();
        b.insert(v(0), SymScalar::Const(1));
        b.insert(v(1), SymScalar::Const(3));
        b.insert(v(2), SymScalar::Const(4));
        let merged = merge_env(a, &b);
        assert_eq!(merged[&v(0)], SymScalar::Const(1));
        assert_eq!(merged[&v(1)], SymScalar::Opaque);
        assert_eq!(merged[&v(2)], SymScalar::Opaque);
    }
}
