//! Dispatch-structure hazards — `SH004`/`SH005`.
//!
//! * **SH004** (warning): a dead `switch (cmd)` arm — either a duplicate of
//!   an earlier arm in the same switch (first match wins, so the second body
//!   is unreachable) or an inner switch arm that can never match because an
//!   enclosing arm already pinned the command to a different value. Dead
//!   arms are how handlers drift out of sync with their command tables.
//! * **SH005** (warning): a nested-copy chain deeper than
//!   [`NESTED_CHAIN_LIMIT`] — fetch → field → fetch → field → … Each level
//!   multiplies the JIT's runtime work and widens the surface a malicious
//!   process can steer; real drivers (Radeon CS, i915 EXECBUFFER2) stop at
//!   depth 3.

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{Handler, Stmt, VarId};
use crate::lint::envelope::field_bases;
use crate::lint::{DiagCode, Diagnostic};

/// Deepest fetch-field-fetch chain considered reasonable.
pub const NESTED_CHAIN_LIMIT: usize = 4;

fn check_switches(stmts: &[Stmt], pinned: Option<u32>, driver: &str, diags: &mut Vec<Diagnostic>) {
    for stmt in stmts {
        match stmt {
            Stmt::SwitchCmd { arms, default } => {
                let mut seen: BTreeSet<u32> = BTreeSet::new();
                for (cmd, body) in arms {
                    if !seen.insert(*cmd) {
                        diags.push(Diagnostic::new(
                            DiagCode::Sh004,
                            driver,
                            Some(*cmd),
                            format!(
                                "duplicate switch arm for command {cmd:#010x}; dispatch \
                                 takes the first match, this body is unreachable",
                            ),
                        ));
                    } else if let Some(outer) = pinned {
                        if outer != *cmd {
                            diags.push(Diagnostic::new(
                                DiagCode::Sh004,
                                driver,
                                Some(*cmd),
                                format!(
                                    "switch arm for command {cmd:#010x} is nested under \
                                     an arm that already pinned the command to \
                                     {outer:#010x}; it can never match",
                                ),
                            ));
                        }
                    }
                    check_switches(body, Some(*cmd), driver, diags);
                }
                check_switches(default, pinned, driver, diags);
            }
            Stmt::If { then, els, .. } => {
                check_switches(then, pinned, driver, diags);
                check_switches(els, pinned, driver, diags);
            }
            Stmt::ForRange { body, .. } => check_switches(body, pinned, driver, diags),
            _ => {}
        }
    }
}

/// Handler-level dispatch check (`SH004`), walked over every function body.
pub fn check_handler(driver: &str, handler: &Handler, diags: &mut Vec<Diagnostic>) {
    let entry = handler
        .function(handler.entry())
        .expect("entry checked at construction");
    check_switches(&entry.body, None, driver, diags);
}

fn chain_walk(
    stmts: &[Stmt],
    depth: &mut BTreeMap<VarId, usize>,
    deepest: &mut usize,
) {
    for stmt in stmts {
        match stmt {
            Stmt::CopyFromUser { dst, src, len } => {
                let mut bases = BTreeSet::new();
                field_bases(src, &mut bases);
                field_bases(len, &mut bases);
                let feeding = bases
                    .iter()
                    .filter_map(|base| depth.get(base))
                    .copied()
                    .max()
                    .unwrap_or(0);
                let this = feeding + 1;
                depth.insert(*dst, this);
                *deepest = (*deepest).max(this);
            }
            Stmt::If { then, els, .. } => {
                chain_walk(then, depth, deepest);
                chain_walk(els, depth, deepest);
            }
            Stmt::ForRange { body, .. } => chain_walk(body, depth, deepest),
            _ => {}
        }
    }
}

/// Per-command nested-copy chain-depth check (`SH005`).
pub fn check_chain_depth(driver: &str, cmd: u32, slice: &[Stmt], diags: &mut Vec<Diagnostic>) {
    let mut depth = BTreeMap::new();
    let mut deepest = 0;
    chain_walk(slice, &mut depth, &mut deepest);
    if deepest > NESTED_CHAIN_LIMIT {
        diags.push(Diagnostic::new(
            DiagCode::Sh005,
            driver,
            Some(cmd),
            format!(
                "nested-copy chain reaches depth {deepest} (limit \
                 {NESTED_CHAIN_LIMIT}); each level is a user-steered fetch the JIT \
                 must chase at runtime",
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn arm(cmd: u32) -> (u32, Vec<Stmt>) {
        (cmd, vec![Stmt::Return])
    }

    #[test]
    fn duplicate_arm_is_sh004() {
        let handler = Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![arm(1), arm(2), arm(1)],
            default: vec![],
        }]);
        let mut diags = Vec::new();
        check_handler("test", &handler, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Sh004);
        assert_eq!(diags[0].command, Some(1));
    }

    #[test]
    fn pinned_inner_arm_is_sh004() {
        let handler = Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![(
                1,
                vec![Stmt::SwitchCmd {
                    arms: vec![arm(1), arm(2)],
                    default: vec![],
                }],
            )],
            default: vec![],
        }]);
        let mut diags = Vec::new();
        check_handler("test", &handler, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].command, Some(2));
    }

    #[test]
    fn distinct_arms_are_clean() {
        let handler = Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![arm(1), arm(2), arm(3)],
            default: vec![],
        }]);
        let mut diags = Vec::new();
        check_handler("test", &handler, &mut diags);
        assert!(diags.is_empty());
    }

    fn chained_fetch(dst: u32, from: u32) -> Stmt {
        Stmt::CopyFromUser {
            dst: v(dst),
            src: Expr::field(v(from), 0, 8),
            len: Expr::Const(16),
        }
    }

    #[test]
    fn shallow_chain_is_clean() {
        // Radeon CS depth: 3.
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(16),
            },
            chained_fetch(1, 0),
            chained_fetch(2, 1),
        ];
        let mut diags = Vec::new();
        check_chain_depth("test", 0, &slice, &mut diags);
        assert!(diags.is_empty());
    }

    #[test]
    fn deep_chain_is_sh005() {
        let mut slice = vec![Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(16),
        }];
        for i in 1..=(NESTED_CHAIN_LIMIT as u32) {
            slice.push(chained_fetch(i, i - 1));
        }
        let mut diags = Vec::new();
        check_chain_depth("test", 0, &slice, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Sh005);
    }
}
