//! Static lint suite over driver-handler IR (`paradice-lint`).
//!
//! The extractor answers "*what* memory operations will this command
//! perform?"; the lint suite answers "*should it*?". Each pass walks the
//! same specialized slices the extractor produces and reports
//! [`Diagnostic`]s with stable codes:
//!
//! | Code | Severity | Pass | Meaning |
//! |---|---|---|---|
//! | `DF001` | error | [`double_fetch`] | re-fetch of an already-consumed user region (TOCTOU) |
//! | `DF002` | warning | [`double_fetch`] | overlapping re-fetch, nothing consumed between |
//! | `OG001` | error | [`over_grant`] | declared envelope provably wider than handler operations |
//! | `OG002` | error | [`over_grant`] | declared copy direction never performed |
//! | `OG003` | warning | [`over_grant`] | concrete access outside the declared envelope |
//! | `SH001` | warning | [`loops`] | constant trip count above the unroll limit |
//! | `SH002` | warning | [`loops`] | opaque trip count |
//! | `SH003` | error | orchestrator | recursion reaches the call-depth limit |
//! | `SH004` | warning | [`dispatch`] | dead/duplicate `switch (cmd)` arm |
//! | `SH005` | warning | [`dispatch`] | nested-copy chain deeper than the limit |
//! | `SH006` | error | orchestrator | call to an unknown helper function |
//! | `CF001` | error | [`conformance`] | executed operation outside every grant |
//! | `CF002` | warning | [`conformance`] | runtime grants far wider than needed / unjustified |
//! | `CF003` | error | [`conformance`] | runtime command unknown to the handler IR |
//! | `CF004` | error | [`conformance`] | hypervisor audit log records a blocked operation |
//! | `TA001` | error | [`taint`] | user-controlled copy length through arithmetic, no dominating bounds check |
//! | `TA002` | warning | [`taint`] | raw user-controlled copy length, no dominating bounds check |
//! | `WP001` | error | [`wire`] | wire-protocol decode re-reads a shared-page region |
//! | `RP001` | error | [`replay`] | recorded memory operation outside the declared grants, or hypervisor-rejected |
//! | `RP002` | error | [`replay`] | structurally malformed trace (orphan/duplicate span events) |
//! | `RP003` | warning | [`replay`] | span never ended; recording stopped mid-operation |
//! | `RP004` | warning | `--replay` caller | traced device has no handler IR for the envelope check |
//! | `RP005` | error | [`replay`] | memory operation recorded after its driver VM was marked dead (containment breach) |
//! | `RP006` | error | [`replay`] | span whose wire bytes were tampered in flight completed successfully |
//! | `VP001` | error | `paradice-verify` | grant-table property disproved (soundness/completeness/batch counterexample) |
//! | `VP002` | error | `paradice-verify` | ring-index property disproved (window/aliasing/doorbell counterexample) |
//! | `VP003` | error | `paradice-verify` | wire-codec property disproved (round-trip/single-read counterexample) |
//! | `VP004` | error | `paradice-verify` | model/code drift: checker model and real implementation disagree |
//! | `VP005` | error | `paradice-verify` | interleaving property disproved (torn read / lost wakeup / freed-snapshot counterexample) |
//! | `MO001` | error | [`race`](crate::race) | publication-class store (publish/recycle) weaker than `Release` |
//! | `MO002` | error | [`race`](crate::race) | consumption gate load weaker than `Acquire` |
//! | `MO003` | error | [`race`](crate::race) | publishing site with no acquire-or-stronger load on any consumer path |
//! | `MO004` | error | [`race`](crate::race) | last write before a doorbell ring weaker than `Release` |
//! | `MO005` | error | [`race`](crate::race) | Dekker-style gate access weaker than `SeqCst` (lost-wakeup shape) |
//! | `MO006` | warning | [`race`](crate::race) | `SeqCst` on a non-gate edge (needless full fence on a hot path) |
//! | `RC001` | error | [`race`](crate::race) | atomic-site roles mixed (edge inconsistent with declared role, or duplicate site) |
//! | `RC002` | error | [`race`](crate::race) | group with payload accesses but no release/acquire publication pair |
//! | `RC003` | error | [`race`](crate::race) | access kind inconsistent with its protocol edge (e.g. non-RMW reservation) |
//!
//! Shipped drivers whose ABI genuinely deviates (e.g. a Linux `_IOWR`
//! command whose scaled driver only uses one direction) carry
//! [`AllowEntry`]s: the finding still appears, downgraded to
//! [`Severity::Info`] with the recorded justification — allowlisting is
//! documentation, not suppression.

pub mod conformance;
pub mod dispatch;
pub mod double_fetch;
pub mod envelope;
pub mod fixtures;
pub mod loops;
pub mod over_grant;
pub mod replay;
pub mod taint;
pub mod wire;

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

use crate::extract::{specialize_command, ExtractionError};
use crate::ir::Handler;

/// How bad a finding is. `Error`-class findings fail `paradice-lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (allowlisted findings land here).
    Info,
    /// Suspicious but not exploitable on its own.
    Warning,
    /// An isolation or correctness bug.
    Error,
}

impl Severity {
    /// Lowercase name, as rendered in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. See the module docs for the full table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the code table lives in the module docs
pub enum DiagCode {
    Df001,
    Df002,
    Og001,
    Og002,
    Og003,
    Sh001,
    Sh002,
    Sh003,
    Sh004,
    Sh005,
    Sh006,
    Cf001,
    Cf002,
    Cf003,
    Cf004,
    Rp001,
    Rp002,
    Rp003,
    Rp004,
    Rp005,
    Rp006,
    Ta001,
    Ta002,
    Wp001,
    Vp001,
    Vp002,
    Vp003,
    Vp004,
    Vp005,
    Mo001,
    Mo002,
    Mo003,
    Mo004,
    Mo005,
    Mo006,
    Rc001,
    Rc002,
    Rc003,
}

impl DiagCode {
    /// The canonical code string (`"DF001"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::Df001 => "DF001",
            DiagCode::Df002 => "DF002",
            DiagCode::Og001 => "OG001",
            DiagCode::Og002 => "OG002",
            DiagCode::Og003 => "OG003",
            DiagCode::Sh001 => "SH001",
            DiagCode::Sh002 => "SH002",
            DiagCode::Sh003 => "SH003",
            DiagCode::Sh004 => "SH004",
            DiagCode::Sh005 => "SH005",
            DiagCode::Sh006 => "SH006",
            DiagCode::Cf001 => "CF001",
            DiagCode::Cf002 => "CF002",
            DiagCode::Cf003 => "CF003",
            DiagCode::Cf004 => "CF004",
            DiagCode::Rp001 => "RP001",
            DiagCode::Rp002 => "RP002",
            DiagCode::Rp003 => "RP003",
            DiagCode::Rp004 => "RP004",
            DiagCode::Rp005 => "RP005",
            DiagCode::Rp006 => "RP006",
            DiagCode::Ta001 => "TA001",
            DiagCode::Ta002 => "TA002",
            DiagCode::Wp001 => "WP001",
            DiagCode::Vp001 => "VP001",
            DiagCode::Vp002 => "VP002",
            DiagCode::Vp003 => "VP003",
            DiagCode::Vp004 => "VP004",
            DiagCode::Vp005 => "VP005",
            DiagCode::Mo001 => "MO001",
            DiagCode::Mo002 => "MO002",
            DiagCode::Mo003 => "MO003",
            DiagCode::Mo004 => "MO004",
            DiagCode::Mo005 => "MO005",
            DiagCode::Mo006 => "MO006",
            DiagCode::Rc001 => "RC001",
            DiagCode::Rc002 => "RC002",
            DiagCode::Rc003 => "RC003",
        }
    }

    /// The code's intrinsic severity (before allowlisting).
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::Df001
            | DiagCode::Og001
            | DiagCode::Og002
            | DiagCode::Sh003
            | DiagCode::Sh006
            | DiagCode::Cf001
            | DiagCode::Cf003
            | DiagCode::Cf004
            | DiagCode::Rp001
            | DiagCode::Rp002
            | DiagCode::Rp005
            | DiagCode::Rp006
            | DiagCode::Ta001
            | DiagCode::Wp001
            | DiagCode::Vp001
            | DiagCode::Vp002
            | DiagCode::Vp003
            | DiagCode::Vp004
            | DiagCode::Vp005
            | DiagCode::Mo001
            | DiagCode::Mo002
            | DiagCode::Mo003
            | DiagCode::Mo004
            | DiagCode::Mo005
            | DiagCode::Rc001
            | DiagCode::Rc002
            | DiagCode::Rc003 => Severity::Error,
            DiagCode::Df002
            | DiagCode::Mo006
            | DiagCode::Og003
            | DiagCode::Sh001
            | DiagCode::Sh002
            | DiagCode::Sh004
            | DiagCode::Sh005
            | DiagCode::Cf002
            | DiagCode::Rp003
            | DiagCode::Rp004
            | DiagCode::Ta002 => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Effective severity (downgraded to `Info` when allowlisted).
    pub severity: Severity,
    /// The driver the handler belongs to.
    pub driver: String,
    /// The ioctl command, when the finding is command-scoped.
    pub command: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
    /// Program point the finding anchors to (`"function#site"`), when the
    /// reporting pass is flow-sensitive and knows one.
    pub site: Option<String>,
    /// Whether an [`AllowEntry`] matched this finding.
    pub allowlisted: bool,
}

impl Diagnostic {
    /// Creates a finding with the code's intrinsic severity.
    pub fn new(
        code: DiagCode,
        driver: &str,
        command: Option<u32>,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            driver: driver.to_owned(),
            command,
            message,
            site: None,
            allowlisted: false,
        }
    }

    /// Attaches a program-point site (builder style).
    pub fn with_site(mut self, site: impl Into<String>) -> Diagnostic {
        self.site = Some(site.into());
        self
    }

    /// One-line human-readable rendering.
    pub fn render(&self) -> String {
        let cmd = match self.command {
            Some(cmd) => format!(" cmd={cmd:#010x}"),
            None => String::new(),
        };
        let site = match &self.site {
            Some(site) => format!(" at {site}"),
            None => String::new(),
        };
        format!(
            "{}[{}] driver={}{}{}: {}",
            self.severity.as_str(),
            self.code,
            self.driver,
            cmd,
            site,
            self.message,
        )
    }

    /// JSON object rendering (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let cmd = match self.command {
            Some(cmd) => format!("\"{cmd:#010x}\""),
            None => "null".to_owned(),
        };
        let site = match &self.site {
            Some(site) => format!("\"{}\"", json_escape(site)),
            None => "null".to_owned(),
        };
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"driver\":\"{}\",\"command\":{},\
             \"site\":{},\"allowlisted\":{},\"message\":\"{}\"}}",
            self.code,
            self.severity.as_str(),
            json_escape(&self.driver),
            cmd,
            site,
            self.allowlisted,
            json_escape(&self.message),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A recorded justification for a known deviation in a shipped driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Driver name the entry applies to.
    pub driver: String,
    /// The code being allowlisted.
    pub code: DiagCode,
    /// Restrict to one command; `None` matches any.
    pub command: Option<u32>,
    /// Why the deviation is acceptable.
    pub reason: String,
}

impl AllowEntry {
    /// Convenience constructor.
    pub fn new(driver: &str, code: DiagCode, command: Option<u32>, reason: &str) -> AllowEntry {
        AllowEntry {
            driver: driver.to_owned(),
            code,
            command,
            reason: reason.to_owned(),
        }
    }

    fn matches(&self, diag: &Diagnostic) -> bool {
        self.driver == diag.driver
            && self.code == diag.code
            && (self.command.is_none() || self.command == diag.command)
    }
}

/// Downgrades allowlisted findings to [`Severity::Info`], appending the
/// recorded justification. The finding is kept — allowlisting documents a
/// deviation, it does not hide it.
pub fn apply_allowlist(diags: &mut [Diagnostic], allowlist: &[AllowEntry]) {
    for diag in diags.iter_mut() {
        if let Some(entry) = allowlist.iter().find(|entry| entry.matches(diag)) {
            diag.severity = Severity::Info;
            diag.allowlisted = true;
            diag.message.push_str(" [allowlisted: ");
            diag.message.push_str(&entry.reason);
            diag.message.push(']');
        }
    }
}

/// Whether any finding is still `Error`-class (after allowlisting).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Drops findings that duplicate an earlier one by `(code, driver,
/// command, site)`. Passes that carry no site key on the message instead,
/// so two genuinely different legacy findings are never merged.
///
/// The flow passes report per converged block state, so a helper shared by
/// several commands (or a pass pair like double-fetch and the wire lint
/// over the same IR) can surface the same program point more than once;
/// deduping centrally means every pass benefits without each one keeping
/// its own seen-set.
pub fn dedupe(diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<(DiagCode, String, Option<u32>, String)> = BTreeSet::new();
    diags.retain(|d| {
        let key = (
            d.code,
            d.driver.clone(),
            d.command,
            d.site.clone().unwrap_or_else(|| d.message.clone()),
        );
        seen.insert(key)
    });
}

/// Work counters for one lint pass, accumulated across handlers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Handlers the pass ran over.
    pub handlers: usize,
    /// Command specializations analyzed (0 for handler-at-once passes).
    pub commands: usize,
    /// CFG basic blocks visited (flow passes only).
    pub blocks: usize,
    /// Worklist fixpoint iterations (flow passes only).
    pub iterations: usize,
    /// Wall-clock time spent in the pass, nanoseconds.
    pub wall_ns: u128,
}

/// Per-pass statistics for a whole lint run, keyed by pass name.
#[derive(Debug, Clone, Default)]
pub struct LintStats {
    passes: BTreeMap<&'static str, PassStats>,
}

impl LintStats {
    /// The mutable accumulator for one pass, created on first use.
    pub fn pass_mut(&mut self, pass: &'static str) -> &mut PassStats {
        self.passes.entry(pass).or_default()
    }

    /// Iterates `(pass name, stats)` in name order.
    pub fn passes(&self) -> impl Iterator<Item = (&'static str, &PassStats)> {
        self.passes.iter().map(|(name, stats)| (*name, stats))
    }

    /// JSON object rendering, one member per pass.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self
            .passes
            .iter()
            .map(|(name, s)| {
                format!(
                    "\"{}\":{{\"handlers\":{},\"commands\":{},\"blocks\":{},\
                     \"iterations\":{},\"wall_ns\":{}}}",
                    name, s.handlers, s.commands, s.blocks, s.iterations, s.wall_ns,
                )
            })
            .collect();
        format!("{{{}}}", items.join(","))
    }
}

/// Runs every static pass over one handler and returns the deduped
/// findings, ordered by command.
pub fn lint_handler(driver: &str, handler: &Handler) -> Vec<Diagnostic> {
    lint_handler_with_stats(driver, handler, &mut LintStats::default())
}

/// [`lint_handler`] accumulating per-pass work counters into `stats`.
pub fn lint_handler_with_stats(
    driver: &str,
    handler: &Handler,
    stats: &mut LintStats,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for pass in ["dispatch", "double_fetch", "loops", "over_grant", "taint"] {
        stats.pass_mut(pass).handlers += 1;
    }
    {
        let t0 = Instant::now();
        dispatch::check_handler(driver, handler, &mut diags);
        stats.pass_mut("dispatch").wall_ns += t0.elapsed().as_nanos();
    }
    for cmd in handler.commands() {
        match specialize_command(handler, cmd) {
            Ok(slice) => {
                {
                    let t0 = Instant::now();
                    let (blocks, iterations) = double_fetch::check(driver, cmd, handler, &mut diags);
                    let s = stats.pass_mut("double_fetch");
                    s.commands += 1;
                    s.blocks += blocks;
                    s.iterations += iterations;
                    s.wall_ns += t0.elapsed().as_nanos();
                }
                {
                    let t0 = Instant::now();
                    let (blocks, iterations) = taint::check(driver, cmd, handler, &mut diags);
                    let s = stats.pass_mut("taint");
                    s.commands += 1;
                    s.blocks += blocks;
                    s.iterations += iterations;
                    s.wall_ns += t0.elapsed().as_nanos();
                }
                {
                    let t0 = Instant::now();
                    over_grant::check(driver, cmd, &slice, &mut diags);
                    let s = stats.pass_mut("over_grant");
                    s.commands += 1;
                    s.wall_ns += t0.elapsed().as_nanos();
                }
                {
                    let t0 = Instant::now();
                    loops::check(driver, cmd, &slice, &mut diags);
                    dispatch::check_chain_depth(driver, cmd, &slice, &mut diags);
                    let s = stats.pass_mut("loops");
                    s.commands += 1;
                    s.wall_ns += t0.elapsed().as_nanos();
                }
            }
            Err(ExtractionError::CallDepthExceeded) => diags.push(Diagnostic::new(
                DiagCode::Sh003,
                driver,
                Some(cmd),
                "call inlining hit the depth limit; the handler recurses and its \
                 operations cannot be extracted"
                    .to_owned(),
            )),
            Err(ExtractionError::UnknownFunction { name }) => diags.push(Diagnostic::new(
                DiagCode::Sh006,
                driver,
                Some(cmd),
                format!("handler calls unknown function {name:?}; the IR is incomplete"),
            )),
        }
    }
    dedupe(&mut diags);
    diags
}

/// Renders a finding list as a JSON array.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Renders the full report object: findings plus per-pass stats.
pub fn report_json(diags: &[Diagnostic], stats: &LintStats) -> String {
    format!(
        "{{\"findings\":{},\"stats\":{}}}",
        to_json(diags),
        stats.to_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, Stmt, VarId};

    fn clean_handler() -> Handler {
        Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![(
                paradice_devfs::ioc::iowr(b'T', 1, 16).raw(),
                vec![
                    Stmt::CopyFromUser {
                        dst: VarId(0),
                        src: Expr::Arg,
                        len: Expr::Const(16),
                    },
                    Stmt::CopyToUser {
                        dst: Expr::Arg,
                        len: Expr::Const(16),
                    },
                ],
            )],
            default: vec![Stmt::Return],
        }])
    }

    #[test]
    fn clean_handler_has_no_findings() {
        assert!(lint_handler("clean", &clean_handler()).is_empty());
    }

    #[test]
    fn allowlist_downgrades_but_keeps() {
        let mut diags = lint_handler(fixtures::FIXTURE_DRIVER, &fixtures::buggy_handler());
        let errors_before = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        assert!(errors_before > 0);
        let allow = vec![AllowEntry::new(
            fixtures::FIXTURE_DRIVER,
            DiagCode::Og001,
            Some(fixtures::FIX_OVER_GRANT.raw()),
            "scaled fixture keeps the wide envelope on purpose",
        )];
        apply_allowlist(&mut diags, &allow);
        let downgraded: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.allowlisted).collect();
        assert_eq!(downgraded.len(), 2); // both directions of OG001
        assert!(downgraded.iter().all(|d| d.severity == Severity::Info));
        assert!(downgraded.iter().all(|d| d.message.contains("allowlisted")));
        assert!(has_errors(&diags)); // other seeded errors remain
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let diag = Diagnostic::new(
            DiagCode::Df001,
            "radeon \"test\"",
            Some(0xc0106466),
            "line1\nline2".to_owned(),
        );
        let json = diag.to_json();
        assert!(json.contains("\"code\":\"DF001\""));
        assert!(json.contains("\\\"test\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"command\":\"0xc0106466\""));
        let arr = to_json(&[diag.clone(), diag]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("DF001").count(), 2);
    }

    #[test]
    fn severity_ordering_supports_max() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn dedupe_keys_on_site_when_present() {
        let base = Diagnostic::new(DiagCode::Df001, "d", Some(1), "msg a".to_owned());
        let mut diags = vec![
            base.clone().with_site("helper#2"),
            // Different message, same site: duplicate.
            Diagnostic::new(DiagCode::Df001, "d", Some(1), "msg b".to_owned())
                .with_site("helper#2"),
            // Same everything but a different site: kept.
            base.clone().with_site("helper#4"),
            // No site at all: keyed on message, kept.
            base.clone(),
            // Exact siteless duplicate: dropped.
            Diagnostic::new(DiagCode::Df001, "d", Some(1), "msg a".to_owned()),
            // Same site, different command: kept.
            Diagnostic::new(DiagCode::Df001, "d", Some(2), "msg a".to_owned())
                .with_site("helper#2"),
        ];
        dedupe(&mut diags);
        assert_eq!(diags.len(), 4, "{diags:?}");
    }

    #[test]
    fn stats_accumulate_and_render() {
        let mut stats = LintStats::default();
        let diags =
            lint_handler_with_stats(fixtures::FIXTURE_DRIVER, &fixtures::buggy_handler(), &mut stats);
        assert!(!diags.is_empty());
        let df = stats.passes().find(|(name, _)| *name == "double_fetch");
        let (_, df) = df.expect("double_fetch stats present");
        assert_eq!(df.handlers, 1);
        assert!(df.commands > 0);
        assert!(df.blocks > 0);
        assert!(df.iterations > 0);
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"taint\":{"));
        assert!(json.contains("\"wall_ns\":"));
        let report = report_json(&diags, &stats);
        assert!(report.contains("\"findings\":["));
        assert!(report.contains("\"stats\":{"));
    }

    #[test]
    fn render_mentions_code_and_driver() {
        let diag = Diagnostic::new(DiagCode::Og002, "camera-uvc", Some(8), "msg".to_owned());
        let line = diag.render();
        assert!(line.starts_with("error[OG002]"));
        assert!(line.contains("driver=camera-uvc"));
    }
}
