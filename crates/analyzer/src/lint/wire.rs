//! Wire-protocol decode lint — `WP001`.
//!
//! The CVD shared page has the same trust profile as an ioctl argument
//! buffer: the *frontend* writes it, the *backend* reads it, and nothing
//! stops the writer from flipping bytes between two reads. A backend
//! decoder that reads the same region twice — the classic "length word,
//! then payload, then length word again" slip — hands a malicious or
//! compromised guest a TOCTOU on the host-side driver VM.
//!
//! This pass lifts the flow-sensitive double-fetch engine
//! ([`super::double_fetch::analyze_flow`]) onto decode routines expressed
//! in driver IR (see `paradice-cvd`'s `wire_request_decode_ir` /
//! `wire_response_decode_ir`). Any overlapping re-read of the shared page
//! during decode is **WP001** (error) — unlike driver-side `DF002` there
//! is no benign variant, because the decoder's whole job is to produce one
//! consistent view of the message. The taint pass also runs: a payload
//! read sized by an unvalidated length word is the other half of the same
//! bug.
//!
//! Decode IR has no `SwitchCmd` dispatcher, so the engine runs without a
//! command context (`cmd = None`) and findings carry no command number.

use crate::ir::Handler;
use crate::lint::{double_fetch, taint, DiagCode, Diagnostic};

/// Lints one wire-decode routine. Returns `(blocks, fixpoint iterations)`
/// for the stats block.
pub fn check_wire(driver: &str, handler: &Handler, diags: &mut Vec<Diagnostic>) -> (usize, usize) {
    let df = double_fetch::analyze_flow(handler, None);
    for finding in df.findings {
        diags.push(
            Diagnostic::new(
                DiagCode::Wp001,
                driver,
                None,
                format!(
                    "shared-page decode {}; a malicious frontend rewrites the page \
                     between the reads and the backend acts on a torn message",
                    finding.message,
                ),
            )
            .with_site(finding.site),
        );
    }
    let ta = taint::analyze_taint(handler, None);
    for finding in ta.findings {
        diags.push(Diagnostic::new(finding.code, driver, None, finding.message).with_site(finding.site));
    }
    (df.blocks + ta.blocks, df.iterations + ta.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Cond, Expr, Stmt, VarId};
    use crate::lint::{has_errors, Severity};

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn length_then_payload(refetch_length: bool) -> Handler {
        let mut body = vec![Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(4),
        }];
        body.push(Stmt::If {
            cond: Cond::Gt(Expr::field(v(0), 0, 4), Expr::Const(256)),
            then: vec![Stmt::Return],
            els: vec![],
        });
        let len_buf = if refetch_length {
            body.push(Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::Arg,
                len: Expr::Const(4),
            });
            v(1)
        } else {
            v(0)
        };
        body.push(Stmt::CopyFromUser {
            dst: v(2),
            src: Expr::add(Expr::Arg, Expr::Const(4)),
            len: Expr::field(len_buf, 0, 4),
        });
        Handler::single(body)
    }

    #[test]
    fn single_read_decode_is_clean() {
        let mut diags = Vec::new();
        check_wire("wire-test", &length_then_payload(false), &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn length_refetch_is_wp001_error() {
        let mut diags = Vec::new();
        check_wire("wire-test", &length_then_payload(true), &mut diags);
        let wp: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == DiagCode::Wp001).collect();
        assert_eq!(wp.len(), 1, "{diags:?}");
        assert_eq!(wp[0].severity, Severity::Error);
        assert!(wp[0].message.contains("shared-page"));
        assert!(wp[0].command.is_none());
        // The unvalidated second copy also taints the payload length.
        assert!(diags.iter().any(|d| d.code == DiagCode::Ta002));
        assert!(has_errors(&diags));
    }
}
