//! Recorded-trace conformance replay — `RP001`–`RP004`.
//!
//! [`conformance`](super::conformance) replays *in-process* observations;
//! this pass replays a **recorded paradice-trace** (the JSONL produced by
//! [`paradice_trace::Tracer::to_jsonl`], e.g. `experiments --trace`). It
//! closes the loop of the paper's §4.1 invariant over an actual run:
//!
//! > grants used ⊆ grants declared ⊆ analyzer envelope
//!
//! The first inclusion is checked here, structurally, for every span; the
//! second is checked by feeding the per-span [`ObservedIoctl`]s this pass
//! extracts into [`conformance::check_replay`](super::conformance::check_replay).
//!
//! * **RP001** (error): a recorded memory operation the declared grants do
//!   not cover, or one the hypervisor rejected (`ok=false`) — the recorded
//!   run contains a blocked/ungranted access.
//! * **RP002** (error): the trace is structurally malformed — an event for
//!   a span that never started, a duplicate span id, or activity after the
//!   span ended. A doctored or truncated-at-the-front recording.
//! * **RP003** (warning): a span started but never ended — the recording
//!   stopped mid-operation (or the frontend crashed).
//! * **RP004** (warning): a device in the trace has no handler IR to check
//!   the envelope against (emitted by the caller that owns the device→IR
//!   map, e.g. `paradice-lint --replay`).
//! * **RP005** (error): a grant-checked memory operation recorded after the
//!   driver VM was marked dead (§7.1 containment). Once `driver_vm_failed`
//!   appears, every grant is revoked and the hypervisor refuses the VM's
//!   hypercalls — a later `mem_op` means containment was breached. A
//!   `driver_vm_recovered` event lifts the restriction.
//! * **RP006** (error): a span whose wire bytes were tampered with in
//!   flight (`wire_tampered`) completed successfully. A mutated request
//!   must surface as an error (EINVAL/EFAULT/ETIMEDOUT) — a successful
//!   `op_end` means the backend served `WireResponse::Value` for bytes
//!   the frontend never sent.

use std::collections::BTreeMap;

use paradice_trace::{TraceEvent, TraceGrant, TraceMemOpKind, TraceOpKind};

use crate::ir::OpKind;
use crate::jit::ResolvedOp;
use crate::lint::conformance::ObservedIoctl;
use crate::lint::{DiagCode, Diagnostic};

/// What one replayed trace contained, for the caller's envelope check and
/// reporting.
#[derive(Debug, Clone, Default)]
pub struct ReplaySummary {
    /// Spans seen (OpStart events with distinct ids).
    pub spans: usize,
    /// Memory operations seen.
    pub mem_ops: usize,
    /// Per-device observed ioctls, ready for
    /// [`conformance::check_replay`](super::conformance::check_replay).
    pub ioctls: Vec<(String, ObservedIoctl)>,
}

struct SpanState {
    device: String,
    op: TraceOpKind,
    cmd: Option<u32>,
    arg: u64,
    grants: Vec<TraceGrant>,
    copies: Vec<ResolvedOp>,
    ended: bool,
    tampered: bool,
}

/// Whether the declared grants cover one recorded memory operation.
fn covered(kind: TraceMemOpKind, addr: u64, len: u64, grants: &[TraceGrant]) -> bool {
    grants.iter().any(|grant| match (kind, grant) {
        (TraceMemOpKind::CopyFromGuest, TraceGrant::CopyFromGuest { addr: ga, len: gl })
        | (TraceMemOpKind::CopyToGuest, TraceGrant::CopyToGuest { addr: ga, len: gl }) => {
            *ga <= addr && addr.saturating_add(len) <= ga.saturating_add(*gl)
        }
        // Map/unmap operate page-at-a-time; the recorded `len` is the page
        // size, so the window is exactly `pages * len` bytes.
        (TraceMemOpKind::MapPage, TraceGrant::MapPages { va, pages, .. })
        | (TraceMemOpKind::UnmapPage, TraceGrant::UnmapPages { va, pages }) => {
            *va <= addr && addr.saturating_add(len) <= va.saturating_add(pages.saturating_mul(len))
        }
        _ => false,
    })
}

fn copy_kind(kind: TraceMemOpKind) -> Option<OpKind> {
    match kind {
        TraceMemOpKind::CopyFromGuest => Some(OpKind::CopyFromUser),
        TraceMemOpKind::CopyToGuest => Some(OpKind::CopyToUser),
        TraceMemOpKind::MapPage | TraceMemOpKind::UnmapPage => None,
    }
}

fn copy_grant(grant: &TraceGrant) -> Option<ResolvedOp> {
    match *grant {
        TraceGrant::CopyFromGuest { addr, len } => Some(ResolvedOp {
            kind: OpKind::CopyFromUser,
            addr,
            len,
        }),
        TraceGrant::CopyToGuest { addr, len } => Some(ResolvedOp {
            kind: OpKind::CopyToUser,
            addr,
            len,
        }),
        TraceGrant::MapPages { .. } | TraceGrant::UnmapPages { .. } => None,
    }
}

/// Replays a recorded trace: structural validity (RP002/RP003) and the
/// "used ⊆ declared" inclusion (RP001). Returns the summary whose
/// [`ObservedIoctl`]s the caller feeds into the envelope check.
pub fn check_trace(events: &[TraceEvent], diags: &mut Vec<Diagnostic>) -> ReplaySummary {
    let mut spans: BTreeMap<u64, SpanState> = BTreeMap::new();
    let mut summary = ReplaySummary::default();
    // §7.1 containment: true between `driver_vm_failed` and
    // `driver_vm_recovered`. Any memory operation in this window is RP005.
    let mut driver_dead = false;

    for event in events {
        match event {
            TraceEvent::OpStart {
                span,
                device,
                op,
                cmd,
                addr,
                ..
            } => {
                if spans.contains_key(&span.0) {
                    diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        device,
                        *cmd,
                        format!("span {} starts twice; the trace is malformed", span.0),
                    ));
                    continue;
                }
                summary.spans += 1;
                spans.insert(
                    span.0,
                    SpanState {
                        device: device.clone(),
                        op: *op,
                        cmd: *cmd,
                        arg: addr.unwrap_or(0),
                        grants: Vec::new(),
                        copies: Vec::new(),
                        ended: false,
                        tampered: false,
                    },
                );
            }
            TraceEvent::Grants { span, grants } => {
                match spans.get_mut(&span.0) {
                    Some(state) if !state.ended => state.grants.extend(grants.iter().cloned()),
                    Some(state) => diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        &state.device.clone(),
                        state.cmd,
                        format!("grants recorded after span {} ended", span.0),
                    )),
                    None => diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        "trace",
                        None,
                        format!("grants recorded for unknown span {}", span.0),
                    )),
                }
            }
            // A cache hit reuses a previously declared grant set; the
            // accompanying `Grants` event carries that set, so the RP001
            // inclusion check is oblivious to caching. Only structural
            // placement is checked here.
            TraceEvent::GrantCache { span, hit } => {
                match spans.get(&span.0) {
                    Some(state) if !state.ended => {}
                    Some(state) => diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        &state.device.clone(),
                        state.cmd,
                        format!(
                            "grant-cache {} recorded after span {} ended",
                            if *hit { "hit" } else { "fill" },
                            span.0,
                        ),
                    )),
                    None => diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        "trace",
                        None,
                        format!("grant-cache event for unknown span {}", span.0),
                    )),
                }
            }
            TraceEvent::MemOp {
                span,
                kind,
                addr,
                len,
                ok,
                ..
            } => {
                summary.mem_ops += 1;
                if driver_dead {
                    let (device, cmd) = spans
                        .get(&span.0)
                        .map_or(("trace".to_owned(), None), |s| {
                            (s.device.clone(), s.cmd)
                        });
                    diags.push(Diagnostic::new(
                        DiagCode::Rp005,
                        &device,
                        cmd,
                        format!(
                            "recorded {} of {} bytes at {:#x} (span {}) after the \
                             driver VM was marked dead; containment was breached",
                            kind.as_str(),
                            len,
                            addr,
                            span.0,
                        ),
                    ));
                }
                let Some(state) = spans.get_mut(&span.0) else {
                    diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        "trace",
                        None,
                        format!("memory operation recorded for unknown span {}", span.0),
                    ));
                    continue;
                };
                if state.ended {
                    diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        &state.device.clone(),
                        state.cmd,
                        format!("memory operation recorded after span {} ended", span.0),
                    ));
                    continue;
                }
                if !*ok {
                    diags.push(Diagnostic::new(
                        DiagCode::Rp001,
                        &state.device.clone(),
                        state.cmd,
                        format!(
                            "the hypervisor rejected {} of {} bytes at {:#x} during a \
                             recorded {} (span {}); the run contains a blocked operation",
                            kind.as_str(),
                            len,
                            addr,
                            state.op.as_str(),
                            span.0,
                        ),
                    ));
                } else if !covered(*kind, *addr, *len, &state.grants) {
                    diags.push(Diagnostic::new(
                        DiagCode::Rp001,
                        &state.device.clone(),
                        state.cmd,
                        format!(
                            "recorded {} of {} bytes at {:#x} is outside every grant \
                             declared for the {} span {}; used ⊄ declared",
                            kind.as_str(),
                            len,
                            addr,
                            state.op.as_str(),
                            span.0,
                        ),
                    ));
                }
                if let Some(kind) = copy_kind(*kind) {
                    state.copies.push(ResolvedOp {
                        kind,
                        addr: *addr,
                        len: *len,
                    });
                }
            }
            TraceEvent::OpEnd { span, ok, .. } => {
                match spans.get_mut(&span.0) {
                    Some(state) if !state.ended => {
                        state.ended = true;
                        if state.tampered && *ok {
                            diags.push(Diagnostic::new(
                                DiagCode::Rp006,
                                &state.device.clone(),
                                state.cmd,
                                format!(
                                    "span {} completed successfully although its wire \
                                     bytes were tampered with in flight; a mutated \
                                     request must not be served a value",
                                    span.0,
                                ),
                            ));
                        }
                    }
                    Some(state) => diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        &state.device.clone(),
                        state.cmd,
                        format!("span {} ends twice; the trace is malformed", span.0),
                    )),
                    None => diags.push(Diagnostic::new(
                        DiagCode::Rp002,
                        "trace",
                        None,
                        format!("span {} ends without ever starting", span.0),
                    )),
                }
            }
            // Fault-injection bookkeeping is not an operation: nothing
            // structural to check, only the containment window to track.
            TraceEvent::FaultInjected { .. } => {}
            // Adversary bookkeeping: the span carrying this marker must
            // not later end with `ok=true` (RP006, checked at OpEnd).
            // Tampering outside any span (SpanId::NONE) has no op to
            // poison, so it carries nothing to check.
            TraceEvent::WireTampered { span, .. } => {
                if let Some(state) = spans.get_mut(&span.0) {
                    if !state.ended {
                        state.tampered = true;
                    }
                }
            }
            TraceEvent::DriverVmFailed { .. } => driver_dead = true,
            TraceEvent::DriverVmRecovered { .. } => driver_dead = false,
        }
    }

    for (id, state) in &spans {
        if !state.ended {
            diags.push(Diagnostic::new(
                DiagCode::Rp003,
                &state.device,
                state.cmd,
                format!(
                    "span {id} ({} on {}) never ended; the recording stopped \
                     mid-operation",
                    state.op.as_str(),
                    state.device,
                ),
            ));
        }
        if state.op == TraceOpKind::Ioctl {
            if let Some(cmd) = state.cmd {
                summary.ioctls.push((
                    state.device.clone(),
                    ObservedIoctl {
                        cmd,
                        arg: state.arg,
                        granted: state.grants.iter().filter_map(copy_grant).collect(),
                        executed: state.copies.clone(),
                    },
                ));
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_trace::{SpanId, WireDelta};

    fn start(span: u64, op: TraceOpKind, cmd: Option<u32>) -> TraceEvent {
        TraceEvent::OpStart {
            span: SpanId(span),
            t_ns: 0,
            guest: 1,
            task: 1,
            handle: 0,
            device: "/dev/input/event0".to_owned(),
            op,
            cmd,
            addr: Some(0x1000),
            len: Some(16),
        }
    }

    fn grants(span: u64, grants: Vec<TraceGrant>) -> TraceEvent {
        TraceEvent::Grants {
            span: SpanId(span),
            grants,
        }
    }

    fn mem_op(span: u64, kind: TraceMemOpKind, addr: u64, len: u64, ok: bool) -> TraceEvent {
        TraceEvent::MemOp {
            span: SpanId(span),
            t_ns: 0,
            kind,
            addr,
            len,
            ok,
        }
    }

    fn end(span: u64) -> TraceEvent {
        TraceEvent::OpEnd {
            span: SpanId(span),
            t_ns: 10,
            ok: true,
            value: 0,
            duration_ns: 10,
            wire: WireDelta::default(),
        }
    }

    fn run(events: &[TraceEvent]) -> (Vec<Diagnostic>, ReplaySummary) {
        let mut diags = Vec::new();
        let summary = check_trace(events, &mut diags);
        (diags, summary)
    }

    #[test]
    fn conforming_span_is_clean() {
        let (diags, summary) = run(&[
            start(1, TraceOpKind::Read, None),
            grants(1, vec![TraceGrant::CopyToGuest { addr: 0x1000, len: 64 }]),
            mem_op(1, TraceMemOpKind::CopyToGuest, 0x1000, 16, true),
            end(1),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.mem_ops, 1);
    }

    #[test]
    fn ungranted_mem_op_is_rp001() {
        let (diags, _) = run(&[
            start(1, TraceOpKind::Read, None),
            grants(1, vec![TraceGrant::CopyToGuest { addr: 0x1000, len: 64 }]),
            mem_op(1, TraceMemOpKind::CopyToGuest, 0x9000, 16, true),
            end(1),
        ]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Rp001);
    }

    #[test]
    fn hypervisor_rejection_is_rp001() {
        let (diags, _) = run(&[
            start(1, TraceOpKind::Write, None),
            grants(1, vec![TraceGrant::CopyFromGuest { addr: 0x1000, len: 64 }]),
            mem_op(1, TraceMemOpKind::CopyFromGuest, 0x1000, 16, false),
            end(1),
        ]);
        assert!(diags.iter().any(|d| d.code == DiagCode::Rp001));
    }

    #[test]
    fn map_pages_window_covers_each_page() {
        let (diags, _) = run(&[
            start(1, TraceOpKind::Mmap, None),
            grants(
                1,
                vec![TraceGrant::MapPages {
                    va: 0x10000,
                    pages: 4,
                    access: 3,
                }],
            ),
            mem_op(1, TraceMemOpKind::MapPage, 0x12000, 4096, true),
            end(1),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
        let (diags, _) = run(&[
            start(2, TraceOpKind::Mmap, None),
            grants(
                2,
                vec![TraceGrant::MapPages {
                    va: 0x10000,
                    pages: 4,
                    access: 3,
                }],
            ),
            mem_op(2, TraceMemOpKind::MapPage, 0x14000, 4096, true),
            end(2),
        ]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Rp001);
    }

    #[test]
    fn orphan_events_are_rp002() {
        let (diags, _) = run(&[
            mem_op(9, TraceMemOpKind::CopyToGuest, 0x1000, 8, true),
            end(9),
        ]);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == DiagCode::Rp002));
    }

    #[test]
    fn duplicate_span_start_is_rp002() {
        let (diags, _) = run(&[
            start(1, TraceOpKind::Poll, None),
            start(1, TraceOpKind::Poll, None),
            end(1),
        ]);
        assert!(diags.iter().any(|d| d.code == DiagCode::Rp002));
    }

    #[test]
    fn unended_span_is_rp003() {
        let (diags, _) = run(&[start(1, TraceOpKind::Open, None)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Rp003);
    }

    #[test]
    fn mem_op_after_driver_vm_death_is_rp005() {
        let (diags, _) = run(&[
            start(1, TraceOpKind::Read, None),
            grants(1, vec![TraceGrant::CopyToGuest { addr: 0x1000, len: 64 }]),
            TraceEvent::DriverVmFailed {
                span: SpanId(1),
                t_ns: 5,
                vm: 2,
                revoked_grants: 1,
            },
            mem_op(1, TraceMemOpKind::CopyToGuest, 0x1000, 16, true),
            end(1),
        ]);
        assert!(diags.iter().any(|d| d.code == DiagCode::Rp005), "{diags:?}");
    }

    #[test]
    fn recovery_lifts_the_rp005_window() {
        let (diags, _) = run(&[
            TraceEvent::DriverVmFailed {
                span: SpanId::NONE,
                t_ns: 5,
                vm: 2,
                revoked_grants: 0,
            },
            TraceEvent::DriverVmRecovered {
                span: SpanId::NONE,
                t_ns: 9,
                vm: 2,
            },
            start(1, TraceOpKind::Read, None),
            grants(1, vec![TraceGrant::CopyToGuest { addr: 0x1000, len: 64 }]),
            mem_op(1, TraceMemOpKind::CopyToGuest, 0x1000, 16, true),
            end(1),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cached_grant_span_is_clean_and_orphan_cache_event_is_rp002() {
        // A cache-hit span still records its (reused) declared set; RP001's
        // inclusion check passes exactly as for a cold declare.
        let (diags, summary) = run(&[
            start(1, TraceOpKind::Ioctl, Some(1)),
            TraceEvent::GrantCache {
                span: SpanId(1),
                hit: true,
            },
            grants(1, vec![TraceGrant::CopyToGuest { addr: 0x1000, len: 64 }]),
            mem_op(1, TraceMemOpKind::CopyToGuest, 0x1000, 16, true),
            end(1),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(summary.spans, 1);
        // Structurally misplaced cache events are RP002.
        let (diags, _) = run(&[TraceEvent::GrantCache {
            span: SpanId(7),
            hit: false,
        }]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Rp002);
    }

    fn tampered(span: u64, direction: &str) -> TraceEvent {
        TraceEvent::WireTampered {
            span: SpanId(span),
            t_ns: 3,
            direction: direction.to_owned(),
        }
    }

    fn end_err(span: u64) -> TraceEvent {
        TraceEvent::OpEnd {
            span: SpanId(span),
            t_ns: 10,
            ok: false,
            value: -22,
            duration_ns: 10,
            wire: WireDelta::default(),
        }
    }

    #[test]
    fn tampered_span_served_a_value_is_rp006() {
        let (diags, _) = run(&[
            start(1, TraceOpKind::Read, None),
            grants(1, vec![TraceGrant::CopyToGuest { addr: 0x1000, len: 64 }]),
            tampered(1, "request"),
            end(1),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagCode::Rp006);
    }

    #[test]
    fn tampered_span_rejected_with_an_error_is_clean() {
        let (diags, _) = run(&[
            start(1, TraceOpKind::Read, None),
            tampered(1, "request"),
            end_err(1),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn tampering_outside_any_span_is_ignored() {
        let (diags, _) = run(&[
            tampered(SpanId::NONE.0, "response"),
            start(1, TraceOpKind::Poll, None),
            end(1),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn ioctl_spans_become_observed_ioctls() {
        let (_, summary) = run(&[
            start(1, TraceOpKind::Ioctl, Some(0xc010_6444)),
            grants(
                1,
                vec![
                    TraceGrant::CopyFromGuest { addr: 0x1000, len: 16 },
                    TraceGrant::CopyToGuest { addr: 0x1000, len: 16 },
                ],
            ),
            mem_op(1, TraceMemOpKind::CopyFromGuest, 0x1000, 16, true),
            end(1),
        ]);
        assert_eq!(summary.ioctls.len(), 1);
        let (device, obs) = &summary.ioctls[0];
        assert_eq!(device, "/dev/input/event0");
        assert_eq!(obs.cmd, 0xc010_6444);
        assert_eq!(obs.granted.len(), 2);
        assert_eq!(obs.executed.len(), 1);
        assert_eq!(obs.executed[0].kind, OpKind::CopyFromUser);
    }
}
