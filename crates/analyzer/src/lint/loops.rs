//! Structural loop hazards — `SH001`/`SH002`.
//!
//! * **SH001** (warning): a constant trip count above
//!   [`MAX_UNROLL`](crate::extract::MAX_UNROLL). The extractor refuses to
//!   unroll it, so a command that could have had a static grant-table entry
//!   silently pays the JIT path on every call.
//! * **SH002** (warning): an *opaque* trip count — not constant, not the
//!   argument, not derived from user-copied data. The JIT can still bound
//!   it at runtime (the iteration valve), but the analyzer can say nothing
//!   about the command's operations, which usually means the IR lost
//!   information the real driver had.
//!
//! User-data-derived counts (`hdr.count`-style) are the normal nested-copy
//! shape and are not reported.

use std::collections::{BTreeMap, BTreeSet};

use crate::extract::MAX_UNROLL;
use crate::ir::{Stmt, VarId};
use crate::lint::envelope::{eval_expr, SymScalar};
use crate::lint::{DiagCode, Diagnostic};

struct LoopCtx<'a> {
    driver: &'a str,
    cmd: u32,
}

fn walk(
    stmts: &[Stmt],
    env: &mut BTreeMap<VarId, SymScalar>,
    buffers: &mut BTreeSet<VarId>,
    ctx: &LoopCtx<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                let value = eval_expr(env, buffers, value);
                env.insert(*var, value);
            }
            Stmt::CopyFromUser { dst, .. } => {
                buffers.insert(*dst);
                env.remove(dst);
            }
            Stmt::If { then, els, .. } => {
                walk(then, env, buffers, ctx, diags);
                walk(els, env, buffers, ctx, diags);
            }
            Stmt::ForRange { var, count, body } => {
                match eval_expr(env, buffers, count) {
                    SymScalar::Const(n) if n > MAX_UNROLL => diags.push(Diagnostic::new(
                        DiagCode::Sh001,
                        ctx.driver,
                        Some(ctx.cmd),
                        format!(
                            "loop with constant trip count {n} exceeds the static \
                             unroll limit ({MAX_UNROLL}); the command forfeits its \
                             static grant-table entry and JITs on every call",
                        ),
                    )),
                    SymScalar::Opaque => diags.push(Diagnostic::new(
                        DiagCode::Sh002,
                        ctx.driver,
                        Some(ctx.cmd),
                        "loop trip count is opaque to the analyzer (not constant, not \
                         argument-derived, not user-copied data); its operations cannot \
                         be predicted"
                            .to_owned(),
                    )),
                    _ => {}
                }
                env.insert(*var, SymScalar::Opaque);
                walk(body, env, buffers, ctx, diags);
            }
            Stmt::Return => return,
            Stmt::CopyToUser { .. } | Stmt::SwitchCmd { .. } | Stmt::Call(_) => {}
        }
    }
}

/// Runs the loop-hazard pass over one command's specialized slice.
pub fn check(driver: &str, cmd: u32, slice: &[Stmt], diags: &mut Vec<Diagnostic>) {
    let ctx = LoopCtx { driver, cmd };
    walk(
        slice,
        &mut BTreeMap::new(),
        &mut BTreeSet::new(),
        &ctx,
        diags,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn run(slice: &[Stmt]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check("test", 0, slice, &mut diags);
        diags
    }

    #[test]
    fn oversized_constant_loop_is_sh001() {
        let slice = vec![Stmt::ForRange {
            var: v(0),
            count: Expr::Const(MAX_UNROLL + 1),
            body: vec![],
        }];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Sh001);
    }

    #[test]
    fn small_constant_loop_is_clean() {
        let slice = vec![Stmt::ForRange {
            var: v(0),
            count: Expr::Const(MAX_UNROLL),
            body: vec![],
        }];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn opaque_count_is_sh002() {
        let slice = vec![Stmt::ForRange {
            var: v(0),
            count: Expr::Var(v(99)),
            body: vec![],
        }];
        let diags = run(&slice);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::Sh002);
    }

    #[test]
    fn user_data_count_is_clean() {
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(16),
            },
            Stmt::ForRange {
                var: v(1),
                count: Expr::field(v(0), 8, 4),
                body: vec![],
            },
        ];
        assert!(run(&slice).is_empty());
    }

    #[test]
    fn nested_loops_both_checked() {
        let slice = vec![Stmt::ForRange {
            var: v(0),
            count: Expr::Const(MAX_UNROLL + 5),
            body: vec![Stmt::ForRange {
                var: v(1),
                count: Expr::Var(v(98)),
                body: vec![],
            }],
        }];
        let diags = run(&slice);
        assert_eq!(diags.len(), 2);
    }
}
