//! Cross-version handler comparison.
//!
//! "The memory operations executed by the driver for each ioctl command
//! rarely change across driver updates because any such changes can break
//! application compatibility. … Our investigation of Radeon drivers of Linux
//! kernel 2.6.35 and 3.2.0 confirms this argument as the memory operations of
//! common ioctl commands are identical in both drivers, while the latter has
//! four new ioctl commands" (paper §4.1).
//!
//! [`diff_handlers`] reproduces that investigation: analyze two handler
//! versions and classify every command as identical, changed, added or
//! removed — so the frontend's static entries carry over across driver
//! updates and only new commands need re-analysis.

use crate::extract::{analyze_handler, Extraction, ExtractionError};
use crate::ir::Handler;

/// Classification of a single command across two driver versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandDelta {
    /// Same memory operations in both versions — frontend entries carry over.
    Identical,
    /// The operations changed — the entry must be regenerated.
    Changed,
    /// Only in the new version — needs fresh analysis.
    Added,
    /// Only in the old version.
    Removed,
}

/// The result of comparing two handler versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerDiff {
    /// `(command, classification)` for every command in either version.
    pub deltas: Vec<(u32, CommandDelta)>,
}

impl HandlerDiff {
    /// Commands with the given classification.
    pub fn with_delta(&self, delta: CommandDelta) -> Vec<u32> {
        self.deltas
            .iter()
            .filter(|(_, d)| *d == delta)
            .map(|(cmd, _)| *cmd)
            .collect()
    }

    /// Count of commands with the given classification.
    pub fn count(&self, delta: CommandDelta) -> usize {
        self.deltas.iter().filter(|(_, d)| *d == delta).count()
    }
}

fn extraction_equivalent(a: &Extraction, b: &Extraction) -> bool {
    match (a, b) {
        (Extraction::Static(ops_a), Extraction::Static(ops_b)) => ops_a == ops_b,
        (
            Extraction::Jit { slice: slice_a, .. },
            Extraction::Jit { slice: slice_b, .. },
        ) => slice_a == slice_b,
        _ => false,
    }
}

/// Compares two versions of a driver's ioctl handler.
///
/// # Errors
///
/// Propagates extraction failures from either version.
pub fn diff_handlers(old: &Handler, new: &Handler) -> Result<HandlerDiff, ExtractionError> {
    let old_report = analyze_handler(old)?;
    let new_report = analyze_handler(new)?;
    let mut deltas = Vec::new();
    for (cmd, old_extraction) in &old_report.commands {
        match new_report.commands.get(cmd) {
            Some(new_extraction) => {
                let delta = if extraction_equivalent(old_extraction, new_extraction) {
                    CommandDelta::Identical
                } else {
                    CommandDelta::Changed
                };
                deltas.push((*cmd, delta));
            }
            None => deltas.push((*cmd, CommandDelta::Removed)),
        }
    }
    for cmd in new_report.commands.keys() {
        if !old_report.commands.contains_key(cmd) {
            deltas.push((*cmd, CommandDelta::Added));
        }
    }
    deltas.sort_by_key(|(cmd, _)| *cmd);
    Ok(HandlerDiff { deltas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, Stmt, VarId};

    fn copy_in_arm(cmd: u32, len: u64) -> (u32, Vec<Stmt>) {
        (
            cmd,
            vec![Stmt::CopyFromUser {
                dst: VarId(0),
                src: Expr::Arg,
                len: Expr::Const(len),
            }],
        )
    }

    fn handler(arms: Vec<(u32, Vec<Stmt>)>) -> Handler {
        Handler::single(vec![Stmt::SwitchCmd {
            arms,
            default: vec![Stmt::Return],
        }])
    }

    #[test]
    fn identical_commands_detected() {
        let old = handler(vec![copy_in_arm(1, 16), copy_in_arm(2, 32)]);
        let new = handler(vec![copy_in_arm(1, 16), copy_in_arm(2, 32)]);
        let diff = diff_handlers(&old, &new).unwrap();
        assert_eq!(diff.count(CommandDelta::Identical), 2);
        assert_eq!(diff.count(CommandDelta::Changed), 0);
    }

    #[test]
    fn new_commands_flagged_as_added() {
        // The paper's 2.6.35 → 3.2.0 scenario: common commands identical,
        // four new ones.
        let old = handler(vec![copy_in_arm(1, 16)]);
        let new = handler(vec![
            copy_in_arm(1, 16),
            copy_in_arm(10, 8),
            copy_in_arm(11, 8),
            copy_in_arm(12, 8),
            copy_in_arm(13, 8),
        ]);
        let diff = diff_handlers(&old, &new).unwrap();
        assert_eq!(diff.count(CommandDelta::Identical), 1);
        assert_eq!(diff.count(CommandDelta::Added), 4);
        assert_eq!(diff.with_delta(CommandDelta::Added), vec![10, 11, 12, 13]);
    }

    #[test]
    fn changed_and_removed_commands() {
        let old = handler(vec![copy_in_arm(1, 16), copy_in_arm(2, 32)]);
        let new = handler(vec![copy_in_arm(1, 24)]);
        let diff = diff_handlers(&old, &new).unwrap();
        assert_eq!(diff.with_delta(CommandDelta::Changed), vec![1]);
        assert_eq!(diff.with_delta(CommandDelta::Removed), vec![2]);
    }

    #[test]
    fn static_vs_jit_counts_as_changed() {
        let old = handler(vec![copy_in_arm(1, 16)]);
        // New version makes command 1 a nested copy.
        let new = handler(vec![(
            1,
            vec![
                Stmt::CopyFromUser {
                    dst: VarId(0),
                    src: Expr::Arg,
                    len: Expr::Const(16),
                },
                Stmt::CopyFromUser {
                    dst: VarId(1),
                    src: Expr::field(VarId(0), 0, 8),
                    len: Expr::Const(8),
                },
            ],
        )]);
        let diff = diff_handlers(&old, &new).unwrap();
        assert_eq!(diff.with_delta(CommandDelta::Changed), vec![1]);
    }
}
