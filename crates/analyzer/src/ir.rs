//! The driver IR: a miniature C-like AST for ioctl handlers.
//!
//! Real Paradice parses driver C source with Clang; our drivers instead
//! *describe* their ioctl handlers in this IR, which captures exactly the
//! constructs the analysis cares about: copies to/from user space, field
//! reads of previously-copied structures (the source of nested copies),
//! command dispatch, conditionals, bounded loops, and helper-function calls.
//!
//! A driver is honest about its IR in the same way a real driver is honest
//! about its source code: the integration tests execute the *actual* driver
//! and cross-check that it performs exactly the operations its IR declares.

use std::collections::BTreeMap;
use std::fmt;

/// A local variable slot in a handler (kernel stack variable or buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A compile-time constant.
    Const(u64),
    /// The ioctl's untyped pointer/scalar argument.
    Arg,
    /// The ioctl command number.
    Cmd,
    /// A scalar variable's value.
    Var(VarId),
    /// A little-endian field of `width` bytes at `offset` inside the buffer
    /// variable `base` (which must have been filled by a
    /// [`Stmt::CopyFromUser`]). This is where nested copies come from.
    Field {
        /// The buffer variable.
        base: VarId,
        /// Byte offset of the field.
        offset: u64,
        /// Field width in bytes (1, 2, 4 or 8).
        width: u8,
    },
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `a + b` without the `Box` noise.
    #[allow(clippy::should_implement_trait)] // constructor, not arithmetic
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a * b` without the `Box` noise.
    #[allow(clippy::should_implement_trait)] // constructor, not arithmetic
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Field read helper.
    pub fn field(base: VarId, offset: u64, width: u8) -> Expr {
        Expr::Field {
            base,
            offset,
            width,
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`.
    Eq(Expr, Expr),
    /// `a != b`.
    Ne(Expr, Expr),
    /// `a < b` (unsigned).
    Lt(Expr, Expr),
    /// `a > b` (unsigned).
    Gt(Expr, Expr),
}

/// Direction of a user-memory operation (named from the driver's view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `copy_from_user`: driver reads process memory.
    CopyFromUser,
    /// `copy_to_user`: driver writes process memory.
    CopyToUser,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var = value;` (scalar).
    Assign {
        /// Destination variable.
        var: VarId,
        /// Value expression.
        value: Expr,
    },
    /// `copy_from_user(dst_buffer, (void __user *)src, len)`.
    CopyFromUser {
        /// Kernel buffer variable receiving the bytes.
        dst: VarId,
        /// User-space source address.
        src: Expr,
        /// Byte length.
        len: Expr,
    },
    /// `copy_to_user((void __user *)dst, src_buffer, len)`.
    ///
    /// The source buffer is driver data; only the *user address and length*
    /// matter to the analysis.
    CopyToUser {
        /// User-space destination address.
        dst: Expr,
        /// Byte length.
        len: Expr,
    },
    /// `if (cond) { then } else { els }`.
    If {
        /// The condition.
        cond: Cond,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Fallthrough branch.
        els: Vec<Stmt>,
    },
    /// `switch (cmd) { case …: … }` — the canonical ioctl dispatcher.
    SwitchCmd {
        /// `(command number, body)` arms.
        arms: Vec<(u32, Vec<Stmt>)>,
        /// `default:` body (usually `return -ENOTTY`).
        default: Vec<Stmt>,
    },
    /// `for (i = 0; i < count; i++) { body }`; `i` is bound to `var`.
    ForRange {
        /// Loop counter variable.
        var: VarId,
        /// Trip count expression (often a copied field — nested copies).
        count: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Call a helper function by name.
    Call(String),
    /// Early return (value irrelevant to the analysis).
    Return,
}

/// A named function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Statements, in order.
    pub body: Vec<Stmt>,
}

/// A driver's ioctl handler: an entry function plus helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handler {
    functions: BTreeMap<String, Function>,
    entry: String,
}

impl Handler {
    /// Creates a handler with entry function `entry`.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not among `functions` — a driver-definition bug.
    pub fn new(entry: &str, functions: BTreeMap<String, Function>) -> Self {
        assert!(
            functions.contains_key(entry),
            "entry function {entry:?} missing"
        );
        Handler {
            functions,
            entry: entry.to_owned(),
        }
    }

    /// Convenience constructor for a single-function handler.
    pub fn single(body: Vec<Stmt>) -> Self {
        let mut functions = BTreeMap::new();
        functions.insert("ioctl".to_owned(), Function { body });
        Handler::new("ioctl", functions)
    }

    /// The entry function's name.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// Looks up a function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// All command numbers appearing in `SwitchCmd` arms anywhere in the
    /// handler — the analyzer's work list.
    pub fn commands(&self) -> Vec<u32> {
        fn visit(stmts: &[Stmt], out: &mut Vec<u32>) {
            for stmt in stmts {
                match stmt {
                    Stmt::SwitchCmd { arms, default } => {
                        for (cmd, body) in arms {
                            out.push(*cmd);
                            visit(body, out);
                        }
                        visit(default, out);
                    }
                    Stmt::If { then, els, .. } => {
                        visit(then, out);
                        visit(els, out);
                    }
                    Stmt::ForRange { body, .. } => visit(body, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        for function in self.functions.values() {
            visit(&function.body, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total statement count (the analyzer's "lines of code" metric for
    /// extracted slices, cf. the paper's ~760 generated lines).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|stmt| {
                    1 + match stmt {
                        Stmt::If { then, els, .. } => count(then) + count(els),
                        Stmt::SwitchCmd { arms, default } => {
                            arms.iter().map(|(_, b)| count(b)).sum::<usize>() + count(default)
                        }
                        Stmt::ForRange { body, .. } => count(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        self.functions.values().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_handler() -> Handler {
        // switch (cmd) {
        //   case 7: copy_from_user(v0, arg, 16); break;
        //   case 9: helper(); break;
        // }
        let mut functions = BTreeMap::new();
        functions.insert(
            "ioctl".to_owned(),
            Function {
                body: vec![Stmt::SwitchCmd {
                    arms: vec![
                        (
                            7,
                            vec![Stmt::CopyFromUser {
                                dst: VarId(0),
                                src: Expr::Arg,
                                len: Expr::Const(16),
                            }],
                        ),
                        (9, vec![Stmt::Call("helper".to_owned())]),
                    ],
                    default: vec![Stmt::Return],
                }],
            },
        );
        functions.insert(
            "helper".to_owned(),
            Function {
                body: vec![Stmt::CopyToUser {
                    dst: Expr::Arg,
                    len: Expr::Const(8),
                }],
            },
        );
        Handler::new("ioctl", functions)
    }

    #[test]
    fn commands_are_discovered() {
        assert_eq!(sample_handler().commands(), vec![7, 9]);
    }

    #[test]
    fn statement_count_recurses() {
        // switch(1) + copy(1) + call(1) + return(1) + helper copy(1) = 5.
        assert_eq!(sample_handler().statement_count(), 5);
    }

    #[test]
    fn function_lookup() {
        let handler = sample_handler();
        assert!(handler.function("helper").is_some());
        assert!(handler.function("nope").is_none());
        assert_eq!(handler.entry(), "ioctl");
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn bad_entry_panics() {
        Handler::new("missing", BTreeMap::new());
    }

    #[test]
    fn expr_helpers() {
        let e = Expr::add(Expr::Arg, Expr::mul(Expr::Const(4), Expr::Var(VarId(1))));
        assert!(matches!(e, Expr::Add(_, _)));
        let f = Expr::field(VarId(0), 8, 4);
        assert_eq!(
            f,
            Expr::Field {
                base: VarId(0),
                offset: 8,
                width: 4
            }
        );
    }
}
