//! The atomic-site model the memory-ordering lint runs over.
//!
//! The wall-clock substrate's lock-free kernels (`hypervisor::aring`,
//! `hypervisor::shards`) route every atomic access through the
//! instrumented shim (`hypervisor::atomic`), and the shim requires each
//! call site to name a static [`Access`] drawn from a declared
//! [`SiteSpec`] table. That table *is* this model: the ordering a lint
//! rule inspects here is the very constant the shipped code passes to
//! `std::sync::atomic` at runtime, so the lint model cannot drift from
//! the executing protocol the way a hand-maintained mirror could.
//!
//! The vocabulary follows the publication-protocol argument of
//! DESIGN.md §12/§14: every cross-thread *data handoff* is a `Release`
//! store ([`Edge::Publish`]) observed by an `Acquire` load
//! ([`Edge::Consume`]); plain data riding under that handoff is
//! [`Edge::Payload`]; Dekker-style flag pairs whose correctness needs a
//! total store order are [`Edge::Gate`] and must be `SeqCst`. The
//! MO/RC passes ([`super::passes`]) check those rules site by site.

use std::fmt;

/// What a shared atomic word *is* in the protocol. One role per site —
/// mixing roles at one site is exactly the bug `RC001` exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// A per-slot sequence word (Vyukov-style slot ownership).
    SlotSeq,
    /// A per-slot length word (payload-class metadata).
    SlotLen,
    /// A free-running head/tail cursor owned by exactly one side.
    Cursor,
    /// A park/wake flag participating in a sleep/wake handoff.
    Flag,
    /// A copy-on-write snapshot pointer.
    SnapshotPtr,
    /// A shared counter (capacity reservation, reader gate, statistics).
    Counter,
}

impl Role {
    /// Lowercase name for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::SlotSeq => "slot-seq",
            Role::SlotLen => "slot-len",
            Role::Cursor => "cursor",
            Role::Flag => "flag",
            Role::SnapshotPtr => "snapshot-ptr",
            Role::Counter => "counter",
        }
    }
}

/// Load, store, or read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
    /// An atomic read-modify-write (`swap`, `fetch_add`, …).
    Rmw,
}

impl AccessKind {
    /// Lowercase name for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Rmw => "rmw",
        }
    }
}

/// Memory orderings, ordered by strength so passes can compare with `<`.
///
/// `AcqRel` is deliberately placed above both `Acquire` and `Release`:
/// for the single-direction checks the passes perform ("at least
/// Release", "at least Acquire") an `AcqRel` access always satisfies
/// the requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOrder {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst`.
    SeqCst,
}

impl MemOrder {
    /// Lowercase name for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            MemOrder::Relaxed => "relaxed",
            MemOrder::Acquire => "acquire",
            MemOrder::Release => "release",
            MemOrder::AcqRel => "acq-rel",
            MemOrder::SeqCst => "seq-cst",
        }
    }

    /// Whether this ordering gives at least `Release` semantics to a
    /// store (publication edge).
    pub fn at_least_release(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst)
    }

    /// Whether this ordering gives at least `Acquire` semantics to a
    /// load (consumption edge).
    pub fn at_least_acquire(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst)
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What protocol edge an access implements — the reason the access
/// exists, which decides the ordering it needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Edge {
    /// A store that hands data to another thread. Must be ≥ `Release`
    /// (`MO001`).
    Publish,
    /// A load that gates access to published data. Must be ≥ `Acquire`
    /// (`MO002`).
    Consume,
    /// A data-class access (slot length, payload mirror) protected by a
    /// `Publish`/`Consume` pair elsewhere in the same group; its own
    /// ordering may be `Relaxed`.
    Payload,
    /// A cursor read by the one thread that writes it; `Relaxed` is
    /// sound because it is not a synchronization edge.
    OwnerLocal,
    /// The consumer handing a slot back to the producer. A publication
    /// in the opposite direction: must be ≥ `Release` (`MO001`).
    Recycle,
    /// One side of a Dekker-style store-load flag pair (doorbell
    /// `rung`/`parked`, reclamation reader gate). Release/Acquire is
    /// NOT enough here — the lost-wakeup interleaving needs a total
    /// store order, so these must be `SeqCst` (`MO005`).
    Gate,
    /// A cross-thread observation (occupancy estimate, statistics);
    /// conservative by contract, any ordering is sound.
    Observe,
    /// A read-modify-write that reserves shared capacity (the grant
    /// table's outstanding counter). Must be an RMW at ≥ `AcqRel`
    /// (`RC003`).
    Reservation,
}

impl Edge {
    /// Lowercase name for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Edge::Publish => "publish",
            Edge::Consume => "consume",
            Edge::Payload => "payload",
            Edge::OwnerLocal => "owner-local",
            Edge::Recycle => "recycle",
            Edge::Gate => "gate",
            Edge::Observe => "observe",
            Edge::Reservation => "reservation",
        }
    }
}

/// One declared access to an atomic site: the constant the shim call
/// site passes, and the metadata the lint inspects.
#[derive(Debug, PartialEq, Eq)]
pub struct Access {
    /// Access name, unique within its site (`"publish"`, `"gate-load"`).
    pub name: &'static str,
    /// Load, store, or RMW.
    pub kind: AccessKind,
    /// The ordering the shim will execute with.
    pub ordering: MemOrder,
    /// The protocol edge this access implements.
    pub edge: Edge,
    /// Whether this access is the *last* write before a doorbell ring
    /// on some path — the write whose visibility the woken thread
    /// depends on. Must be ≥ `Release` (`MO004`).
    pub pre_doorbell: bool,
}

impl Access {
    /// A non-doorbell access (the common case).
    pub const fn new(
        name: &'static str,
        kind: AccessKind,
        ordering: MemOrder,
        edge: Edge,
    ) -> Access {
        Access {
            name,
            kind,
            ordering,
            edge,
            pre_doorbell: false,
        }
    }

    /// An access that is the final write before a doorbell ring.
    pub const fn pre_doorbell(
        name: &'static str,
        kind: AccessKind,
        ordering: MemOrder,
        edge: Edge,
    ) -> Access {
        Access {
            name,
            kind,
            ordering,
            edge,
            pre_doorbell: true,
        }
    }
}

/// One atomic site: a shared word, its role, and every declared access.
#[derive(Debug, PartialEq, Eq)]
pub struct SiteSpec {
    /// The module the site lives in (`"hypervisor::aring"`).
    pub module: &'static str,
    /// Site name, unique within the module (`"slot_seq"`).
    pub name: &'static str,
    /// Protocol group tying related sites together (`"aring.slot"`):
    /// `RC002` checks each group's payload accesses are covered by a
    /// publication pair within the same group.
    pub group: &'static str,
    /// What the word is in the protocol.
    pub role: Role,
    /// Every access the code may perform on this site.
    pub accesses: &'static [&'static Access],
}

impl SiteSpec {
    /// `module#name`, the site key diagnostics anchor to.
    pub fn site_key(&self) -> String {
        let short = self.module.rsplit("::").next().unwrap_or(self.module);
        format!("{short}#{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_strength_comparisons() {
        assert!(MemOrder::Release.at_least_release());
        assert!(MemOrder::AcqRel.at_least_release());
        assert!(MemOrder::SeqCst.at_least_release());
        assert!(!MemOrder::Acquire.at_least_release());
        assert!(!MemOrder::Relaxed.at_least_release());
        assert!(MemOrder::Acquire.at_least_acquire());
        assert!(MemOrder::AcqRel.at_least_acquire());
        assert!(!MemOrder::Release.at_least_acquire());
        assert!(MemOrder::Relaxed < MemOrder::SeqCst);
    }

    #[test]
    fn site_key_shortens_the_module_path() {
        static ACCESSES: [&Access; 0] = [];
        let site = SiteSpec {
            module: "hypervisor::aring",
            name: "slot_seq",
            group: "aring.slot",
            role: Role::SlotSeq,
            accesses: &ACCESSES,
        };
        assert_eq!(site.site_key(), "aring#slot_seq");
    }
}
