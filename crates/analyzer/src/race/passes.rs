//! The MO/RC pass family: memory-ordering and role-consistency lints
//! over a declared [`SiteSpec`] table.
//!
//! | Code | Severity | Meaning |
//! |---|---|---|
//! | `MO001` | error | publication-class store (`Publish`/`Recycle`) weaker than `Release` |
//! | `MO002` | error | consumption gate load weaker than `Acquire` |
//! | `MO003` | error | site publishes but no access on it can `Acquire`-observe the publication |
//! | `MO004` | error | the last write before a doorbell ring is weaker than `Release` |
//! | `MO005` | error | Dekker-style `Gate` access weaker than `SeqCst` |
//! | `MO006` | warning | `SeqCst` on a non-`Gate` edge (needlessly strong, hot-path fence) |
//! | `RC001` | error | access edge inconsistent with the site's declared role (roles mixed) |
//! | `RC002` | error | group with payload-class accesses but no `Publish`/`Consume` pair covering them |
//! | `RC003` | error | access kind inconsistent with its edge (e.g. a `Publish` load, a non-RMW `Reservation`) |
//!
//! All diagnostics carry `module#site.access` locations and flow through
//! the existing [`dedupe`](crate::lint::dedupe) /
//! [allowlist](crate::lint::apply_allowlist) machinery — the pass reports
//! into the same `Diagnostic` stream as every other `paradice-lint` pass.

use crate::lint::{dedupe, DiagCode, Diagnostic};

use super::model::{Access, AccessKind, Edge, MemOrder, Role, SiteSpec};

fn diag(
    code: DiagCode,
    site: &SiteSpec,
    access: Option<&Access>,
    message: String,
) -> Diagnostic {
    let anchor = match access {
        Some(access) => format!("{}.{}", site.site_key(), access.name),
        None => site.site_key(),
    };
    Diagnostic::new(code, site.module, None, message).with_site(anchor)
}

/// The edges each role may legitimately carry (`RC001`).
fn allowed_edges(role: Role) -> &'static [Edge] {
    match role {
        Role::SlotSeq => &[Edge::Publish, Edge::Consume, Edge::Recycle, Edge::Observe],
        Role::SlotLen => &[Edge::Payload, Edge::Observe],
        Role::Cursor => &[Edge::OwnerLocal, Edge::Publish, Edge::Consume, Edge::Observe],
        Role::Flag => &[Edge::Gate, Edge::Observe],
        Role::SnapshotPtr => &[
            Edge::Publish,
            Edge::Consume,
            Edge::OwnerLocal,
            Edge::Gate,
            Edge::Observe,
        ],
        Role::Counter => &[Edge::Reservation, Edge::Gate, Edge::Observe],
    }
}

/// Runs the full MO/RC pass family over `sites` and returns the deduped
/// findings. A clean protocol produces an empty vector.
pub fn check_model(sites: &[&SiteSpec]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_model_into(sites, &mut diags);
    dedupe(&mut diags);
    diags
}

/// [`check_model`] appending into an existing diagnostic stream
/// (deduping is left to the caller's final pass).
pub fn check_model_into(sites: &[&SiteSpec], diags: &mut Vec<Diagnostic>) {
    // Duplicate site declarations are a model bug in their own right.
    for (index, site) in sites.iter().enumerate() {
        if sites[..index]
            .iter()
            .any(|s| s.module == site.module && s.name == site.name)
        {
            diags.push(diag(
                DiagCode::Rc001,
                site,
                None,
                format!(
                    "site {} is declared twice; one shared word must have exactly \
                     one role and one access table",
                    site.site_key(),
                ),
            ));
        }
    }

    for site in sites {
        for access in site.accesses {
            check_access(site, access, diags);
        }
        check_publication_matching(site, diags);
    }
    check_groups(sites, diags);
}

fn check_access(site: &SiteSpec, access: &Access, diags: &mut Vec<Diagnostic>) {
    // MO001: publication-class stores need Release.
    if matches!(access.edge, Edge::Publish | Edge::Recycle)
        && matches!(access.kind, AccessKind::Store | AccessKind::Rmw)
        && !access.ordering.at_least_release()
    {
        diags.push(diag(
            DiagCode::Mo001,
            site,
            Some(access),
            format!(
                "{} {} publishes data cross-thread at {} — a consumer that \
                 observes the new value is not guaranteed to observe the data it \
                 protects; must be release or stronger",
                access.edge.as_str(),
                access.kind.as_str(),
                access.ordering,
            ),
        ));
    }
    // MO002: consumption gates need Acquire.
    if access.edge == Edge::Consume
        && matches!(access.kind, AccessKind::Load | AccessKind::Rmw)
        && !access.ordering.at_least_acquire()
    {
        diags.push(diag(
            DiagCode::Mo002,
            site,
            Some(access),
            format!(
                "consume {} gates payload access at {} — it does not synchronize \
                 with the publishing release store, so the payload read behind it \
                 can be satisfied early (torn read); must be acquire or stronger",
                access.kind.as_str(),
                access.ordering,
            ),
        ));
    }
    // MO004: the last write before a doorbell ring must publish.
    if access.pre_doorbell && !access.ordering.at_least_release() {
        diags.push(diag(
            DiagCode::Mo004,
            site,
            Some(access),
            format!(
                "{} {} is the last write before a doorbell ring but is only {} — \
                 the woken thread may observe the wakeup without the data that \
                 justified it; must be release or stronger",
                access.edge.as_str(),
                access.kind.as_str(),
                access.ordering,
            ),
        ));
    }
    // MO005: Dekker-style gates need SeqCst (store-load order).
    if access.edge == Edge::Gate && access.ordering != MemOrder::SeqCst {
        diags.push(diag(
            DiagCode::Mo005,
            site,
            Some(access),
            format!(
                "gate {} at {} — a Dekker-style store-load flag pair needs a \
                 total store order or both sides can miss each other (lost \
                 wakeup / missed reader); must be seq-cst",
                access.kind.as_str(),
                access.ordering,
            ),
        ));
    }
    // MO006: SeqCst where the protocol does not need it.
    if access.edge != Edge::Gate && access.ordering == MemOrder::SeqCst {
        diags.push(
            diag(
                DiagCode::Mo006,
                site,
                Some(access),
                format!(
                    "{} {} is seq-cst but the {} edge only needs acquire/release — \
                     a full fence on a hot path for no protocol reason",
                    access.edge.as_str(),
                    access.kind.as_str(),
                    access.edge.as_str(),
                ),
            ),
        );
    }
    // RC001: edge consistent with the site's role.
    if !allowed_edges(site.role).contains(&access.edge) {
        diags.push(diag(
            DiagCode::Rc001,
            site,
            Some(access),
            format!(
                "a {} site carries a {} access — protocol roles are mixed at one \
                 word (e.g. a length word doubling as a sequence word)",
                site.role.as_str(),
                access.edge.as_str(),
            ),
        ));
    }
    // RC003: kind consistent with the edge.
    let kind_ok = match access.edge {
        Edge::Publish | Edge::Recycle => matches!(access.kind, AccessKind::Store | AccessKind::Rmw),
        Edge::Consume => matches!(access.kind, AccessKind::Load | AccessKind::Rmw),
        Edge::OwnerLocal | Edge::Observe => true,
        Edge::Payload => true,
        Edge::Gate => true,
        Edge::Reservation => access.kind == AccessKind::Rmw,
    };
    if !kind_ok {
        diags.push(diag(
            DiagCode::Rc003,
            site,
            Some(access),
            format!(
                "a {} edge declared as a {} — the access cannot implement the \
                 protocol step it claims (reservations must be RMWs, \
                 publications must write, consumptions must read)",
                access.edge.as_str(),
                access.kind.as_str(),
            ),
        ));
    }
    if access.edge == Edge::Reservation && !matches!(access.ordering, MemOrder::AcqRel | MemOrder::SeqCst)
    {
        diags.push(diag(
            DiagCode::Rc003,
            site,
            Some(access),
            format!(
                "reservation rmw at {} — a capacity reservation must both acquire \
                 (observe prior releases) and release (publish the claim); must \
                 be acq-rel or stronger",
                access.ordering,
            ),
        ));
    }
}

/// MO003: a site that publishes must also be observable with Acquire —
/// otherwise no consumer path can ever synchronize with the publication.
fn check_publication_matching(site: &SiteSpec, diags: &mut Vec<Diagnostic>) {
    let publishes = site
        .accesses
        .iter()
        .any(|a| matches!(a.edge, Edge::Publish | Edge::Recycle));
    if !publishes {
        return;
    }
    let consumed = site.accesses.iter().any(|a| {
        matches!(a.kind, AccessKind::Load | AccessKind::Rmw) && a.ordering.at_least_acquire()
    });
    if !consumed {
        diags.push(diag(
            DiagCode::Mo003,
            site,
            None,
            format!(
                "site {} publishes cross-thread but declares no acquire-or-stronger \
                 load — every consumer path reads it too weakly to synchronize \
                 with the publication",
                site.site_key(),
            ),
        ));
    }
}

/// RC002: every group with payload-class traffic needs a publication
/// pair (a ≥-Release publish store and a ≥-Acquire consume load) within
/// the same group, or the payload crosses threads unordered.
fn check_groups(sites: &[&SiteSpec], diags: &mut Vec<Diagnostic>) {
    let mut groups: Vec<&'static str> = sites.iter().map(|s| s.group).collect();
    groups.sort_unstable();
    groups.dedup();
    for group in groups {
        let members: Vec<&&SiteSpec> = sites.iter().filter(|s| s.group == group).collect();
        let has_payload = members
            .iter()
            .any(|s| s.accesses.iter().any(|a| a.edge == Edge::Payload));
        if !has_payload {
            continue;
        }
        let has_publish = members.iter().any(|s| {
            s.accesses
                .iter()
                .any(|a| a.edge == Edge::Publish && a.ordering.at_least_release())
        });
        let has_consume = members.iter().any(|s| {
            s.accesses
                .iter()
                .any(|a| a.edge == Edge::Consume && a.ordering.at_least_acquire())
        });
        if !has_publish || !has_consume {
            let site = members[0];
            diags.push(diag(
                DiagCode::Rc002,
                site,
                None,
                format!(
                    "group {group:?} carries payload-class accesses but no \
                     complete publication pair ({}): the payload crosses threads \
                     with no happens-before edge",
                    match (has_publish, has_consume) {
                        (false, false) => "no release publish, no acquire consume",
                        (false, true) => "no release publish",
                        (true, false) => "no acquire consume",
                        (true, true) => unreachable!(),
                    },
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::fixtures;
    use super::*;
    use crate::lint::Severity;

    /// A minimal clean protocol: seq publish/consume pair, relaxed len
    /// payload, owner-local cursor.
    fn clean_sites() -> Vec<&'static SiteSpec> {
        fixtures::clean_model()
    }

    #[test]
    fn clean_model_produces_no_findings() {
        let diags = check_model(&clean_sites());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn buggy_model_fires_every_code() {
        let diags = check_model(&fixtures::buggy_model());
        let fired: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        for code in [
            "MO001", "MO002", "MO003", "MO004", "MO005", "MO006", "RC001", "RC002", "RC003",
        ] {
            assert!(fired.contains(&code), "{code} did not fire: {fired:?}");
        }
        // MO006 is the only warning-class rule in the seeded model.
        assert!(diags
            .iter()
            .filter(|d| d.code == DiagCode::Mo006)
            .all(|d| d.severity == Severity::Warning));
        // Every finding carries a module#site anchor.
        assert!(diags.iter().all(|d| d.site.is_some()), "{diags:?}");
    }

    #[test]
    fn duplicate_sites_are_role_mixing() {
        let sites = clean_sites();
        let mut doubled = sites.clone();
        doubled.push(sites[0]);
        let diags = check_model(&doubled);
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::Rc001 && d.message.contains("declared twice")),
            "{diags:?}"
        );
    }
}
