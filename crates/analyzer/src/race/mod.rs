//! `paradice-race`: static memory-ordering + role-consistency analysis
//! for the wall-clock substrate's lock-free kernels.
//!
//! The hypervisor's atomics route through an instrumented shim
//! (`hypervisor::atomic`) whose call sites each name a static
//! [`model::Access`] from a declared [`model::SiteSpec`] table; the
//! MO001–MO006 / RC001–RC003 passes in [`passes`] lint that table.
//! Because the shim *executes* the same `ordering` constant the lint
//! inspects, the model is the code — a downgrade in the source is a
//! downgrade in the model, and both the static pass and the
//! `paradice-verify` interleaving checker see it.

pub mod fixtures;
pub mod model;
pub mod passes;

pub use model::{Access, AccessKind, Edge, MemOrder, Role, SiteSpec};
pub use passes::{check_model, check_model_into};
