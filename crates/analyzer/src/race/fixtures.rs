//! Seeded atomic-site models for the MO/RC pass gate.
//!
//! `clean_model` is a minimal correct publication protocol (the passes
//! must stay silent on it); `buggy_model` seeds one instance of every
//! MO/RC defect class so `paradice-lint --fixtures` can require each
//! rule to fire. Both are static tables, mirroring how the shipped
//! `hypervisor::atomic` site tables are declared.

use super::model::{Access, AccessKind, Edge, MemOrder, Role, SiteSpec};

// --- clean: a miniature Vyukov ring (seq publish/consume, relaxed len
// payload, owner-local cursors) plus a SeqCst doorbell gate. ---

static CLEAN_SEQ_ACCESSES: [&Access; 3] = [
    &Access::new("publish", AccessKind::Store, MemOrder::Release, Edge::Publish),
    &Access::new("consume", AccessKind::Load, MemOrder::Acquire, Edge::Consume),
    &Access::new("recycle", AccessKind::Store, MemOrder::Release, Edge::Recycle),
];
static CLEAN_SEQ: SiteSpec = SiteSpec {
    module: "fixture::ring",
    name: "slot_seq",
    group: "fixture.slot",
    role: Role::SlotSeq,
    accesses: &CLEAN_SEQ_ACCESSES,
};

static CLEAN_LEN_ACCESSES: [&Access; 2] = [
    &Access::new("write", AccessKind::Store, MemOrder::Relaxed, Edge::Payload),
    &Access::new("read", AccessKind::Load, MemOrder::Relaxed, Edge::Payload),
];
static CLEAN_LEN: SiteSpec = SiteSpec {
    module: "fixture::ring",
    name: "slot_len",
    group: "fixture.slot",
    role: Role::SlotLen,
    accesses: &CLEAN_LEN_ACCESSES,
};

static CLEAN_TAIL_ACCESSES: [&Access; 3] = [
    &Access::new("owner-load", AccessKind::Load, MemOrder::Relaxed, Edge::OwnerLocal),
    &Access::new("advance", AccessKind::Store, MemOrder::Release, Edge::Publish),
    &Access::new("occupancy", AccessKind::Load, MemOrder::Acquire, Edge::Consume),
];
static CLEAN_TAIL: SiteSpec = SiteSpec {
    module: "fixture::ring",
    name: "tail",
    group: "fixture.cursor",
    role: Role::Cursor,
    accesses: &CLEAN_TAIL_ACCESSES,
};

static CLEAN_RUNG_ACCESSES: [&Access; 2] = [
    &Access::pre_doorbell("ring", AccessKind::Store, MemOrder::SeqCst, Edge::Gate),
    &Access::new("drain", AccessKind::Rmw, MemOrder::SeqCst, Edge::Gate),
];
static CLEAN_RUNG: SiteSpec = SiteSpec {
    module: "fixture::ring",
    name: "rung",
    group: "fixture.doorbell",
    role: Role::Flag,
    accesses: &CLEAN_RUNG_ACCESSES,
};

/// The clean seeded model: the MO/RC passes must report nothing on it.
pub fn clean_model() -> Vec<&'static SiteSpec> {
    vec![&CLEAN_SEQ, &CLEAN_LEN, &CLEAN_TAIL, &CLEAN_RUNG]
}

// --- buggy: one seeded instance of every defect class. ---

// MO001 (relaxed publish) + MO004 (relaxed pre-doorbell write) + MO003
// (no acquire load anywhere on a publishing site).
static BUG_SEQ_ACCESSES: [&Access; 2] = [
    &Access::pre_doorbell("publish", AccessKind::Store, MemOrder::Relaxed, Edge::Publish),
    &Access::new("consume", AccessKind::Load, MemOrder::Relaxed, Edge::Consume), // MO002
];
static BUG_SEQ: SiteSpec = SiteSpec {
    module: "fixture::buggy",
    name: "slot_seq",
    group: "buggy.slot",
    role: Role::SlotSeq,
    accesses: &BUG_SEQ_ACCESSES,
};

// RC002: payload traffic in a group with no publication pair (the only
// other member of `buggy.slot` is BUG_SEQ, whose pair is downgraded).
static BUG_LEN_ACCESSES: [&Access; 2] = [
    &Access::new("write", AccessKind::Store, MemOrder::Relaxed, Edge::Payload),
    // RC001: a length word doubling as a publication word (role mixing).
    &Access::new("republish", AccessKind::Store, MemOrder::Release, Edge::Publish),
];
static BUG_LEN: SiteSpec = SiteSpec {
    module: "fixture::buggy",
    name: "slot_len",
    group: "buggy.slot",
    role: Role::SlotLen,
    accesses: &BUG_LEN_ACCESSES,
};

// MO005: a Dekker gate at acquire/release instead of seq-cst — the
// classic parked/rung lost-wakeup shape.
static BUG_PARKED_ACCESSES: [&Access; 2] = [
    &Access::new("park", AccessKind::Store, MemOrder::Release, Edge::Gate),
    &Access::new("check", AccessKind::Load, MemOrder::Acquire, Edge::Gate),
];
static BUG_PARKED: SiteSpec = SiteSpec {
    module: "fixture::buggy",
    name: "parked",
    group: "buggy.doorbell",
    role: Role::Flag,
    accesses: &BUG_PARKED_ACCESSES,
};

// MO006 (warning): seq-cst on a plain observe edge; RC003: a
// reservation that is not an RMW.
static BUG_COUNTER_ACCESSES: [&Access; 2] = [
    &Access::new("stat", AccessKind::Load, MemOrder::SeqCst, Edge::Observe),
    &Access::new("reserve", AccessKind::Store, MemOrder::Release, Edge::Reservation),
];
static BUG_COUNTER: SiteSpec = SiteSpec {
    module: "fixture::buggy",
    name: "outstanding",
    group: "buggy.table",
    role: Role::Counter,
    accesses: &BUG_COUNTER_ACCESSES,
};

/// The buggy seeded model: every MO/RC code fires at least once.
pub fn buggy_model() -> Vec<&'static SiteSpec> {
    vec![&BUG_SEQ, &BUG_LEN, &BUG_PARKED, &BUG_COUNTER]
}
