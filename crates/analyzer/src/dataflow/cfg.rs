//! Basic-block control-flow graphs over the driver IR.
//!
//! The tree IR ([`crate::ir::Stmt`]) is what drivers *declare*; the dataflow
//! engine wants a flat graph it can run fixpoints over. [`lower`] turns a
//! statement list into a [`Cfg`]:
//!
//! * Linear statements (`Assign`, `CopyFromUser`, `CopyToUser`, `Call`)
//!   stay inside blocks, each tagged with a stable [`SiteId`] so passes can
//!   report a finding at "the third statement of `ioctl`" across fixpoint
//!   iterations without duplicating it.
//! * `If` becomes a [`Terminator::Branch`] with the real condition on the
//!   edge, so passes can refine state per branch.
//! * `ForRange` becomes a loop-header block ([`Terminator::LoopHead`]) with
//!   a back edge from the body — the solver iterates the body to a fixpoint
//!   instead of the old "walk it twice and dedup the damage" scheme. The
//!   body entry starts with [`CfgStmt::LoopIndex`], the engine's marker
//!   that the counter holds an unknown iteration value.
//! * `SwitchCmd` is resolved against the commanded arm when a command is
//!   supplied (the normal per-command lint run), and otherwise lowered to a
//!   chain of `cmd == k` branches (wire-protocol IR has no dispatcher).
//! * `Return` terminates the block; unreachable trailing statements are
//!   dropped, exactly as the extractor treats them.

use crate::ir::{Cond, Expr, Stmt, VarId};

/// A block index inside one [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

/// A stable statement identity inside one [`Cfg`] (lowering order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub usize);

/// A statement as seen by the dataflow engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgStmt {
    /// A linear IR statement: `Assign`, `CopyFromUser`, `CopyToUser` or
    /// `Call`. Control-flow statements never appear here.
    Ir(Stmt),
    /// The loop counter takes an unknown iteration value (emitted at the
    /// head of every lowered `ForRange` body).
    LoopIndex(VarId),
}

/// How a block ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way branch on a real IR condition.
    Branch {
        /// The branch condition.
        cond: Cond,
        /// Successor when the condition holds.
        then_to: BlockId,
        /// Successor when it does not.
        els_to: BlockId,
    },
    /// A `ForRange` header: the trip-count expression is (re-)evaluated
    /// here; one edge enters the body, the other leaves the loop. The body
    /// ends with a `Jump` back to this block — the CFG's only back edges.
    LoopHead {
        /// The loop counter variable.
        var: VarId,
        /// The trip-count expression.
        count: Expr,
        /// First body block.
        body: BlockId,
        /// Block after the loop.
        exit: BlockId,
    },
    /// Function exit.
    Return,
}

impl Terminator {
    /// Successor block ids, in edge order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(to) => vec![*to],
            Terminator::Branch { then_to, els_to, .. } => vec![*then_to, *els_to],
            Terminator::LoopHead { body, exit, .. } => vec![*body, *exit],
            Terminator::Return => vec![],
        }
    }
}

/// One basic block: sited linear statements plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Statements in execution order.
    pub stmts: Vec<(SiteId, CfgStmt)>,
    /// The block's terminator.
    pub term: Terminator,
}

/// A lowered function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// The function name (diagnostic site prefix).
    pub name: String,
    /// All blocks; [`Cfg::ENTRY`] is the entry.
    pub blocks: Vec<Block>,
    /// Number of sites allocated (dense, starting at 0).
    pub sites: usize,
}

impl Cfg {
    /// The entry block of every CFG.
    pub const ENTRY: BlockId = BlockId(0);

    /// Predecessor lists, computed from the terminators.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (from, block) in self.blocks.iter().enumerate() {
            for succ in block.term.successors() {
                preds[succ.0].push(BlockId(from));
            }
        }
        preds
    }

    /// Blocks ending in [`Terminator::Return`] — the function's exits.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.term, Terminator::Return))
            .map(|(i, _)| BlockId(i))
            .collect()
    }
}

struct Lowerer {
    blocks: Vec<Block>,
    next_site: usize,
    /// Command the dispatcher is specialized to, if any.
    cmd: Option<u32>,
}

impl Lowerer {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            stmts: Vec::new(),
            term: Terminator::Return, // patched by the caller
        });
        BlockId(self.blocks.len() - 1)
    }

    fn push(&mut self, block: BlockId, stmt: CfgStmt) {
        let site = SiteId(self.next_site);
        self.next_site += 1;
        self.blocks[block.0].stmts.push((site, stmt));
    }

    fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.0].term = term;
    }

    /// Lowers `stmts` starting in `current`; returns the block where
    /// control continues, or `None` when every path returned.
    fn lower_seq(&mut self, stmts: &[Stmt], mut current: BlockId) -> Option<BlockId> {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { .. }
                | Stmt::CopyFromUser { .. }
                | Stmt::CopyToUser { .. }
                | Stmt::Call(_) => self.push(current, CfgStmt::Ir(stmt.clone())),
                Stmt::Return => {
                    self.set_term(current, Terminator::Return);
                    return None;
                }
                Stmt::If { cond, then, els } => {
                    let then_entry = self.new_block();
                    let els_entry = self.new_block();
                    self.set_term(
                        current,
                        Terminator::Branch {
                            cond: cond.clone(),
                            then_to: then_entry,
                            els_to: els_entry,
                        },
                    );
                    let then_end = self.lower_seq(then, then_entry);
                    let els_end = self.lower_seq(els, els_entry);
                    match (then_end, els_end) {
                        (None, None) => return None,
                        (then_end, els_end) => {
                            let join = self.new_block();
                            if let Some(end) = then_end {
                                self.set_term(end, Terminator::Jump(join));
                            }
                            if let Some(end) = els_end {
                                self.set_term(end, Terminator::Jump(join));
                            }
                            current = join;
                        }
                    }
                }
                Stmt::ForRange { var, count, body } => {
                    let head = self.new_block();
                    self.set_term(current, Terminator::Jump(head));
                    let body_entry = self.new_block();
                    self.push(body_entry, CfgStmt::LoopIndex(*var));
                    if let Some(body_end) = self.lower_seq(body, body_entry) {
                        // Back edge: the solver iterates this to a fixpoint.
                        self.set_term(body_end, Terminator::Jump(head));
                    }
                    let exit = self.new_block();
                    self.set_term(
                        head,
                        Terminator::LoopHead {
                            var: *var,
                            count: count.clone(),
                            body: body_entry,
                            exit,
                        },
                    );
                    current = exit;
                }
                Stmt::SwitchCmd { arms, default } => match self.cmd {
                    Some(cmd) => {
                        let body = arms
                            .iter()
                            .find(|(arm_cmd, _)| *arm_cmd == cmd)
                            .map(|(_, body)| body.as_slice())
                            .unwrap_or(default);
                        match self.lower_seq(body, current) {
                            Some(next) => current = next,
                            None => return None,
                        }
                    }
                    None => {
                        // No command context (wire IR): lower to a chain of
                        // `cmd == k` tests so every arm stays analyzable.
                        let join = self.new_block();
                        let mut test = current;
                        for (arm_cmd, body) in arms {
                            let arm_entry = self.new_block();
                            let next_test = self.new_block();
                            self.set_term(
                                test,
                                Terminator::Branch {
                                    cond: Cond::Eq(Expr::Cmd, Expr::Const(u64::from(*arm_cmd))),
                                    then_to: arm_entry,
                                    els_to: next_test,
                                },
                            );
                            if let Some(end) = self.lower_seq(body, arm_entry) {
                                self.set_term(end, Terminator::Jump(join));
                            }
                            test = next_test;
                        }
                        if let Some(end) = self.lower_seq(default, test) {
                            self.set_term(end, Terminator::Jump(join));
                        }
                        current = join;
                    }
                },
            }
        }
        Some(current)
    }
}

/// Lowers a function body into a CFG. When `cmd` is supplied, `SwitchCmd`
/// dispatchers are resolved to the matching arm (the per-command lint run);
/// helper calls are *kept* — the engine composes them via summaries.
pub fn lower(name: &str, stmts: &[Stmt], cmd: Option<u32>) -> Cfg {
    let mut lowerer = Lowerer {
        blocks: Vec::new(),
        next_site: 0,
        cmd,
    };
    let entry = lowerer.new_block();
    if let Some(end) = lowerer.lower_seq(stmts, entry) {
        lowerer.set_term(end, Terminator::Return);
    }
    Cfg {
        name: name.to_owned(),
        blocks: lowerer.blocks,
        sites: lowerer.next_site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn fetch(dst: u32) -> Stmt {
        Stmt::CopyFromUser {
            dst: v(dst),
            src: Expr::Arg,
            len: Expr::Const(8),
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = lower("f", &[fetch(0), fetch(1)], None);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        assert_eq!(cfg.blocks[0].term, Terminator::Return);
        assert_eq!(cfg.sites, 2);
    }

    #[test]
    fn if_makes_a_diamond() {
        let cfg = lower(
            "f",
            &[
                Stmt::If {
                    cond: Cond::Eq(Expr::Arg, Expr::Const(0)),
                    then: vec![fetch(0)],
                    els: vec![],
                },
                fetch(1),
            ],
            None,
        );
        // entry + then + els + join = 4 blocks.
        assert_eq!(cfg.blocks.len(), 4);
        let preds = cfg.predecessors();
        // The join block has two predecessors.
        assert!(preds.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn loop_has_a_back_edge() {
        let cfg = lower(
            "f",
            &[Stmt::ForRange {
                var: v(9),
                count: Expr::Const(4),
                body: vec![fetch(0)],
            }],
            None,
        );
        let head = cfg
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::LoopHead { .. }))
            .expect("loop head");
        let preds = cfg.predecessors();
        // Head is reached from the entry and from the body (back edge).
        assert_eq!(preds[head].len(), 2);
        // Body entry starts with the loop-index marker.
        let Terminator::LoopHead { body, .. } = &cfg.blocks[head].term else {
            unreachable!()
        };
        assert!(matches!(
            cfg.blocks[body.0].stmts[0].1,
            CfgStmt::LoopIndex(VarId(9))
        ));
    }

    #[test]
    fn switch_resolves_under_command() {
        let stmts = vec![Stmt::SwitchCmd {
            arms: vec![(7, vec![fetch(0)]), (9, vec![fetch(1), fetch(2)])],
            default: vec![Stmt::Return],
        }];
        let cfg = lower("f", &stmts, Some(9));
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        // Unknown command falls into the default.
        let cfg = lower("f", &stmts, Some(1234));
        assert_eq!(cfg.blocks[0].stmts.len(), 0);
    }

    #[test]
    fn switch_without_command_keeps_all_arms() {
        let stmts = vec![Stmt::SwitchCmd {
            arms: vec![(7, vec![fetch(0)]), (9, vec![fetch(1)])],
            default: vec![],
        }];
        let cfg = lower("f", &stmts, None);
        let fetches: usize = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .filter(|(_, s)| matches!(s, CfgStmt::Ir(Stmt::CopyFromUser { .. })))
            .count();
        assert_eq!(fetches, 2);
    }

    #[test]
    fn code_after_return_is_dropped() {
        let cfg = lower("f", &[Stmt::Return, fetch(0)], None);
        assert_eq!(cfg.sites, 0);
    }

    #[test]
    fn both_branches_returning_ends_the_function() {
        let cfg = lower(
            "f",
            &[
                Stmt::If {
                    cond: Cond::Eq(Expr::Arg, Expr::Const(0)),
                    then: vec![Stmt::Return],
                    els: vec![Stmt::Return],
                },
                fetch(0), // unreachable
            ],
            None,
        );
        assert_eq!(cfg.sites, 0);
        assert_eq!(cfg.exit_blocks().len(), 2);
    }
}
