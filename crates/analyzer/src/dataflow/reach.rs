//! Explicit-state bounded reachability over finite transition systems.
//!
//! The fixpoint solver ([`super::solver`]) joins abstract states per CFG
//! block; this module is its concrete-state sibling for *protocol* models:
//! a [`TransitionSystem`] describes initial states, labelled successor
//! steps, and a safety invariant, and [`explore`] walks every reachable
//! state breadth-first until the invariant breaks or the bounds exhaust.
//! Breadth-first order makes the first violation a *shortest* event trace —
//! exactly what a counterexample fixture wants.
//!
//! The reached set is itself a [`JoinSemiLattice`] ([`ReachedSet`], the
//! powerset lattice), so model-checking runs reuse the same ascending-chain
//! contract as the dataflow passes: exploration is a fixpoint computation
//! whose domain happens to be concrete states instead of abstract facts.
//! `paradice-verify` drives this engine for the grant-cache revocation
//! model and the ring-index model; its counterexamples carry the full
//! labelled trace back to an initial state.

use std::collections::{BTreeSet, VecDeque};

use super::solver::JoinSemiLattice;

/// A finite (or bounded) labelled transition system with a safety invariant.
pub trait TransitionSystem {
    /// One concrete protocol state. `Ord` powers deduplication; exploration
    /// cost is proportional to the number of *distinct* reachable states.
    type State: Clone + Ord;

    /// The initial states.
    fn initial(&self) -> Vec<Self::State>;

    /// Every enabled step from `state`, as `(event label, next state)`.
    /// Labels become the counterexample trace, so they should read as
    /// events: `"push"`, `"complete op 2"`, `"fastpath off"`.
    fn successors(&self, state: &Self::State) -> Vec<(String, Self::State)>;

    /// The safety invariant. `Err` describes the violation; exploration
    /// stops at the first violating state (which BFS makes minimal-depth).
    fn invariant(&self, state: &Self::State) -> Result<(), String>;
}

/// The powerset-of-states lattice: joins accumulate newly reached states.
///
/// This is the domain the reachability fixpoint runs in — the same
/// [`JoinSemiLattice`] contract the dataflow solver requires, instantiated
/// with concrete states.
#[derive(Debug, Clone, Default)]
pub struct ReachedSet<S: Clone + Ord> {
    states: BTreeSet<S>,
}

impl<S: Clone + Ord> ReachedSet<S> {
    /// An empty (bottom) set.
    pub fn new() -> ReachedSet<S> {
        ReachedSet {
            states: BTreeSet::new(),
        }
    }

    /// Adds one state; returns whether it was new.
    pub fn insert(&mut self, state: S) -> bool {
        self.states.insert(state)
    }

    /// Whether `state` has been reached.
    pub fn contains(&self, state: &S) -> bool {
        self.states.contains(state)
    }

    /// Number of distinct states reached.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether nothing has been reached (bottom).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

impl<S: Clone + Ord> JoinSemiLattice for ReachedSet<S> {
    fn join_with(&mut self, other: &Self) -> bool {
        let before = self.states.len();
        self.states.extend(other.states.iter().cloned());
        self.states.len() != before
    }
}

/// Exploration bounds: both are *caps*, not targets. Hitting either marks
/// the result [`Exploration::truncated`] so a "proved" verdict can refuse
/// to claim exhaustiveness.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum distinct states to visit.
    pub max_states: usize,
    /// Maximum trace depth (steps from an initial state).
    pub max_depth: usize,
}

/// A state that broke the invariant, with its shortest event trace.
#[derive(Debug, Clone)]
pub struct Violation<S> {
    /// What the invariant said.
    pub reason: String,
    /// The violating state.
    pub state: S,
    /// Event labels from an initial state to `state` (empty when an initial
    /// state itself violates).
    pub trace: Vec<String>,
}

/// The result of one bounded exploration.
#[derive(Debug, Clone)]
pub struct Exploration<S> {
    /// Distinct states visited (after dedup).
    pub states_visited: usize,
    /// Transitions generated (including ones into already-visited states).
    pub transitions: usize,
    /// Deepest trace explored.
    pub depth_reached: usize,
    /// Whether a bound cut exploration short. A run with no violation and
    /// `truncated == false` visited *every* reachable state.
    pub truncated: bool,
    /// The first (minimal-depth) invariant violation, if any.
    pub violation: Option<Violation<S>>,
}

impl<S> Exploration<S> {
    /// Whether the invariant held on every visited state *and* the state
    /// space was exhausted within bounds — i.e. the property is proved for
    /// this model.
    pub fn proved(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

struct Node<S> {
    state: S,
    parent: Option<usize>,
    label: Option<String>,
    depth: usize,
}

/// Explores `sys` breadth-first within `bounds`: visits every reachable
/// state, checks the invariant on each, and stops at the first violation
/// (returning its shortest labelled trace) or when a bound trips.
pub fn explore<T: TransitionSystem>(sys: &T, bounds: Bounds) -> Exploration<T::State> {
    let mut reached: ReachedSet<T::State> = ReachedSet::new();
    let mut nodes: Vec<Node<T::State>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut transitions = 0usize;
    let mut depth_reached = 0usize;
    let mut truncated = false;

    let admit = |state: T::State,
                     parent: Option<usize>,
                     label: Option<String>,
                     depth: usize,
                     reached: &mut ReachedSet<T::State>,
                     nodes: &mut Vec<Node<T::State>>,
                     queue: &mut VecDeque<usize>|
     -> Option<usize> {
        if !reached.insert(state.clone()) {
            return None;
        }
        nodes.push(Node {
            state,
            parent,
            label,
            depth,
        });
        let index = nodes.len() - 1;
        queue.push_back(index);
        Some(index)
    };

    for state in sys.initial() {
        if let Some(index) =
            admit(state, None, None, 0, &mut reached, &mut nodes, &mut queue)
        {
            if let Err(reason) = sys.invariant(&nodes[index].state) {
                return Exploration {
                    states_visited: reached.len(),
                    transitions,
                    depth_reached,
                    truncated,
                    violation: Some(trace_back(&nodes, index, reason)),
                };
            }
        }
    }

    while let Some(index) = queue.pop_front() {
        if reached.len() > bounds.max_states {
            truncated = true;
            break;
        }
        let depth = nodes[index].depth;
        depth_reached = depth_reached.max(depth);
        if depth >= bounds.max_depth {
            // Successors beyond the horizon exist but are not explored.
            truncated = true;
            continue;
        }
        for (label, next) in sys.successors(&nodes[index].state) {
            transitions += 1;
            if let Some(next_index) = admit(
                next,
                Some(index),
                Some(label),
                depth + 1,
                &mut reached,
                &mut nodes,
                &mut queue,
            ) {
                if let Err(reason) = sys.invariant(&nodes[next_index].state) {
                    return Exploration {
                        states_visited: reached.len(),
                        transitions,
                        depth_reached: depth + 1,
                        truncated,
                        violation: Some(trace_back(&nodes, next_index, reason)),
                    };
                }
            }
        }
    }

    Exploration {
        states_visited: reached.len(),
        transitions,
        depth_reached,
        truncated,
        violation: None,
    }
}

fn trace_back<S: Clone>(nodes: &[Node<S>], index: usize, reason: String) -> Violation<S> {
    let mut trace = Vec::new();
    let mut at = index;
    loop {
        let node = &nodes[at];
        if let Some(label) = &node.label {
            trace.push(label.clone());
        }
        match node.parent {
            Some(parent) => at = parent,
            None => break,
        }
    }
    trace.reverse();
    Violation {
        reason,
        state: nodes[index].state.clone(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter mod `n` that steps +1/+2; invariant: never exactly `bad`.
    struct ModCounter {
        modulus: u32,
        bad: Option<u32>,
    }

    impl TransitionSystem for ModCounter {
        type State = u32;

        fn initial(&self) -> Vec<u32> {
            vec![0]
        }

        fn successors(&self, state: &u32) -> Vec<(String, u32)> {
            vec![
                ("+1".to_owned(), (state + 1) % self.modulus),
                ("+2".to_owned(), (state + 2) % self.modulus),
            ]
        }

        fn invariant(&self, state: &u32) -> Result<(), String> {
            match self.bad {
                Some(bad) if *state == bad => Err(format!("reached forbidden {bad}")),
                _ => Ok(()),
            }
        }
    }

    const WIDE: Bounds = Bounds {
        max_states: 10_000,
        max_depth: 10_000,
    };

    #[test]
    fn exhausts_a_safe_space_and_proves() {
        let run = explore(
            &ModCounter {
                modulus: 97,
                bad: None,
            },
            WIDE,
        );
        assert!(run.proved());
        assert_eq!(run.states_visited, 97);
        assert!(!run.truncated);
    }

    #[test]
    fn finds_a_shortest_counterexample_trace() {
        let run = explore(
            &ModCounter {
                modulus: 97,
                bad: Some(5),
            },
            WIDE,
        );
        let violation = run.violation.expect("5 is reachable");
        assert_eq!(violation.state, 5);
        // Shortest path to 5 with steps {+1,+2} is three +2s then... no:
        // 2+2+1 or 1+2+2 etc — three steps either way. BFS guarantees 3.
        assert_eq!(violation.trace.len(), 3);
        assert!(violation.reason.contains("forbidden 5"));
    }

    #[test]
    fn depth_bound_marks_truncation() {
        let run = explore(
            &ModCounter {
                modulus: 97,
                bad: None,
            },
            Bounds {
                max_states: 10_000,
                max_depth: 3,
            },
        );
        assert!(run.truncated);
        assert!(!run.proved());
        assert!(run.states_visited < 97);
    }

    #[test]
    fn state_bound_marks_truncation() {
        let run = explore(
            &ModCounter {
                modulus: 997,
                bad: None,
            },
            Bounds {
                max_states: 10,
                max_depth: 10_000,
            },
        );
        assert!(run.truncated);
        assert!(run.violation.is_none());
    }

    #[test]
    fn violating_initial_state_yields_empty_trace() {
        let run = explore(
            &ModCounter {
                modulus: 7,
                bad: Some(0),
            },
            WIDE,
        );
        let violation = run.violation.expect("initial state violates");
        assert!(violation.trace.is_empty());
        assert_eq!(violation.state, 0);
    }

    #[test]
    fn reached_set_is_a_join_semilattice() {
        let mut a = ReachedSet::new();
        a.insert(1u32);
        let mut b = ReachedSet::new();
        b.insert(2u32);
        assert!(a.join_with(&b));
        assert!(!a.join_with(&b)); // idempotent: second join changes nothing
        assert_eq!(a.len(), 2);
        assert!(a.contains(&1) && a.contains(&2));
        assert!(!a.is_empty());
    }
}
